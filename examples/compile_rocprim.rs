//! Compiles a rocPRIM-like benchmark suite end to end with the base AMD
//! scheduler and with parallel ACO, and reports the aggregate effects —
//! a miniature of the paper's Tables 1, 2 and 5.
//!
//! ```sh
//! cargo run --release --example compile_rocprim
//! ```

use gpu_aco::compile::{compile_suite, PipelineConfig, SchedulerKind};
use gpu_aco::machine::OccupancyModel;
use workloads::{Suite, SuiteConfig};

fn main() {
    // A scaled-down suite (the paper's full scale is 341 benchmarks /
    // 269 kernels / ~182k regions; scale it with `SuiteConfig::scaled`).
    let suite_cfg = SuiteConfig::scaled(2024, 0.02);
    let suite = Suite::generate(&suite_cfg);
    let occ = OccupancyModel::vega_like();
    println!(
        "suite: {} benchmarks, {} kernels, {} scheduling regions",
        suite.benchmarks.len(),
        suite.kernels.len(),
        suite.region_count()
    );

    let mut base_cfg = PipelineConfig::paper(SchedulerKind::BaseAmd, 1);
    base_cfg.aco.blocks = 16;
    let mut aco_cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 1);
    aco_cfg.aco.blocks = 16;

    let base = compile_suite(&suite, &occ, &base_cfg);
    let aco = compile_suite(&suite, &occ, &aco_cfg);

    println!("\nACO activity:");
    println!(
        "  regions processed by ACO in pass 1: {}",
        aco.pass1_count()
    );
    println!(
        "  regions processed by ACO in pass 2: {}",
        aco.pass2_count()
    );
    let reverted = aco.regions.iter().filter(|r| r.reverted).count();
    println!("  post-filter reversions            : {reverted}");

    println!("\naggregate schedule quality (ACO vs base AMD):");
    let occ_impr = 100.0 * (aco.total_occupancy() as f64 - base.total_occupancy() as f64)
        / base.total_occupancy() as f64;
    let len_impr = 100.0 * (base.total_length() as f64 - aco.total_length() as f64)
        / base.total_length() as f64;
    println!("  overall occupancy increase     : {occ_impr:.2}%");
    println!("  overall schedule-length change : {len_impr:.2}%");

    println!("\ncompile time:");
    println!("  base AMD     : {:8.2} s", base.compile_time_s);
    println!(
        "  parallel ACO : {:8.2} s (+{:.1}%)",
        aco.compile_time_s,
        100.0 * (aco.compile_time_s - base.compile_time_s) / base.compile_time_s
    );

    println!("\nexecution (modeled throughput, top benchmark improvements):");
    let mut improvements: Vec<(usize, f64)> = aco
        .benchmark_throughput
        .iter()
        .zip(&base.benchmark_throughput)
        .enumerate()
        .map(|(i, (&a, &b))| (i, 100.0 * (a - b) / b))
        .collect();
    improvements.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(i, imp) in improvements.iter().take(8) {
        println!(
            "  {:<12} {:7.2} -> {:7.2} GB/s  ({:+.1}%)",
            suite.benchmarks[i].name,
            base.benchmark_throughput[i],
            aco.benchmark_throughput[i],
            imp
        );
    }
}
