//! Sweeps the two design parameters the paper tunes experimentally:
//! the fraction of wavefronts allowed to insert optional stalls (Table 6)
//! and the pass-2 cycle-threshold filter (Table 7 flavor).
//!
//! ```sh
//! cargo run --release --example tuning
//! ```

use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler};

fn main() {
    let occ = OccupancyModel::vega_like();
    let regions: Vec<_> = (0..6u64)
        .map(|s| workloads::patterns::sized(120, 500 + s * 13))
        .collect();
    // The threshold sweep needs a size mix: small regions sit close to the
    // length lower bound and are the ones a higher threshold filters out.
    let mixed: Vec<_> = (0..10u64)
        .map(|s| workloads::patterns::sized(30 + 14 * s as usize, 700 + s))
        .collect();

    println!("optional-stall wavefront fraction sweep (regions of ~120 instructions):");
    println!(
        "{:>10} {:>14} {:>14}",
        "fraction", "GPU time (us)", "total length"
    );
    for &frac in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut time = 0.0;
        let mut length = 0u64;
        for (i, ddg) in regions.iter().enumerate() {
            let mut cfg = AcoConfig::small(i as u64);
            cfg.blocks = 16;
            cfg.tuning.stall_wavefront_fraction = frac;
            let out = ParallelScheduler::new(cfg).schedule(ddg, &occ);
            time += out.gpu.total_us();
            length += out.result.length as u64;
        }
        println!("{:>9.0}% {:>14.0} {:>14}", frac * 100.0, time, length);
    }

    println!("\npass-2 cycle-threshold sweep:");
    println!(
        "{:>10} {:>14} {:>16}",
        "threshold", "GPU time (us)", "pass-2 regions"
    );
    for &gate in &[0u32, 5, 10, 15, 21, 25] {
        let mut time = 0.0;
        let mut processed = 0;
        for (i, ddg) in mixed.iter().enumerate() {
            let mut cfg = AcoConfig::small(i as u64);
            cfg.blocks = 16;
            cfg.pass2_gate_cycles = gate;
            let out = ParallelScheduler::new(cfg).schedule(ddg, &occ);
            time += out.gpu.total_us();
            if out.result.pass2.iterations > 0 {
                processed += 1;
            }
        }
        println!("{:>10} {:>14.0} {:>16}", gate, time, processed);
    }
    println!("\nhigher stall fractions buy schedule length for scheduling time (Table 6);");
    println!("higher thresholds skip low-benefit regions and cap compile time (Table 7).");
}
