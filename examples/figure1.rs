//! Walks through the paper's Figure-1 example end to end: the two-ant,
//! two-pass ACO run of Section IV-C.
//!
//! ```sh
//! cargo run --release --example figure1
//! ```

use gpu_aco::ir::figure1;
use gpu_aco::machine::OccupancyModel;
use gpu_aco::pressure::prp_of_order;
use gpu_aco::scheduler::{AcoConfig, SequentialScheduler};

fn main() {
    let (ddg, ids) = figure1::ddg_with_ids();
    // The worked example uses raw PRP as the cost, i.e. every PRP value is
    // its own occupancy band — the identity-APRP model.
    let occ = OccupancyModel::unit();

    println!("The Figure-1 DDG ({} instructions):", ddg.len());
    for id in ddg.ids() {
        let succs: Vec<String> = ddg
            .succs(id)
            .iter()
            .map(|&(s, lat)| format!("{}(lat {})", ddg.instr(s).name(), lat))
            .collect();
        println!(
            "  {:<30} -> {}",
            ddg.instr(id).to_string(),
            succs.join(", ")
        );
    }

    let tc = ddg.transitive_closure();
    println!(
        "\nready-list upper bound: {} (loose bound would be {})",
        tc.ready_list_ub(),
        ddg.len()
    );

    // Pass-1 intuition: the paper's two ant orders.
    let ant1 = [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g];
    let ant2 = [ids.c, ids.d, ids.f, ids.a, ids.b, ids.e, ids.g];
    println!("\npass 1 (latency-free, minimize PRP):");
    println!(
        "  Ant 1 order A B C D E F G -> PRP {}",
        prp_of_order(&ddg, &ant1)[0]
    );
    println!(
        "  Ant 2 order C D F A B E G -> PRP {}",
        prp_of_order(&ddg, &ant2)[0]
    );

    // Full two-pass ACO run.
    let result = SequentialScheduler::new(AcoConfig::small(1)).schedule(&ddg, &occ);
    result.schedule.validate(&ddg).expect("valid");
    println!("\nfull two-pass ACO run:");
    println!("  best PRP  : {} (paper: 3)", result.prp[0]);
    println!(
        "  best length: {} cycles with {} stalls (paper: 10 cycles)",
        result.length,
        result.schedule.stalls()
    );
    print!("  schedule  :");
    let order = result.schedule.order();
    let mut next = 0;
    for id in order {
        let c = result.schedule.cycle(id);
        while next < c {
            print!(" _");
            next += 1;
        }
        print!(" {}", ddg.instr(id).name());
        next = c + 1;
    }
    println!();
    println!(
        "  (pass 1: {} iterations, pass 2: {} iterations)",
        result.pass1.iterations, result.pass2.iterations
    );
}
