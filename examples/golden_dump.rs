//! Regenerates the golden fingerprints pinned by
//! `crates/sched-verify/tests/golden_bitwise.rs`.
//!
//! The golden test freezes the *search results* of every scheduler on a set
//! of fixed regions and seeds: any refactor of the ant construction loop,
//! the winner reduction, or the suite compiler must keep these fingerprints
//! bit-for-bit identical. When a change is *supposed* to alter results
//! (e.g. a new selection rule), rerun this example and update the pinned
//! constants, explaining the change in the commit:
//!
//! ```text
//! cargo run --release --example golden_dump
//! ```

use gpu_aco::compile::{compile_suite, PipelineConfig, SchedulerKind};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{
    AcoConfig, HostParallelScheduler, ParallelScheduler, SequentialScheduler,
};
use gpu_aco::verify::{aco_fingerprint, suite_fingerprint, Fnv};
use workloads::{Suite, SuiteConfig};

fn main() {
    let occ = OccupancyModel::vega_like();

    println!("// sequential: (region, seed) -> fingerprint");
    for (size, rseed, cseed) in [(40usize, 7u64, 3u64), (80, 21, 9), (120, 13, 5)] {
        let ddg = workloads::patterns::sized(size, rseed);
        let mut cfg = AcoConfig::paper(cseed);
        cfg.blocks = 8;
        cfg.pass2_gate_cycles = 1;
        let r = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
        println!(
            "(\"seq-{size}-{rseed}-{cseed}\", {:#018x}),",
            aco_fingerprint(&r)
        );
    }

    println!("// host-parallel (thread-count invariant): fingerprints at 1 thread");
    for (size, rseed, cseed) in [(40usize, 7u64, 3u64), (90, 5, 3), (120, 13, 5)] {
        let ddg = workloads::patterns::sized(size, rseed);
        let mut cfg = AcoConfig::paper(cseed);
        cfg.blocks = 8;
        cfg.pass2_gate_cycles = 1;
        let r = HostParallelScheduler::new(cfg, 1).schedule(&ddg, &occ);
        println!(
            "(\"host-{size}-{rseed}-{cseed}\", {:#018x}),",
            aco_fingerprint(&r)
        );
    }

    println!("// simulated-GPU parallel");
    for (size, rseed, cseed) in [(40usize, 7u64, 3u64), (80, 11, 3), (120, 13, 5)] {
        let ddg = workloads::patterns::sized(size, rseed);
        let mut cfg = AcoConfig::small(cseed);
        cfg.blocks = 8;
        cfg.pass2_gate_cycles = 1;
        let r = ParallelScheduler::new(cfg).schedule(&ddg, &occ);
        println!(
            "(\"par-{size}-{rseed}-{cseed}\", {:#018x}),",
            aco_fingerprint(&r.result)
        );
    }

    println!("// batched cooperative launch (10-block colony over 3 regions)");
    {
        let regions = [
            workloads::patterns::sized(40, 7),
            workloads::patterns::sized(80, 11),
            workloads::patterns::sized(120, 13),
        ];
        let refs: Vec<&sched_ir::Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::small(3);
        cfg.blocks = 10;
        cfg.pass2_gate_cycles = 1;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        let mut h = Fnv::new();
        for o in &batch.outcomes {
            h.word(aco_fingerprint(&o.result));
        }
        println!("(\"batch-3x-10blk\", {:#018x}),", h.finish());
    }

    println!("// whole-suite compilations (scaled 0.008, seed 5)");
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    for kind in [
        SchedulerKind::BaseAmd,
        SchedulerKind::SequentialAco,
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ] {
        let mut cfg = PipelineConfig::paper(kind, 0);
        cfg.aco.blocks = 4;
        cfg.aco.pass2_gate_cycles = 1;
        let run = compile_suite(&suite, &occ, &cfg);
        println!("(\"suite-{kind:?}\", {:#018x}),", suite_fingerprint(&run));
    }
}
