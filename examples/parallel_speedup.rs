//! Measures the modeled GPU-vs-CPU scheduling speedup on regions of
//! growing size — a miniature of the paper's Table 3.
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! ```

use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler, SequentialScheduler};

fn main() {
    let occ = OccupancyModel::vega_like();
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>9}  (pass-1 iterations must match to compare)",
        "size", "iters", "seq CPU (us)", "par GPU (us)", "speedup"
    );
    for &size in &[20usize, 40, 80, 160, 320] {
        for seed in 0..3u64 {
            let ddg = workloads::patterns::sized(size, 1000 + seed * 7 + size as u64);
            let cfg = AcoConfig::small(seed);
            let seq = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
            let par = ParallelScheduler::new(cfg).schedule(&ddg, &occ);
            let comparable = seq.pass1.iterations == par.result.pass1.iterations
                && seq.pass2.iterations == par.result.pass2.iterations;
            if seq.time_us == 0.0 || par.gpu.total_us() == 0.0 {
                continue; // heuristic already optimal; nothing to schedule
            }
            println!(
                "{:>6} {:>6} {:>14.1} {:>14.1} {:>8.2}x {}",
                ddg.len(),
                seq.pass1.iterations + seq.pass2.iterations,
                seq.time_us,
                par.gpu.total_us(),
                seq.time_us / par.gpu.total_us(),
                if comparable {
                    ""
                } else {
                    "(iteration counts differ)"
                }
            );
        }
    }
    println!("\nspeedup grows with region size: launch + copy overheads amortize, as in Table 3.");
}
