//! Quickstart: schedule one region with the heuristic baseline, the
//! sequential ACO scheduler, and the GPU-parallel ACO scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_aco::heuristics::{Heuristic, ListScheduler};
use gpu_aco::ir::Schedule;
use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler, SequentialScheduler};

fn main() {
    // A rocPRIM-like scheduling region: a mixed 120-instruction hot loop
    // body on which the production heuristic leaves room for improvement.
    let ddg = workloads::patterns::sized(120, 9);
    let occ = OccupancyModel::vega_like();
    println!(
        "region: {} instructions, {} edges, length LB {}, ready-list UB {}",
        ddg.len(),
        ddg.edge_count(),
        ddg.schedule_length_lb(),
        ddg.transitive_closure().ready_list_ub(),
    );

    // 1. The production-style heuristic baseline.
    let amd = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
    println!(
        "AMD heuristic:   occupancy {:>2}, length {:>4}, VGPR PRP {}",
        amd.occupancy, amd.length, amd.prp[0]
    );

    // 2. Sequential ACO on the (modeled) CPU.
    let seq = SequentialScheduler::new(AcoConfig::small(7)).schedule(&ddg, &occ);
    seq.schedule.validate(&ddg).expect("valid schedule");
    println!(
        "sequential ACO:  occupancy {:>2}, length {:>4}, VGPR PRP {}, modeled CPU time {:>8.1} us",
        seq.occupancy, seq.length, seq.prp[0], seq.time_us
    );

    // 3. Parallel ACO on the simulated GPU.
    let par = ParallelScheduler::new(AcoConfig::small(7)).schedule(&ddg, &occ);
    par.result.schedule.validate(&ddg).expect("valid schedule");
    println!(
        "parallel ACO:    occupancy {:>2}, length {:>4}, VGPR PRP {}, modeled GPU time {:>8.1} us",
        par.result.occupancy,
        par.result.length,
        par.result.prp[0],
        par.gpu.total_us()
    );
    if par.gpu.total_us() > 0.0 {
        println!(
            "modeled GPU speedup over sequential CPU: {:.2}x",
            seq.time_us / par.gpu.total_us()
        );
    }

    // The final order can be rendered as a timed schedule.
    let final_schedule: &Schedule = &par.result.schedule;
    println!(
        "final schedule uses {} stalls over {} cycles",
        final_schedule.stalls(),
        final_schedule.length()
    );
}
