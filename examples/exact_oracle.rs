//! Compares the ACO schedulers against the exact branch-and-bound optimum
//! on small regions — the optimality check the workspace's tests rely on.
//!
//! ```sh
//! cargo run --release --example exact_oracle
//! ```

use gpu_aco::exact::{two_pass_optimum, BnbConfig};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler, SequentialScheduler};

fn main() {
    let occ = OccupancyModel::unit();
    let cfg = BnbConfig::default();
    println!(
        "{:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "seed", "size", "exact prp", "len", "seq prp", "len", "par prp", "len"
    );
    let mut seq_optimal = 0;
    let mut par_optimal = 0;
    let mut total = 0;
    for seed in 0..12u64 {
        let ddg = workloads::patterns::sized(13, 1000 + seed);
        let exact = two_pass_optimum(&ddg, &occ, &cfg);
        if !exact.proven_optimal {
            continue;
        }
        total += 1;
        let seq = SequentialScheduler::new(AcoConfig::small(seed)).schedule(&ddg, &occ);
        let par = ParallelScheduler::new(AcoConfig {
            blocks: 8,
            ..AcoConfig::paper(seed)
        })
        .schedule(&ddg, &occ)
        .result;
        assert!(
            occ.rp_cost(seq.prp) >= exact.rp_cost && occ.rp_cost(par.prp) >= exact.rp_cost,
            "an ACO result beat a proven optimum — constraint bug!"
        );
        seq_optimal += (occ.rp_cost(seq.prp) == exact.rp_cost && seq.length == exact.length) as u32;
        par_optimal += (occ.rp_cost(par.prp) == exact.rp_cost && par.length == exact.length) as u32;
        println!(
            "{:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            seed,
            ddg.len(),
            exact.prp[0],
            exact.length,
            seq.prp[0],
            seq.length,
            par.prp[0],
            par.length
        );
    }
    println!(
        "\nACO hit the proven two-pass optimum on {seq_optimal}/{total} (sequential) and \
         {par_optimal}/{total} (parallel) regions."
    );
    println!("(no ACO result may ever be better than the oracle — that is asserted above)");
}
