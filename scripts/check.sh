#!/usr/bin/env bash
# CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh          # run everything
#   scripts/check.sh --fast   # skip the release build
#
# Mirrors what reviewers expect before a merge: rustfmt clean, clippy
# clean at -D warnings across every target, all workspace tests green,
# and (unless --fast) the release build the tier-1 gate uses.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
