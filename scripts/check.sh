#!/usr/bin/env bash
# CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh          # run everything
#   scripts/check.sh --fast   # skip the release build
#
# Mirrors what reviewers expect before a merge: rustfmt clean, clippy
# clean at -D warnings across every target, all workspace tests green,
# and (unless --fast) the release build the tier-1 gate uses, the bench
# binaries compiling, a CLI verify smoke run on generated regions, and
# the static-analysis deny-gate (`gpu-aco-cli analyze --json`).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo bench --workspace --no-run"
    cargo bench --workspace --no-run

    echo "==> gpu-aco-cli verify smoke run"
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/gpu-aco-cli generate mixed 60 --seed 7 > "$smoke_dir/region.txt"
    ./target/release/gpu-aco-cli verify "$smoke_dir/region.txt" --blocks 8
    ./target/release/gpu-aco-cli generate reduction 40 --seed 9 > "$smoke_dir/region2.txt"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" "$smoke_dir/region2.txt" \
        --batch --blocks 8 > /dev/null

    echo "==> schedule cache on/off smoke"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --cache "$smoke_dir/sched.cache" --cache-stats > "$smoke_dir/cache_on.txt"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --cache "$smoke_dir/sched.cache" --cache-stats 2>&1 > "$smoke_dir/cache_on2.txt" \
        | grep -q "cache: 1 hits" || { echo "second cached run must hit"; exit 1; }
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --no-cache > "$smoke_dir/cache_off.txt"
    cmp "$smoke_dir/cache_on.txt" "$smoke_dir/cache_off.txt"
    cmp "$smoke_dir/cache_on.txt" "$smoke_dir/cache_on2.txt"

    echo "==> schedule --tune smoke"
    # Tuning composes with the cache without polluting it: a tuned run
    # against the same cache file must leave the untuned cached output
    # bitwise unchanged, --no-tune must override --tune, and the tuning
    # store must persist across invocations.
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --cache "$smoke_dir/sched.cache" --tune "$smoke_dir/sched.tune" > /dev/null
    [[ -s "$smoke_dir/sched.tune" ]] || { echo "--tune must write the store"; exit 1; }
    grep -q "^schedtune v1$" "$smoke_dir/sched.tune" \
        || { echo "tuning store header malformed"; exit 1; }
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --cache "$smoke_dir/sched.cache" --cache-stats 2>&1 > "$smoke_dir/cache_on3.txt" \
        | grep -q "cache: 1 hits" || { echo "tuned run polluted the untuned cache"; exit 1; }
    cmp "$smoke_dir/cache_on.txt" "$smoke_dir/cache_on3.txt"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" --blocks 8 \
        --tune "$smoke_dir/sched.tune" --no-tune > "$smoke_dir/no_tune.txt"
    cmp "$smoke_dir/cache_off.txt" "$smoke_dir/no_tune.txt"

    echo "==> serve daemon smoke"
    # Boot the daemon on a Unix socket, preloading the cache the smoke
    # above persisted; serve two concurrent clients plus a stats request;
    # SIGTERM-drain it; then verify the persisted cache still answers the
    # one-shot CLI with a hit. Responses must be byte-identical to the
    # one-shot `schedule` output for the same inputs.
    ./target/release/gpu-aco-cli serve --socket "$smoke_dir/daemon.sock" \
        --cache "$smoke_dir/sched.cache" &
    serve_pid=$!
    for _ in $(seq 100); do
        [[ -S "$smoke_dir/daemon.sock" ]] && break
        sleep 0.05
    done
    [[ -S "$smoke_dir/daemon.sock" ]] || { echo "daemon never bound its socket"; exit 1; }
    ./target/release/gpu-aco-cli request --socket "$smoke_dir/daemon.sock" \
        schedule "$smoke_dir/region.txt" --blocks 8 > "$smoke_dir/serve1.txt" &
    req1=$!
    ./target/release/gpu-aco-cli request --socket "$smoke_dir/daemon.sock" \
        schedule "$smoke_dir/region2.txt" --scheduler amd > "$smoke_dir/serve2.txt" &
    req2=$!
    wait "$req1" "$req2"
    cmp "$smoke_dir/serve1.txt" "$smoke_dir/cache_on.txt"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region2.txt" --no-cache \
        --scheduler amd > "$smoke_dir/oneshot2.txt"
    cmp "$smoke_dir/serve2.txt" "$smoke_dir/oneshot2.txt"
    ./target/release/gpu-aco-cli request --socket "$smoke_dir/daemon.sock" stats \
        | grep -q "regions compiled" || { echo "stats response malformed"; exit 1; }
    kill "$serve_pid"
    wait "$serve_pid"
    [[ ! -e "$smoke_dir/daemon.sock" ]] || { echo "socket not removed on drain"; exit 1; }
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region2.txt" --scheduler amd \
        --cache "$smoke_dir/sched.cache" --cache-stats 2>&1 > /dev/null \
        | grep -q "cache: 1 hits" \
        || { echo "persisted cache must hit after daemon drain"; exit 1; }

    echo "==> gpu-aco-cli analyze deny-gate"
    # The static-analysis gate: every smoke region must analyze clean of
    # deny-level findings, and the JSON report must match the
    # sched-analyze-findings/v1 schema the tooling consumes. The exit code
    # of `analyze` itself is the gate; the python step re-validates the
    # report shape so a renderer regression cannot slip through.
    ./target/release/gpu-aco-cli analyze "$smoke_dir/region.txt" "$smoke_dir/region2.txt" \
        --json > "$smoke_dir/analyze.json"
    python3 - "$smoke_dir/analyze.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
assert rep["schema"] == "sched-analyze-findings/v1", rep.get("schema")
for key in ("deny", "warn", "pedantic", "suppressed", "findings"):
    assert key in rep, f"missing key {key}"
for f in rep["findings"]:
    assert f["level"] in ("deny", "warn", "pedantic"), f
    assert f["code"].startswith("S"), f
    assert f["anchor"] and f["message"], f
assert rep["deny"] == 0, f"deny-gate: {rep['deny']} deny finding(s): {rep['findings']}"
print(f"analyze gate: clean ({rep['warn']} warn, {rep['pedantic']} pedantic)")
EOF

    echo "==> scripts/bench.sh --smoke"
    scripts/bench.sh --smoke --out "$smoke_dir/BENCH_wallclock.json" \
        --cache-out "$smoke_dir/BENCH_cache.json" \
        --tuning-out "$smoke_dir/BENCH_tuning.json"

    echo "==> wallclock smoke perf gate"
    # Schema-validate the bench reports with a real JSON parser (the
    # binaries only do structural checks). Schema v3 is mandatory: v2
    # artifacts (no streaming-merge split) are rejected so a stale
    # committed report cannot pass. Then compare the smoke run's
    # sequential jobs_s, merge_s, and best_total_s against the committed
    # baseline: a regression beyond 1.25x on any of them fails the gate.
    # Regenerate the baseline on the reference machine with
    #   ./target/release/wallclock --smoke --out /dev/null
    # and edit BENCH_smoke_baseline.json when a slowdown is intentional.
    python3 - "$smoke_dir/BENCH_wallclock.json" BENCH_smoke_baseline.json \
        BENCH_wallclock.json <<'EOF'
import json, sys

def validate(path):
    with open(path) as f:
        rep = json.load(f)
    got = rep.get("schema_version")
    assert got != 2, f"{path}: schema v2 artifact — regenerate with the v3 bench"
    assert got == 3, f"{path}: unknown schema_version {got}"
    assert rep["benchmark"] == "suite_compile_wallclock", rep["benchmark"]
    for key in ("cores", "scheduler", "suite", "repetitions", "checksum",
                "checksums_agree", "samples", "sequential_best_s",
                "parallel_best_s", "speedup"):
        assert key in rep, f"{path}: missing key {key}"
    assert rep["checksums_agree"] is True, f"{path}: checksum drift"
    assert rep["samples"], f"{path}: no samples"
    for s in rep["samples"]:
        for key in ("threads", "oversubscribed", "best_total_s", "plan_s",
                    "jobs_s", "merge_s", "merge_overlap_s", "critical_path_s",
                    "all_total_s", "modeled_compile_s"):
            assert key in s, f"{path}: missing sample key {key}"
        assert s["oversubscribed"] == (s["threads"] > rep["cores"]), \
            f"{path}: bad oversubscription label at {s['threads']} threads"
        # Streaming-merge split sanity: overlap is a sub-span of merge,
        # inline (1-thread) runs cannot overlap, and the critical path is
        # exactly the non-overlapped portion of the phase sum.
        assert 0.0 <= s["merge_overlap_s"] <= s["merge_s"] + 1e-12, \
            f"{path}: merge_overlap_s outside [0, merge_s] at {s['threads']} threads"
        if s["threads"] <= 1:
            assert s["merge_overlap_s"] == 0.0, \
                f"{path}: inline merge reported overlap"
        want_cp = s["plan_s"] + s["jobs_s"] + (s["merge_s"] - s["merge_overlap_s"])
        assert abs(s["critical_path_s"] - want_cp) <= 1e-9, \
            f"{path}: critical_path_s disagrees with the phase split"
    # The headline numbers must come from honest rows only.
    honest = [s["best_total_s"] for s in rep["samples"]
              if s["threads"] > 1 and not s["oversubscribed"]]
    want = min(honest) if honest else None
    assert rep["parallel_best_s"] == want, \
        f"{path}: parallel_best_s drew from an oversubscribed row"
    return rep

smoke = validate(sys.argv[1])
validate(sys.argv[3])  # the committed full-scale report stays well-formed
with open(sys.argv[2]) as f:
    base = json.load(f)
assert base["schema_version"] == 2, \
    "baseline must be schema 2 (jobs_s + merge_s + best_total_s)"
assert smoke["suite"]["scale"] == base["suite"]["scale"], \
    "baseline/smoke suite scale mismatch"
cur = next(s for s in smoke["samples"] if s["threads"] == base["threads"])
for metric in ("jobs_s", "merge_s", "best_total_s"):
    limit = base[metric] * 1.25
    assert cur[metric] <= limit, (
        f"perf gate: smoke {metric} {cur[metric]:.4f}s exceeds {limit:.4f}s "
        f"(committed baseline {base[metric]:.4f}s x 1.25)")
    print(f"perf gate: smoke {metric} {cur[metric]:.4f}s <= {limit:.4f}s "
          f"(baseline {base[metric]:.4f}s)")
EOF

    echo "==> tuning smoke gate"
    # The tuning_bench binary already self-gates under --smoke (strictly
    # fewer iterations, no length regression, warm hits fired); this step
    # re-validates both the smoke report and the committed full-scale
    # report with a real JSON parser so a renderer regression cannot slip
    # through.
    python3 - "$smoke_dir/BENCH_tuning.json" BENCH_tuning.json <<'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        rep = json.load(f)
    assert rep["schema_version"] == 1, rep.get("schema_version")
    assert rep["benchmark"] == "suite_compile_tuning", rep["benchmark"]
    for key in ("cores", "scheduler", "suite", "threads", "warmup_rounds",
                "repetitions", "samples", "tuner", "iterations_saved",
                "length_regression", "wallclock_ratio"):
        assert key in rep, f"{path}: missing key {key}"
    assert len(rep["samples"]) == 2, f"{path}: need fixed + tuned samples"
    fixed, tuned = rep["samples"]
    assert fixed["tuned"] is False and tuned["tuned"] is True, f"{path}: sample order"
    for s in rep["samples"]:
        for key in ("total_iterations", "total_length", "best_total_s",
                    "all_total_s"):
            assert key in s, f"{path}: missing sample key {key}"
    assert rep["iterations_saved"] == \
        fixed["total_iterations"] - tuned["total_iterations"], f"{path}: math"
    assert rep["iterations_saved"] > 0, \
        f"{path}: tuning saved no iterations ({rep['iterations_saved']})"
    assert rep["length_regression"] is False, f"{path}: tuned length regressed"
    assert rep["tuner"]["warm_hits"] > 0, f"{path}: warm hints never fired"
    print(f"tuning gate: {path}: {rep['iterations_saved']} iterations saved, "
          f"{rep['tuner']['warm_hits']} warm hits, no length regression")
EOF
fi

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
