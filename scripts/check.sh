#!/usr/bin/env bash
# CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh          # run everything
#   scripts/check.sh --fast   # skip the release build
#
# Mirrors what reviewers expect before a merge: rustfmt clean, clippy
# clean at -D warnings across every target, all workspace tests green,
# and (unless --fast) the release build the tier-1 gate uses, the bench
# binaries compiling, and a CLI verify smoke run on generated regions.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo bench --workspace --no-run"
    cargo bench --workspace --no-run

    echo "==> gpu-aco-cli verify smoke run"
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/gpu-aco-cli generate mixed 60 --seed 7 > "$smoke_dir/region.txt"
    ./target/release/gpu-aco-cli verify "$smoke_dir/region.txt" --blocks 8
    ./target/release/gpu-aco-cli generate reduction 40 --seed 9 > "$smoke_dir/region2.txt"
    ./target/release/gpu-aco-cli schedule "$smoke_dir/region.txt" "$smoke_dir/region2.txt" \
        --batch --blocks 8 > /dev/null

    echo "==> scripts/bench.sh --smoke"
    scripts/bench.sh --smoke --out "$smoke_dir/BENCH_wallclock.json"
fi

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
