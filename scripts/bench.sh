#!/usr/bin/env bash
# Host wall-clock benchmarks of suite compilation.
#
#   scripts/bench.sh            # full run: thread ladder up to all cores,
#                               # best of 3, writes BENCH_wallclock.json;
#                               # then the schedule-cache benchmark on a
#                               # duplicate-heavy suite (BENCH_cache.json)
#                               # and the self-tuning benchmark on the same
#                               # suite shape (BENCH_tuning.json)
#   scripts/bench.sh --smoke    # tiny suites + self-gating: validates the
#                               # JSON schemas, checks result checksums
#                               # agree, requires the honest parallel best
#                               # not to lose to sequential and the
#                               # cache-on best not to lose to cache-off
#                               # (10% noise allowance), requires a >=30%
#                               # hit rate on the duplicate-heavy suite,
#                               # and requires the tuned run to reach the
#                               # fixed-config schedule length in strictly
#                               # fewer ACO iterations
#
# Extra arguments are forwarded to the `wallclock` binary, e.g.
#   scripts/bench.sh --threads 1,2,4,8 --reps 5 --scale 0.05
# except `--cache-out PATH` / `--tuning-out PATH`, which bench.sh consumes
# itself as the output paths of the cache and tuning reports (defaults
# BENCH_cache.json / BENCH_tuning.json). `--smoke` is forwarded to every
# binary.
#
# The reports separate the two time domains deliberately: the modeled GPU
# microseconds inside a SuiteRun never change with host threads or the
# cache (the checksum fields prove it); only the host seconds here do.
# Tuning is the exception by design — it changes the *search inputs*, so
# its report tracks iterations and schedule length, not checksums.

set -euo pipefail
cd "$(dirname "$0")/.."

cache_out="BENCH_cache.json"
tuning_out="BENCH_tuning.json"
smoke=""
wallclock_args=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --cache-out)
            cache_out="$2"
            shift 2
            ;;
        --tuning-out)
            tuning_out="$2"
            shift 2
            ;;
        --smoke)
            smoke="--smoke"
            wallclock_args+=("$1")
            shift
            ;;
        *)
            wallclock_args+=("$1")
            shift
            ;;
    esac
done

echo "==> cargo build --release -p bench-harness --bin wallclock --bin cache_bench --bin tuning_bench"
cargo build --release -p bench-harness --bin wallclock --bin cache_bench --bin tuning_bench

echo "==> wallclock ${wallclock_args[*]:-}"
./target/release/wallclock "${wallclock_args[@]:+${wallclock_args[@]}}"

echo "==> cache_bench ${smoke:+$smoke }--out $cache_out"
# shellcheck disable=SC2086
./target/release/cache_bench $smoke --out "$cache_out"

echo "==> tuning_bench ${smoke:+$smoke }--out $tuning_out"
# shellcheck disable=SC2086
./target/release/tuning_bench $smoke --out "$tuning_out"
