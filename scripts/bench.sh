#!/usr/bin/env bash
# Host wall-clock benchmark of suite compilation.
#
#   scripts/bench.sh            # full run: thread ladder up to all cores,
#                               # best of 3, writes BENCH_wallclock.json
#   scripts/bench.sh --smoke    # tiny suite + self-gating: validates the
#                               # JSON schema, checks result checksums
#                               # agree, and on a >=2-core host requires
#                               # the parallel best not to lose to the
#                               # sequential best (10% noise allowance)
#
# Extra arguments are forwarded to the `wallclock` binary, e.g.
#   scripts/bench.sh --threads 1,2,4,8 --reps 5 --scale 0.05
#
# The report separates the two time domains deliberately: the modeled GPU
# microseconds inside a SuiteRun never change with host threads (the
# report's checksum field proves it); only the host seconds here do.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p bench-harness --bin wallclock"
cargo build --release -p bench-harness --bin wallclock

echo "==> wallclock $*"
./target/release/wallclock "$@"
