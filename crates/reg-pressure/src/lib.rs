//! Register-pressure tracking during schedule construction.
//!
//! Every scheduler in the workspace — the greedy list schedulers and both
//! ACO schedulers — constructs schedules one instruction at a time and needs
//! to know, incrementally, how many registers of each class are live. This
//! crate provides:
//!
//! * [`RegUniverse`]: a per-region interning of virtual registers with their
//!   defining instruction and use counts,
//! * [`PressureTracker`]: O(operands) incremental live-count updates with
//!   peak tracking, plus *what-if* queries ([`PressureTracker::net_change`],
//!   [`PressureTracker::kills`]) used by the Last-Use-Count heuristic and by
//!   the ACO optional-stall heuristic,
//! * [`prp_of_order`]: one-shot peak-pressure evaluation of a complete
//!   instruction order.
//!
//! Register semantics follow the paper's region model: registers used but
//! never defined in the region are live-in (live from cycle 0 until their
//! last use); registers defined but never used are live-out (live from their
//! definition to the end of the region).

use machine_model::OccupancyModel;
use sched_ir::{Ddg, InstrId, Reg, RegClass, REG_CLASS_COUNT};
use std::collections::HashMap;

/// Dense index of a register within a [`RegUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegIdx(u32);

impl RegIdx {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct RegInfo {
    class: RegClass,
    /// Instruction defining the register, if defined in the region.
    def: Option<InstrId>,
    /// Total number of use occurrences in the region.
    uses: u32,
}

/// Interned register metadata for one scheduling region.
///
/// Build once per region, then drive any number of [`PressureTracker`]s
/// (e.g. one per ant) from it.
#[derive(Debug, Clone)]
pub struct RegUniverse {
    regs: Vec<RegInfo>,
    instr_defs: Vec<Vec<RegIdx>>,
    instr_uses: Vec<Vec<RegIdx>>,
    live_in: [u32; REG_CLASS_COUNT],
}

impl RegUniverse {
    /// Interns all registers of a region.
    ///
    /// Assumes SSA-like virtual registers: at most one def per register.
    /// A second def of the same register is ignored with a debug assertion.
    pub fn new(ddg: &Ddg) -> RegUniverse {
        let mut index: HashMap<Reg, RegIdx> = HashMap::new();
        let mut regs: Vec<RegInfo> = Vec::new();
        let mut intern = |r: Reg, regs: &mut Vec<RegInfo>| -> RegIdx {
            *index.entry(r).or_insert_with(|| {
                regs.push(RegInfo {
                    class: r.class,
                    def: None,
                    uses: 0,
                });
                RegIdx(regs.len() as u32 - 1)
            })
        };
        let n = ddg.len();
        let mut instr_defs = vec![Vec::new(); n];
        let mut instr_uses = vec![Vec::new(); n];
        for id in ddg.ids() {
            let instr = ddg.instr(id);
            for &r in instr.uses() {
                let ri = intern(r, &mut regs);
                regs[ri.index()].uses += 1;
                instr_uses[id.index()].push(ri);
            }
            for &r in instr.defs() {
                let ri = intern(r, &mut regs);
                debug_assert!(
                    regs[ri.index()].def.is_none(),
                    "register {r} defined more than once (non-SSA region)"
                );
                if regs[ri.index()].def.is_none() {
                    regs[ri.index()].def = Some(id);
                }
                instr_defs[id.index()].push(ri);
            }
        }
        let mut live_in = [0u32; REG_CLASS_COUNT];
        for info in &regs {
            if info.def.is_none() {
                live_in[info.class.index()] += 1;
            }
        }
        RegUniverse {
            regs,
            instr_defs,
            instr_uses,
            live_in,
        }
    }

    /// Number of distinct registers in the region.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Per-class count of live-in registers.
    pub fn live_in(&self) -> [u32; REG_CLASS_COUNT] {
        self.live_in
    }

    /// Registers defined by an instruction (dense indices).
    pub fn defs(&self, id: InstrId) -> &[RegIdx] {
        &self.instr_defs[id.index()]
    }

    /// Register use occurrences of an instruction (dense indices; a register
    /// used twice appears twice).
    pub fn uses(&self, id: InstrId) -> &[RegIdx] {
        &self.instr_uses[id.index()]
    }
}

/// Incremental per-class live-register counting with peak tracking.
///
/// # Example
///
/// ```
/// use reg_pressure::{PressureTracker, RegUniverse, prp_of_order};
/// use sched_ir::figure1;
///
/// let (ddg, ids) = figure1::ddg_with_ids();
/// let universe = RegUniverse::new(&ddg);
/// let mut t = PressureTracker::new(&universe);
/// for id in [ids.a, ids.b, ids.c, ids.d] {
///     t.issue(id);
/// }
/// // "each of Instructions A, B, C, and D opens a new live range"
/// assert_eq!(t.peak()[0], 4);
/// ```
#[derive(Debug, Clone)]
pub struct PressureTracker<'u> {
    universe: &'u RegUniverse,
    remaining: Vec<u32>,
    live: Vec<bool>,
    current: [u32; REG_CLASS_COUNT],
    peak: [u32; REG_CLASS_COUNT],
}

impl<'u> PressureTracker<'u> {
    /// Creates a tracker at region entry: live-ins live, nothing issued.
    pub fn new(universe: &'u RegUniverse) -> PressureTracker<'u> {
        let remaining: Vec<u32> = universe.regs.iter().map(|r| r.uses).collect();
        let live: Vec<bool> = universe.regs.iter().map(|r| r.def.is_none()).collect();
        let current = universe.live_in;
        PressureTracker {
            universe,
            remaining,
            live,
            current,
            peak: current,
        }
    }

    /// Resets to region entry without reallocating (ants reuse trackers
    /// across iterations — the GPU implementation avoids dynamic allocation
    /// the same way).
    pub fn reset(&mut self) {
        for (i, r) in self.universe.regs.iter().enumerate() {
            self.remaining[i] = r.uses;
            self.live[i] = r.def.is_none();
        }
        self.current = self.universe.live_in;
        self.peak = self.current;
    }

    /// Issues an instruction: closes the live ranges of registers whose last
    /// use this is, then opens its defs' live ranges.
    ///
    /// Kills are processed before opens — an instruction's result may reuse
    /// the physical register of an operand it kills, so the two ranges do
    /// not overlap. This matches the paper's Figure-1 counting, where the
    /// `A,B,C,D,E,F,G` order has PRP 4 (not 5) even though `E` opens `r5`
    /// in the same cycle it kills `r1` and `r2`.
    pub fn issue(&mut self, id: InstrId) {
        for &ri in self.universe.uses(id) {
            let i = ri.index();
            debug_assert!(
                self.live[i] || self.remaining[i] == 0,
                "use of a dead register: order violates def-use dependence"
            );
            if self.remaining[i] > 0 {
                self.remaining[i] -= 1;
                if self.remaining[i] == 0 && self.live[i] {
                    self.live[i] = false;
                    self.current[self.universe.regs[i].class.index()] -= 1;
                }
            }
        }
        for &ri in self.universe.defs(id) {
            let i = ri.index();
            if !self.live[i] {
                self.live[i] = true;
                let c = self.universe.regs[i].class.index();
                self.current[c] += 1;
                self.peak[c] = self.peak[c].max(self.current[c]);
            }
        }
    }

    /// Current live-register counts per class.
    pub fn current(&self) -> [u32; REG_CLASS_COUNT] {
        self.current
    }

    /// Peak live-register counts per class since construction/reset (PRP).
    pub fn peak(&self) -> [u32; REG_CLASS_COUNT] {
        self.peak
    }

    /// Net per-class pressure change if `id` were issued now: defs that
    /// would open a range minus uses that would close one.
    pub fn net_change(&self, id: InstrId) -> [i32; REG_CLASS_COUNT] {
        let mut delta = [0i32; REG_CLASS_COUNT];
        for &ri in self.universe.defs(id) {
            if !self.live[ri.index()] {
                delta[self.universe.regs[ri.index()].class.index()] += 1;
            }
        }
        for (ri, occurrences) in dedup_occurrences(self.universe.uses(id)) {
            let i = ri.index();
            if self.live[i] && self.remaining[i] <= occurrences {
                delta[self.universe.regs[i].class.index()] -= 1;
            }
        }
        delta
    }

    /// Number of live ranges issuing `id` would close (the Last-Use-Count
    /// priority of Shobaki et al. 2015).
    pub fn kills(&self, id: InstrId) -> u32 {
        let mut k = 0;
        for (ri, occurrences) in dedup_occurrences(self.universe.uses(id)) {
            let i = ri.index();
            if self.live[i] && self.remaining[i] <= occurrences {
                k += 1;
            }
        }
        k
    }

    /// Number of live ranges issuing `id` would open.
    pub fn opens(&self, id: InstrId) -> u32 {
        self.universe
            .defs(id)
            .iter()
            .filter(|ri| !self.live[ri.index()])
            .count() as u32
    }

    /// Peak pressure if `id` were issued now, per class — without mutating
    /// the tracker. Used by the pass-2 RP-constraint check.
    pub fn peak_after(&self, id: InstrId) -> [u32; REG_CLASS_COUNT] {
        let delta = self.net_change(id);
        let mut peak = self.peak;
        for c in 0..REG_CLASS_COUNT {
            let after = (self.current[c] as i32 + delta[c]).max(0) as u32;
            peak[c] = peak[c].max(after);
        }
        peak
    }

    /// Scalar APRP cost of the peak so far (see
    /// [`OccupancyModel::rp_cost`]).
    pub fn rp_cost(&self, model: &OccupancyModel) -> u64 {
        model.rp_cost(self.peak)
    }
}

/// Collapses a use-occurrence list into `(reg, occurrence_count)` pairs.
fn dedup_occurrences(uses: &[RegIdx]) -> impl Iterator<Item = (RegIdx, u32)> + '_ {
    // Operand lists are tiny (< 8); quadratic dedup beats hashing.
    uses.iter().enumerate().filter_map(move |(i, &ri)| {
        if uses[..i].contains(&ri) {
            None
        } else {
            Some((ri, uses.iter().filter(|&&x| x == ri).count() as u32))
        }
    })
}

/// Peak register pressure of issuing a region in the given order.
///
/// # Panics
///
/// Panics (in debug builds) if `order` uses a register before its def.
pub fn prp_of_order(ddg: &Ddg, order: &[InstrId]) -> [u32; REG_CLASS_COUNT] {
    let universe = RegUniverse::new(ddg);
    let mut t = PressureTracker::new(&universe);
    for &id in order {
        t.issue(id);
    }
    t.peak()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::{figure1, DdgBuilder};

    const V: usize = 0; // RegClass::Vgpr.index()

    #[test]
    fn figure1_ant1_order_has_prp_4() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let order = [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g];
        assert_eq!(prp_of_order(&ddg, &order)[V], 4);
    }

    #[test]
    fn figure1_ant2_order_has_prp_3() {
        let (ddg, ids) = figure1::ddg_with_ids();
        // C, D, F closes r3/r4 at the third step (paper's Ant-2 order).
        let order = [ids.c, ids.d, ids.f, ids.a, ids.b, ids.e, ids.g];
        assert_eq!(prp_of_order(&ddg, &order)[V], 3);
    }

    #[test]
    fn live_in_registers_start_live() {
        let mut b = DdgBuilder::new();
        let u = b.instr("use", [], [Reg::vgpr(0), Reg::sgpr(0)]);
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        assert_eq!(universe.live_in(), [1, 1]);
        let mut t = PressureTracker::new(&universe);
        assert_eq!(t.current(), [1, 1]);
        t.issue(u);
        assert_eq!(t.current(), [0, 0]);
        assert_eq!(t.peak(), [1, 1]);
    }

    #[test]
    fn live_out_registers_never_die() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        assert_eq!(t.current()[V], 1);
        assert_eq!(t.peak()[V], 1);
    }

    #[test]
    fn kills_processed_before_opens_within_one_instruction() {
        // x = f(v0) where this is v0's last use: the result may reuse v0's
        // register, so the peak stays 1.
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let x = b.instr("f", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        b.edge(d, x, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        t.issue(x);
        assert_eq!(t.current()[V], 1, "v0 dead, v1 live");
        assert_eq!(t.peak()[V], 1, "v1 reuses v0's slot");
    }

    #[test]
    fn multi_use_register_dies_at_last_use() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let u1 = b.instr("u1", [], [Reg::vgpr(0)]);
        let u2 = b.instr("u2", [], [Reg::vgpr(0)]);
        b.edge(d, u1, 1).unwrap();
        b.edge(d, u2, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        t.issue(u1);
        assert_eq!(t.current()[V], 1, "still one use left");
        t.issue(u2);
        assert_eq!(t.current()[V], 0);
    }

    #[test]
    fn duplicate_use_in_one_instruction_counts_once_for_kill() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let sq = b.instr("square", [Reg::vgpr(1)], [Reg::vgpr(0), Reg::vgpr(0)]);
        b.edge(d, sq, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        assert_eq!(t.kills(sq), 1);
        assert_eq!(t.net_change(sq), [0, 0]); // +v1, -v0
        t.issue(sq);
        assert_eq!(t.current()[V], 1); // only v1 live
    }

    #[test]
    fn net_change_and_peak_after_are_consistent_with_issue() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for id in [ids.c, ids.d] {
            let predicted = t.net_change(id);
            let predicted_peak = t.peak_after(id);
            let before = t.current();
            t.issue(id);
            let after = t.current();
            for c in 0..REG_CLASS_COUNT {
                assert_eq!(after[c] as i32 - before[c] as i32, predicted[c]);
            }
            assert_eq!(t.peak(), predicted_peak);
        }
        // F kills r3 and r4 and opens r6 -> net -1.
        assert_eq!(t.net_change(ids.f)[V], -1);
        assert_eq!(t.kills(ids.f), 2);
        assert_eq!(t.opens(ids.f), 1);
    }

    #[test]
    fn reset_restores_entry_state() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        let order = [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g];
        for id in order {
            t.issue(id);
        }
        assert_eq!(t.peak()[V], 4);
        t.reset();
        assert_eq!(t.peak(), [0, 0]);
        assert_eq!(t.current(), [0, 0]);
        for id in [ids.c, ids.d, ids.f, ids.a, ids.b, ids.e, ids.g] {
            t.issue(id);
        }
        assert_eq!(t.peak()[V], 3);
    }

    #[test]
    fn rp_cost_uses_occupancy_model() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for id in [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g] {
            t.issue(id);
        }
        let model = OccupancyModel::vega_like();
        // PRP 4 -> APRP 24 band -> occupancy 10 -> cost = APRP sum only.
        assert_eq!(t.rp_cost(&model), 24);
    }

    use sched_ir::Reg;
}
