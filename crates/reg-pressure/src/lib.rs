//! Register-pressure tracking during schedule construction.
//!
//! Every scheduler in the workspace — the greedy list schedulers and both
//! ACO schedulers — constructs schedules one instruction at a time and needs
//! to know, incrementally, how many registers of each class are live. This
//! crate provides:
//!
//! * [`RegUniverse`]: a per-region interning of virtual registers with their
//!   defining instruction and use counts,
//! * [`PressureTracker`]: O(operands) incremental live-count updates with
//!   peak tracking, plus *what-if* queries ([`PressureTracker::net_change`],
//!   [`PressureTracker::kills`]) used by the Last-Use-Count heuristic and by
//!   the ACO optional-stall heuristic,
//! * [`prp_of_order`]: one-shot peak-pressure evaluation of a complete
//!   instruction order.
//!
//! Register semantics follow the paper's region model: registers used but
//! never defined in the region are live-in (live from cycle 0 until their
//! last use); registers defined but never used are live-out (live from their
//! definition to the end of the region).

use machine_model::OccupancyModel;
use sched_ir::{Ddg, InstrId, Reg, RegClass, REG_CLASS_COUNT};

/// Dense index of a register within a [`RegUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegIdx(u32);

impl RegIdx {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct RegInfo {
    class: RegClass,
    /// Instruction defining the register, if defined in the region.
    def: Option<InstrId>,
    /// Total number of use occurrences in the region.
    uses: u32,
}

/// Interned register metadata for one scheduling region.
///
/// Build once per region, then drive any number of [`PressureTracker`]s
/// (e.g. one per ant) from it.
///
/// Registers are interned through per-class dense lookup tables indexed by
/// raw register id (no hashing), and per-instruction def/use lists are
/// stored in flat CSR arrays. The dense [`RegIdx`] numbering is identical
/// to what the old `HashMap` interning produced: first occurrence wins,
/// walking instructions in id order, uses before defs within each
/// instruction.
#[derive(Debug, Clone)]
pub struct RegUniverse {
    regs: Vec<RegInfo>,
    def_off: Vec<u32>,
    def_idx: Vec<RegIdx>,
    use_off: Vec<u32>,
    use_idx: Vec<RegIdx>,
    /// Deduplicated `(register, occurrence count)` pairs per instruction,
    /// CSR-indexed by `use_pair_off`. Precomputed so the Last-Use-Count
    /// queries ([`PressureTracker::kills`]/[`PressureTracker::net_change`],
    /// the hottest inner loop of every ant) never re-dedup operand lists.
    use_pair_off: Vec<u32>,
    use_pairs: Vec<(RegIdx, u32)>,
    /// Entry-state vectors for `memcpy` tracker resets.
    init_remaining: Vec<u32>,
    init_live: Vec<bool>,
    live_in: [u32; REG_CLASS_COUNT],
}

impl RegUniverse {
    /// Interns all registers of a region.
    ///
    /// Assumes SSA-like virtual registers: at most one def per register.
    /// A second def of the same register is ignored with a debug assertion.
    pub fn new(ddg: &Ddg) -> RegUniverse {
        let mut lookup: [Vec<u32>; REG_CLASS_COUNT] = Default::default();
        let mut regs: Vec<RegInfo> = Vec::new();
        let mut intern = |r: Reg, regs: &mut Vec<RegInfo>| -> RegIdx {
            let table = &mut lookup[r.class.index()];
            let i = r.id as usize;
            if table.len() <= i {
                table.resize(i + 1, u32::MAX);
            }
            if table[i] == u32::MAX {
                table[i] = regs.len() as u32;
                regs.push(RegInfo {
                    class: r.class,
                    def: None,
                    uses: 0,
                });
            }
            RegIdx(table[i])
        };
        let n = ddg.len();
        let mut def_off = Vec::with_capacity(n + 1);
        let mut def_idx = Vec::new();
        let mut use_off = Vec::with_capacity(n + 1);
        let mut use_idx = Vec::new();
        def_off.push(0u32);
        use_off.push(0u32);
        for id in ddg.ids() {
            let instr = ddg.instr(id);
            for &r in instr.uses() {
                let ri = intern(r, &mut regs);
                regs[ri.index()].uses += 1;
                use_idx.push(ri);
            }
            for &r in instr.defs() {
                let ri = intern(r, &mut regs);
                debug_assert!(
                    regs[ri.index()].def.is_none(),
                    "register {r} defined more than once (non-SSA region)"
                );
                if regs[ri.index()].def.is_none() {
                    regs[ri.index()].def = Some(id);
                }
                def_idx.push(ri);
            }
            use_off.push(use_idx.len() as u32);
            def_off.push(def_idx.len() as u32);
        }
        let mut use_pair_off = Vec::with_capacity(n + 1);
        let mut use_pairs = Vec::new();
        use_pair_off.push(0u32);
        for i in 0..n {
            let uses = &use_idx[use_off[i] as usize..use_off[i + 1] as usize];
            use_pairs.extend(dedup_occurrences(uses));
            use_pair_off.push(use_pairs.len() as u32);
        }
        let mut live_in = [0u32; REG_CLASS_COUNT];
        for info in &regs {
            if info.def.is_none() {
                live_in[info.class.index()] += 1;
            }
        }
        let init_remaining: Vec<u32> = regs.iter().map(|r| r.uses).collect();
        let init_live: Vec<bool> = regs.iter().map(|r| r.def.is_none()).collect();
        RegUniverse {
            regs,
            def_off,
            def_idx,
            use_off,
            use_idx,
            use_pair_off,
            use_pairs,
            init_remaining,
            init_live,
            live_in,
        }
    }

    /// Number of distinct registers in the region.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Per-class count of live-in registers.
    pub fn live_in(&self) -> [u32; REG_CLASS_COUNT] {
        self.live_in
    }

    /// Registers defined by an instruction (dense indices).
    #[inline]
    pub fn defs(&self, id: InstrId) -> &[RegIdx] {
        let i = id.index();
        &self.def_idx[self.def_off[i] as usize..self.def_off[i + 1] as usize]
    }

    /// Register use occurrences of an instruction (dense indices; a register
    /// used twice appears twice).
    #[inline]
    pub fn uses(&self, id: InstrId) -> &[RegIdx] {
        let i = id.index();
        &self.use_idx[self.use_off[i] as usize..self.use_off[i + 1] as usize]
    }

    /// Deduplicated `(register, occurrence count)` use pairs of an
    /// instruction, precomputed at interning time.
    #[inline]
    pub fn use_pairs(&self, id: InstrId) -> &[(RegIdx, u32)] {
        let i = id.index();
        &self.use_pairs[self.use_pair_off[i] as usize..self.use_pair_off[i + 1] as usize]
    }
}

/// Incremental per-class live-register counting with peak tracking.
///
/// # Example
///
/// ```
/// use reg_pressure::{PressureTracker, RegUniverse, prp_of_order};
/// use sched_ir::figure1;
///
/// let (ddg, ids) = figure1::ddg_with_ids();
/// let universe = RegUniverse::new(&ddg);
/// let mut t = PressureTracker::new(&universe);
/// for id in [ids.a, ids.b, ids.c, ids.d] {
///     t.issue(id);
/// }
/// // "each of Instructions A, B, C, and D opens a new live range"
/// assert_eq!(t.peak()[0], 4);
/// ```
#[derive(Debug, Clone)]
pub struct PressureTracker<'u> {
    universe: &'u RegUniverse,
    remaining: Vec<u32>,
    live: Vec<bool>,
    current: [u32; REG_CLASS_COUNT],
    peak: [u32; REG_CLASS_COUNT],
}

impl<'u> PressureTracker<'u> {
    /// Creates a tracker at region entry: live-ins live, nothing issued.
    pub fn new(universe: &'u RegUniverse) -> PressureTracker<'u> {
        let remaining: Vec<u32> = universe.regs.iter().map(|r| r.uses).collect();
        let live: Vec<bool> = universe.regs.iter().map(|r| r.def.is_none()).collect();
        let current = universe.live_in;
        PressureTracker {
            universe,
            remaining,
            live,
            current,
            peak: current,
        }
    }

    /// Resets to region entry without reallocating (ants reuse trackers
    /// across iterations — the GPU implementation avoids dynamic allocation
    /// the same way). Two `memcpy`s from the universe's precomputed entry
    /// state.
    pub fn reset(&mut self) {
        self.remaining
            .copy_from_slice(&self.universe.init_remaining);
        self.live.copy_from_slice(&self.universe.init_live);
        self.current = self.universe.live_in;
        self.peak = self.current;
    }

    /// Issues an instruction: closes the live ranges of registers whose last
    /// use this is, then opens its defs' live ranges.
    ///
    /// Kills are processed before opens — an instruction's result may reuse
    /// the physical register of an operand it kills, so the two ranges do
    /// not overlap. This matches the paper's Figure-1 counting, where the
    /// `A,B,C,D,E,F,G` order has PRP 4 (not 5) even though `E` opens `r5`
    /// in the same cycle it kills `r1` and `r2`.
    pub fn issue(&mut self, id: InstrId) {
        for &ri in self.universe.uses(id) {
            let i = ri.index();
            debug_assert!(
                self.live[i] || self.remaining[i] == 0,
                "use of a dead register: order violates def-use dependence"
            );
            if self.remaining[i] > 0 {
                self.remaining[i] -= 1;
                if self.remaining[i] == 0 && self.live[i] {
                    self.live[i] = false;
                    self.current[self.universe.regs[i].class.index()] -= 1;
                }
            }
        }
        for &ri in self.universe.defs(id) {
            let i = ri.index();
            if !self.live[i] {
                self.live[i] = true;
                let c = self.universe.regs[i].class.index();
                self.current[c] += 1;
                self.peak[c] = self.peak[c].max(self.current[c]);
            }
        }
    }

    /// Current live-register counts per class.
    pub fn current(&self) -> [u32; REG_CLASS_COUNT] {
        self.current
    }

    /// Peak live-register counts per class since construction/reset (PRP).
    pub fn peak(&self) -> [u32; REG_CLASS_COUNT] {
        self.peak
    }

    /// Net per-class pressure change if `id` were issued now: defs that
    /// would open a range minus uses that would close one.
    pub fn net_change(&self, id: InstrId) -> [i32; REG_CLASS_COUNT] {
        let mut delta = [0i32; REG_CLASS_COUNT];
        for &ri in self.universe.defs(id) {
            if !self.live[ri.index()] {
                delta[self.universe.regs[ri.index()].class.index()] += 1;
            }
        }
        for &(ri, occurrences) in self.universe.use_pairs(id) {
            let i = ri.index();
            if self.live[i] && self.remaining[i] <= occurrences {
                delta[self.universe.regs[i].class.index()] -= 1;
            }
        }
        delta
    }

    /// Number of live ranges issuing `id` would close (the Last-Use-Count
    /// priority of Shobaki et al. 2015).
    pub fn kills(&self, id: InstrId) -> u32 {
        let mut k = 0;
        for &(ri, occurrences) in self.universe.use_pairs(id) {
            let i = ri.index();
            if self.live[i] && self.remaining[i] <= occurrences {
                k += 1;
            }
        }
        k
    }

    /// Number of live ranges issuing `id` would open.
    pub fn opens(&self, id: InstrId) -> u32 {
        self.universe
            .defs(id)
            .iter()
            .filter(|ri| !self.live[ri.index()])
            .count() as u32
    }

    /// Peak pressure if `id` were issued now, per class — without mutating
    /// the tracker. Used by the pass-2 RP-constraint check.
    pub fn peak_after(&self, id: InstrId) -> [u32; REG_CLASS_COUNT] {
        self.peak_after_delta(self.net_change(id))
    }

    /// [`Self::peak_after`] for a [`Self::net_change`] delta the caller
    /// already computed — heuristics that need both the delta and the
    /// resulting peak scan the operand lists once instead of twice.
    pub fn peak_after_delta(&self, delta: [i32; REG_CLASS_COUNT]) -> [u32; REG_CLASS_COUNT] {
        let mut peak = self.peak;
        for c in 0..REG_CLASS_COUNT {
            let after = (self.current[c] as i32 + delta[c]).max(0) as u32;
            peak[c] = peak[c].max(after);
        }
        peak
    }

    /// Scalar APRP cost of the peak so far (see
    /// [`OccupancyModel::rp_cost`]).
    pub fn rp_cost(&self, model: &OccupancyModel) -> u64 {
        model.rp_cost(self.peak)
    }
}

/// Collapses a use-occurrence list into `(reg, occurrence_count)` pairs.
/// Only runs at universe construction; queries read the precomputed pairs.
fn dedup_occurrences(uses: &[RegIdx]) -> impl Iterator<Item = (RegIdx, u32)> + '_ {
    // Operand lists are tiny (< 8); quadratic dedup beats hashing.
    uses.iter().enumerate().filter_map(move |(i, &ri)| {
        if uses[..i].contains(&ri) {
            None
        } else {
            Some((ri, uses.iter().filter(|&&x| x == ri).count() as u32))
        }
    })
}

/// Peak register pressure of issuing a region in the given order.
///
/// # Panics
///
/// Panics (in debug builds) if `order` uses a register before its def.
pub fn prp_of_order(ddg: &Ddg, order: &[InstrId]) -> [u32; REG_CLASS_COUNT] {
    let universe = RegUniverse::new(ddg);
    prp_of_order_in(&universe, order)
}

/// [`prp_of_order`] against an already-built universe — callers that hold
/// one (every scheduler does) skip re-interning the region's registers.
pub fn prp_of_order_in(universe: &RegUniverse, order: &[InstrId]) -> [u32; REG_CLASS_COUNT] {
    let mut t = PressureTracker::new(universe);
    for &id in order {
        t.issue(id);
    }
    t.peak()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::{figure1, DdgBuilder};

    const V: usize = 0; // RegClass::Vgpr.index()

    #[test]
    fn figure1_ant1_order_has_prp_4() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let order = [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g];
        assert_eq!(prp_of_order(&ddg, &order)[V], 4);
    }

    #[test]
    fn figure1_ant2_order_has_prp_3() {
        let (ddg, ids) = figure1::ddg_with_ids();
        // C, D, F closes r3/r4 at the third step (paper's Ant-2 order).
        let order = [ids.c, ids.d, ids.f, ids.a, ids.b, ids.e, ids.g];
        assert_eq!(prp_of_order(&ddg, &order)[V], 3);
    }

    #[test]
    fn live_in_registers_start_live() {
        let mut b = DdgBuilder::new();
        let u = b.instr("use", [], [Reg::vgpr(0), Reg::sgpr(0)]);
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        assert_eq!(universe.live_in(), [1, 1]);
        let mut t = PressureTracker::new(&universe);
        assert_eq!(t.current(), [1, 1]);
        t.issue(u);
        assert_eq!(t.current(), [0, 0]);
        assert_eq!(t.peak(), [1, 1]);
    }

    #[test]
    fn live_out_registers_never_die() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        assert_eq!(t.current()[V], 1);
        assert_eq!(t.peak()[V], 1);
    }

    #[test]
    fn kills_processed_before_opens_within_one_instruction() {
        // x = f(v0) where this is v0's last use: the result may reuse v0's
        // register, so the peak stays 1.
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let x = b.instr("f", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        b.edge(d, x, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        t.issue(x);
        assert_eq!(t.current()[V], 1, "v0 dead, v1 live");
        assert_eq!(t.peak()[V], 1, "v1 reuses v0's slot");
    }

    #[test]
    fn multi_use_register_dies_at_last_use() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let u1 = b.instr("u1", [], [Reg::vgpr(0)]);
        let u2 = b.instr("u2", [], [Reg::vgpr(0)]);
        b.edge(d, u1, 1).unwrap();
        b.edge(d, u2, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        t.issue(u1);
        assert_eq!(t.current()[V], 1, "still one use left");
        t.issue(u2);
        assert_eq!(t.current()[V], 0);
    }

    #[test]
    fn duplicate_use_in_one_instruction_counts_once_for_kill() {
        let mut b = DdgBuilder::new();
        let d = b.instr("def", [Reg::vgpr(0)], []);
        let sq = b.instr("square", [Reg::vgpr(1)], [Reg::vgpr(0), Reg::vgpr(0)]);
        b.edge(d, sq, 1).unwrap();
        let g = b.build().unwrap();
        let universe = RegUniverse::new(&g);
        let mut t = PressureTracker::new(&universe);
        t.issue(d);
        assert_eq!(t.kills(sq), 1);
        assert_eq!(t.net_change(sq), [0, 0]); // +v1, -v0
        t.issue(sq);
        assert_eq!(t.current()[V], 1); // only v1 live
    }

    #[test]
    fn net_change_and_peak_after_are_consistent_with_issue() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for id in [ids.c, ids.d] {
            let predicted = t.net_change(id);
            let predicted_peak = t.peak_after(id);
            let before = t.current();
            t.issue(id);
            let after = t.current();
            for c in 0..REG_CLASS_COUNT {
                assert_eq!(after[c] as i32 - before[c] as i32, predicted[c]);
            }
            assert_eq!(t.peak(), predicted_peak);
        }
        // F kills r3 and r4 and opens r6 -> net -1.
        assert_eq!(t.net_change(ids.f)[V], -1);
        assert_eq!(t.kills(ids.f), 2);
        assert_eq!(t.opens(ids.f), 1);
    }

    #[test]
    fn reset_restores_entry_state() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        let order = [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g];
        for id in order {
            t.issue(id);
        }
        assert_eq!(t.peak()[V], 4);
        t.reset();
        assert_eq!(t.peak(), [0, 0]);
        assert_eq!(t.current(), [0, 0]);
        for id in [ids.c, ids.d, ids.f, ids.a, ids.b, ids.e, ids.g] {
            t.issue(id);
        }
        assert_eq!(t.peak()[V], 3);
    }

    #[test]
    fn rp_cost_uses_occupancy_model() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for id in [ids.a, ids.b, ids.c, ids.d, ids.e, ids.f, ids.g] {
            t.issue(id);
        }
        let model = OccupancyModel::vega_like();
        // PRP 4 -> APRP 24 band -> occupancy 10 -> cost = APRP sum only.
        assert_eq!(t.rp_cost(&model), 24);
    }

    use sched_ir::Reg;
}
