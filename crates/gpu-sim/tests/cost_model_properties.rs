//! Property tests of the SIMT cost model's structural laws.

use gpu_sim::{CpuSpec, GpuSpec, MemLayout, WavefrontCost};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernel time is monotone: adding a wavefront never shortens a launch.
    #[test]
    fn kernel_cycles_monotone_in_wavefronts(mut loads in proptest::collection::vec(1u64..10_000, 1..64), extra in 1u64..10_000) {
        let g = GpuSpec::radeon_vii();
        let before = g.kernel_cycles(&loads);
        loads.push(extra);
        prop_assert!(g.kernel_cycles(&loads) >= before);
    }

    /// Kernel cycles are bounded below by the max wavefront and above by
    /// the serial sum.
    #[test]
    fn kernel_cycles_bounds(loads in proptest::collection::vec(1u64..10_000, 1..300)) {
        let g = GpuSpec::radeon_vii();
        let cycles = g.kernel_cycles(&loads);
        let max = *loads.iter().max().unwrap();
        let sum: u64 = loads.iter().sum();
        prop_assert!(cycles >= max);
        prop_assert!(cycles <= sum);
    }

    /// Divergence never makes a wavefront cheaper than the uniform
    /// execution of its longest path.
    #[test]
    fn diverge_at_least_longest_path(paths in proptest::collection::vec(0u64..500, 1..5)) {
        let spec = GpuSpec::radeon_vii();
        let mut diverged = WavefrontCost::new(&spec);
        diverged.diverge(&paths);
        let mut uniform = WavefrontCost::new(&spec);
        uniform.uniform(*paths.iter().max().unwrap());
        prop_assert!(diverged.cycles() >= uniform.cycles());
    }

    /// AoS traffic is never cheaper than SoA for the same access pattern.
    #[test]
    fn aos_never_cheaper_than_soa(count in 1u64..200, lanes in 1u32..64) {
        let spec = GpuSpec::radeon_vii();
        let mut soa = WavefrontCost::new(&spec);
        soa.mem_accesses(count, lanes, MemLayout::Soa);
        let mut aos = WavefrontCost::new(&spec);
        aos.mem_accesses(count, lanes, MemLayout::Aos);
        prop_assert!(aos.cycles() >= soa.cycles());
        prop_assert!(aos.mem_transactions() >= soa.mem_transactions());
    }

    /// Transfer time is monotone in both calls and bytes.
    #[test]
    fn transfer_monotone(calls in 1u64..1000, bytes in 1u64..(1 << 30)) {
        let g = GpuSpec::radeon_vii();
        let t = g.transfer_time_us(calls, bytes);
        prop_assert!(t > 0.0);
        prop_assert!(g.transfer_time_us(calls + 1, bytes) > t);
        prop_assert!(g.transfer_time_us(calls, bytes * 2) > t);
    }

    /// CPU op time is additive.
    #[test]
    fn cpu_time_additive(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let c = CpuSpec::threadripper();
        let lhs = c.op_time_us(a) + c.op_time_us(b);
        let rhs = c.op_time_us(a + b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.max(1.0));
    }
}
