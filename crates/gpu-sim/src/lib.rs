//! A deterministic SIMT GPU *cost* simulator.
//!
//! The paper runs its parallel ACO scheduling kernel on an AMD Radeon VII
//! and reports wall-clock speedups against a sequential CPU implementation.
//! This crate replaces that hardware with an analytic cost model capturing
//! the first-order mechanisms the paper's Sections V-A/V-B attribute the
//! results to:
//!
//! * **Lockstep wavefront execution** — a wavefront's cost per step is the
//!   maximum over its 64 lanes, and *divergent* control paths serialize
//!   ([`WavefrontCost::diverge`]).
//! * **Memory coalescing** — a wavefront access to consecutive addresses
//!   (SoA layout) is one transaction; a scattered (AoS) access costs one
//!   transaction per active lane ([`WavefrontCost::mem_access`]).
//! * **Launch / copy / allocation overheads** — fixed per-call costs plus
//!   bandwidth-proportional transfer time ([`GpuSpec::transfer_time_us`],
//!   [`GpuSpec::alloc_time_us`]), which dominate small regions and explain
//!   why parallel speedup grows with region size (Table 3).
//! * **CU/SIMD scheduling** — blocks are distributed over compute units and
//!   their SIMD units; the kernel finishes when the slowest SIMD drains
//!   ([`GpuSpec::kernel_cycles`]).
//!
//! The model is *relative*, not cycle-accurate: it is calibrated so the
//! shapes of the paper's tables (who wins, how speedup scales with size,
//! pass-1 vs pass-2 gaps) reproduce, not the absolute microsecond values.
//!
//! Nothing in this crate knows about scheduling or ACO: it prices abstract
//! per-wavefront work and is reusable for any kernel-shaped workload.

pub mod cpu;
pub mod spec;
pub mod wavefront;

pub use cpu::CpuSpec;
pub use spec::{GpuSpec, LaunchProfile};
pub use wavefront::{MemLayout, WavefrontCost};
