//! GPU hardware parameters and launch-level cost aggregation.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated GPU.
///
/// Defaults ([`GpuSpec::radeon_vii`]) model the paper's target: a Radeon VII
/// (Vega 20) with 60 CUs of 4 SIMD units each, 64-lane wavefronts, 1.8 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of compute units.
    pub cus: u32,
    /// SIMD units per CU (each executes one wavefront at a time).
    pub simds_per_cu: u32,
    /// Threads per wavefront.
    pub wavefront_size: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Cycles one SIMT arithmetic/control step costs a wavefront.
    pub alu_op_cycles: u64,
    /// Cycles one memory *transaction* costs a wavefront.
    pub mem_transaction_cycles: u64,
    /// Fixed cost of launching a kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Fixed per-call cost of a host↔device copy, in microseconds.
    pub copy_call_overhead_us: f64,
    /// Host↔device copy bandwidth, GiB/s.
    pub copy_bandwidth_gibps: f64,
    /// Fixed per-call cost of a *device-side* dynamic allocation, in
    /// microseconds. Device allocators are notoriously slow (the paper
    /// cites ScatterAlloc); the optimized implementation avoids them
    /// entirely.
    pub device_alloc_overhead_us: f64,
    /// Fixed per-call cost of a host-side allocation, in microseconds.
    pub host_alloc_overhead_us: f64,
}

impl GpuSpec {
    /// The Radeon VII-like model used by all experiments.
    pub fn radeon_vii() -> GpuSpec {
        GpuSpec {
            cus: 60,
            simds_per_cu: 4,
            wavefront_size: 64,
            clock_ghz: 1.8,
            alu_op_cycles: 4,
            mem_transaction_cycles: 12,
            launch_overhead_us: 12.0,
            copy_call_overhead_us: 3.0,
            copy_bandwidth_gibps: 12.0,
            device_alloc_overhead_us: 15.0,
            host_alloc_overhead_us: 0.15,
        }
    }

    /// Maximum number of wavefronts executing concurrently.
    pub fn concurrent_wavefronts(&self) -> u32 {
        self.cus * self.simds_per_cu
    }

    /// Kernel execution cycles for one launch given each wavefront's total
    /// cycle count.
    ///
    /// Wavefronts (= blocks, as in the paper's 64-thread blocks) are
    /// assigned round-robin to CUs, then to SIMD units within a CU; the
    /// kernel completes when the most loaded SIMD drains.
    pub fn kernel_cycles(&self, wavefront_cycles: &[u64]) -> u64 {
        if wavefront_cycles.is_empty() {
            return 0;
        }
        let slots = self.concurrent_wavefronts() as usize;
        let used = slots.min(wavefront_cycles.len());
        // Strided per-SIMD sums instead of a scratch `vec![0; used]`: this
        // runs once per ACO iteration inside the allocation-free hot loop.
        let mut max_load = 0u64;
        for j in 0..used {
            let mut load = 0u64;
            let mut i = j;
            while i < wavefront_cycles.len() {
                load += wavefront_cycles[i];
                i += used;
            }
            max_load = max_load.max(load);
        }
        max_load
    }

    /// Converts device cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Wall-clock microseconds of one kernel launch executing the given
    /// wavefront loads (launch overhead included).
    pub fn kernel_time_us(&self, wavefront_cycles: &[u64]) -> f64 {
        self.launch_overhead_us + self.cycles_to_us(self.kernel_cycles(wavefront_cycles))
    }

    /// Microseconds to move `bytes` across `calls` host↔device copy calls.
    ///
    /// Batching (fewer calls for the same bytes) is one of the paper's
    /// memory optimizations: thousands of per-variable copies are
    /// consolidated into one large array copy.
    pub fn transfer_time_us(&self, calls: u64, bytes: u64) -> f64 {
        calls as f64 * self.copy_call_overhead_us
            + bytes as f64 / (self.copy_bandwidth_gibps * 1024.0 * 1024.0 * 1024.0) * 1e6
    }

    /// Microseconds for `device_allocs` device-side and `host_allocs`
    /// host-side allocation calls.
    pub fn alloc_time_us(&self, device_allocs: u64, host_allocs: u64) -> f64 {
        device_allocs as f64 * self.device_alloc_overhead_us
            + host_allocs as f64 * self.host_alloc_overhead_us
    }

    /// Combines per-region launch profiles into the profile of one *shared*
    /// (cooperative, multi-region) launch.
    ///
    /// The regions' wavefront groups execute concurrently, so the kernel
    /// pays the launch overhead once and drains when its slowest region
    /// finishes; setup collapses to a single device allocation (plus
    /// `host_allocs` host-side staging allocations) and one batched
    /// transfer of `copy_calls` calls moving every region's recorded byte
    /// volume. This is the cost model behind batching several scheduling
    /// regions into one launch (the paper's Section VII proposal).
    pub fn shared_launch_profile(
        &self,
        profiles: &[&LaunchProfile],
        host_allocs: u64,
        copy_calls: u64,
    ) -> LaunchProfile {
        if profiles.is_empty() {
            return LaunchProfile::default();
        }
        let body = profiles
            .iter()
            .map(|p| (p.kernel_us - self.launch_overhead_us).max(0.0))
            .fold(0.0f64, f64::max);
        let bytes: u64 = profiles.iter().map(|p| p.copy_bytes).sum();
        LaunchProfile {
            alloc_us: self.alloc_time_us(1, host_allocs),
            copy_us: self.transfer_time_us(copy_calls, bytes),
            copy_bytes: bytes,
            kernel_us: self.launch_overhead_us + body,
        }
    }
}

impl Default for GpuSpec {
    fn default() -> GpuSpec {
        GpuSpec::radeon_vii()
    }
}

/// Time breakdown of one GPU-accelerated scheduling invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Allocation time (host + device), microseconds.
    pub alloc_us: f64,
    /// Host↔device transfer time, microseconds.
    pub copy_us: f64,
    /// Bytes moved by the transfers behind `copy_us`. Bookkeeping only (not
    /// part of `total_us`); lets batched launches recompute a shared
    /// transfer from the byte volume instead of patching `copy_us`.
    pub copy_bytes: u64,
    /// Kernel execution time (including launch overhead), microseconds.
    pub kernel_us: f64,
}

impl LaunchProfile {
    /// Total wall-clock microseconds.
    pub fn total_us(&self) -> f64 {
        self.alloc_us + self.copy_us + self.kernel_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radeon_vii_has_240_wavefront_slots() {
        let g = GpuSpec::radeon_vii();
        assert_eq!(g.concurrent_wavefronts(), 240);
    }

    #[test]
    fn kernel_cycles_empty_is_zero() {
        assert_eq!(GpuSpec::radeon_vii().kernel_cycles(&[]), 0);
    }

    #[test]
    fn kernel_cycles_parallel_up_to_slots() {
        let g = GpuSpec::radeon_vii();
        // 240 equal wavefronts fill all slots exactly once.
        let wf = vec![100u64; 240];
        assert_eq!(g.kernel_cycles(&wf), 100);
        // 480 wavefronts: every SIMD runs two.
        let wf = vec![100u64; 480];
        assert_eq!(g.kernel_cycles(&wf), 200);
    }

    #[test]
    fn kernel_cycles_bounded_by_max_wavefront() {
        let g = GpuSpec::radeon_vii();
        let wf = vec![10, 500, 20];
        assert_eq!(g.kernel_cycles(&wf), 500);
    }

    #[test]
    fn fewer_copy_calls_is_cheaper() {
        let g = GpuSpec::radeon_vii();
        let batched = g.transfer_time_us(1, 1 << 20);
        let scattered = g.transfer_time_us(1000, 1 << 20);
        assert!(batched < scattered / 10.0);
    }

    #[test]
    fn device_allocation_dwarfs_host_allocation() {
        let g = GpuSpec::radeon_vii();
        assert!(g.alloc_time_us(10, 0) > 50.0 * g.alloc_time_us(0, 10));
    }

    #[test]
    fn launch_profile_totals() {
        let p = LaunchProfile {
            alloc_us: 1.0,
            copy_us: 2.0,
            copy_bytes: 1024,
            kernel_us: 3.0,
        };
        assert!((p.total_us() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shared_launch_profile_of_nothing_is_zero() {
        let g = GpuSpec::radeon_vii();
        assert_eq!(g.shared_launch_profile(&[], 8, 4), LaunchProfile::default());
    }

    #[test]
    fn shared_launch_kernel_drains_with_slowest_region() {
        let g = GpuSpec::radeon_vii();
        let fast = LaunchProfile {
            kernel_us: g.launch_overhead_us + 10.0,
            copy_bytes: 1000,
            ..Default::default()
        };
        let slow = LaunchProfile {
            kernel_us: g.launch_overhead_us + 90.0,
            copy_bytes: 3000,
            ..Default::default()
        };
        let shared = g.shared_launch_profile(&[&fast, &slow], 16, 4);
        // One launch overhead, the slowest body.
        assert!((shared.kernel_us - (g.launch_overhead_us + 90.0)).abs() < 1e-12);
        // One device allocation plus the host staging allocations.
        assert!((shared.alloc_us - g.alloc_time_us(1, 16)).abs() < 1e-12);
        // One batched transfer of the summed byte volume.
        assert_eq!(shared.copy_bytes, 4000);
        assert!((shared.copy_us - g.transfer_time_us(4, 4000)).abs() < 1e-12);
    }

    #[test]
    fn shared_launch_beats_separate_launches() {
        let g = GpuSpec::radeon_vii();
        // Two overhead-dominated regions (small kernels, scattered copies).
        let mk = |body: f64, bytes: u64| LaunchProfile {
            alloc_us: g.alloc_time_us(1, 8),
            copy_us: g.transfer_time_us(4, bytes),
            copy_bytes: bytes,
            kernel_us: g.launch_overhead_us + body,
        };
        let (a, b) = (mk(5.0, 2000), mk(7.0, 2500));
        let shared = g.shared_launch_profile(&[&a, &b], 16, 4);
        assert!(shared.total_us() < a.total_us() + b.total_us());
    }

    #[test]
    fn cycles_to_us_uses_clock() {
        let g = GpuSpec::radeon_vii();
        assert!((g.cycles_to_us(1800) - 1.0).abs() < 1e-9);
    }
}
