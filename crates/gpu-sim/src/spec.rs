//! GPU hardware parameters and launch-level cost aggregation.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated GPU.
///
/// Defaults ([`GpuSpec::radeon_vii`]) model the paper's target: a Radeon VII
/// (Vega 20) with 60 CUs of 4 SIMD units each, 64-lane wavefronts, 1.8 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of compute units.
    pub cus: u32,
    /// SIMD units per CU (each executes one wavefront at a time).
    pub simds_per_cu: u32,
    /// Threads per wavefront.
    pub wavefront_size: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Cycles one SIMT arithmetic/control step costs a wavefront.
    pub alu_op_cycles: u64,
    /// Cycles one memory *transaction* costs a wavefront.
    pub mem_transaction_cycles: u64,
    /// Fixed cost of launching a kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Fixed per-call cost of a host↔device copy, in microseconds.
    pub copy_call_overhead_us: f64,
    /// Host↔device copy bandwidth, GiB/s.
    pub copy_bandwidth_gibps: f64,
    /// Fixed per-call cost of a *device-side* dynamic allocation, in
    /// microseconds. Device allocators are notoriously slow (the paper
    /// cites ScatterAlloc); the optimized implementation avoids them
    /// entirely.
    pub device_alloc_overhead_us: f64,
    /// Fixed per-call cost of a host-side allocation, in microseconds.
    pub host_alloc_overhead_us: f64,
}

impl GpuSpec {
    /// The Radeon VII-like model used by all experiments.
    pub fn radeon_vii() -> GpuSpec {
        GpuSpec {
            cus: 60,
            simds_per_cu: 4,
            wavefront_size: 64,
            clock_ghz: 1.8,
            alu_op_cycles: 4,
            mem_transaction_cycles: 12,
            launch_overhead_us: 12.0,
            copy_call_overhead_us: 3.0,
            copy_bandwidth_gibps: 12.0,
            device_alloc_overhead_us: 15.0,
            host_alloc_overhead_us: 0.15,
        }
    }

    /// Maximum number of wavefronts executing concurrently.
    pub fn concurrent_wavefronts(&self) -> u32 {
        self.cus * self.simds_per_cu
    }

    /// Kernel execution cycles for one launch given each wavefront's total
    /// cycle count.
    ///
    /// Wavefronts (= blocks, as in the paper's 64-thread blocks) are
    /// assigned round-robin to CUs, then to SIMD units within a CU; the
    /// kernel completes when the most loaded SIMD drains.
    pub fn kernel_cycles(&self, wavefront_cycles: &[u64]) -> u64 {
        if wavefront_cycles.is_empty() {
            return 0;
        }
        let slots = self.concurrent_wavefronts() as usize;
        let used = slots.min(wavefront_cycles.len());
        let mut simd_load = vec![0u64; used];
        for (i, &c) in wavefront_cycles.iter().enumerate() {
            simd_load[i % used] += c;
        }
        simd_load.into_iter().max().unwrap_or(0)
    }

    /// Converts device cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Wall-clock microseconds of one kernel launch executing the given
    /// wavefront loads (launch overhead included).
    pub fn kernel_time_us(&self, wavefront_cycles: &[u64]) -> f64 {
        self.launch_overhead_us + self.cycles_to_us(self.kernel_cycles(wavefront_cycles))
    }

    /// Microseconds to move `bytes` across `calls` host↔device copy calls.
    ///
    /// Batching (fewer calls for the same bytes) is one of the paper's
    /// memory optimizations: thousands of per-variable copies are
    /// consolidated into one large array copy.
    pub fn transfer_time_us(&self, calls: u64, bytes: u64) -> f64 {
        calls as f64 * self.copy_call_overhead_us
            + bytes as f64 / (self.copy_bandwidth_gibps * 1024.0 * 1024.0 * 1024.0) * 1e6
    }

    /// Microseconds for `device_allocs` device-side and `host_allocs`
    /// host-side allocation calls.
    pub fn alloc_time_us(&self, device_allocs: u64, host_allocs: u64) -> f64 {
        device_allocs as f64 * self.device_alloc_overhead_us
            + host_allocs as f64 * self.host_alloc_overhead_us
    }
}

impl Default for GpuSpec {
    fn default() -> GpuSpec {
        GpuSpec::radeon_vii()
    }
}

/// Time breakdown of one GPU-accelerated scheduling invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Allocation time (host + device), microseconds.
    pub alloc_us: f64,
    /// Host↔device transfer time, microseconds.
    pub copy_us: f64,
    /// Kernel execution time (including launch overhead), microseconds.
    pub kernel_us: f64,
}

impl LaunchProfile {
    /// Total wall-clock microseconds.
    pub fn total_us(&self) -> f64 {
        self.alloc_us + self.copy_us + self.kernel_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radeon_vii_has_240_wavefront_slots() {
        let g = GpuSpec::radeon_vii();
        assert_eq!(g.concurrent_wavefronts(), 240);
    }

    #[test]
    fn kernel_cycles_empty_is_zero() {
        assert_eq!(GpuSpec::radeon_vii().kernel_cycles(&[]), 0);
    }

    #[test]
    fn kernel_cycles_parallel_up_to_slots() {
        let g = GpuSpec::radeon_vii();
        // 240 equal wavefronts fill all slots exactly once.
        let wf = vec![100u64; 240];
        assert_eq!(g.kernel_cycles(&wf), 100);
        // 480 wavefronts: every SIMD runs two.
        let wf = vec![100u64; 480];
        assert_eq!(g.kernel_cycles(&wf), 200);
    }

    #[test]
    fn kernel_cycles_bounded_by_max_wavefront() {
        let g = GpuSpec::radeon_vii();
        let wf = vec![10, 500, 20];
        assert_eq!(g.kernel_cycles(&wf), 500);
    }

    #[test]
    fn fewer_copy_calls_is_cheaper() {
        let g = GpuSpec::radeon_vii();
        let batched = g.transfer_time_us(1, 1 << 20);
        let scattered = g.transfer_time_us(1000, 1 << 20);
        assert!(batched < scattered / 10.0);
    }

    #[test]
    fn device_allocation_dwarfs_host_allocation() {
        let g = GpuSpec::radeon_vii();
        assert!(g.alloc_time_us(10, 0) > 50.0 * g.alloc_time_us(0, 10));
    }

    #[test]
    fn launch_profile_totals() {
        let p = LaunchProfile {
            alloc_us: 1.0,
            copy_us: 2.0,
            kernel_us: 3.0,
        };
        assert!((p.total_us() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_us_uses_clock() {
        let g = GpuSpec::radeon_vii();
        assert!((g.cycles_to_us(1800) - 1.0).abs() < 1e-9);
    }
}
