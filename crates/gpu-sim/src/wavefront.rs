//! Per-wavefront cost accounting.

use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};

/// Memory layout of a per-thread data structure on the device.
///
/// The paper's central memory optimization (Section V-A) replaces
/// per-object members with *arrays of members indexed by thread*
/// (structure-of-arrays), so that lanes of a wavefront touch consecutive
/// addresses and their accesses coalesce into one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLayout {
    /// Structure-of-arrays: one array per member, element per thread.
    /// Wavefront accesses coalesce.
    Soa,
    /// Array-of-structures: per-thread objects. Wavefront accesses scatter.
    Aos,
}

/// Accumulates the execution cost of one wavefront in device cycles.
///
/// The ACO kernel drives one `WavefrontCost` per wavefront per iteration,
/// calling the step methods as it simulates the lockstep execution of its
/// 64 ants.
///
/// # Example
///
/// ```
/// use gpu_sim::{GpuSpec, MemLayout, WavefrontCost};
///
/// let spec = GpuSpec::radeon_vii();
/// let mut wf = WavefrontCost::new(&spec);
/// wf.uniform(10);                       // 10 lockstep SIMT steps
/// wf.mem_access(64, MemLayout::Soa);    // coalesced: 1 transaction
/// wf.mem_access(64, MemLayout::Aos);    // scattered: 64 transactions
/// assert!(wf.cycles() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WavefrontCost {
    wavefront_size: u32,
    alu_op_cycles: u64,
    mem_transaction_cycles: u64,
    cycles: u64,
    divergent_steps: u64,
    mem_transactions: u64,
}

impl WavefrontCost {
    /// A zero-cost wavefront on the given device.
    pub fn new(spec: &GpuSpec) -> WavefrontCost {
        WavefrontCost {
            wavefront_size: spec.wavefront_size,
            alu_op_cycles: spec.alu_op_cycles,
            mem_transaction_cycles: spec.mem_transaction_cycles,
            cycles: 0,
            divergent_steps: 0,
            mem_transactions: 0,
        }
    }

    /// `steps` lockstep SIMT steps executed by all active lanes together.
    pub fn uniform(&mut self, steps: u64) {
        self.cycles += steps * self.alu_op_cycles;
    }

    /// A lockstep loop whose trip count differs per lane: the wavefront
    /// pays for the *maximum* trip count (idle lanes still occupy the SIMD).
    pub fn lockstep_max(&mut self, per_lane_steps: impl IntoIterator<Item = u64>) {
        let max = per_lane_steps.into_iter().max().unwrap_or(0);
        self.cycles += max * self.alu_op_cycles;
    }

    /// A divergent region: lanes partition into control paths with the
    /// given per-path step counts; paths execute serially (the SIMT
    /// re-convergence stack), so the wavefront pays the *sum*.
    ///
    /// A single-path call is equivalent to [`Self::uniform`].
    pub fn diverge(&mut self, path_steps: &[u64]) {
        let total: u64 = path_steps.iter().sum();
        self.cycles += total * self.alu_op_cycles;
        if path_steps.iter().filter(|&&s| s > 0).count() > 1 {
            self.divergent_steps += total;
        }
    }

    /// One memory access by `active_lanes` lanes under the given layout:
    /// coalesced (SoA) accesses fuse into `ceil(active/wavefront)`
    /// transactions; scattered (AoS) accesses pay one transaction per lane.
    pub fn mem_access(&mut self, active_lanes: u32, layout: MemLayout) {
        if active_lanes == 0 {
            return;
        }
        let tx = match layout {
            MemLayout::Soa => active_lanes.div_ceil(self.wavefront_size) as u64,
            MemLayout::Aos => active_lanes as u64,
        };
        self.mem_transactions += tx;
        self.cycles += tx * self.mem_transaction_cycles;
    }

    /// `count` repeated accesses with identical shape (convenience for
    /// bulk array traversals).
    pub fn mem_accesses(&mut self, count: u64, active_lanes: u32, layout: MemLayout) {
        if active_lanes == 0 || count == 0 {
            return;
        }
        let per = match layout {
            MemLayout::Soa => active_lanes.div_ceil(self.wavefront_size) as u64,
            MemLayout::Aos => active_lanes as u64,
        };
        self.mem_transactions += per * count;
        self.cycles += per * count * self.mem_transaction_cycles;
    }

    /// Total accumulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Steps spent in divergent (serialized) paths — an observability hook
    /// used by the divergence-ablation experiments.
    pub fn divergent_steps(&self) -> u64 {
        self.divergent_steps
    }

    /// Total memory transactions issued.
    pub fn mem_transactions(&self) -> u64 {
        self.mem_transactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf() -> WavefrontCost {
        WavefrontCost::new(&GpuSpec::radeon_vii())
    }

    #[test]
    fn uniform_accumulates_alu_cycles() {
        let mut w = wf();
        w.uniform(10);
        assert_eq!(w.cycles(), 10 * 4);
        assert_eq!(w.divergent_steps(), 0);
    }

    #[test]
    fn lockstep_max_charges_slowest_lane() {
        let mut w = wf();
        w.lockstep_max([1u64, 5, 3]);
        assert_eq!(w.cycles(), 5 * 4);
        let mut e = wf();
        e.lockstep_max(std::iter::empty::<u64>());
        assert_eq!(e.cycles(), 0);
    }

    #[test]
    fn diverge_serializes_paths() {
        let mut w = wf();
        w.diverge(&[7, 3]);
        assert_eq!(w.cycles(), 10 * 4);
        assert_eq!(w.divergent_steps(), 10);
        // One-sided branch is not divergence.
        let mut u = wf();
        u.diverge(&[7, 0]);
        assert_eq!(u.cycles(), 7 * 4);
        assert_eq!(u.divergent_steps(), 0);
    }

    #[test]
    fn coalesced_access_is_one_transaction() {
        let mut w = wf();
        w.mem_access(64, MemLayout::Soa);
        assert_eq!(w.mem_transactions(), 1);
        w.mem_access(64, MemLayout::Aos);
        assert_eq!(w.mem_transactions(), 1 + 64);
    }

    #[test]
    fn partial_wavefront_coalesces_to_one() {
        let mut w = wf();
        w.mem_access(13, MemLayout::Soa);
        assert_eq!(w.mem_transactions(), 1);
        w.mem_access(13, MemLayout::Aos);
        assert_eq!(w.mem_transactions(), 14);
        w.mem_access(0, MemLayout::Aos);
        assert_eq!(w.mem_transactions(), 14);
    }

    #[test]
    fn bulk_accesses_match_repeated_single() {
        let mut a = wf();
        a.mem_accesses(10, 64, MemLayout::Aos);
        let mut b = wf();
        for _ in 0..10 {
            b.mem_access(64, MemLayout::Aos);
        }
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.mem_transactions(), b.mem_transactions());
    }

    #[test]
    fn soa_is_much_cheaper_than_aos() {
        let mut soa = wf();
        let mut aos = wf();
        soa.mem_accesses(100, 64, MemLayout::Soa);
        aos.mem_accesses(100, 64, MemLayout::Aos);
        assert_eq!(aos.cycles(), 64 * soa.cycles());
    }
}
