//! The sequential-CPU cost model.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated host CPU.
///
/// Defaults model the paper's AMD Ryzen Threadripper 1950X at 3.4 GHz. The
/// sequential ACO scheduler charges [`CpuSpec::op_time_us`] per abstract
/// operation (a ready-list comparison, a pheromone read, a successor-list
/// step, ...) — the same unit of work the GPU model prices per wavefront
/// step, so the two sides are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Average cycles per abstract operation (covers instruction overhead,
    /// branch misses and cache effects of pointer-heavy scheduler code).
    pub cycles_per_op: f64,
}

impl CpuSpec {
    /// The Threadripper-1950X-like model used by all experiments.
    pub fn threadripper() -> CpuSpec {
        CpuSpec {
            clock_ghz: 3.4,
            cycles_per_op: 3.0,
        }
    }

    /// Microseconds to execute `ops` abstract operations sequentially.
    pub fn op_time_us(&self, ops: u64) -> f64 {
        ops as f64 * self.cycles_per_op / (self.clock_ghz * 1e3)
    }
}

impl Default for CpuSpec {
    fn default() -> CpuSpec {
        CpuSpec::threadripper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_time_scales_linearly() {
        let c = CpuSpec::threadripper();
        let one = c.op_time_us(1_000);
        let ten = c.op_time_us(10_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn threadripper_rate_is_about_a_gigaop() {
        let c = CpuSpec::threadripper();
        // 3.4 GHz / 3 cycles/op ≈ 1.13 Gop/s → ~0.88 us per 1000 ops.
        let us = c.op_time_us(1_000);
        assert!(us > 0.5 && us < 1.5, "got {us}");
    }
}
