//! Exact branch-and-bound scheduling for small regions.
//!
//! The paper's line of work begins with a two-pass *Branch-and-Bound*
//! scheduler (Shobaki, Kerbow, Mekhanoshin, CGO 2020 — reference \[10\]),
//! which ACO later replaced because B&B parallelizes poorly. This crate
//! provides that exact counterpart for regions small enough to enumerate:
//!
//! * [`min_rp_order`] — the pass-1 optimum: a topological order minimizing
//!   the APRP pressure cost;
//! * [`min_length_schedule`] — the pass-2 optimum: the shortest
//!   latency-feasible schedule whose order keeps the pressure cost within
//!   a target (stall insertion is implicit: for a fixed order the
//!   earliest-fit schedule is length-optimal, so searching orders suffices);
//! * [`two_pass_optimum`] — both passes chained, exactly as the ACO
//!   schedulers chain them.
//!
//! Besides being a meaningful baseline, the exact scheduler is the
//! workspace's **optimality oracle**: tests verify that ACO matches the
//! exact pass-1 cost and pass-2 length on small regions (and never beats
//! them, which would indicate a constraint bug).
//!
//! # Example
//!
//! ```
//! use exact_sched::{two_pass_optimum, BnbConfig};
//! use machine_model::OccupancyModel;
//! use sched_ir::figure1;
//!
//! let ddg = figure1::ddg();
//! let occ = OccupancyModel::unit();
//! let opt = two_pass_optimum(&ddg, &occ, &BnbConfig::default());
//! assert!(opt.proven_optimal);
//! assert_eq!(opt.prp[0], 3);   // the paper's optimal PRP
//! assert_eq!(opt.length, 10);  // and its optimal constrained length
//! ```

use list_sched::{Heuristic, ListScheduler};
use machine_model::OccupancyModel;
use reg_pressure::{PressureTracker, RegUniverse};
use sched_ir::{Cycle, Ddg, InstrId, Schedule, REG_CLASS_COUNT};
use std::collections::HashMap;

/// The largest region the bitmask-based search supports.
pub const MAX_EXACT_SIZE: usize = 64;

/// Branch-and-bound search limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbConfig {
    /// Maximum search nodes explored per pass before giving up; the result
    /// is then the best found so far with `proven_optimal = false`.
    pub node_limit: u64,
}

impl Default for BnbConfig {
    /// A limit that proves optimality on typical regions of ≤ 20
    /// instructions in well under a second.
    fn default() -> BnbConfig {
        BnbConfig {
            node_limit: 2_000_000,
        }
    }
}

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Best instruction order found.
    pub order: Vec<InstrId>,
    /// Earliest-fit schedule of that order.
    pub schedule: Schedule,
    /// Peak register pressure of the order.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Scalar APRP cost of the order.
    pub rp_cost: u64,
    /// Schedule length in cycles.
    pub length: Cycle,
    /// Whether the search ran to completion (true = provably optimal for
    /// its objective).
    pub proven_optimal: bool,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Shared DFS state over topological orders.
struct Search<'a> {
    ddg: &'a Ddg,
    occ: &'a OccupancyModel,
    pressure: PressureTracker<'a>,
    pending: Vec<u32>,
    ready: Vec<InstrId>,
    order: Vec<InstrId>,
    /// Issue cycle per instruction (pass-2 objective).
    cycles: Vec<Cycle>,
    mask: u64,
    nodes: u64,
    node_limit: u64,
    exhausted: bool,
}

impl<'a> Search<'a> {
    fn new(
        ddg: &'a Ddg,
        occ: &'a OccupancyModel,
        universe: &'a RegUniverse,
        cfg: &BnbConfig,
    ) -> Search<'a> {
        Search {
            ddg,
            occ,
            pressure: PressureTracker::new(universe),
            pending: ddg.ids().map(|i| ddg.preds(i).len() as u32).collect(),
            ready: ddg.roots().collect(),
            order: Vec::with_capacity(ddg.len()),
            cycles: vec![0; ddg.len()],
            mask: 0,
            nodes: 0,
            node_limit: cfg.node_limit,
            exhausted: false,
        }
    }

    /// Issues `id`; returns undo info `(ready_pos, newly_ready_count)`.
    fn push(&mut self, ready_pos: usize) -> (InstrId, usize) {
        let id = self.ready.swap_remove(ready_pos);
        self.pressure.issue(id);
        self.order.push(id);
        self.mask |= 1 << id.index();
        let mut added = 0;
        for &(s, _) in self.ddg.succs(id) {
            self.pending[s.index()] -= 1;
            if self.pending[s.index()] == 0 {
                self.ready.push(s);
                added += 1;
            }
        }
        (id, added)
    }

    /// Undoes a [`Self::push`]. `pressure` cannot be rolled back in O(1),
    /// so callers snapshot/restore it by clone (regions are small).
    fn pop(&mut self, id: InstrId, ready_pos: usize, added: usize) {
        for _ in 0..added {
            self.ready.pop().expect("added successors present");
        }
        // Every successor's pending count was decremented by push, not
        // just the ones that became ready.
        for &(succ, _) in self.ddg.succs(id) {
            self.pending[succ.index()] += 1;
        }
        self.mask &= !(1 << id.index());
        self.order.pop();
        // Restore swap_remove: put `id` back at its old position.
        self.ready.push(id);
        let last = self.ready.len() - 1;
        self.ready.swap(ready_pos, last);
    }
}

/// Exact pass 1: the topological order minimizing the APRP cost.
///
/// Uses depth-first branch-and-bound with two prunings: the running peak's
/// cost already matching the incumbent (pressure peaks only grow along a
/// branch), and state dominance (the same scheduled-set reached before
/// with an equal-or-lower peak cost).
///
/// # Panics
///
/// Panics if the region exceeds [`MAX_EXACT_SIZE`] instructions.
pub fn min_rp_order(ddg: &Ddg, occ: &OccupancyModel, cfg: &BnbConfig) -> ExactResult {
    assert!(
        ddg.len() <= MAX_EXACT_SIZE,
        "exact search is limited to 64 instructions"
    );
    let universe = RegUniverse::new(ddg);
    // Incumbent: a good heuristic order.
    let init_order = ListScheduler::new(Heuristic::LastUseCount).order(ddg, occ);
    let mut best_cost = occ.rp_cost(reg_pressure::prp_of_order(ddg, &init_order));
    let mut best_order = init_order;
    let lb = occ.rp_cost_lb(ddg.rp_lower_bound());

    let mut s = Search::new(ddg, occ, &universe, cfg);
    let mut seen: HashMap<u64, u64> = HashMap::new();

    fn dfs(
        s: &mut Search<'_>,
        seen: &mut HashMap<u64, u64>,
        best_cost: &mut u64,
        best_order: &mut Vec<InstrId>,
        lb: u64,
    ) {
        if *best_cost <= lb || s.exhausted {
            return;
        }
        s.nodes += 1;
        if s.nodes > s.node_limit {
            s.exhausted = true;
            return;
        }
        let cur_cost = s.occ.rp_cost(s.pressure.peak());
        if cur_cost >= *best_cost {
            return; // peaks only grow: no completion can beat the incumbent
        }
        if s.order.len() == s.ddg.len() {
            *best_cost = cur_cost;
            *best_order = s.order.clone();
            return;
        }
        match seen.get(&s.mask) {
            Some(&c) if c <= cur_cost => return, // dominated
            _ => {
                seen.insert(s.mask, cur_cost);
            }
        }
        for pos in 0..s.ready.len() {
            let snapshot = s.pressure.clone();
            let (id, added) = s.push(pos);
            dfs(s, seen, best_cost, best_order, lb);
            s.pop(id, pos, added);
            s.pressure = snapshot;
        }
    }
    dfs(&mut s, &mut seen, &mut best_cost, &mut best_order, lb);

    let prp = reg_pressure::prp_of_order(ddg, &best_order);
    let schedule = Schedule::from_order(ddg, &best_order);
    ExactResult {
        length: schedule.length(),
        rp_cost: occ.rp_cost(prp),
        prp,
        schedule,
        proven_optimal: !s.exhausted,
        nodes: s.nodes,
        order: best_order,
    }
}

/// Exact pass 2: the shortest latency-feasible schedule among topological
/// orders whose APRP cost stays within `target_cost`.
///
/// For a fixed order the earliest-fit schedule is length-optimal, and any
/// stall pattern realizes some order, so searching orders is exhaustive.
/// Returns `None` when no order meets the target (or the search was cut
/// off before finding one).
///
/// # Panics
///
/// Panics if the region exceeds [`MAX_EXACT_SIZE`] instructions.
pub fn min_length_schedule(
    ddg: &Ddg,
    occ: &OccupancyModel,
    target_cost: u64,
    cfg: &BnbConfig,
) -> Option<ExactResult> {
    assert!(
        ddg.len() <= MAX_EXACT_SIZE,
        "exact search is limited to 64 instructions"
    );
    let universe = RegUniverse::new(ddg);
    let len_lb = ddg.schedule_length_lb();
    // Anytime incumbents: any heuristic order already within the target
    // bounds the search (and is returned if the node limit cuts it off).
    let mut best: Option<(Cycle, Vec<InstrId>)> = None;
    for h in Heuristic::ALL {
        let order = ListScheduler::new(h).order(ddg, occ);
        if occ.rp_cost(reg_pressure::prp_of_order(ddg, &order)) <= target_cost {
            let len = Schedule::from_order(ddg, &order).length();
            if best.as_ref().is_none_or(|(l, _)| len < *l) {
                best = Some((len, order));
            }
        }
    }
    let mut s = Search::new(ddg, occ, &universe, cfg);

    /// `next_free` is the next issue slot of the earliest-fit schedule
    /// being built incrementally.
    fn dfs(
        s: &mut Search<'_>,
        next_free: Cycle,
        target_cost: u64,
        len_lb: Cycle,
        best: &mut Option<(Cycle, Vec<InstrId>)>,
    ) {
        if s.exhausted || best.as_ref().is_some_and(|(l, _)| *l <= len_lb) {
            return;
        }
        s.nodes += 1;
        if s.nodes > s.node_limit {
            s.exhausted = true;
            return;
        }
        // Length bound: the schedule needs at least one cycle per
        // remaining instruction.
        let remaining = (s.ddg.len() - s.order.len()) as Cycle;
        if let Some((l, _)) = best {
            if next_free + remaining >= *l {
                return;
            }
        }
        if s.occ.rp_cost(s.pressure.peak()) > target_cost {
            return; // constraint violated; peaks only grow
        }
        if s.order.len() == s.ddg.len() {
            *best = Some((next_free, s.order.clone()));
            return;
        }
        for pos in 0..s.ready.len() {
            let snapshot = s.pressure.clone();
            let (id, added) = s.push(pos);
            // Earliest-fit issue cycle for `id`.
            let earliest = s
                .ddg
                .preds(id)
                .iter()
                .map(|&(p, lat)| s.cycles[p.index()] + lat as Cycle)
                .max()
                .unwrap_or(0)
                .max(next_free);
            let old_cycle = s.cycles[id.index()];
            s.cycles[id.index()] = earliest;
            dfs(s, earliest + 1, target_cost, len_lb, best);
            s.cycles[id.index()] = old_cycle;
            s.pop(id, pos, added);
            s.pressure = snapshot;
        }
    }
    dfs(&mut s, 0, target_cost, len_lb, &mut best);

    let (_, order) = best?;
    let prp = reg_pressure::prp_of_order(ddg, &order);
    let schedule = Schedule::from_order(ddg, &order);
    Some(ExactResult {
        length: schedule.length(),
        rp_cost: occ.rp_cost(prp),
        prp,
        schedule,
        proven_optimal: !s.exhausted,
        nodes: s.nodes,
        order,
    })
}

/// The exact two-pass optimum: minimum APRP cost, then minimum length at
/// that cost — the objective the ACO schedulers approximate.
pub fn two_pass_optimum(ddg: &Ddg, occ: &OccupancyModel, cfg: &BnbConfig) -> ExactResult {
    let pass1 = min_rp_order(ddg, occ, cfg);
    match min_length_schedule(ddg, occ, pass1.rp_cost, cfg) {
        Some(mut pass2) => {
            pass2.proven_optimal &= pass1.proven_optimal;
            pass2.nodes += pass1.nodes;
            pass2
        }
        None => pass1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::figure1;

    #[test]
    fn figure1_two_pass_optimum_matches_paper() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::unit();
        let r = two_pass_optimum(&ddg, &occ, &BnbConfig::default());
        assert!(r.proven_optimal);
        assert_eq!(r.prp[0], 3);
        assert_eq!(r.length, 10);
        r.schedule.validate(&ddg).unwrap();
    }

    #[test]
    fn figure1_unconstrained_min_length_is_8() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::unit();
        let r = min_length_schedule(&ddg, &occ, u64::MAX, &BnbConfig::default())
            .expect("unconstrained search always succeeds");
        assert!(r.proven_optimal);
        assert_eq!(
            r.length, 8,
            "the brute-force optimum of the Figure-1 region"
        );
    }

    #[test]
    fn chain_is_trivially_optimal() {
        let ddg = workloads::patterns::transform_chain(1, 4, 0);
        let occ = OccupancyModel::vega_like();
        let r = two_pass_optimum(&ddg, &occ, &BnbConfig::default());
        assert!(r.proven_optimal);
        r.schedule.validate(&ddg).unwrap();
    }

    #[test]
    fn infeasible_target_returns_none() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::unit();
        assert!(min_length_schedule(&ddg, &occ, 0, &BnbConfig::default()).is_none());
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let ddg = workloads::patterns::sized(24, 5);
        let occ = OccupancyModel::vega_like();
        let r = min_rp_order(&ddg, &occ, &BnbConfig { node_limit: 10 });
        // Must still return a valid (heuristic-quality) result.
        assert_eq!(r.order.len(), ddg.len());
        r.schedule.validate(&ddg).unwrap();
        assert!(!r.proven_optimal || r.nodes <= 10);
    }

    #[test]
    fn exact_never_worse_than_heuristics() {
        let occ = OccupancyModel::vega_like();
        for seed in 0..10u64 {
            let ddg = workloads::patterns::sized(14, 300 + seed);
            let exact = min_rp_order(&ddg, &occ, &BnbConfig::default());
            assert!(
                exact.proven_optimal,
                "seed {seed}: tiny region must be provable"
            );
            for h in Heuristic::ALL {
                let order = ListScheduler::new(h).order(&ddg, &occ);
                let cost = occ.rp_cost(reg_pressure::prp_of_order(&ddg, &order));
                assert!(
                    exact.rp_cost <= cost,
                    "seed {seed} {h:?}: exact {} beaten by heuristic {}",
                    exact.rp_cost,
                    cost
                );
            }
        }
    }

    #[test]
    fn aco_matches_exact_on_small_regions() {
        use aco::{AcoConfig, SequentialScheduler};
        let occ = OccupancyModel::unit();
        let mut matched = 0;
        for seed in 0..8u64 {
            let ddg = workloads::patterns::sized(12, 40 + seed);
            let exact = two_pass_optimum(&ddg, &occ, &BnbConfig::default());
            if !exact.proven_optimal {
                continue;
            }
            let aco = SequentialScheduler::new(AcoConfig::small(seed)).schedule(&ddg, &occ);
            // Soundness: ACO can never beat a proven optimum.
            assert!(
                occ.rp_cost(aco.prp) >= exact.rp_cost,
                "seed {seed}: ACO cost {} below proven optimal {}",
                occ.rp_cost(aco.prp),
                exact.rp_cost
            );
            if occ.rp_cost(aco.prp) == exact.rp_cost {
                assert!(
                    aco.length >= exact.length,
                    "seed {seed}: ACO length {} below optimal {} at optimal cost",
                    aco.length,
                    exact.length
                );
                matched += (aco.length == exact.length) as u32;
            }
        }
        assert!(
            matched >= 4,
            "ACO should hit the exact optimum on most tiny regions"
        );
    }
}
