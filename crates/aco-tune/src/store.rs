//! The shared tuning store: per-class bandit state, warm-start orders, and
//! `schedtune v1` persistence.

use crate::arms::{arm_table_fingerprint, ARMS, FIXED_ARM};
use crate::class::{RegionClass, CLASS_COUNT};
use aco::WarmStart;
use parking_lot::Mutex;
use sched_ir::InstrId;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Trials every arm must accumulate in a class before the bandit commits
/// to the class winner.
const MIN_TRIALS: u64 = 2;

/// Maximum number of warm-start orders kept (first-recorded wins; the
/// duplicate-heavy suites the store targets revisit few distinct
/// templates, so a bound this generous is a safety valve, not a policy).
const WARM_CAP: usize = 4096;

/// Accumulated outcomes of one arm within one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArmStats {
    /// Observations recorded.
    pub trials: u64,
    /// Sum of final schedule lengths across trials.
    pub total_length: u64,
    /// Sum of ACO iterations (both passes) across trials.
    pub total_iterations: u64,
}

/// Lifetime counters of a [`TuneStore`] (reported by the daemon's `stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Arm choices served.
    pub choices: u64,
    /// Choices that explored an under-trialed arm.
    pub explored: u64,
    /// Choices that committed to a class winner.
    pub committed: u64,
    /// Warm-hint lookups answered with an order.
    pub warm_hits: u64,
    /// Warm-hint lookups with no stored order.
    pub warm_misses: u64,
    /// Outcome observations recorded.
    pub observations: u64,
    /// Warm-start orders recorded.
    pub warm_records: u64,
}

/// Interior state, guarded by one mutex (reads are short snapshots; the
/// pipeline's determinism contract keeps mutation off the parallel paths —
/// see the crate docs).
#[derive(Debug, Clone)]
struct TuneState {
    classes: Vec<[ArmStats; ARMS.len()]>,
    warm: HashMap<u64, Vec<InstrId>>,
}

impl TuneState {
    fn empty() -> TuneState {
        TuneState {
            classes: vec![[ArmStats::default(); ARMS.len()]; CLASS_COUNT],
            warm: HashMap::new(),
        }
    }
}

/// The shared tuning store (see crate docs for the determinism contract).
#[derive(Debug)]
pub struct TuneStore {
    state: Mutex<TuneState>,
    choices: AtomicU64,
    explored: AtomicU64,
    committed: AtomicU64,
    warm_hits: AtomicU64,
    warm_misses: AtomicU64,
    observations: AtomicU64,
    warm_records: AtomicU64,
}

impl Default for TuneStore {
    fn default() -> TuneStore {
        TuneStore::new()
    }
}

impl Clone for TuneStore {
    /// Clones the learned state; the lifetime counters restart at zero
    /// (they describe one store's service life, not the knowledge).
    fn clone(&self) -> TuneStore {
        TuneStore::with_state(self.state.lock().clone())
    }
}

impl TuneStore {
    /// An empty store: every class chooses by exploration first.
    pub fn new() -> TuneStore {
        TuneStore::with_state(TuneState::empty())
    }

    fn with_state(state: TuneState) -> TuneStore {
        TuneStore {
            state: Mutex::new(state),
            choices: AtomicU64::new(0),
            explored: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            warm_misses: AtomicU64::new(0),
            observations: AtomicU64::new(0),
            warm_records: AtomicU64::new(0),
        }
    }

    /// Folds another store's lifetime counters into this one's. Suite
    /// compilation's job phase reads a frozen *clone* of the caller's
    /// store (so the streaming merge's observations cannot perturb
    /// in-flight choices); the clone's service counters — choices served,
    /// warm hits/misses — would die with it otherwise, so the pipeline
    /// absorbs them back after the run. Counters only; never knowledge.
    pub fn absorb_counters(&self, s: &TunerStats) {
        self.choices.fetch_add(s.choices, Ordering::Relaxed);
        self.explored.fetch_add(s.explored, Ordering::Relaxed);
        self.committed.fetch_add(s.committed, Ordering::Relaxed);
        self.warm_hits.fetch_add(s.warm_hits, Ordering::Relaxed);
        self.warm_misses.fetch_add(s.warm_misses, Ordering::Relaxed);
        self.observations
            .fetch_add(s.observations, Ordering::Relaxed);
        self.warm_records
            .fetch_add(s.warm_records, Ordering::Relaxed);
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> TunerStats {
        TunerStats {
            choices: self.choices.load(Ordering::Relaxed),
            explored: self.explored.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            observations: self.observations.load(Ordering::Relaxed),
            warm_records: self.warm_records.load(Ordering::Relaxed),
        }
    }

    /// Chooses an arm for one region of `class`.
    ///
    /// Deterministic explore-then-commit: while any arm in the class has
    /// fewer than `MIN_TRIALS` observations, the under-trialed arm at
    /// position `salt % count` is explored — callers pass a stable region
    /// position as `salt`, so a single run spreads exploration across a
    /// class's instances instead of re-trialing one arm. Once every arm is
    /// trialed, the choice commits to the class winner: lowest average
    /// schedule length, ties broken by average iterations, then by arm
    /// index (so the identity arm wins exact ties). Pure in (state, class,
    /// salt).
    pub fn choose(&self, class: RegionClass, salt: u64) -> usize {
        let st = self.state.lock();
        let stats = &st.classes[class.index()];
        self.choices.fetch_add(1, Ordering::Relaxed);
        let under: Vec<usize> = (0..ARMS.len())
            .filter(|&i| stats[i].trials < MIN_TRIALS)
            .collect();
        if !under.is_empty() {
            self.explored.fetch_add(1, Ordering::Relaxed);
            return under[(salt % under.len() as u64) as usize];
        }
        self.committed.fetch_add(1, Ordering::Relaxed);
        let mut best = FIXED_ARM;
        for i in 0..ARMS.len() {
            if i != best && beats(&stats[i], &stats[best]) {
                best = i;
            }
        }
        best
    }

    /// Records one observed outcome: region `class` scheduled under arm
    /// `arm` reached `length` in `iterations` total ACO iterations.
    pub fn observe(&self, class: RegionClass, arm: usize, length: u64, iterations: u64) {
        assert!(arm < ARMS.len(), "arm index out of table");
        let mut st = self.state.lock();
        let s = &mut st.classes[class.index()][arm];
        s.trials += 1;
        s.total_length += length;
        s.total_iterations += iterations;
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a warm-start order for a region's structure fingerprint.
    pub fn warm_hint(&self, structure_fp: u64) -> Option<WarmStart> {
        let st = self.state.lock();
        match st.warm.get(&structure_fp) {
            Some(order) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                WarmStart::new(order.clone())
            }
            None => {
                self.warm_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a converged order for a structure fingerprint. First record
    /// wins (later instances of the same template re-derive the same
    /// class); non-permutation orders and records past the store cap are
    /// dropped silently — a warm order is advice, losing one costs
    /// nothing.
    pub fn record_warm(&self, structure_fp: u64, order: &[InstrId]) {
        if WarmStart::new(order.to_vec()).is_none() {
            return;
        }
        let mut st = self.state.lock();
        if st.warm.len() >= WARM_CAP && !st.warm.contains_key(&structure_fp) {
            return;
        }
        if st.warm.contains_key(&structure_fp) {
            return;
        }
        st.warm.insert(structure_fp, order.to_vec());
        self.warm_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of warm-start orders stored.
    pub fn warm_len(&self) -> usize {
        self.state.lock().warm.len()
    }

    // ---------------------------------------------------- persistence --

    /// Writes the learned state in the `schedtune v1` line format
    /// (deterministic order), terminated by the `eof` trailer
    /// [`TuneStore::load_from`] requires, and flushes explicitly.
    pub fn save_to_writer(&self, out: &mut impl Write) -> io::Result<()> {
        let st = self.state.lock();
        writeln!(out, "schedtune v1")?;
        writeln!(out, "arms {:#018x}", arm_table_fingerprint())?;
        let mut class_lines = 0u64;
        for (idx, stats) in st.classes.iter().enumerate() {
            if stats.iter().all(|s| s.trials == 0) {
                continue;
            }
            write!(out, "class {idx}")?;
            for s in stats {
                write!(
                    out,
                    " {} {} {}",
                    s.trials, s.total_length, s.total_iterations
                )?;
            }
            writeln!(out)?;
            class_lines += 1;
        }
        let mut warm: Vec<(&u64, &Vec<InstrId>)> = st.warm.iter().collect();
        warm.sort_by_key(|&(fp, _)| *fp);
        let warm_count = warm.len();
        for (fp, order) in warm {
            write!(out, "warm {fp:#018x} {} :", order.len())?;
            for id in order {
                write!(out, " {}", id.0)?;
            }
            writeln!(out)?;
        }
        writeln!(out, "eof {class_lines} {warm_count}")?;
        out.flush()
    }

    /// Persists the store at `path` atomically (temp file + fsync +
    /// rename), mirroring the schedule cache's durability contract.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "schedtune: save path has no file name",
                )
            })?
            .to_string_lossy();
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_file_name(format!(
            ".{file_name}.tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
            self.save_to_writer(&mut out)?;
            let file = out.into_inner().map_err(io::IntoInnerError::into_error)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads a store persisted by [`TuneStore::save_to`]. Malformed,
    /// truncated, or tampered files — wrong arm table, out-of-range class,
    /// inconsistent statistics, non-permutation warm orders, a missing or
    /// lying `eof` trailer — are rejected with `InvalidData`; a rejected
    /// file can cost learned state, never a wrong schedule (hints are
    /// re-validated against every concrete region anyway).
    pub fn load_from(path: &Path) -> io::Result<TuneStore> {
        Self::load_from_reader(io::BufReader::new(std::fs::File::open(path)?))
    }

    /// [`TuneStore::load_from`] over any buffered reader.
    pub fn load_from_reader(reader: impl BufRead) -> io::Result<TuneStore> {
        let mut lines = reader.lines();
        let mut next = |what: &str| -> io::Result<String> {
            loop {
                match lines.next().transpose()? {
                    None => return Err(bad_data(&format!("truncated file: missing {what}"))),
                    Some(l) if l.trim().is_empty() => continue,
                    Some(l) => return Ok(l),
                }
            }
        };
        if next("header")?.trim() != "schedtune v1" {
            return Err(bad_data("not a schedtune v1 file"));
        }
        let arms_line = next("arm-table fingerprint")?;
        let fp_text = arms_line
            .trim()
            .strip_prefix("arms ")
            .ok_or_else(|| bad_data("expected `arms <fingerprint>`"))?;
        let fp = u64::from_str_radix(fp_text.trim().trim_start_matches("0x"), 16)
            .map_err(|_| bad_data("bad arm-table fingerprint"))?;
        if fp != arm_table_fingerprint() {
            return Err(bad_data(
                "tuning state was recorded under a different arm table",
            ));
        }
        let mut state = TuneState::empty();
        let mut class_lines = 0u64;
        let mut seen_class = [false; CLASS_COUNT];
        let (claimed_classes, claimed_warm): (u64, u64) = loop {
            let line = next("`eof` trailer")?;
            let trimmed = line.trim();
            if let Some(counts) = trimmed.strip_prefix("eof ") {
                let parts: Vec<&str> = counts.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(bad_data("`eof` trailer expects two counts"));
                }
                let c = parts[0].parse().map_err(|_| bad_data("bad `eof` count"))?;
                let w = parts[1].parse().map_err(|_| bad_data("bad `eof` count"))?;
                break (c, w);
            } else if let Some(body) = trimmed.strip_prefix("class ") {
                let toks: Vec<&str> = body.split_whitespace().collect();
                if toks.len() != 1 + 3 * ARMS.len() {
                    return Err(bad_data("class line has wrong field count"));
                }
                let idx: usize = toks[0].parse().map_err(|_| bad_data("bad class index"))?;
                if idx >= CLASS_COUNT {
                    return Err(bad_data("class index out of range"));
                }
                if seen_class[idx] {
                    return Err(bad_data("duplicate class line"));
                }
                seen_class[idx] = true;
                for (a, chunk) in toks[1..].chunks(3).enumerate() {
                    let int = |s: &str| -> io::Result<u64> {
                        s.parse().map_err(|_| bad_data("bad class statistic"))
                    };
                    let s = ArmStats {
                        trials: int(chunk[0])?,
                        total_length: int(chunk[1])?,
                        total_iterations: int(chunk[2])?,
                    };
                    if s.trials == 0 && (s.total_length != 0 || s.total_iterations != 0) {
                        return Err(bad_data("class statistics are inconsistent"));
                    }
                    state.classes[idx][a] = s;
                }
                class_lines += 1;
            } else if let Some(body) = trimmed.strip_prefix("warm ") {
                let (head, ids) = body
                    .split_once(':')
                    .ok_or_else(|| bad_data("warm line missing id list"))?;
                let head: Vec<&str> = head.split_whitespace().collect();
                if head.len() != 2 {
                    return Err(bad_data("warm line expects fingerprint and length"));
                }
                let wfp = u64::from_str_radix(head[0].trim_start_matches("0x"), 16)
                    .map_err(|_| bad_data("bad warm fingerprint"))?;
                let n: usize = head[1].parse().map_err(|_| bad_data("bad warm length"))?;
                let order: Vec<InstrId> = ids
                    .split_whitespace()
                    .map(|t| t.parse::<u32>().map(InstrId))
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad_data("bad warm instruction id"))?;
                if order.len() != n {
                    return Err(bad_data("warm order length mismatch"));
                }
                if WarmStart::new(order.clone()).is_none() {
                    return Err(bad_data("warm order is not a permutation"));
                }
                if state.warm.insert(wfp, order).is_some() {
                    return Err(bad_data("duplicate warm fingerprint"));
                }
            } else {
                return Err(bad_data(&format!("unrecognized line `{trimmed}`")));
            }
        };
        if claimed_classes != class_lines || claimed_warm != state.warm.len() as u64 {
            return Err(bad_data("`eof` trailer disagrees with file contents"));
        }
        for line in lines {
            if !line?.trim().is_empty() {
                return Err(bad_data("content after `eof` trailer"));
            }
        }
        Ok(TuneStore::with_state(state))
    }
}

/// Whether `a` beats `b`: strictly lower average length, or equal average
/// length and strictly lower average iterations. Averages compare by
/// cross-multiplication, so the bandit never touches floating point.
fn beats(a: &ArmStats, b: &ArmStats) -> bool {
    let (al, bl) = (
        a.total_length as u128 * b.trials as u128,
        b.total_length as u128 * a.trials as u128,
    );
    if al != bl {
        return al < bl;
    }
    (a.total_iterations as u128 * b.trials as u128)
        < (b.total_iterations as u128 * a.trials as u128)
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("schedtune: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class0() -> RegionClass {
        RegionClass::from_index(0).unwrap()
    }

    /// Fills every arm of `class` to MIN_TRIALS with the given per-arm
    /// (length, iterations) averages.
    fn fill(store: &TuneStore, class: RegionClass, outcomes: &[(u64, u64)]) {
        assert_eq!(outcomes.len(), ARMS.len());
        for (arm, &(len, iters)) in outcomes.iter().enumerate() {
            for _ in 0..MIN_TRIALS {
                store.observe(class, arm, len, iters);
            }
        }
    }

    #[test]
    fn explores_every_arm_before_committing() {
        let store = TuneStore::new();
        let c = class0();
        // Fresh class: every arm is under-trialed; the salt walks them.
        let picks: std::collections::HashSet<usize> = (0..ARMS.len() as u64)
            .map(|salt| store.choose(c, salt))
            .collect();
        assert_eq!(picks.len(), ARMS.len(), "salt must spread exploration");
        fill(&store, c, &[(10, 5); 6]);
        let s = store.stats();
        assert_eq!(s.explored, ARMS.len() as u64);
        assert_eq!(s.committed, 0);
        store.choose(c, 0);
        assert_eq!(store.stats().committed, 1);
    }

    #[test]
    fn commits_to_lowest_length_then_iterations_then_index() {
        let store = TuneStore::new();
        let c = class0();
        fill(
            &store,
            c,
            &[(10, 8), (9, 9), (9, 4), (12, 1), (9, 4), (10, 2)],
        );
        // Arms 2 and 4 tie on (9, 4); the lower index wins.
        assert_eq!(store.choose(c, 17), 2);
        // Choice ignores the salt once committed.
        assert_eq!(store.choose(c, 0), 2);
    }

    #[test]
    fn exact_ties_keep_the_fixed_arm() {
        let store = TuneStore::new();
        let c = class0();
        fill(&store, c, &[(7, 3); 6]);
        assert_eq!(store.choose(c, 5), FIXED_ARM);
    }

    #[test]
    fn averages_compare_across_different_trial_counts() {
        let store = TuneStore::new();
        let c = class0();
        fill(&store, c, &[(10, 5); 6]);
        // Arm 3 accumulates extra trials at a *better* average: 3 more
        // observations of length 4 drag its average below 10.
        for _ in 0..3 {
            store.observe(c, 3, 4, 5);
        }
        assert_eq!(store.choose(c, 0), 3);
    }

    #[test]
    fn warm_orders_roundtrip_and_validate() {
        let store = TuneStore::new();
        let order: Vec<InstrId> = [2u32, 0, 1].into_iter().map(InstrId).collect();
        assert!(store.warm_hint(0xBEEF).is_none());
        store.record_warm(0xBEEF, &order);
        let hint = store.warm_hint(0xBEEF).expect("recorded order");
        assert_eq!(hint.order(), &order[..]);
        // Non-permutations are dropped at record time.
        store.record_warm(0xDEAD, &[InstrId(0), InstrId(0)]);
        assert!(store.warm_hint(0xDEAD).is_none());
        // First record wins.
        let other: Vec<InstrId> = [0u32, 1, 2].into_iter().map(InstrId).collect();
        store.record_warm(0xBEEF, &other);
        assert_eq!(store.warm_hint(0xBEEF).unwrap().order(), &order[..]);
        let s = store.stats();
        assert_eq!((s.warm_hits, s.warm_misses, s.warm_records), (2, 2, 1));
    }

    #[test]
    fn save_load_roundtrip_preserves_choices_and_hints() {
        let store = TuneStore::new();
        let c = class0();
        let c2 = RegionClass::from_index(13).unwrap();
        fill(
            &store,
            c,
            &[(10, 8), (9, 9), (9, 4), (12, 1), (9, 4), (10, 2)],
        );
        store.observe(c2, 1, 42, 7);
        let order: Vec<InstrId> = [1u32, 0, 2].into_iter().map(InstrId).collect();
        store.record_warm(0x1234, &order);

        let mut bytes = Vec::new();
        store.save_to_writer(&mut bytes).unwrap();
        let loaded = TuneStore::load_from_reader(io::BufReader::new(&bytes[..])).unwrap();

        // Same committed choice, same hint, byte-identical re-save.
        assert_eq!(loaded.choose(c, 9), store.choose(c, 9));
        assert_eq!(loaded.warm_hint(0x1234).unwrap().order(), &order[..]);
        let mut again = Vec::new();
        loaded.save_to_writer(&mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn atomic_save_roundtrips_through_a_file() {
        let store = TuneStore::new();
        store.observe(class0(), 2, 11, 3);
        let dir = std::env::temp_dir().join(format!("schedtune_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.txt");
        store.save_to(&path).unwrap();
        let loaded = TuneStore::load_from(&path).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        store.save_to_writer(&mut a).unwrap();
        loaded.save_to_writer(&mut b).unwrap();
        assert_eq!(a, b);
        // No temp droppings.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["tune.txt".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_never_half_loads() {
        let store = TuneStore::new();
        fill(&store, class0(), &[(10, 5); 6]);
        store.record_warm(0x77, &[InstrId(1), InstrId(0)]);
        let mut bytes = Vec::new();
        store.save_to_writer(&mut bytes).unwrap();
        assert!(TuneStore::load_from_reader(io::BufReader::new(&bytes[..])).is_ok());
        let cuts: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .filter(|&i| i < bytes.len())
            .chain((1..bytes.len()).step_by(13))
            .chain([0])
            .collect();
        for cut in cuts {
            let err = match TuneStore::load_from_reader(io::BufReader::new(&bytes[..cut])) {
                Err(e) => e,
                Ok(_) => panic!("truncation at byte {cut} must not load"),
            };
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn tampered_files_are_rejected() {
        let reject = |text: &str, why: &str| {
            let err =
                TuneStore::load_from_reader(io::BufReader::new(text.as_bytes())).expect_err(why);
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{why}");
        };
        reject("not a tune file\n", "wrong header");
        // Wrong arm table.
        reject(
            "schedtune v1\narms 0x0000000000000001\neof 0 0\n",
            "foreign arm table",
        );
        let fp = arm_table_fingerprint();
        let head = format!("schedtune v1\narms {fp:#018x}\n");
        // Out-of-range class.
        reject(
            &format!("{head}class 99 1 1 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\neof 1 0\n"),
            "class out of range",
        );
        // Inconsistent statistics: zero trials with nonzero totals.
        reject(
            &format!("{head}class 0 0 5 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\neof 1 0\n"),
            "inconsistent stats",
        );
        // Non-permutation warm order.
        reject(
            &format!("{head}warm 0x2 2 : 0 0\neof 0 1\n"),
            "warm non-permutation",
        );
        // Lying trailer.
        reject(&format!("{head}eof 3 0\n"), "trailer count lie");
        // Content after the trailer.
        reject(
            &format!("{head}eof 0 0\nwarm 0x1 1 : 0\n"),
            "post-eof content",
        );
        // The empty store itself round-trips.
        let ok =
            TuneStore::load_from_reader(io::BufReader::new(format!("{head}eof 0 0\n").as_bytes()))
                .unwrap();
        assert_eq!(ok.warm_len(), 0);
    }

    #[test]
    fn clone_carries_state_but_not_counters() {
        let store = TuneStore::new();
        fill(
            &store,
            class0(),
            &[(10, 8), (3, 1), (9, 4), (12, 1), (9, 4), (10, 2)],
        );
        store.record_warm(0x9, &[InstrId(0)]);
        let copy = store.clone();
        assert_eq!(copy.choose(class0(), 0), store.choose(class0(), 0));
        assert_eq!(copy.warm_hint(0x9).unwrap().order(), &[InstrId(0)]);
        assert_eq!(copy.stats().observations, 0);
    }
}
