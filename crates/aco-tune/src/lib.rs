//! Self-tuning search: a deterministic per-class bandit over `AcoConfig`
//! arms, plus a pheromone warm-start store keyed by region *structure*.
//!
//! The paper's ACO configuration (colony size, evaporation, heuristic
//! weight, iteration budget) is one fixed point in a space where the best
//! setting varies by region shape: a wide low-pressure region converges
//! with a leaner colony than a deep high-pressure one. This crate learns a
//! per-shape choice at runtime without ever sacrificing determinism:
//!
//! * [`RegionClass`] buckets a region by size band × edge-density band ×
//!   pressure band (27 classes), from the same cheap DDG features the
//!   fingerprints already walk.
//! * [`Arm`] is one candidate configuration delta; the fixed paper config
//!   is always arm 0, so the tuner can never do worse than "no tuning" on
//!   a class it has explored.
//! * [`TuneStore`] is the shared state: per-class arm statistics driving a
//!   deterministic explore-then-commit bandit ([`TuneStore::choose`]), and
//!   a warm-start order store keyed by
//!   [`sched_ir::ddg_structure_fingerprint`] — a *near-miss* complement to
//!   the exact-content schedule cache: same template class, different
//!   instance, seed the trail instead of recomputing from scratch
//!   ([`aco::WarmStart`]).
//!
//! Determinism contract: [`TuneStore::choose`] and
//! [`TuneStore::warm_hint`] are pure functions of the store state and
//! their arguments. The pipeline freezes the state while a suite's region
//! jobs run in parallel and applies [`TuneStore::observe`] /
//! [`TuneStore::record_warm`] only during its single-threaded canonical
//! merge, so results are byte-identical at any host-thread count.
//!
//! The store persists as a `schedtune v1` text section
//! ([`TuneStore::save_to`]) with the same durability contract as the
//! schedule cache: atomic rename on save, an `eof` trailer against
//! truncation, and load-time validation that rejects tampered entries with
//! `InvalidData` instead of adopting them.

pub mod arms;
pub mod class;
pub mod store;

pub use arms::{arm_table_fingerprint, Arm, ARMS, FIXED_ARM};
pub use class::{RegionClass, CLASS_COUNT};
pub use store::{ArmStats, TuneStore, TunerStats};
