//! Region classification: the bandit's context.
//!
//! Classes must be cheap (they are computed per region job), stable (a
//! region's class never depends on scheduling results), and coarse enough
//! that duplicate-heavy suites revisit them — three 3-way bands over
//! features the DDG already exposes.

use sched_ir::Ddg;

/// Bands per feature axis.
const BANDS: u8 = 3;

/// Total number of region classes.
pub const CLASS_COUNT: usize = (BANDS as usize).pow(3);

/// A region's tuning class: size band × edge-density band × pressure band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionClass {
    /// Instruction-count band: 0 = small (&lt;50), 1 = medium (&lt;150),
    /// 2 = large. The cuts mirror the paper's Table-3 size bands.
    pub size: u8,
    /// Average out-degree band (edges per instruction, ×10): 0 = sparse
    /// (&lt;1.0), 1 = moderate (&lt;2.5), 2 = dense.
    pub density: u8,
    /// VGPR pressure-lower-bound band: 0 = low (&lt;8), 1 = mid (&lt;24),
    /// 2 = high.
    pub pressure: u8,
}

impl RegionClass {
    /// Classifies a region.
    pub fn of(ddg: &Ddg) -> RegionClass {
        let n = ddg.len().max(1);
        let size = match n {
            0..=49 => 0,
            50..=149 => 1,
            _ => 2,
        };
        let deg_x10 = ddg.edge_count() * 10 / n;
        let density = match deg_x10 {
            0..=9 => 0,
            10..=24 => 1,
            _ => 2,
        };
        let vgpr_lb = ddg.rp_lower_bound()[0];
        let pressure = match vgpr_lb {
            0..=7 => 0,
            8..=23 => 1,
            _ => 2,
        };
        RegionClass {
            size,
            density,
            pressure,
        }
    }

    /// Dense index in `0..CLASS_COUNT`.
    pub fn index(&self) -> usize {
        (self.size as usize * BANDS as usize + self.density as usize) * BANDS as usize
            + self.pressure as usize
    }

    /// Inverse of [`RegionClass::index`]; `None` out of range.
    pub fn from_index(i: usize) -> Option<RegionClass> {
        if i >= CLASS_COUNT {
            return None;
        }
        let b = BANDS as usize;
        Some(RegionClass {
            size: (i / (b * b)) as u8,
            density: (i / b % b) as u8,
            pressure: (i % b) as u8,
        })
    }

    /// Compact diagnostic label, e.g. `s1-d0-p2`.
    pub fn label(&self) -> String {
        format!("s{}-d{}-p{}", self.size, self.density, self.pressure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips_all_classes() {
        for i in 0..CLASS_COUNT {
            let c = RegionClass::from_index(i).unwrap();
            assert_eq!(c.index(), i);
        }
        assert!(RegionClass::from_index(CLASS_COUNT).is_none());
    }

    #[test]
    fn classification_is_stable_and_in_bounds() {
        for seed in 0..8u64 {
            let ddg = workloads::patterns::sized(30 + 40 * (seed as usize % 5), seed);
            let a = RegionClass::of(&ddg);
            let b = RegionClass::of(&ddg);
            assert_eq!(a, b);
            assert!(a.index() < CLASS_COUNT);
            assert!(a.size < 3 && a.density < 3 && a.pressure < 3);
        }
    }

    #[test]
    fn size_bands_split_where_documented() {
        let small = workloads::patterns::sized(30, 1);
        let medium = workloads::patterns::sized(100, 1);
        let large = workloads::patterns::sized(200, 1);
        assert_eq!(RegionClass::of(&small).size, 0);
        assert_eq!(RegionClass::of(&medium).size, 1);
        assert_eq!(RegionClass::of(&large).size, 2);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<String> = (0..CLASS_COUNT)
            .map(|i| RegionClass::from_index(i).unwrap().label())
            .collect();
        assert_eq!(labels.len(), CLASS_COUNT);
    }
}
