//! The bandit's arms: bounded deltas on [`AcoConfig`].
//!
//! Every arm leaves the config's *identity* knobs (seed, machine tuning,
//! gates, caps) untouched and moves only search-effort knobs, so a tuned
//! compilation stays a pure function of `(DDG, tuned config, machine
//! model)` and keys into the schedule cache exactly like a hand-picked
//! config would. Arm 0 is always the unmodified configuration: the bandit
//! can never be worse than "no tuning" once a class is explored.

use aco::AcoConfig;
use sched_ir::Fnv64;

/// One candidate configuration delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arm {
    /// Stable name (persisted indirectly via the arm-table fingerprint).
    pub name: &'static str,
    /// Colony size as a percentage of the configured one (ants and
    /// blocks), `100` = unchanged.
    pub ant_pct: u32,
    /// Evaporation override (`AcoConfig::decay`).
    pub decay: Option<f64>,
    /// Heuristic-weight override (`AcoConfig::beta`).
    pub beta: Option<f64>,
    /// Per-pass iteration-cap override
    /// (`AcoConfig::termination.max_iterations`, only ever lowered).
    pub max_iterations: Option<u32>,
}

/// Index of the identity arm in [`ARMS`].
pub const FIXED_ARM: usize = 0;

/// The arm table. Order is part of the persisted-state contract — see
/// [`arm_table_fingerprint`].
pub const ARMS: [Arm; 6] = [
    Arm {
        name: "fixed",
        ant_pct: 100,
        decay: None,
        beta: None,
        max_iterations: None,
    },
    Arm {
        name: "lean-colony",
        ant_pct: 50,
        decay: None,
        beta: None,
        max_iterations: None,
    },
    Arm {
        name: "heavy-evaporation",
        ant_pct: 100,
        decay: Some(0.6),
        beta: None,
        max_iterations: None,
    },
    Arm {
        name: "sticky-trails",
        ant_pct: 100,
        decay: Some(0.9),
        beta: None,
        max_iterations: None,
    },
    Arm {
        name: "greedy-eta",
        ant_pct: 100,
        decay: None,
        beta: Some(3.0),
        max_iterations: None,
    },
    Arm {
        name: "short-leash",
        ant_pct: 100,
        decay: None,
        beta: None,
        max_iterations: Some(16),
    },
];

impl Arm {
    /// Applies this arm's deltas to a base configuration.
    pub fn apply(&self, mut cfg: AcoConfig) -> AcoConfig {
        if self.ant_pct != 100 {
            cfg.sequential_ants = (cfg.sequential_ants * self.ant_pct / 100).max(1);
            cfg.blocks = (cfg.blocks * self.ant_pct / 100).max(1);
        }
        if let Some(d) = self.decay {
            cfg.decay = d;
        }
        if let Some(b) = self.beta {
            cfg.beta = b;
        }
        if let Some(m) = self.max_iterations {
            cfg.termination.max_iterations = cfg.termination.max_iterations.min(m);
        }
        cfg
    }
}

/// Canonical fingerprint of the arm table. Persisted tuning statistics are
/// only meaningful against the arm table that produced them, so the
/// `schedtune` format stores this value and [`crate::TuneStore::load_from`]
/// rejects state recorded under a different table.
pub fn arm_table_fingerprint() -> u64 {
    let mut h = Fnv64::new();
    h.word(ARMS.len() as u64);
    for arm in &ARMS {
        h.word(arm.name.len() as u64);
        for b in arm.name.bytes() {
            h.word(b as u64);
        }
        h.word(arm.ant_pct as u64);
        h.word(arm.decay.map_or(u64::MAX, f64::to_bits));
        h.word(arm.beta.map_or(u64::MAX, f64::to_bits));
        h.word(arm.max_iterations.map_or(u64::MAX, |m| m as u64));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_arm_is_identity() {
        let cfg = AcoConfig::paper(7);
        let tuned = ARMS[FIXED_ARM].apply(cfg);
        assert_eq!(cfg, tuned);
    }

    #[test]
    fn arms_only_move_search_effort_knobs() {
        let cfg = AcoConfig::paper(3);
        for arm in &ARMS {
            let tuned = arm.apply(cfg);
            assert_eq!(tuned.seed, cfg.seed, "{}: seed moved", arm.name);
            assert_eq!(tuned.q0, cfg.q0, "{}: q0 moved", arm.name);
            assert_eq!(tuned.heuristic, cfg.heuristic);
            assert_eq!(tuned.tuning, cfg.tuning, "{}: GPU tuning moved", arm.name);
            assert_eq!(tuned.pass2_gate_cycles, cfg.pass2_gate_cycles);
            assert_eq!(tuned.occupancy_cap, cfg.occupancy_cap);
            assert!(tuned.sequential_ants >= 1);
            assert!(tuned.blocks >= 1);
            assert!(tuned.termination.max_iterations <= cfg.termination.max_iterations);
        }
    }

    #[test]
    fn lean_colony_halves_and_short_leash_caps() {
        let cfg = AcoConfig::paper(0);
        let lean = ARMS.iter().find(|a| a.name == "lean-colony").unwrap();
        let tuned = lean.apply(cfg);
        assert_eq!(tuned.sequential_ants, cfg.sequential_ants / 2);
        assert_eq!(tuned.blocks, cfg.blocks / 2);
        let leash = ARMS.iter().find(|a| a.name == "short-leash").unwrap();
        assert_eq!(leash.apply(cfg).termination.max_iterations, 16);
    }

    #[test]
    fn arm_names_are_unique_and_fingerprint_is_stable() {
        let names: std::collections::HashSet<&str> = ARMS.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), ARMS.len());
        assert_eq!(arm_table_fingerprint(), arm_table_fingerprint());
        assert_ne!(arm_table_fingerprint(), 0);
    }
}
