//! Exact static dataflow analysis over scheduling regions.
//!
//! Where `sched-verify` certifies scheduler *outputs* (C-codes over a
//! finished schedule), this crate analyzes *inputs and claims*: the
//! dependence graph a scheduler is about to consume, the metrics it
//! reports back, and the configuration fingerprint the schedule cache
//! keys on. Every pass is **exact** — backed by a recomputed ground
//! truth, never a heuristic — and reports clippy-style diagnostics with
//! stable S-codes, deny/warn/pedantic severities, text-IR source spans,
//! machine-readable JSON, and baseline suppression.
//!
//! The layers, bottom up:
//!
//! * [`graph`] — [`graph::RegionGraph`], a raw node/edge view built from a
//!   validated [`sched_ir::Ddg`] *or* a pre-validation
//!   [`sched_ir::textir::RawRegion`], so even cyclic input is analyzable;
//! * [`framework`] — the generic machinery: Kahn topological order with
//!   minimal witness cycles, bitmatrix reachability closure, levels,
//!   immediate dominators, exact multi-edge longest paths, and the
//!   schedule-length and register-pressure lower bounds;
//! * [`passes`] — the S-code passes (S001 exact transitive reduction,
//!   S002 cycles, S003 orphans, S004 machine-model latency, S005/S006
//!   infeasible PRP/length claims, S007 config-fingerprint drift);
//! * [`diag`] — findings, severities, renderers, and baselines;
//! * [`json_check`] — an independent JSON well-formedness checker for the
//!   hand-rolled renderer (the vendored `serde` stub cannot serialize).
//!
//! # Example
//!
//! ```
//! use sched_analyze::{analyze_graph, RegionGraph};
//!
//! // A latency-2 edge implied by a two-hop path of effective latency 2.
//! let raw = sched_ir::textir::parse_raw(
//!     "instr a\ninstr b\ninstr c\nedge 0 1 1\nedge 1 2 1\nedge 0 2 2",
//! )
//! .unwrap();
//! let findings = analyze_graph(&RegionGraph::from_raw(&raw));
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].code, "S001");
//! ```

pub mod diag;
pub mod framework;
pub mod graph;
pub mod json_check;
pub mod passes;

pub use diag::{codes, render_json, render_text, Anchor, Baseline, Finding, Level, LevelCounts};
pub use graph::{RegionEdge, RegionGraph};
pub use passes::{
    analyze_graph, check_claims, check_config_coverage, op_kind_of_name, redundant_edges,
    ConfigProbe, RedundantEdge, ScheduleClaim,
};
