//! The raw graph view all passes analyze.
//!
//! [`RegionGraph`] is deliberately *not* a [`Ddg`]: a `Ddg` is validated at
//! construction (acyclic, deduplicated edges), which makes it impossible to
//! even represent the defects S002 exists to catch. The analyzer therefore
//! works on a plain edge list with optional source spans, built either from
//! a validated `Ddg` ([`RegionGraph::from_ddg`]) or from a pre-validation
//! [`RawRegion`] straight out of the text-IR parser
//! ([`RegionGraph::from_raw`]), where cycles and self edges are
//! representable.

use sched_ir::textir::{RawRegion, SrcPos};
use sched_ir::{Ddg, Reg};

/// One dependence edge of a [`RegionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionEdge {
    /// Producer node index.
    pub from: u32,
    /// Consumer node index.
    pub to: u32,
    /// Latency in cycles.
    pub latency: u16,
    /// Source position of the `edge` line, when parsed from text IR.
    pub span: Option<SrcPos>,
}

/// A scheduling region as a plain node/edge list (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct RegionGraph {
    names: Vec<String>,
    defs: Vec<Vec<Reg>>,
    uses: Vec<Vec<Reg>>,
    node_spans: Vec<Option<SrcPos>>,
    edges: Vec<RegionEdge>,
    /// Outgoing edge indices per node.
    succs: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    preds: Vec<Vec<usize>>,
}

impl RegionGraph {
    fn with_nodes(n: usize) -> RegionGraph {
        RegionGraph {
            names: Vec::with_capacity(n),
            defs: Vec::with_capacity(n),
            uses: Vec::with_capacity(n),
            node_spans: Vec::with_capacity(n),
            edges: Vec::new(),
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    fn push_edge(&mut self, e: RegionEdge) {
        let idx = self.edges.len();
        self.succs[e.from as usize].push(idx);
        self.preds[e.to as usize].push(idx);
        self.edges.push(e);
    }

    /// The view of a validated [`Ddg`] (no spans; edges in stored order).
    pub fn from_ddg(ddg: &Ddg) -> RegionGraph {
        let mut g = RegionGraph::with_nodes(ddg.len());
        for id in ddg.ids() {
            let i = ddg.instr(id);
            g.names.push(i.name().to_string());
            g.defs.push(i.defs().to_vec());
            g.uses.push(i.uses().to_vec());
            g.node_spans.push(None);
        }
        for id in ddg.ids() {
            for &(succ, lat) in ddg.succs(id) {
                g.push_edge(RegionEdge {
                    from: id.0,
                    to: succ.0,
                    latency: lat,
                    span: None,
                });
            }
        }
        g
    }

    /// The view of a pre-validation [`RawRegion`], spans included. Cycles,
    /// self edges, and duplicate edges survive into the view.
    pub fn from_raw(raw: &RawRegion) -> RegionGraph {
        let mut g = RegionGraph::with_nodes(raw.instrs.len());
        for ri in &raw.instrs {
            g.names.push(ri.name.clone());
            g.defs.push(ri.defs.clone());
            g.uses.push(ri.uses.clone());
            g.node_spans.push(Some(ri.pos));
        }
        for e in &raw.edges {
            g.push_edge(RegionEdge {
                from: e.from,
                to: e.to,
                latency: e.latency,
                span: Some(e.pos),
            });
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the region has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of edges (duplicates counted).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of node `i`.
    pub fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    /// Registers defined by node `i`.
    pub fn defs(&self, i: u32) -> &[Reg] {
        &self.defs[i as usize]
    }

    /// Registers used by node `i`.
    pub fn uses(&self, i: u32) -> &[Reg] {
        &self.uses[i as usize]
    }

    /// Source position of node `i`'s `instr` line, when known.
    pub fn node_span(&self, i: u32) -> Option<SrcPos> {
        self.node_spans[i as usize]
    }

    /// All edges, in input order.
    pub fn edges(&self) -> &[RegionEdge] {
        &self.edges
    }

    /// Outgoing edges of node `i`.
    pub fn succ_edges(&self, i: u32) -> impl Iterator<Item = &RegionEdge> + '_ {
        self.succs[i as usize].iter().map(|&e| &self.edges[e])
    }

    /// Incoming edges of node `i`.
    pub fn pred_edges(&self, i: u32) -> impl Iterator<Item = &RegionEdge> + '_ {
        self.preds[i as usize].iter().map(|&e| &self.edges[e])
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: u32) -> usize {
        self.succs[i as usize].len()
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: u32) -> usize {
        self.preds[i as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::textir;
    use sched_ir::DdgBuilder;

    #[test]
    fn ddg_view_preserves_structure() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [Reg::vgpr(0)], []);
        let c = b.instr("c", [], [Reg::vgpr(0)]);
        b.edge(a, c, 4).unwrap();
        let g = RegionGraph::from_ddg(&b.build().unwrap());
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.name(0), "a");
        assert_eq!(g.defs(0), &[Reg::vgpr(0)]);
        assert_eq!(g.uses(1), &[Reg::vgpr(0)]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 1);
        let e = g.succ_edges(0).next().unwrap();
        assert_eq!((e.from, e.to, e.latency, e.span), (0, 1, 4, None));
    }

    #[test]
    fn raw_view_keeps_cycles_and_spans() {
        let raw = textir::parse_raw("instr a\ninstr b\nedge 0 1 1\nedge 1 0 1").unwrap();
        let g = RegionGraph::from_raw(&raw);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges()[1].span, Some(SrcPos { line: 4, col: 1 }));
        assert_eq!(g.node_span(0), Some(SrcPos { line: 1, col: 1 }));
    }
}
