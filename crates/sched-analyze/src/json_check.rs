//! A minimal JSON well-formedness checker.
//!
//! The workspace vendors a no-op `serde` stub, so the [`crate::diag`]
//! renderer writes JSON by hand — and anything hand-written needs an
//! independent validator. This is a strict RFC 8259 recognizer (no DOM, no
//! numbers-to-float conversion): [`validate`] accepts exactly the
//! well-formed documents, which is all the tests and the CI gate need.

/// Checks that `text` is one well-formed JSON value with nothing trailing.
///
/// # Errors
///
/// Returns a byte offset and message for the first violation.
pub fn validate(text: &str) -> Result<(), (usize, String)> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err((pos, "trailing characters after the document".into()));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, msg: &str) -> (usize, String) {
    (pos, msg.to_string())
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    match b.get(*pos) {
        None => Err(fail(*pos, "expected a value")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(_) => Err(fail(*pos, "unexpected character")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), (usize, String)> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(fail(*pos, "bad literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected a string key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected `:`"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected `,` or `}`")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(fail(*pos, "expected `,` or `]`")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(fail(*pos, "bad \\u escape"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
            }
            0x00..=0x1f => return Err(fail(*pos, "unescaped control character")),
            _ => *pos += 1,
        }
    }
    Err(fail(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let int_len = *pos - digits_start;
    if int_len == 0 {
        return Err(fail(*pos, "expected digits"));
    }
    if int_len > 1 && b[digits_start] == b'0' {
        return Err(fail(digits_start, "leading zero"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            return Err(fail(*pos, "expected fraction digits"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            return Err(fail(*pos, "expected exponent digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-0.5e+3",
            r#"{"a":[1,2,{"b":"x\ny","c":true}],"d":null}"#,
            "  [ 1 , \"two\" ]  ",
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("rejected {doc}: {e:?}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{'a':1}",
            "nul",
            "\"ctrl \u{0}\"",
        ] {
            assert!(validate(doc).is_err(), "accepted {doc:?}");
        }
    }
}
