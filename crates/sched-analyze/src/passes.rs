//! The exact S-code passes.
//!
//! | Code | Level    | Finding |
//! |------|----------|---------|
//! | S001 | pedantic | transitively redundant edge (exact reduction)    |
//! | S002 | deny     | dependence cycle (minimal witness)               |
//! | S003 | warn     | orphan node: no edges, no defs, no uses          |
//! | S004 | deny     | edge latency disagrees with the machine model    |
//! | S005 | deny     | claimed PRP below the exact static lower bound   |
//! | S006 | deny     | claimed length below the critical-path bound     |
//! | S007 | deny     | config field not covered by the cache key        |
//!
//! S001–S004 are *graph* passes over a [`RegionGraph`]
//! ([`analyze_graph`]); S005/S006 check a scheduler's [`ScheduleClaim`]
//! against recomputed lower bounds ([`check_claims`]); S007 is a generic
//! coverage check over any config type ([`check_config_coverage`]).
//!
//! Every pass is exact: a finding is backed by a recomputed ground truth
//! (a witness path, cycle, model latency, or lower bound), never a
//! heuristic, so a deny finding is always actionable.

use crate::diag::{codes, Anchor, Finding, Level};
use crate::framework::{
    closure, eff, length_lower_bound, multi_edge_longest_from, pressure_lower_bound, topo_or_cycle,
    Topo,
};
use crate::graph::RegionGraph;
use machine_model::{op_latency, OpKind};
use sched_ir::REG_CLASS_COUNT;

/// Maps a generated instruction name back to its [`OpKind`].
///
/// The workload generators name instructions `{mnemonic}_{index}`
/// (`v_load_12`), and `link()` always labels out-edges with the producer's
/// `op_latency`. A name matches when it *is* a mnemonic or extends one
/// with `_`; anything else (hand-written names like figure1's `a`..`g`)
/// is out of model and exempt from S004.
pub fn op_kind_of_name(name: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|k| {
        let m = k.mnemonic();
        name.strip_prefix(m)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
    })
}

/// One transitively redundant edge, with the implied-path evidence
/// (exported for the sched-verify lint migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundantEdge {
    /// Producer node index.
    pub from: u32,
    /// Consumer node index.
    pub to: u32,
    /// The redundant edge's latency.
    pub latency: u16,
    /// Effective latency of the longest implying path (>= 2 edges).
    pub implied: u64,
}

/// Exact transitive reduction: every edge implied by a multi-edge path of
/// at least the same effective latency. Requires an acyclic graph
/// (`order` from [`topo_or_cycle`]).
pub fn redundant_edges(g: &RegionGraph, order: &[u32]) -> Vec<RedundantEdge> {
    let mut out = Vec::new();
    for src in 0..g.len() as u32 {
        // A multi-edge path src -> .. -> b needs a second out-edge.
        if g.out_degree(src) < 2 {
            continue;
        }
        let (multi, _) = multi_edge_longest_from(g, order, src);
        for e in g.succ_edges(src) {
            if let Some(m) = multi[e.to as usize] {
                if m >= eff(e.latency) {
                    out.push(RedundantEdge {
                        from: e.from,
                        to: e.to,
                        latency: e.latency,
                        implied: m,
                    });
                }
            }
        }
    }
    out
}

/// Runs the graph passes (S001–S004) over a region.
///
/// On a cyclic region, S002 is reported and the path-based S001 is
/// skipped (no topological order exists); S003/S004 still run.
pub fn analyze_graph(g: &RegionGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    if g.is_empty() {
        return findings;
    }

    // S003: orphan nodes.
    for i in 0..g.len() as u32 {
        if g.in_degree(i) == 0
            && g.out_degree(i) == 0
            && g.defs(i).is_empty()
            && g.uses(i).is_empty()
        {
            findings.push(
                Finding::new(
                    codes::ORPHAN,
                    Level::Warn,
                    Anchor::Node(i),
                    format!(
                        "node {i} (`{}`) has no dependences, defs, or uses: it \
                         constrains nothing and schedules anywhere",
                        g.name(i)
                    ),
                )
                .with_span(g.node_span(i)),
            );
        }
    }

    // S004: edge latencies vs the machine model.
    for e in g.edges() {
        if let Some(kind) = op_kind_of_name(g.name(e.from)) {
            let expected = op_latency(kind);
            if e.latency != expected {
                findings.push(
                    Finding::new(
                        codes::LATENCY_MODEL,
                        Level::Deny,
                        Anchor::Edge {
                            from: e.from,
                            to: e.to,
                        },
                        format!(
                            "edge {} -> {} has latency {} but producer `{}` is a \
                             {:?} with model latency {}",
                            e.from,
                            e.to,
                            e.latency,
                            g.name(e.from),
                            kind,
                            expected
                        ),
                    )
                    .with_span(e.span),
                );
            }
        }
    }

    match topo_or_cycle(g) {
        Topo::Cyclic(witness) => {
            let span = g
                .succ_edges(*witness.last().expect("witness is non-empty"))
                .find(|e| e.to == witness[0])
                .and_then(|e| e.span);
            let msg = if witness.len() == 1 {
                format!("node {} depends on itself (self edge)", witness[0])
            } else {
                format!(
                    "the dependence relation is cyclic: no schedule can order \
                     {} nodes that each transitively wait on the others",
                    witness.len()
                )
            };
            findings.push(
                Finding::new(codes::CYCLE, Level::Deny, Anchor::Cycle(witness), msg)
                    .with_span(span),
            );
        }
        Topo::Acyclic(order) => {
            // S001: exact transitive reduction.
            for r in redundant_edges(g, &order) {
                let span = g
                    .succ_edges(r.from)
                    .find(|e| e.to == r.to && e.latency == r.latency)
                    .and_then(|e| e.span);
                findings.push(
                    Finding::new(
                        codes::TRANSITIVE_REDUNDANT,
                        Level::Pedantic,
                        Anchor::Edge {
                            from: r.from,
                            to: r.to,
                        },
                        format!(
                            "edge {} -> {} (latency {}, effective {}) is implied by a \
                             longer path of effective latency {}: removing it cannot \
                             change any schedule",
                            r.from,
                            r.to,
                            r.latency,
                            eff(r.latency),
                            r.implied
                        ),
                    )
                    .with_span(span),
                );
            }
        }
    }
    findings
}

/// What a scheduler claims about a schedule of the region, for S005/S006.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleClaim {
    /// Claimed schedule length in cycles.
    pub length: u64,
    /// Claimed peak register pressure per class.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Which scheduler made the claim (for messages).
    pub source: &'static str,
}

/// Names of the claim anchors, indexed like `ScheduleClaim::prp`.
const PRP_CLAIMS: [&str; REG_CLASS_COUNT] = ["prp_vgpr", "prp_sgpr"];

/// Checks a schedule's claimed metrics against recomputed exact lower
/// bounds (S005 register pressure, S006 length). A claim *below* a lower
/// bound is infeasible: no legal schedule achieves it, so the scheduler
/// (or the metric plumbing) is lying. Cyclic regions return no findings —
/// S002 already denies them and no bounds exist.
pub fn check_claims(g: &RegionGraph, claim: &ScheduleClaim) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Topo::Acyclic(order) = topo_or_cycle(g) else {
        return findings;
    };
    let length_lb = length_lower_bound(g, &order);
    if claim.length < length_lb {
        findings.push(Finding::new(
            codes::LENGTH_INFEASIBLE,
            Level::Deny,
            Anchor::Claim("schedule_length"),
            format!(
                "{} claims schedule length {} but the critical-path lower bound \
                 is {}: the claim is infeasible",
                claim.source, claim.length, length_lb
            ),
        ));
    }
    let reach = closure(g, &order);
    let prp_lb = pressure_lower_bound(g, &reach);
    for c in 0..REG_CLASS_COUNT {
        if claim.prp[c] < prp_lb[c] {
            findings.push(Finding::new(
                codes::PRP_INFEASIBLE,
                Level::Deny,
                Anchor::Claim(PRP_CLAIMS[c]),
                format!(
                    "{} claims peak pressure {} but the static cut bound forces \
                     at least {} simultaneously live registers of that class",
                    claim.source, claim.prp[c], prp_lb[c]
                ),
            ));
        }
    }
    findings
}

/// One mutation probe of a config type for S007: flipping `field` must
/// change the fingerprint.
pub struct ConfigProbe<C> {
    /// Name of the config field the probe perturbs.
    pub field: &'static str,
    /// Sets the field to a value different from any default.
    pub mutate: fn(&mut C),
}

/// S007: checks that a fingerprint function covers every probed config
/// field. For each probe, the config is cloned, mutated, and
/// re-fingerprinted; an unchanged fingerprint means a scheduling-relevant
/// field is missing from the cache key, so stale cached schedules could be
/// served for a different configuration.
pub fn check_config_coverage<C: Clone>(
    base: &C,
    probes: &[ConfigProbe<C>],
    fingerprint: impl Fn(&C) -> u64,
) -> Vec<Finding> {
    let base_fp = fingerprint(base);
    let mut findings = Vec::new();
    for probe in probes {
        let mut mutated = base.clone();
        (probe.mutate)(&mut mutated);
        if fingerprint(&mutated) == base_fp {
            findings.push(Finding::new(
                codes::CONFIG_DRIFT,
                Level::Deny,
                Anchor::ConfigField(probe.field),
                format!(
                    "mutating config field `{}` leaves the cache fingerprint at \
                     {base_fp:#018x}: cached schedules would be reused across \
                     configs that schedule differently",
                    probe.field
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::textir;

    fn graph(text: &str) -> RegionGraph {
        RegionGraph::from_raw(&textir::parse_raw(text).unwrap())
    }

    fn codes_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn op_kind_mapping_requires_separator_or_exact_match() {
        assert_eq!(op_kind_of_name("v_load_12"), Some(OpKind::VMemLoad));
        assert_eq!(op_kind_of_name("v_load"), Some(OpKind::VMemLoad));
        assert_eq!(op_kind_of_name("v_loadx"), None);
        assert_eq!(op_kind_of_name("ds_op_0"), Some(OpKind::Lds));
        assert_eq!(op_kind_of_name("a"), None);
        assert_eq!(op_kind_of_name("mul"), None);
    }

    #[test]
    fn figure1_is_clean() {
        let g = RegionGraph::from_ddg(&sched_ir::figure1::ddg());
        assert!(analyze_graph(&g).is_empty());
    }

    #[test]
    fn s001_fires_only_on_truly_redundant_edges() {
        // Direct edge eff 2 vs path eff 1+1=2: redundant (equal suffices).
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 1 1\nedge 1 2 1\nedge 0 2 2");
        let f = analyze_graph(&g);
        assert_eq!(codes_of(&f), vec![codes::TRANSITIVE_REDUNDANT]);
        assert_eq!(f[0].anchor, Anchor::Edge { from: 0, to: 2 });
        assert_eq!(f[0].level, Level::Pedantic);
        assert_eq!(f[0].span, Some(textir::SrcPos { line: 6, col: 1 }));
        // Direct edge eff 3 beats the path: necessary, clean.
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 1 1\nedge 1 2 1\nedge 0 2 3");
        assert!(analyze_graph(&g).is_empty());
    }

    #[test]
    fn s001_credits_zero_latency_edges_at_effective_one() {
        // The old heuristic summed raw latencies (0 + 0 = 0 < 2) and missed
        // this; single-issue semantics make the path cost 2 cycles.
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 1 0\nedge 1 2 0\nedge 0 2 2");
        assert_eq!(
            codes_of(&analyze_graph(&g)),
            vec![codes::TRANSITIVE_REDUNDANT]
        );
    }

    #[test]
    fn s002_reports_a_minimal_witness_and_suppresses_s001() {
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 1 1\nedge 1 2 1\nedge 2 0 1");
        let f = analyze_graph(&g);
        assert_eq!(codes_of(&f), vec![codes::CYCLE]);
        assert_eq!(f[0].level, Level::Deny);
        match &f[0].anchor {
            Anchor::Cycle(w) => assert_eq!(w.len(), 3),
            other => panic!("expected a cycle anchor, got {other:?}"),
        }
    }

    #[test]
    fn s003_flags_orphans_but_not_constrained_or_reg_carrying_nodes() {
        let g = graph("instr a defs v0\ninstr orphan\ninstr b uses v0\nedge 0 2 1");
        let f = analyze_graph(&g);
        assert_eq!(codes_of(&f), vec![codes::ORPHAN]);
        assert_eq!(f[0].anchor, Anchor::Node(1));
        // A node with only a use is not an orphan: it extends a live range.
        let g = graph("instr a defs v0\ninstr reader uses v0");
        assert!(analyze_graph(&g).is_empty());
    }

    #[test]
    fn s004_checks_model_latency_for_mnemonic_names_only() {
        let g = graph("instr v_load_0 defs v0\ninstr v_alu_1 uses v0\nedge 0 1 63");
        let f = analyze_graph(&g);
        assert_eq!(codes_of(&f), vec![codes::LATENCY_MODEL]);
        assert!(
            f[0].message.contains("model latency 64"),
            "{}",
            f[0].message
        );
        // Correct latency: clean.
        let g = graph("instr v_load_0 defs v0\ninstr v_alu_1 uses v0\nedge 0 1 64");
        assert!(analyze_graph(&g).is_empty());
        // Unknown names are out of model.
        let g = graph("instr mystery defs v0\ninstr other uses v0\nedge 0 1 63");
        assert!(analyze_graph(&g).is_empty());
    }

    #[test]
    fn claims_at_the_bounds_pass_and_below_them_deny() {
        // Chain of three latency-1 edges: length LB = 3, pressure LB = 1.
        let g = graph(
            "instr a defs v0\ninstr b defs v1 uses v0\ninstr c uses v1\nedge 0 1 1\nedge 1 2 1",
        );
        let ok = ScheduleClaim {
            length: 3,
            prp: [1, 0],
            source: "test",
        };
        assert!(check_claims(&g, &ok).is_empty());
        let lying = ScheduleClaim {
            length: 2,
            prp: [0, 0],
            source: "test",
        };
        let f = check_claims(&g, &lying);
        assert_eq!(
            codes_of(&f),
            vec![codes::LENGTH_INFEASIBLE, codes::PRP_INFEASIBLE]
        );
        assert!(f.iter().all(|f| f.level == Level::Deny));
    }

    #[test]
    fn config_coverage_flags_uncovered_fields() {
        #[derive(Clone)]
        struct Cfg {
            covered: u64,
            ignored: u64,
        }
        let probes = [
            ConfigProbe::<Cfg> {
                field: "covered",
                mutate: |c| c.covered += 1,
            },
            ConfigProbe::<Cfg> {
                field: "ignored",
                mutate: |c| c.ignored += 1,
            },
        ];
        let base = Cfg {
            covered: 1,
            ignored: 2,
        };
        let f = check_config_coverage(&base, &probes, |c| c.covered.wrapping_mul(0x9e37));
        assert_eq!(codes_of(&f), vec![codes::CONFIG_DRIFT]);
        assert_eq!(f[0].anchor, Anchor::ConfigField("ignored"));
    }
}
