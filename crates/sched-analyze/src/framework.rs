//! The generic analysis framework the passes are built on.
//!
//! Everything here recomputes its answer from first principles over the raw
//! [`RegionGraph`] — topological order via Kahn's algorithm (returning a
//! minimal witness cycle instead of an order when the graph is cyclic), a
//! bitmatrix reachability closure, level (earliest-start) and immediate-
//! dominator computation, exact multi-edge longest paths (the engine behind
//! exact transitive reduction), and the schedule-length and
//! register-pressure lower bounds the claim-checking passes compare
//! against.
//!
//! # Effective latency
//!
//! All path arithmetic uses the *effective* latency `eff(l) = max(l, 1)`:
//! on the paper's single-issue machine two dependent instructions occupy
//! distinct cycles even across a zero-latency edge, exactly as
//! `Ddg::distance_to_leaf` counts it. Using raw latencies here is what made
//! the old `L001` lint a heuristic: a chain of two latency-1 edges implies
//! a latency-2 separation, which raw-latency summing fails to credit.

use crate::graph::RegionGraph;
use sched_ir::{BitMatrix, Reg, REG_CLASS_COUNT};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Effective latency of an edge on a single-issue machine (see the module
/// docs).
#[inline]
pub fn eff(latency: u16) -> u64 {
    (latency as u64).max(1)
}

/// Result of [`topo_or_cycle`]: a topological order, or a minimal witness
/// cycle when none exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topo {
    /// The graph is acyclic; a topological order of all nodes.
    Acyclic(Vec<u32>),
    /// The graph is cyclic. The witness is a *minimal* cycle: no cycle
    /// through fewer nodes exists. Consecutive entries are edges, and an
    /// edge closes the last node back to the first. A self edge yields a
    /// one-node witness.
    Cyclic(Vec<u32>),
}

/// Kahn's algorithm, keeping enough state to extract a minimal witness
/// cycle from the cyclic core (the nodes never drained) on failure.
pub fn topo_or_cycle(g: &RegionGraph) -> Topo {
    let n = g.len();
    let mut indeg: Vec<usize> = (0..n as u32).map(|i| g.in_degree(i)).collect();
    let mut order = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for e in g.succ_edges(v) {
            let d = &mut indeg[e.to as usize];
            *d -= 1;
            if *d == 0 {
                queue.push_back(e.to);
            }
        }
    }
    if order.len() == n {
        return Topo::Acyclic(order);
    }
    // The cyclic core: nodes with edges still pending. Every core node lies
    // on or downstream-within a cycle; BFS from each core node restricted
    // to the core finds the shortest path back to itself, and the global
    // minimum over start nodes is a minimal cycle.
    let in_core: Vec<bool> = indeg.iter().map(|&d| d > 0).collect();
    let mut best: Option<Vec<u32>> = None;
    for start in (0..n as u32).filter(|&i| in_core[i as usize]) {
        // Self edge: minimal possible witness, stop immediately.
        if g.succ_edges(start).any(|e| e.to == start) {
            return Topo::Cyclic(vec![start]);
        }
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[start as usize] = true;
        let mut q = VecDeque::from([start]);
        'bfs: while let Some(v) = q.pop_front() {
            for e in g.succ_edges(v) {
                if !in_core[e.to as usize] {
                    continue;
                }
                if e.to == start {
                    // Reconstruct start -> ... -> v, then the closing edge.
                    let mut path = vec![v];
                    let mut cur = v;
                    while let Some(p) = parent[cur as usize] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    parent[e.to as usize] = Some(v);
                    q.push_back(e.to);
                }
            }
        }
        if best.as_ref().is_some_and(|b| b.len() == 2) {
            break; // no shorter cycle exists in a self-edge-free graph
        }
    }
    Topo::Cyclic(best.expect("cyclic core must contain a cycle"))
}

/// Reachability closure over an acyclic [`RegionGraph`]: bit `(a, b)` means
/// a directed path `a -> ... -> b` exists. Same reverse-topological row-OR
/// construction as [`sched_ir::Ddg::transitive_closure`].
pub fn closure(g: &RegionGraph, order: &[u32]) -> BitMatrix {
    let mut reach = BitMatrix::new(g.len());
    for &v in order.iter().rev() {
        for e in g.succ_edges(v) {
            reach.set(v as usize, e.to as usize);
            reach.or_row_into(e.to as usize, v as usize);
        }
    }
    reach
}

/// Level of every node: the earliest cycle it can issue at, i.e. the
/// longest effective-latency path from any root.
pub fn levels(g: &RegionGraph, order: &[u32]) -> Vec<u64> {
    let mut level = vec![0u64; g.len()];
    for &v in order {
        for e in g.succ_edges(v) {
            let cand = level[v as usize] + eff(e.latency);
            if cand > level[e.to as usize] {
                level[e.to as usize] = cand;
            }
        }
    }
    level
}

/// Immediate dominators over the acyclic region, with a virtual root above
/// all real roots. `None` means the virtual root (i.e. the node is a root,
/// or its predecessors only meet there).
///
/// Cooper–Harvey–Kennedy iteration degenerates to a single pass on a DAG
/// processed in topological order: every predecessor's dominator is final
/// before its successors are visited.
pub fn idoms(g: &RegionGraph, order: &[u32]) -> Vec<Option<u32>> {
    let n = g.len();
    let mut pos = vec![0usize; n]; // topological position, for intersection
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    let mut idom: Vec<Option<u32>> = vec![None; n];
    let intersect = |idom: &[Option<u32>], mut a: u32, mut b: u32| -> Option<u32> {
        loop {
            if a == b {
                return Some(a);
            }
            // Climb the deeper node; reaching the virtual root ends it.
            if pos[a as usize] > pos[b as usize] {
                a = idom[a as usize]?;
            } else {
                b = idom[b as usize]?;
            }
        }
    };
    for &v in order {
        let mut preds = g.pred_edges(v).map(|e| e.from);
        let Some(first) = preds.next() else {
            continue; // a root: dominated by the virtual root only
        };
        let mut dom = Some(first);
        for p in preds {
            dom = match dom {
                Some(d) => intersect(&idom, d, p),
                None => None,
            };
        }
        idom[v as usize] = dom;
    }
    idom
}

/// Longest effective-latency distances from `src` over paths of **two or
/// more edges** (`None` = no such path). The exactness kernel of S001: the
/// direct edge `src -> b` is transitively redundant iff
/// `multi[b] >= eff(latency(src, b))`.
///
/// Also returns the any-length distances (`>= 1` edge) as the second
/// vector, which the redundancy message uses.
pub fn multi_edge_longest_from(
    g: &RegionGraph,
    order: &[u32],
    src: u32,
) -> (Vec<Option<u64>>, Vec<Option<u64>>) {
    let n = g.len();
    let mut any: Vec<Option<u64>> = vec![None; n]; // >= 1 edge
    let mut multi: Vec<Option<u64>> = vec![None; n]; // >= 2 edges
    for &u in order {
        if u == src {
            for e in g.succ_edges(u) {
                let cand = eff(e.latency);
                if any[e.to as usize].is_none_or(|d| cand > d) {
                    any[e.to as usize] = Some(cand);
                }
            }
        } else if let Some(du) = any[u as usize] {
            // Any path through a non-source reachable node has >= 2 edges.
            for e in g.succ_edges(u) {
                let cand = du + eff(e.latency);
                if any[e.to as usize].is_none_or(|d| cand > d) {
                    any[e.to as usize] = Some(cand);
                }
                if multi[e.to as usize].is_none_or(|d| cand > d) {
                    multi[e.to as usize] = Some(cand);
                }
            }
        }
    }
    (multi, any)
}

/// Lower bound on the length (in cycles) of any single-issue schedule of
/// the region: `max(node count, longest effective-latency path + 1)`.
pub fn length_lower_bound(g: &RegionGraph, order: &[u32]) -> u64 {
    if g.is_empty() {
        return 0;
    }
    let cp = levels(g, order).into_iter().max().unwrap_or(0) + 1;
    (g.len() as u64).max(cp)
}

/// Exact static per-class lower bound on the peak register pressure of any
/// schedule of the region (the "cut" bound, after Chen et al.'s min-reg
/// formulation): for every node `x`, count the registers *forced* to be
/// live in the cycle `x` issues, in every legal schedule.
///
/// A register is forced live at `x` when, writing `A(x)`/`D(x)` for strict
/// ancestors/descendants in the dependence relation:
///
/// * its single def is `x` itself or in `A(x)` — so it is defined no later
///   than `x`'s cycle — **and** it is live-out (never used: stays live to
///   the region's end) or has a use in `D(x)` (the use issues strictly
///   after `x`, and with the tracker's kills-before-opens rule the
///   register survives through `x`'s cycle);
/// * or it is live-in (no def) with a use in `D(x)`.
///
/// The final bound also covers the region's last cycle, where every
/// live-out register is live simultaneously whatever the order.
/// Registers with multiple defs are skipped entirely — their lifetime
/// under the tracker is order-dependent, and skipping only weakens the
/// bound (keeps it sound).
pub fn pressure_lower_bound(g: &RegionGraph, reach: &BitMatrix) -> [u32; REG_CLASS_COUNT] {
    let n = g.len() as u32;
    // Reg -> (def nodes, use nodes).
    let mut regs: HashMap<Reg, (Vec<u32>, Vec<u32>)> = HashMap::new();
    for i in 0..n {
        for &r in g.defs(i) {
            regs.entry(r).or_default().0.push(i);
        }
        for &r in g.uses(i) {
            regs.entry(r).or_default().1.push(i);
        }
    }
    // Live-out cut: defined-never-used registers all overlap at the end.
    let mut live_out = [0u32; REG_CLASS_COUNT];
    for (r, (defs, uses)) in &regs {
        if defs.len() == 1 && uses.is_empty() {
            live_out[r.class.index()] += 1;
        }
    }
    let mut bound = live_out;
    // Per-node cuts.
    for x in 0..n {
        let mut cut = [0u32; REG_CLASS_COUNT];
        for (r, (defs, uses)) in &regs {
            let live = match defs.as_slice() {
                [] => uses.iter().any(|&u| reach.get(x as usize, u as usize)),
                &[d] => {
                    (d == x || reach.get(d as usize, x as usize))
                        && (uses.is_empty()
                            || uses.iter().any(|&u| reach.get(x as usize, u as usize)))
                }
                _ => false, // multiple defs: skipped for soundness
            };
            if live {
                cut[r.class.index()] += 1;
            }
        }
        for c in 0..REG_CLASS_COUNT {
            bound[c] = bound[c].max(cut[c]);
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::textir;

    fn graph(text: &str) -> RegionGraph {
        RegionGraph::from_raw(&textir::parse_raw(text).unwrap())
    }

    fn order(g: &RegionGraph) -> Vec<u32> {
        match topo_or_cycle(g) {
            Topo::Acyclic(o) => o,
            Topo::Cyclic(w) => panic!("unexpected cycle {w:?}"),
        }
    }

    #[test]
    fn topo_orders_a_diamond() {
        let g = graph(
            "instr a\ninstr b\ninstr c\ninstr d\nedge 0 1 1\nedge 0 2 1\nedge 1 3 1\nedge 2 3 1",
        );
        let o = order(&g);
        assert_eq!(o.len(), 4);
        assert_eq!(o[0], 0);
        assert_eq!(o[3], 3);
    }

    #[test]
    fn minimal_witness_cycle_is_found() {
        // A 3-cycle 0 -> 1 -> 2 -> 0 plus a 2-cycle 3 <-> 4 downstream.
        let g = graph(
            "instr a\ninstr b\ninstr c\ninstr d\ninstr e\n\
             edge 0 1 1\nedge 1 2 1\nedge 2 0 1\nedge 3 4 1\nedge 4 3 1",
        );
        match topo_or_cycle(&g) {
            Topo::Cyclic(w) => assert_eq!(w.len(), 2, "minimal cycle is the 2-cycle, got {w:?}"),
            Topo::Acyclic(_) => panic!("graph is cyclic"),
        }
    }

    #[test]
    fn self_edge_is_a_one_node_witness() {
        let g = graph("instr a\nedge 0 0 1");
        assert_eq!(topo_or_cycle(&g), Topo::Cyclic(vec![0]));
    }

    #[test]
    fn closure_and_levels_match_hand_computation() {
        // 0 --2--> 1 --3--> 3, 0 --1--> 2 --1--> 3 (cf. bounds.rs tests).
        let g = graph(
            "instr a\ninstr b\ninstr c\ninstr d\nedge 0 1 2\nedge 1 3 3\nedge 0 2 1\nedge 2 3 1",
        );
        let o = order(&g);
        let reach = closure(&g, &o);
        assert!(reach.get(0, 3));
        assert!(!reach.get(1, 2));
        assert!(!reach.get(3, 0));
        let lv = levels(&g, &o);
        assert_eq!(lv, vec![0, 2, 1, 5]);
        assert_eq!(length_lower_bound(&g, &o), 6);
    }

    #[test]
    fn zero_latency_edges_still_cost_a_cycle() {
        let g = graph("instr a\ninstr b\nedge 0 1 0");
        let o = order(&g);
        assert_eq!(levels(&g, &o), vec![0, 1]);
        assert_eq!(length_lower_bound(&g, &o), 2);
    }

    #[test]
    fn idoms_of_a_diamond_meet_at_the_fork() {
        let g = graph(
            "instr a\ninstr b\ninstr c\ninstr d\nedge 0 1 1\nedge 0 2 1\nedge 1 3 1\nedge 2 3 1",
        );
        let o = order(&g);
        let d = idoms(&g, &o);
        assert_eq!(d[0], None);
        assert_eq!(d[1], Some(0));
        assert_eq!(d[2], Some(0));
        assert_eq!(d[3], Some(0)); // paths meet at the fork, not b or c
    }

    #[test]
    fn idoms_with_two_roots_meet_at_the_virtual_root() {
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 2 1\nedge 1 2 1");
        let o = order(&g);
        let d = idoms(&g, &o);
        assert_eq!(d[2], None, "joins of independent roots have no real idom");
    }

    #[test]
    fn multi_edge_distances_exclude_the_direct_edge() {
        // 0 -> 1 (lat 5), and 0 -> 2 -> 1 with eff 1 + 1 = 2.
        let g = graph("instr a\ninstr b\ninstr c\nedge 0 1 5\nedge 0 2 1\nedge 2 1 1");
        let o = order(&g);
        let (multi, any) = multi_edge_longest_from(&g, &o, 0);
        assert_eq!(any[1], Some(5)); // the direct edge is the longest overall
        assert_eq!(multi[1], Some(2)); // but the only multi-edge path sums to 2
        assert_eq!(multi[2], None);
    }

    #[test]
    fn pressure_bound_counts_forced_overlap() {
        // load defines v0 and v1 used by two dependent consumers; while the
        // chain c1 -> c2 runs, v1 (used by c2) must stay live.
        let g = graph(
            "instr load defs v0,v1\n\
             instr c1 defs v2 uses v0\n\
             instr c2 uses v1,v2\n\
             edge 0 1 1\nedge 0 2 1\nedge 1 2 1",
        );
        let o = order(&g);
        let reach = closure(&g, &o);
        let lb = pressure_lower_bound(&g, &reach);
        // At c1's cycle: v0 dead after c1? No — kills-before-opens means v0
        // dies *at* c1, so forced-live there: v1 (use at descendant c2),
        // v2 (def at c1, used at c2). At load's cycle: v0, v1. => 2.
        assert_eq!(lb[0], 2);
    }

    #[test]
    fn pressure_bound_covers_live_out_overlap() {
        let g = graph("instr a defs v0\ninstr b defs v1\ninstr c defs v2");
        let o = order(&g);
        let reach = closure(&g, &o);
        // Three live-out regs with no deps at all still overlap at the end.
        assert_eq!(pressure_lower_bound(&g, &reach)[0], 3);
    }

    #[test]
    fn pressure_bound_is_sound_on_a_chain() {
        // v0 dies feeding b; only one reg live at a time plus the new def.
        let g = graph(
            "instr a defs v0\ninstr b defs v1 uses v0\ninstr c uses v1\nedge 0 1 1\nedge 1 2 1",
        );
        let o = order(&g);
        let reach = closure(&g, &o);
        let lb = pressure_lower_bound(&g, &reach);
        assert_eq!(lb[0], 1, "kills-before-opens: v0 is dead at b's cycle");
    }
}
