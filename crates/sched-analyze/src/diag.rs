//! The clippy-style diagnostics engine of the analyzer.
//!
//! Every pass reports [`Finding`]s: a stable `S`-code, a [`Level`]
//! (deny/warn/pedantic — the clippy severity model, distinct from the
//! verifier's error/warning/note), an [`Anchor`] naming the graph object
//! the finding is about, and — when the region came from a text-IR file —
//! a real source position ([`SrcPos`]) so renderers can emit
//! `file:line:col` spans.
//!
//! Two renderers ship with the engine: [`render_text`] (rustc-style, for
//! humans) and [`render_json`] (a hand-rolled machine-readable document —
//! the workspace vendors no serializer; the `serde` stub's derives are
//! no-ops). A [`Baseline`] file suppresses known findings by stable key so
//! pedantic results on legitimate inputs never break CI.

use sched_ir::textir::SrcPos;
use std::collections::BTreeSet;
use std::fmt;

/// How a finding is treated by gates, in ascending strictness of the
/// threshold that reports it.
///
/// The ordering is `Pedantic < Warn < Deny` so a gate level can be
/// compared with `>=`: `analyze --deny-level warn` fails on `Warn` and
/// `Deny` findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Exact and true, but expected on legitimate inputs (e.g. a
    /// transitively redundant edge in a def-use DDG). Reported for
    /// completeness; never gates by default.
    Pedantic,
    /// Suspicious: almost certainly a generator or tooling bug, but the
    /// region is still schedulable.
    Warn,
    /// A violated invariant: the region, claim, or configuration is wrong.
    /// Deny findings fail the CI gate and the `analyze` exit code.
    Deny,
}

impl Level {
    /// Stable lowercase name (used by both renderers and the CLI flag).
    pub fn name(self) -> &'static str {
        match self {
            Level::Pedantic => "pedantic",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }

    /// Parses a [`Level`] from its [`Level::name`].
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "pedantic" => Some(Level::Pedantic),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The stable analysis codes.
///
/// `S` codes are *exact* findings: every one is backed by a recomputed
/// ground truth (closure, machine model, lower bound, or fingerprint),
/// never a heuristic. See DESIGN.md's "Static analysis" section for the
/// severity policy.
pub mod codes {
    /// An edge implied by a transitive path of at least the same
    /// effective latency (exact transitive reduction; replaces the old
    /// heuristic `L001`).
    pub const TRANSITIVE_REDUNDANT: &str = "S001";
    /// The dependence relation contains a cycle (reported with a minimal
    /// witness cycle).
    pub const CYCLE: &str = "S002";
    /// An orphan node: no dependences, no defs, no uses.
    pub const ORPHAN: &str = "S003";
    /// An edge latency disagrees with the machine model's latency for the
    /// producing instruction's op kind.
    pub const LATENCY_MODEL: &str = "S004";
    /// A claimed peak register pressure below the exact static lower
    /// bound: the claim is infeasible.
    pub const PRP_INFEASIBLE: &str = "S005";
    /// A claimed schedule length below the critical-path lower bound.
    pub const LENGTH_INFEASIBLE: &str = "S006";
    /// Configuration-fingerprint drift: a scheduling-relevant field is
    /// not covered by the cache key.
    pub const CONFIG_DRIFT: &str = "S007";
}

/// Which graph object a finding is about.
///
/// Node and edge anchors use raw `u32` indices (not [`sched_ir::InstrId`])
/// because the analyzer also runs on pre-validation raw regions, where a
/// cyclic graph has no `Ddg` to index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// The region as a whole.
    Region,
    /// One instruction, by index.
    Node(u32),
    /// One dependence edge.
    Edge {
        /// Producer index.
        from: u32,
        /// Consumer index.
        to: u32,
    },
    /// A cycle through the listed nodes (a minimal witness: consecutive
    /// entries are edges, and the last closes back to the first).
    Cycle(Vec<u32>),
    /// A named claim a scheduler made about a schedule.
    Claim(&'static str),
    /// A named configuration field.
    ConfigField(&'static str),
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Region => write!(f, "region"),
            Anchor::Node(i) => write!(f, "node {i}"),
            Anchor::Edge { from, to } => write!(f, "edge {from} -> {to}"),
            Anchor::Cycle(nodes) => {
                write!(f, "cycle ")?;
                for n in nodes {
                    write!(f, "{n} -> ")?;
                }
                match nodes.first() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "(empty)"),
                }
            }
            Anchor::Claim(name) => write!(f, "claim `{name}`"),
            Anchor::ConfigField(name) => write!(f, "config field `{name}`"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// Gate level.
    pub level: Level,
    /// The graph object the finding is about.
    pub anchor: Anchor,
    /// Source position of the anchor in the region's text-IR file, when
    /// the region was parsed from one.
    pub span: Option<SrcPos>,
    /// The file the span refers to, when known.
    pub file: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Kernel index within a suite, when analyzing a suite.
    pub kernel: Option<usize>,
    /// Region index within the kernel, when analyzing a suite.
    pub region: Option<usize>,
}

impl Finding {
    /// A new finding with no span/suite attribution.
    pub fn new(
        code: &'static str,
        level: Level,
        anchor: Anchor,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            code,
            level,
            anchor,
            span: None,
            file: None,
            message: message.into(),
            kernel: None,
            region: None,
        }
    }

    /// The finding with a text-IR source span attached.
    pub fn with_span(mut self, span: Option<SrcPos>) -> Finding {
        self.span = span;
        self
    }

    /// The finding attributed to a file.
    pub fn in_file(mut self, file: impl Into<String>) -> Finding {
        self.file = Some(file.into());
        self
    }

    /// The finding attributed to a suite location.
    pub fn in_region(mut self, kernel: usize, region: usize) -> Finding {
        self.kernel = Some(kernel);
        self.region = Some(region);
        self
    }

    /// The stable suppression key of the finding: code plus anchor plus
    /// location, *excluding* the message (messages carry computed values
    /// and may legitimately change between runs).
    pub fn baseline_key(&self) -> String {
        let mut key = String::new();
        if let Some(f) = &self.file {
            key.push_str(f);
            key.push(' ');
        }
        if let (Some(k), Some(r)) = (self.kernel, self.region) {
            key.push_str(&format!("k{k}/r{r} "));
        }
        key.push_str(self.code);
        key.push(' ');
        key.push_str(&self.anchor.to_string());
        key
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.level, self.code, self.message)?;
        write!(f, "  --> ")?;
        if let Some(file) = &self.file {
            write!(f, "{file}")?;
            if let Some(span) = self.span {
                write!(f, ":{span}")?;
            }
            write!(f, ": ")?;
        } else if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        if let (Some(k), Some(r)) = (self.kernel, self.region) {
            write!(f, "kernel {k}, region {r}, ")?;
        }
        write!(f, "{}", self.anchor)
    }
}

/// Per-level finding counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Number of [`Level::Deny`] findings.
    pub deny: usize,
    /// Number of [`Level::Warn`] findings.
    pub warn: usize,
    /// Number of [`Level::Pedantic`] findings.
    pub pedantic: usize,
}

impl LevelCounts {
    /// Counts the findings of a slice.
    pub fn of(findings: &[Finding]) -> LevelCounts {
        let mut c = LevelCounts::default();
        for f in findings {
            match f.level {
                Level::Deny => c.deny += 1,
                Level::Warn => c.warn += 1,
                Level::Pedantic => c.pedantic += 1,
            }
        }
        c
    }

    /// Number of findings at or above the given level.
    pub fn at_or_above(&self, level: Level) -> usize {
        match level {
            Level::Deny => self.deny,
            Level::Warn => self.deny + self.warn,
            Level::Pedantic => self.deny + self.warn + self.pedantic,
        }
    }
}

/// Renders findings rustc-style, one paragraph each, with a trailing
/// per-level summary line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let c = LevelCounts::of(findings);
    out.push_str(&format!(
        "analyze: {} deny, {} warn, {} pedantic\n",
        c.deny, c.warn, c.pedantic
    ));
    out
}

/// Escapes a string for a JSON string literal (without the quotes).
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_json(value, out);
    out.push('"');
}

/// Renders findings as a machine-readable JSON document.
///
/// Schema (`sched-analyze-findings/v1`):
///
/// ```json
/// {
///   "schema": "sched-analyze-findings/v1",
///   "deny": 0, "warn": 0, "pedantic": 2, "suppressed": 1,
///   "findings": [
///     {"code": "S001", "level": "pedantic", "anchor": "edge 3 -> 7",
///      "file": "r.txt", "line": 12, "col": 1, "kernel": 0, "region": 2,
///      "message": "..."}
///   ]
/// }
/// ```
///
/// `file`/`line`/`col`/`kernel`/`region` are present only when known.
pub fn render_json(findings: &[Finding], suppressed: usize) -> String {
    let c = LevelCounts::of(findings);
    let mut out = String::new();
    out.push_str("{\"schema\":\"sched-analyze-findings/v1\",");
    out.push_str(&format!(
        "\"deny\":{},\"warn\":{},\"pedantic\":{},\"suppressed\":{suppressed},",
        c.deny, c.warn, c.pedantic
    ));
    out.push_str("\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "code", f.code);
        out.push(',');
        push_str_field(&mut out, "level", f.level.name());
        out.push(',');
        push_str_field(&mut out, "anchor", &f.anchor.to_string());
        if let Some(file) = &f.file {
            out.push(',');
            push_str_field(&mut out, "file", file);
        }
        if let Some(span) = f.span {
            out.push_str(&format!(",\"line\":{},\"col\":{}", span.line, span.col));
        }
        if let (Some(k), Some(r)) = (f.kernel, f.region) {
            out.push_str(&format!(",\"kernel\":{k},\"region\":{r}"));
        }
        out.push(',');
        push_str_field(&mut out, "message", &f.message);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// A clippy-style baseline-suppression file: one [`Finding::baseline_key`]
/// per line, comments with `#`.
///
/// A baseline records *accepted* findings (typically pedantic ones on
/// legitimate inputs) so gates only trip on new ones. Keys exclude
/// messages, so value changes in a message do not invalidate a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

/// The header line of a serialized [`Baseline`].
pub const BASELINE_HEADER: &str = "# sched-analyze baseline v1";

impl Baseline {
    /// An empty baseline (suppresses nothing).
    pub fn new() -> Baseline {
        Baseline::default()
    }

    /// Parses a baseline file.
    pub fn parse(text: &str) -> Baseline {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { keys }
    }

    /// A baseline accepting every given finding.
    pub fn accepting(findings: &[Finding]) -> Baseline {
        Baseline {
            keys: findings.iter().map(Finding::baseline_key).collect(),
        }
    }

    /// Serializes the baseline (stable order).
    pub fn to_text(&self) -> String {
        let mut out = String::from(BASELINE_HEADER);
        out.push('\n');
        for k in &self.keys {
            out.push_str(k);
            out.push('\n');
        }
        out
    }

    /// Number of suppressed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the baseline suppresses nothing.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the baseline suppresses this finding.
    pub fn suppresses(&self, finding: &Finding) -> bool {
        self.keys.contains(&finding.baseline_key())
    }

    /// Splits findings into (kept, suppressed-count).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let before = findings.len();
        let kept: Vec<Finding> = findings
            .into_iter()
            .filter(|f| !self.suppresses(f))
            .collect();
        let suppressed = before - kept.len();
        (kept, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding::new(
            codes::TRANSITIVE_REDUNDANT,
            Level::Pedantic,
            Anchor::Edge { from: 3, to: 7 },
            "edge 3 -> 7 (latency 1) is implied by a path of effective latency 65",
        )
        .with_span(Some(SrcPos { line: 12, col: 1 }))
        .in_file("r.txt")
    }

    #[test]
    fn levels_are_ordered_for_gating() {
        assert!(Level::Deny > Level::Warn);
        assert!(Level::Warn > Level::Pedantic);
        assert_eq!(Level::parse("deny"), Some(Level::Deny));
        assert_eq!(Level::parse("bogus"), None);
        let c = LevelCounts {
            deny: 1,
            warn: 2,
            pedantic: 4,
        };
        assert_eq!(c.at_or_above(Level::Deny), 1);
        assert_eq!(c.at_or_above(Level::Warn), 3);
        assert_eq!(c.at_or_above(Level::Pedantic), 7);
    }

    #[test]
    fn text_rendering_is_rustc_like_with_file_spans() {
        let s = sample().to_string();
        assert!(s.starts_with("pedantic[S001]:"), "{s}");
        assert!(s.contains("--> r.txt:12:1: edge 3 -> 7"), "{s}");
        let summary = render_text(&[sample()]);
        assert!(summary.contains("analyze: 0 deny, 0 warn, 1 pedantic"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let mut f = sample();
        f.message = "quote \" backslash \\ newline \n done".into();
        let doc = render_json(&[f], 2);
        assert!(doc.contains("\"schema\":\"sched-analyze-findings/v1\""));
        assert!(doc.contains("\"deny\":0,\"warn\":0,\"pedantic\":1,\"suppressed\":2"));
        assert!(doc.contains("quote \\\" backslash \\\\ newline \\n done"));
        assert!(doc.contains("\"line\":12,\"col\":1"));
        crate::json_check::validate(&doc).expect("well-formed JSON");
    }

    #[test]
    fn baseline_roundtrips_and_suppresses_by_key() {
        let f = sample();
        let b = Baseline::accepting(std::slice::from_ref(&f));
        assert!(b.suppresses(&f));
        // Message changes do not invalidate the key.
        let mut f2 = f.clone();
        f2.message = "different numbers".into();
        assert!(b.suppresses(&f2));
        // A different edge is a different key.
        let mut f3 = f.clone();
        f3.anchor = Anchor::Edge { from: 3, to: 8 };
        assert!(!b.suppresses(&f3));
        let parsed = Baseline::parse(&b.to_text());
        assert_eq!(parsed, b);
        let (kept, suppressed) = parsed.apply(vec![f, f3.clone()]);
        assert_eq!(suppressed, 1);
        assert_eq!(kept, vec![f3]);
    }

    #[test]
    fn cycle_anchor_renders_closed() {
        let a = Anchor::Cycle(vec![2, 5, 9]);
        assert_eq!(a.to_string(), "cycle 2 -> 5 -> 9 -> 2");
    }
}
