//! Mutation property tests: every S-code pass fires on its injected
//! defect class and stays silent on clean generated regions.
//!
//! "Silent" means: no warn/deny findings on any clean region, real
//! scheduler claims never flagged (S005/S006 soundness), and every
//! pedantic S001 finding independently re-verified against a brute-force
//! longest-multi-edge-path oracle (zero false positives) with none missed
//! (100% detection — exactness, not just soundness).

use list_sched::{Heuristic, ListScheduler};
use machine_model::OccupancyModel;
use sched_analyze::framework::eff;
use sched_analyze::{
    analyze_graph, check_claims, codes, Anchor, Level, RegionGraph, ScheduleClaim,
};
use sched_ir::{textir, Ddg, InstrId};
use workloads::{mutate, patterns};

const SEEDS: [u64; 4] = [3, 11, 42, 1009];

/// Every generator shape the suite builder draws from, at test-sized
/// dimensions.
fn clean_regions(seed: u64) -> Vec<(&'static str, Ddg)> {
    vec![
        ("reduction", patterns::reduction(16, seed)),
        ("scan", patterns::scan(16, seed)),
        ("transform_chain", patterns::transform_chain(4, 6, seed)),
        ("gather_chain", patterns::gather_chain(4, 4, seed)),
        (
            "vector_transform",
            patterns::vector_transform(2, 4, 4, seed),
        ),
        ("stencil", patterns::stencil(8, 2, seed)),
        ("sort_network", patterns::sort_network(8, seed)),
        ("random_layered", patterns::random_layered(4, 6, seed)),
        ("sized", patterns::sized(80, seed)),
    ]
}

/// Independent oracle: longest effective-latency path `from -> ... -> to`
/// using two or more edges, via memoized DFS (a different algorithm shape
/// than the analyzer's forward topological DP).
fn oracle_multi_edge_longest(ddg: &Ddg, from: InstrId, to: InstrId) -> Option<u64> {
    fn longest_any(
        ddg: &Ddg,
        memo: &mut [Option<Option<u64>>],
        from: usize,
        to: usize,
    ) -> Option<u64> {
        if let Some(cached) = memo[from] {
            return cached;
        }
        let mut best: Option<u64> = None;
        for &(m, lat) in ddg.succs(InstrId(from as u32)) {
            let tail = if m.index() == to {
                Some(0)
            } else {
                longest_any(ddg, memo, m.index(), to)
            };
            if let Some(t) = tail {
                let cand = t + eff(lat);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
        }
        memo[from] = Some(best);
        best
    }
    let mut best: Option<u64> = None;
    for &(m, lat) in ddg.succs(from) {
        if m == to {
            continue; // the direct edge itself is a one-edge path
        }
        let mut memo = vec![None; ddg.len()];
        if let Some(t) = longest_any(ddg, &mut memo, m.index(), to.index()) {
            if t > 0 || m == to {
                let cand = t + eff(lat);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
        }
    }
    best
}

fn real_claim(ddg: &Ddg, heuristic: Heuristic) -> ScheduleClaim {
    let occ = OccupancyModel::vega_like();
    let result = ListScheduler::new(heuristic).schedule(ddg, &occ);
    ScheduleClaim {
        length: result.length as u64,
        prp: result.prp,
        source: "list-sched",
    }
}

#[test]
fn clean_regions_have_no_warn_or_deny_findings() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let g = RegionGraph::from_ddg(&ddg);
            let noisy: Vec<_> = analyze_graph(&g)
                .into_iter()
                .filter(|f| f.level >= Level::Warn)
                .collect();
            assert!(
                noisy.is_empty(),
                "{name} seed {seed}: clean region produced {noisy:?}"
            );
        }
    }
}

#[test]
fn s001_findings_are_exactly_the_brute_force_redundant_edges() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let g = RegionGraph::from_ddg(&ddg);
            let mut reported: Vec<(u32, u32)> = analyze_graph(&g)
                .into_iter()
                .filter(|f| f.code == codes::TRANSITIVE_REDUNDANT)
                .map(|f| match f.anchor {
                    Anchor::Edge { from, to } => (from, to),
                    other => panic!("S001 must anchor an edge, got {other:?}"),
                })
                .collect();
            reported.sort_unstable();
            let mut truth = Vec::new();
            for a in ddg.ids() {
                for &(b, lat) in ddg.succs(a) {
                    if oracle_multi_edge_longest(&ddg, a, b)
                        .is_some_and(|implied| implied >= eff(lat))
                    {
                        truth.push((a.0, b.0));
                    }
                }
            }
            truth.sort_unstable();
            assert_eq!(
                reported, truth,
                "{name} seed {seed}: S001 must match the oracle exactly"
            );
        }
    }
}

#[test]
fn real_scheduler_claims_are_never_flagged() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let g = RegionGraph::from_ddg(&ddg);
            for h in [Heuristic::CriticalPath, Heuristic::AmdMaxOccupancy] {
                let claim = real_claim(&ddg, h);
                let findings = check_claims(&g, &claim);
                assert!(
                    findings.is_empty(),
                    "{name} seed {seed} {h:?}: sound bounds must accept a real \
                     schedule's claim {claim:?}, got {findings:?}"
                );
            }
        }
    }
}

#[test]
fn injected_redundant_edges_are_always_detected() {
    let mut injections = 0;
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let Some((mutated, (a, b))) = mutate::with_redundant_edge(&ddg, seed) else {
                continue;
            };
            injections += 1;
            let findings = analyze_graph(&RegionGraph::from_ddg(&mutated));
            assert!(
                findings
                    .iter()
                    .any(|f| f.code == codes::TRANSITIVE_REDUNDANT
                        && f.anchor == Anchor::Edge { from: a.0, to: b.0 }),
                "{name} seed {seed}: planted redundant edge {a} -> {b} missed"
            );
        }
    }
    assert!(injections > 20, "injector must find sites ({injections})");
}

#[test]
fn injected_orphans_are_always_detected() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let (mutated, orphan) = mutate::with_orphan_node(&ddg);
            let findings = analyze_graph(&RegionGraph::from_ddg(&mutated));
            let hits: Vec<_> = findings
                .iter()
                .filter(|f| f.code == codes::ORPHAN)
                .collect();
            assert_eq!(hits.len(), 1, "{name} seed {seed}: exactly one orphan");
            assert_eq!(hits[0].anchor, Anchor::Node(orphan.0));
            assert_eq!(hits[0].level, Level::Warn);
        }
    }
}

#[test]
fn injected_latency_corruption_is_always_detected() {
    let mut injections = 0;
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let Some((mutated, (a, b))) = mutate::with_corrupt_latency(&ddg, seed) else {
                continue;
            };
            injections += 1;
            let findings = analyze_graph(&RegionGraph::from_ddg(&mutated));
            assert!(
                findings.iter().any(|f| f.code == codes::LATENCY_MODEL
                    && f.level == Level::Deny
                    && f.anchor == Anchor::Edge { from: a.0, to: b.0 }),
                "{name} seed {seed}: corrupted edge {a} -> {b} missed"
            );
        }
    }
    assert!(injections > 20, "injector must find sites ({injections})");
}

#[test]
fn injected_cycles_are_always_detected_with_a_minimal_witness() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let Some((text, (a, b))) = mutate::with_cycle_text(&ddg, seed) else {
                continue;
            };
            let raw = textir::parse_raw(&text).expect("cyclic text still parses raw");
            let findings = analyze_graph(&RegionGraph::from_raw(&raw));
            let cycle = findings
                .iter()
                .find(|f| f.code == codes::CYCLE)
                .unwrap_or_else(|| panic!("{name} seed {seed}: cycle missed"));
            assert_eq!(cycle.level, Level::Deny);
            match &cycle.anchor {
                Anchor::Cycle(witness) => {
                    // The planted reverse edge creates exactly one cycle
                    // family; the minimal witness is the 2-cycle a <-> b.
                    let mut w = witness.clone();
                    w.sort_unstable();
                    let mut expect = vec![a.0, b.0];
                    expect.sort_unstable();
                    assert_eq!(w, expect, "{name} seed {seed}");
                }
                other => panic!("S002 must anchor a cycle, got {other:?}"),
            }
        }
    }
}

#[test]
fn understated_claims_are_always_detected() {
    for seed in SEEDS {
        for (name, ddg) in clean_regions(seed) {
            let g = RegionGraph::from_ddg(&ddg);
            let honest = real_claim(&ddg, Heuristic::AmdMaxOccupancy);
            // Understate the length below the critical-path bound.
            let lying_length = ScheduleClaim {
                length: (ddg.len() as u64).min(honest.length) - 1,
                ..honest
            };
            let findings = check_claims(&g, &lying_length);
            assert!(
                findings.iter().any(|f| f.code == codes::LENGTH_INFEASIBLE),
                "{name} seed {seed}: understated length accepted"
            );
            // Understate the VGPR pressure below whatever the bound forces.
            let mut lying_prp = honest;
            lying_prp.prp = [0, 0];
            let findings = check_claims(&g, &lying_prp);
            assert!(
                findings.iter().any(|f| f.code == codes::PRP_INFEASIBLE),
                "{name} seed {seed}: understated PRP accepted \
                 (real prp {:?})",
                honest.prp
            );
        }
    }
}
