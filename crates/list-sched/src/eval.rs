//! Candidate-scoring heuristics shared by the list schedulers and ACO.

use machine_model::OccupancyLut;
use reg_pressure::PressureTracker;
use sched_ir::{Cycle, Ddg, InstrId};

/// Precomputed per-region analyses consumed by every heuristic.
///
/// Build once per region; cheap to share across ants/schedulers.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    /// Latency-weighted distance to a leaf, per instruction
    /// (the CP priority).
    pub dist_to_leaf: Vec<Cycle>,
    /// Earliest latency-feasible issue cycle, per instruction.
    pub earliest_start: Vec<Cycle>,
    /// Tight ready-list size upper bound (Section V-A).
    pub ready_list_ub: usize,
    /// Number of successors, per instruction.
    pub succ_count: Vec<u32>,
    /// Critical-path length of the region (max of `dist_to_leaf`).
    pub critical_path: Cycle,
}

impl RegionAnalysis {
    /// Runs all analyses on a region.
    pub fn new(ddg: &Ddg) -> RegionAnalysis {
        let dist_to_leaf = ddg.distance_to_leaf();
        let critical_path = dist_to_leaf.iter().copied().max().unwrap_or(0);
        RegionAnalysis {
            dist_to_leaf,
            earliest_start: ddg.earliest_starts(),
            ready_list_ub: ddg.transitive_closure().ready_list_ub(),
            succ_count: ddg.ids().map(|i| ddg.succs(i).len() as u32).collect(),
            critical_path,
        }
    }
}

/// A guiding heuristic identity.
///
/// `Heuristic` is deliberately a plain enum (not a trait object): the GPU
/// implementation assigns *different heuristics to different wavefront
/// groups* (Section V-B) by storing one of these per wavefront, which must
/// be a `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Heuristic {
    /// Longest latency-weighted path to a leaf first.
    CriticalPath,
    /// Most live ranges closed first (register-pressure reduction).
    LastUseCount,
    /// AMD-production-like: protect occupancy, then critical path.
    AmdMaxOccupancy,
}

impl Heuristic {
    /// All heuristics, in the order used for wavefront-group assignment.
    pub const ALL: [Heuristic; 3] = [
        Heuristic::CriticalPath,
        Heuristic::LastUseCount,
        Heuristic::AmdMaxOccupancy,
    ];
}

/// Evaluates candidates for one heuristic over one region.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicEval<'a> {
    heuristic: Heuristic,
    analysis: &'a RegionAnalysis,
    occupancy: &'a OccupancyLut,
}

impl<'a> HeuristicEval<'a> {
    /// Creates an evaluator for `heuristic` over the analyzed region.
    ///
    /// Takes the region's [`OccupancyLut`] rather than the model itself:
    /// η is evaluated per ready candidate per step, and the table lookup
    /// avoids the model's division-heavy occupancy banding on that path.
    pub fn new(
        heuristic: Heuristic,
        analysis: &'a RegionAnalysis,
        occupancy: &'a OccupancyLut,
    ) -> HeuristicEval<'a> {
        HeuristicEval {
            heuristic,
            analysis,
            occupancy,
        }
    }

    /// The heuristic identity being evaluated.
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// Desirability η of scheduling `id` next, given current pressure.
    /// Strictly positive; larger is more desirable.
    ///
    /// η is consumed two ways: the greedy list scheduler picks the argmax;
    /// ACO raises it to the power β and multiplies by pheromone.
    pub fn eta(&self, id: InstrId, pressure: &PressureTracker<'_>) -> f64 {
        let dist = self.analysis.dist_to_leaf[id.index()] as f64;
        match self.heuristic {
            Heuristic::CriticalPath => 1.0 + dist,
            Heuristic::LastUseCount => {
                // Kills dominate; CP distance breaks ties smoothly.
                let kills = pressure.kills(id) as f64;
                let n = self.analysis.dist_to_leaf.len() as f64;
                1.0 + kills * (n + 1.0) + dist / (n + 1.0)
            }
            Heuristic::AmdMaxOccupancy => {
                // Mirrors GCNMaxOccupancySchedStrategy's greedy priorities:
                // protect occupancy above all, then reduce register
                // pressure, and only then look at the critical path. The
                // pressure-first myopia is what makes the production
                // scheduler beatable on latency (the paper's Figure 4).
                let delta = pressure.net_change(id);
                let occ_now = self.occupancy.occupancy(pressure.peak());
                let occ_after = self.occupancy.occupancy(pressure.peak_after_delta(delta));
                let tier = if occ_after >= occ_now { 1.0 } else { 0.0 };
                let n = self.analysis.dist_to_leaf.len() as f64;
                let span = (n + 1.0) * 40.0;
                // Per class, net change == opens - kills, so the sum over
                // classes reproduces `opens(id) - kills(id)` exactly (integer
                // arithmetic; no rounding concerns).
                let net = delta.iter().sum::<i32>() as f64;
                let pressure_rank = (16.0 - net).clamp(0.0, 32.0);
                let cp_tiebreak = dist / (self.analysis.critical_path as f64 + 1.0);
                1.0 + tier * span + pressure_rank * (n + 1.0) + cp_tiebreak
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::OccupancyModel;
    use reg_pressure::RegUniverse;
    use sched_ir::figure1;

    #[test]
    fn analysis_matches_ddg_queries() {
        let ddg = figure1::ddg();
        let a = RegionAnalysis::new(&ddg);
        assert_eq!(a.ready_list_ub, 5);
        assert_eq!(a.dist_to_leaf.len(), 7);
        assert_eq!(a.succ_count.iter().sum::<u32>(), ddg.edge_count() as u32);
    }

    #[test]
    fn critical_path_prefers_long_chains() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let analysis = RegionAnalysis::new(&ddg);
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let universe = RegUniverse::new(&ddg);
        let t = PressureTracker::new(&universe);
        let eval = HeuristicEval::new(Heuristic::CriticalPath, &analysis, &occ);
        // A heads the longest chain (lat 4 to E), so beats B/C/D.
        for other in [ids.b, ids.c, ids.d] {
            assert!(eval.eta(ids.a, &t) > eval.eta(other, &t));
        }
    }

    #[test]
    fn last_use_count_prefers_killers() {
        let (ddg, ids) = figure1::ddg_with_ids();
        let analysis = RegionAnalysis::new(&ddg);
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for id in [ids.c, ids.d] {
            t.issue(id);
        }
        let eval = HeuristicEval::new(Heuristic::LastUseCount, &analysis, &occ);
        // F kills r3 and r4; A kills nothing.
        assert!(eval.eta(ids.f, &t) > eval.eta(ids.a, &t));
    }

    #[test]
    fn eta_is_strictly_positive_for_all_heuristics() {
        let ddg = figure1::ddg();
        let analysis = RegionAnalysis::new(&ddg);
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let universe = RegUniverse::new(&ddg);
        let t = PressureTracker::new(&universe);
        for h in Heuristic::ALL {
            let eval = HeuristicEval::new(h, &analysis, &occ);
            for id in ddg.ids() {
                assert!(eval.eta(id, &t) > 0.0, "{h:?} eta({id}) must be positive");
            }
        }
    }
}
