//! Greedy list schedulers and guiding heuristics.
//!
//! Three heuristics from the paper are provided:
//!
//! * [`Heuristic::CriticalPath`] — the classic CP priority (schedule the
//!   instruction with the longest latency-weighted path to a leaf first);
//!   aggressive on schedule length.
//! * [`Heuristic::LastUseCount`] — LUC (Shobaki et al. 2015): prefer
//!   instructions that close the most live ranges; aggressive on register
//!   pressure.
//! * [`Heuristic::AmdMaxOccupancy`] — a greedy approximation of AMD's
//!   production `GCNMaxOccupancySchedStrategy`, the paper's baseline: avoid
//!   choices that would lower occupancy, then fall back to critical path.
//!
//! The same heuristics double as the ACO *guiding heuristic* η (see the
//! `aco` crate): [`HeuristicEval::eta`] returns a strictly positive
//! desirability score for a candidate.

pub mod eval;
pub mod scheduler;

pub use eval::{Heuristic, HeuristicEval, RegionAnalysis};
pub use scheduler::{evaluate_order, ListScheduler, ScheduleResult};
