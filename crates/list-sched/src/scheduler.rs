//! The greedy list scheduler.

use crate::eval::{Heuristic, HeuristicEval, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use reg_pressure::{PressureTracker, RegUniverse};
use sched_ir::{Cycle, Ddg, InstrId, Schedule, REG_CLASS_COUNT};

/// A schedule together with the quality metrics the pipeline compares.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The timed schedule (with stalls on a single-issue machine).
    pub schedule: Schedule,
    /// Issue order (instructions sorted by cycle).
    pub order: Vec<InstrId>,
    /// Peak register pressure per class.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Occupancy implied by the PRP.
    pub occupancy: u32,
    /// Schedule length in cycles.
    pub length: Cycle,
}

/// Evaluates an instruction order: builds the earliest-issue timed schedule
/// and computes PRP/occupancy/length.
pub fn evaluate_order(ddg: &Ddg, order: &[InstrId], occ: &OccupancyModel) -> ScheduleResult {
    let schedule = Schedule::from_order(ddg, order);
    let prp = reg_pressure::prp_of_order(ddg, order);
    ScheduleResult {
        length: schedule.length(),
        occupancy: occ.occupancy(prp),
        prp,
        order: order.to_vec(),
        schedule,
    }
}

/// A greedy list scheduler driven by one [`Heuristic`].
///
/// Produces the *initial schedule* for ACO and, with
/// [`Heuristic::AmdMaxOccupancy`], the paper's production baseline.
///
/// # Example
///
/// ```
/// use list_sched::{Heuristic, ListScheduler};
/// use machine_model::OccupancyModel;
/// use sched_ir::figure1;
///
/// let ddg = figure1::ddg();
/// let occ = OccupancyModel::vega_like();
/// let result = ListScheduler::new(Heuristic::CriticalPath).schedule(&ddg, &occ);
/// result.schedule.validate(&ddg).unwrap();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ListScheduler {
    heuristic: Heuristic,
}

impl ListScheduler {
    /// Creates a list scheduler using the given heuristic.
    pub fn new(heuristic: Heuristic) -> ListScheduler {
        ListScheduler { heuristic }
    }

    /// The heuristic driving this scheduler.
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// Builds a latency-free instruction *order* greedily (pass-1 style:
    /// the machine is treated as stall-free, only precedence matters).
    pub fn order(&self, ddg: &Ddg, occ: &OccupancyModel) -> Vec<InstrId> {
        let analysis = RegionAnalysis::new(ddg);
        self.order_with(ddg, occ, &analysis)
    }

    /// Like [`Self::order`] but reusing a precomputed analysis.
    pub fn order_with(
        &self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        analysis: &RegionAnalysis,
    ) -> Vec<InstrId> {
        let universe = RegUniverse::new(ddg);
        let lut = OccupancyLut::new(occ);
        self.order_in(ddg, &lut, analysis, &universe)
    }

    /// Like [`Self::order_with`] but also reusing a prebuilt register
    /// universe and occupancy table — the form schedulers that already
    /// interned the region call.
    pub fn order_in(
        &self,
        ddg: &Ddg,
        lut: &OccupancyLut,
        analysis: &RegionAnalysis,
        universe: &RegUniverse,
    ) -> Vec<InstrId> {
        let eval = HeuristicEval::new(self.heuristic, analysis, lut);
        let mut pressure = PressureTracker::new(universe);
        let mut pending_preds: Vec<u32> = ddg.pred_counts().to_vec();
        let mut ready: Vec<InstrId> = ddg.roots().collect();
        let mut order = Vec::with_capacity(ddg.len());
        while let Some(pos) = argmax_by(&ready, |&id| eval.eta(id, &pressure)) {
            let id = ready.swap_remove(pos);
            pressure.issue(id);
            order.push(id);
            for &(s, _) in ddg.succs(id) {
                pending_preds[s.index()] -= 1;
                if pending_preds[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), ddg.len());
        order
    }

    /// Builds a timed, latency-aware schedule greedily: at each cycle, pick
    /// the best *issuable* candidate; if none is issuable, stall to the next
    /// ready cycle.
    pub fn schedule(&self, ddg: &Ddg, occ: &OccupancyModel) -> ScheduleResult {
        let analysis = RegionAnalysis::new(ddg);
        self.schedule_with(ddg, occ, &analysis)
    }

    /// Like [`Self::schedule`] but reusing a precomputed analysis.
    pub fn schedule_with(
        &self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        analysis: &RegionAnalysis,
    ) -> ScheduleResult {
        let universe = RegUniverse::new(ddg);
        let lut = OccupancyLut::new(occ);
        self.schedule_in(ddg, &lut, analysis, &universe)
    }

    /// Like [`Self::schedule_with`] but also reusing a prebuilt register
    /// universe and occupancy table.
    pub fn schedule_in(
        &self,
        ddg: &Ddg,
        lut: &OccupancyLut,
        analysis: &RegionAnalysis,
        universe: &RegUniverse,
    ) -> ScheduleResult {
        let eval = HeuristicEval::new(self.heuristic, analysis, lut);
        let mut pressure = PressureTracker::new(universe);
        let n = ddg.len();
        let mut pending_preds: Vec<u32> = ddg.pred_counts().to_vec();
        // (instruction, cycle at which its operands are available)
        let mut ready: Vec<(InstrId, Cycle)> = ddg.roots().map(|i| (i, 0)).collect();
        let mut cycles = vec![0 as Cycle; n];
        let mut order = Vec::with_capacity(n);
        let mut now: Cycle = 0;
        while !ready.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (i, &(id, rc)) in ready.iter().enumerate() {
                if rc <= now {
                    let v = eval.eta(id, &pressure);
                    if best.is_none_or(|(_, b)| v > b) {
                        best = Some((i, v));
                    }
                }
            }
            match best.map(|(i, _)| i) {
                Some(pos) => {
                    let (id, _) = ready.swap_remove(pos);
                    cycles[id.index()] = now;
                    pressure.issue(id);
                    order.push(id);
                    for &(s, _) in ddg.succs(id) {
                        pending_preds[s.index()] -= 1;
                        if pending_preds[s.index()] == 0 {
                            // Operands are available once every producer's
                            // latency has elapsed.
                            let rc = ddg
                                .preds(s)
                                .iter()
                                .map(|&(p, lat)| cycles[p.index()] + lat as Cycle)
                                .max()
                                .unwrap_or(0);
                            ready.push((s, rc));
                        }
                    }
                    now += 1;
                }
                None => {
                    // Necessary stall: jump to the next availability.
                    now = ready
                        .iter()
                        .map(|&(_, rc)| rc)
                        .min()
                        .expect("ready is non-empty");
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        let schedule = Schedule::from_cycles(cycles);
        let prp = pressure.peak();
        ScheduleResult {
            length: schedule.length(),
            occupancy: lut.occupancy(prp),
            prp,
            order,
            schedule,
        }
    }
}

/// Index of the maximum of `f` over `items` (first wins ties); `None` when
/// empty.
fn argmax_by<T>(items: &[T], mut f: impl FnMut(&T) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, item) in items.iter().enumerate() {
        let v = f(item);
        if best.is_none_or(|(_, b)| v > b) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::figure1;

    #[test]
    fn all_heuristics_produce_valid_schedules() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        for h in Heuristic::ALL {
            let r = ListScheduler::new(h).schedule(&ddg, &occ);
            r.schedule
                .validate(&ddg)
                .unwrap_or_else(|e| panic!("{h:?}: {e}"));
            assert_eq!(r.order.len(), ddg.len());
            assert!(r.length >= ddg.schedule_length_lb());
        }
    }

    #[test]
    fn order_is_a_topological_permutation() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        for h in Heuristic::ALL {
            let order = ListScheduler::new(h).order(&ddg, &occ);
            let mut pos = vec![usize::MAX; ddg.len()];
            for (i, id) in order.iter().enumerate() {
                pos[id.index()] = i;
            }
            assert!(
                pos.iter().all(|&p| p != usize::MAX),
                "{h:?}: not a permutation"
            );
            for id in ddg.ids() {
                for &(s, _) in ddg.succs(id) {
                    assert!(
                        pos[id.index()] < pos[s.index()],
                        "{h:?}: precedence violated"
                    );
                }
            }
        }
    }

    #[test]
    fn luc_order_beats_cp_on_pressure_for_figure1() {
        let (ddg, _) = figure1::ddg_with_ids();
        let occ = OccupancyModel::vega_like();
        let luc = ListScheduler::new(Heuristic::LastUseCount).order(&ddg, &occ);
        let luc_prp = reg_pressure::prp_of_order(&ddg, &luc);
        // LUC should reach the optimal PRP of 3 on the Figure-1 region.
        assert_eq!(luc_prp[0], 3);
    }

    #[test]
    fn cp_schedule_reaches_unconstrained_optimum_on_figure1() {
        // The unconstrained optimum of the Figure-1 region is 8 cycles
        // (the LB of 7 is not achievable); CP should find it.
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::CriticalPath).schedule(&ddg, &occ);
        assert_eq!(r.length, 8);
    }

    #[test]
    fn evaluate_order_matches_schedule_result() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::CriticalPath).schedule(&ddg, &occ);
        let e = evaluate_order(&ddg, &r.order, &occ);
        assert_eq!(e.prp, r.prp);
        assert_eq!(e.occupancy, r.occupancy);
        // evaluate_order compacts to earliest cycles, so it can only be
        // shorter or equal.
        assert!(e.length <= r.length);
    }

    #[test]
    fn stalls_inserted_when_nothing_issuable() {
        use sched_ir::DdgBuilder;
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        let c = b.instr("b", [], []);
        b.edge(a, c, 10).unwrap();
        let g = b.build().unwrap();
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::CriticalPath).schedule(&g, &occ);
        assert_eq!(r.length, 11);
        assert_eq!(r.schedule.stalls(), 9);
    }
}
