//! Batched multi-region compilation: the paper's Section VII proposal
//! ("scheduling multiple regions in parallel") promoted into a first-class
//! pipeline mode ([`SchedulerKind::BatchedParallelAco`]).
//!
//! The planner groups a kernel's ACO-eligible regions into cooperative
//! launch groups under the colony's block-budget invariant — a group never
//! holds more regions than the colony has blocks, so the split wavefront
//! groups of one launch always fit the device the colony was sized for.
//! Small regions are batched first: their individual launches are
//! dominated by the fixed launch/copy overheads batching shares (the
//! Table-3 1–49 band), and grouping similar sizes keeps a cooperative
//! kernel from idling on one slow region. Construction results are
//! bitwise-identical to per-region launches with the same split colony;
//! only the launch cost model changes.

use crate::config::{BatchingConfig, PipelineConfig};
use crate::region::{assemble_compilation, heuristic_model_time_us, RegionCompilation};
use aco::{batch_block_split, ParallelScheduler};
use list_sched::{Heuristic, ListScheduler};
use machine_model::OccupancyModel;
use sched_ir::Ddg;
use workloads::Kernel;

/// Plans the cooperative launch groups for one kernel.
///
/// `sizes` are the kernel's region sizes in region order. Returns groups
/// of region indices; regions in no group (the trivial single-instruction
/// ones, which never touch the GPU) compile solo. Every group satisfies
/// `group.len() <= blocks` (each region keeps at least one block) and the
/// configured [`BatchingConfig`] caps. Deterministic in its inputs.
pub fn plan_batches(sizes: &[usize], blocks: u32, cfg: &BatchingConfig) -> Vec<Vec<usize>> {
    let cap = cfg.group_cap(blocks);
    let mut eligible: Vec<usize> = (0..sizes.len()).filter(|&i| sizes[i] > 1).collect();
    // Small-region bands first, similar sizes together.
    eligible.sort_by_key(|&i| (sizes[i], i));
    eligible.chunks(cap).map(<[usize]>::to_vec).collect()
}

/// Compiles one planned group of a kernel's regions in a single cooperative
/// launch pair, assembling per-region compilations whose time accounting
/// reflects the *batched* launches (each pass's shared cost is attributed
/// to its regions in proportion to their solo share, so the per-region
/// times sum to the batched total).
///
/// Pure in its inputs — no observer, no shared state — so the suite
/// compiler's host worker pool can run groups concurrently. Each returned
/// entry is `(region index, config, compilation)`, where the config is the
/// split-colony configuration the region's construction actually ran under;
/// replaying those tuples in order through the observer keeps the
/// certification hook (`sched-verify`) exact for batched schedules too.
pub(crate) fn compile_batch_group(
    kernel: &Kernel,
    group: &[usize],
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
) -> Vec<(usize, PipelineConfig, RegionCompilation)> {
    let refs: Vec<&Ddg> = group.iter().map(|&ri| &kernel.regions[ri]).collect();
    let batch = ParallelScheduler::new(cfg.aco).schedule_batch(&refs, occ);
    let split = batch_block_split(cfg.aco.blocks, group.len() as u32);
    // Solo per-pass totals, for proportional attribution of the shared
    // launch costs.
    let solo_pass_us = |pass: usize| -> Vec<f64> {
        batch
            .outcomes
            .iter()
            .map(|o| {
                if pass == 0 {
                    o.gpu.pass1_profile.total_us()
                } else {
                    o.gpu.pass2_profile.total_us()
                }
            })
            .collect()
    };
    let shares = |pass: usize| -> Vec<f64> {
        let solo = solo_pass_us(pass);
        let sum: f64 = solo.iter().sum();
        let shared = batch.pass_profiles[pass].total_us();
        solo.iter()
            .map(|&s| if sum > 0.0 { shared * s / sum } else { 0.0 })
            .collect()
    };
    let (p1_shares, p2_shares) = (shares(0), shares(1));

    group
        .iter()
        .enumerate()
        .map(|(pos, &ri)| {
            let ddg = &kernel.regions[ri];
            let mut result = batch.outcomes[pos].result.clone();
            result.pass1.time_us = p1_shares[pos];
            result.pass2.time_us = p2_shares[pos];
            result.time_us = p1_shares[pos] + p2_shares[pos];
            let heuristic = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(ddg, occ);
            let c = assemble_compilation(
                ddg,
                heuristic,
                heuristic_model_time_us(ddg),
                Some(result),
                cfg,
            );
            let mut region_cfg = *cfg;
            region_cfg.aco.blocks = split[pos];
            (ri, region_cfg, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;

    #[test]
    fn planner_skips_trivial_and_caps_groups() {
        let sizes = [1, 40, 12, 1, 90, 25, 200, 8];
        let cfg = BatchingConfig {
            max_group: 3,
            min_blocks_per_region: 2,
        };
        let groups = plan_batches(&sizes, 16, &cfg);
        let planned: Vec<usize> = groups.iter().flatten().copied().collect();
        assert!(!planned.contains(&0) && !planned.contains(&3), "trivial");
        assert_eq!(planned.len(), 6, "every non-trivial region planned");
        for g in &groups {
            assert!(g.len() <= 3);
        }
        // Small-first: the first group holds the three smallest regions.
        assert_eq!(groups[0], vec![7, 2, 5]);
    }

    #[test]
    fn planner_never_exceeds_block_budget() {
        let sizes: Vec<usize> = (0..20).map(|i| 10 + i).collect();
        for blocks in 1..=8u32 {
            let cfg = BatchingConfig {
                max_group: 32,
                min_blocks_per_region: 1,
            };
            for g in plan_batches(&sizes, blocks, &cfg) {
                assert!(
                    g.len() <= blocks as usize,
                    "group of {} regions on {blocks} blocks",
                    g.len()
                );
            }
        }
    }

    #[test]
    fn planner_is_deterministic() {
        let sizes = [30usize, 30, 7, 150, 2, 61];
        let cfg = BatchingConfig::paper();
        assert_eq!(
            plan_batches(&sizes, 16, &cfg),
            plan_batches(&sizes, 16, &cfg)
        );
    }

    #[test]
    fn batched_kernel_matches_split_colony_solo_schedules() {
        use crate::region::compile_region;
        let occ = OccupancyModel::vega_like();
        let kernel = kernel_of_sizes(&[30, 45, 60], 4100);
        let mut cfg = PipelineConfig::paper(SchedulerKind::BatchedParallelAco, 0);
        cfg.aco.blocks = 12;
        cfg.aco.pass2_gate_cycles = 1;
        let sizes: Vec<usize> = kernel.regions.iter().map(Ddg::len).collect();
        let groups = plan_batches(&sizes, cfg.aco.blocks, &cfg.batching);
        // One group of 3 (sizes 30/45/60 sorted: [30, 45, 60]); split 4/4/4.
        assert_eq!(groups.len(), 1);
        let outcomes = compile_batch_group(&kernel, &groups[0], &occ, &cfg);
        assert_eq!(outcomes.len(), 3);
        for (ri, region_cfg, c) in &outcomes {
            let mut solo_cfg = *region_cfg;
            solo_cfg.scheduler = SchedulerKind::ParallelAco;
            let solo = compile_region(&kernel.regions[*ri], &occ, &solo_cfg);
            let (a, s) = (c.aco.as_ref().unwrap(), solo.aco.as_ref().unwrap());
            assert_eq!(a.order, s.order, "region {ri}");
            assert_eq!(a.schedule, s.schedule, "region {ri}");
            assert_eq!(a.prp, s.prp);
            assert_eq!(a.length, s.length);
        }
    }

    #[test]
    fn batched_time_attribution_sums_to_shared_cost() {
        let occ = OccupancyModel::vega_like();
        let kernel = kernel_of_sizes(&[20, 35, 50, 80], 4200);
        let mut cfg = PipelineConfig::paper(SchedulerKind::BatchedParallelAco, 1);
        cfg.aco.blocks = 16;
        cfg.aco.pass2_gate_cycles = 1;
        cfg.batching.max_group = 4;
        let refs: Vec<&Ddg> = kernel.regions.iter().collect();
        let batch = ParallelScheduler::new(cfg.aco).schedule_batch(&refs, &occ);
        let sizes: Vec<usize> = kernel.regions.iter().map(Ddg::len).collect();
        let groups = plan_batches(&sizes, cfg.aco.blocks, &cfg.batching);
        assert_eq!(groups.len(), 1, "all four regions fit one group");
        let compiled = compile_batch_group(&kernel, &groups[0], &occ, &cfg);
        let attributed: f64 = compiled
            .iter()
            .map(|(ri, _, c)| c.sched_time_us - heuristic_model_time_us(&kernel.regions[*ri]))
            .sum();
        assert!(
            (attributed - batch.batched_us).abs() < 1e-6,
            "attributed {attributed} vs batched {}",
            batch.batched_us
        );
        assert!(batch.batched_us < batch.individual_us);
    }

    /// A kernel with mixed-size regions, deterministic in `seed`.
    fn kernel_of_sizes(sizes: &[usize], seed: u64) -> Kernel {
        Kernel {
            name: format!("test_kernel_{seed}"),
            regions: sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| workloads::patterns::sized(n, seed + i as u64))
                .collect(),
            bytes_per_launch: 1 << 20,
            latency_bound: 0.5,
        }
    }
}
