//! In-pipeline static analysis: the `sched-analyze` S-code passes run
//! over every region the pipeline compiles, plus the S007 cache-key
//! coverage check.
//!
//! Analysis is strictly **read-only**: it observes the same
//! `(ddg, compilation)` pairs the verification hook sees and never touches
//! a schedule, a record, or a modeled time, so every suite result is
//! bitwise identical with [`crate::config::AnalyzeConfig`] on or off. The
//! only output is [`AnalysisReport`] on [`crate::SuiteRun::analysis`].
//!
//! Two kinds of checks run:
//!
//! * **per region** ([`analyze_region`]) — the structural passes
//!   (S001–S004) over the region's DDG, and the claim passes (S005/S006)
//!   over every schedule the pipeline produced for it: the heuristic
//!   baseline and, when ACO ran, the ACO result. A deny finding here means
//!   a scheduler claimed something no legal schedule can achieve.
//! * **once per suite** ([`check_config_drift`]) — S007: every
//!   scheduling-relevant [`PipelineConfig`] field and machine-model
//!   parameter must move the schedule-cache key
//!   ([`crate::cache`]'s `hash_config`). A field that does not is a
//!   stale-cache hazard: two configurations that schedule differently
//!   would share cache entries.

use crate::cache;
use crate::config::{PipelineConfig, SchedulerKind};
use crate::region::RegionCompilation;
use gpu_sim::MemLayout;
use list_sched::Heuristic;
use machine_model::OccupancyModel;
use sched_analyze::{
    analyze_graph, check_claims, check_config_coverage, ConfigProbe, Finding, Level, RegionGraph,
    ScheduleClaim,
};
use sched_ir::{Ddg, Fnv64};

/// Deny findings kept verbatim in an [`AnalysisReport`]; beyond this the
/// report only counts (a broken suite would otherwise carry thousands of
/// identical findings around).
pub const MAX_REPORTED_DENY: usize = 32;

/// Aggregated outcome of in-pipeline analysis over one suite compilation.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Region compilations analyzed (capped re-schedules count again:
    /// every observed compilation is analyzed).
    pub regions_analyzed: usize,
    /// Total deny-level findings.
    pub deny: usize,
    /// Total warn-level findings.
    pub warn: usize,
    /// Total pedantic-level findings.
    pub pedantic: usize,
    /// The first [`MAX_REPORTED_DENY`] deny findings, verbatim.
    pub deny_findings: Vec<Finding>,
}

impl AnalysisReport {
    /// No deny-level findings anywhere in the suite.
    pub fn is_clean(&self) -> bool {
        self.deny == 0
    }

    /// Folds one batch of findings into the report.
    pub fn absorb(&mut self, findings: Vec<Finding>) {
        for f in findings {
            match f.level {
                Level::Deny => {
                    self.deny += 1;
                    if self.deny_findings.len() < MAX_REPORTED_DENY {
                        self.deny_findings.push(f);
                    }
                }
                Level::Warn => self.warn += 1,
                Level::Pedantic => self.pedantic += 1,
            }
        }
    }
}

/// The schedule-cache configuration fingerprint the S007 probes exercise:
/// exactly the fold [`crate::cache`] keys entries with.
pub(crate) fn config_fingerprint(cfg: &PipelineConfig, occ: &OccupancyModel) -> u64 {
    let mut h = Fnv64::new();
    cache::hash_config(&mut h, cfg, occ);
    h.finish()
}

/// Flips the low mantissa bit: guaranteed to change the value's bit
/// pattern, which is what the fingerprint folds.
fn flip(f: f64) -> f64 {
    f64::from_bits(f.to_bits() ^ 1)
}

type Probed = (PipelineConfig, OccupancyModel);

/// One probe per scheduling-relevant field of [`PipelineConfig`] and the
/// machine model. Deliberately **absent** (non-scheduling knobs, so the
/// cache key must NOT include them): the base compile costs, the batching
/// policy (folded into group membership, not the key), `host_threads`,
/// `cache`, and `analyze` itself — all are transparency knobs whose values
/// must share cache entries.
fn drift_probes() -> Vec<ConfigProbe<Probed>> {
    fn occ_with(c: &mut Probed, edit: fn(&mut [u32])) {
        let mut sig = c.1.signature();
        edit(&mut sig);
        c.1 = OccupancyModel::from_signature(sig);
    }
    vec![
        ConfigProbe {
            field: "scheduler",
            mutate: |c| {
                c.0.scheduler = match c.0.scheduler {
                    SchedulerKind::BaseAmd => SchedulerKind::ParallelAco,
                    _ => SchedulerKind::BaseAmd,
                }
            },
        },
        ConfigProbe {
            field: "revert_occupancy_gain",
            mutate: |c| c.0.revert_occupancy_gain += 1,
        },
        ConfigProbe {
            field: "revert_length_penalty",
            mutate: |c| c.0.revert_length_penalty += 1,
        },
        ConfigProbe {
            field: "aco.seed",
            mutate: |c| c.0.aco.seed ^= 0x9e37_79b9_7f4a_7c15,
        },
        ConfigProbe {
            field: "aco.sequential_ants",
            mutate: |c| c.0.aco.sequential_ants += 1,
        },
        ConfigProbe {
            field: "aco.blocks",
            mutate: |c| c.0.aco.blocks += 1,
        },
        ConfigProbe {
            field: "aco.threads_per_block",
            mutate: |c| c.0.aco.threads_per_block += 1,
        },
        ConfigProbe {
            field: "aco.decay",
            mutate: |c| c.0.aco.decay = flip(c.0.aco.decay),
        },
        ConfigProbe {
            field: "aco.q0",
            mutate: |c| c.0.aco.q0 = flip(c.0.aco.q0),
        },
        ConfigProbe {
            field: "aco.beta",
            mutate: |c| c.0.aco.beta = flip(c.0.aco.beta),
        },
        ConfigProbe {
            field: "aco.initial_pheromone",
            mutate: |c| c.0.aco.initial_pheromone = flip(c.0.aco.initial_pheromone),
        },
        ConfigProbe {
            field: "aco.deposit",
            mutate: |c| c.0.aco.deposit = flip(c.0.aco.deposit),
        },
        ConfigProbe {
            field: "aco.tau_min",
            mutate: |c| c.0.aco.tau_min = flip(c.0.aco.tau_min),
        },
        ConfigProbe {
            field: "aco.tau_max",
            mutate: |c| c.0.aco.tau_max = flip(c.0.aco.tau_max),
        },
        ConfigProbe {
            field: "aco.termination.small",
            mutate: |c| c.0.aco.termination.small += 1,
        },
        ConfigProbe {
            field: "aco.termination.medium",
            mutate: |c| c.0.aco.termination.medium += 1,
        },
        ConfigProbe {
            field: "aco.termination.large",
            mutate: |c| c.0.aco.termination.large += 1,
        },
        ConfigProbe {
            field: "aco.termination.max_iterations",
            mutate: |c| c.0.aco.termination.max_iterations += 1,
        },
        ConfigProbe {
            field: "aco.heuristic",
            mutate: |c| {
                c.0.aco.heuristic = match c.0.aco.heuristic {
                    Heuristic::CriticalPath => Heuristic::LastUseCount,
                    _ => Heuristic::CriticalPath,
                }
            },
        },
        ConfigProbe {
            field: "aco.optional_stall_budget",
            mutate: |c| c.0.aco.optional_stall_budget = flip(c.0.aco.optional_stall_budget),
        },
        ConfigProbe {
            field: "aco.tuning.layout",
            mutate: |c| {
                c.0.aco.tuning.layout = match c.0.aco.tuning.layout {
                    MemLayout::Soa => MemLayout::Aos,
                    MemLayout::Aos => MemLayout::Soa,
                }
            },
        },
        ConfigProbe {
            field: "aco.tuning.preallocate",
            mutate: |c| c.0.aco.tuning.preallocate = !c.0.aco.tuning.preallocate,
        },
        ConfigProbe {
            field: "aco.tuning.batched_transfer",
            mutate: |c| c.0.aco.tuning.batched_transfer = !c.0.aco.tuning.batched_transfer,
        },
        ConfigProbe {
            field: "aco.tuning.tight_ready_ub",
            mutate: |c| c.0.aco.tuning.tight_ready_ub = !c.0.aco.tuning.tight_ready_ub,
        },
        ConfigProbe {
            field: "aco.tuning.wavefront_level_choice",
            mutate: |c| {
                c.0.aco.tuning.wavefront_level_choice = !c.0.aco.tuning.wavefront_level_choice
            },
        },
        ConfigProbe {
            field: "aco.tuning.stall_wavefront_fraction",
            mutate: |c| {
                c.0.aco.tuning.stall_wavefront_fraction =
                    flip(c.0.aco.tuning.stall_wavefront_fraction)
            },
        },
        ConfigProbe {
            field: "aco.tuning.early_wavefront_termination",
            mutate: |c| {
                c.0.aco.tuning.early_wavefront_termination =
                    !c.0.aco.tuning.early_wavefront_termination
            },
        },
        ConfigProbe {
            field: "aco.tuning.per_wavefront_heuristics",
            mutate: |c| {
                c.0.aco.tuning.per_wavefront_heuristics = !c.0.aco.tuning.per_wavefront_heuristics
            },
        },
        ConfigProbe {
            field: "aco.pass2_gate_cycles",
            mutate: |c| c.0.aco.pass2_gate_cycles += 1,
        },
        ConfigProbe {
            field: "aco.occupancy_cap",
            mutate: |c| {
                c.0.aco.occupancy_cap = match c.0.aco.occupancy_cap {
                    None => Some(5),
                    Some(_) => None,
                }
            },
        },
        ConfigProbe {
            field: "occ.vgpr_budget",
            mutate: |c| occ_with(c, |sig| sig[0] += 1),
        },
        ConfigProbe {
            field: "occ.vgpr_granule",
            mutate: |c| occ_with(c, |sig| sig[1] += 1),
        },
        ConfigProbe {
            field: "occ.vgpr_per_wave_max",
            mutate: |c| occ_with(c, |sig| sig[2] += 1),
        },
        ConfigProbe {
            field: "occ.sgpr_budget",
            mutate: |c| occ_with(c, |sig| sig[3] += 1),
        },
        ConfigProbe {
            field: "occ.sgpr_granule",
            mutate: |c| occ_with(c, |sig| sig[4] += 1),
        },
        ConfigProbe {
            field: "occ.sgpr_per_wave_max",
            mutate: |c| occ_with(c, |sig| sig[5] += 1),
        },
        ConfigProbe {
            field: "occ.max_waves",
            mutate: |c| occ_with(c, |sig| sig[6] += 1),
        },
    ]
}

/// S007: probes every scheduling-relevant configuration field against the
/// schedule-cache key. Empty on a healthy build; a finding names the field
/// the cache key lost.
pub fn check_config_drift(cfg: &PipelineConfig, occ: &OccupancyModel) -> Vec<Finding> {
    check_config_coverage(&(*cfg, *occ), &drift_probes(), |c: &Probed| {
        config_fingerprint(&c.0, &c.1)
    })
}

/// Runs the structural passes (S001–S004) on one compiled region's DDG and
/// the claim passes (S005/S006) on every schedule the compilation carries.
pub fn analyze_region(ddg: &Ddg, comp: &RegionCompilation) -> Vec<Finding> {
    let g = RegionGraph::from_ddg(ddg);
    let mut findings = analyze_graph(&g);
    let h = &comp.heuristic;
    findings.extend(check_claims(
        &g,
        &ScheduleClaim {
            length: h.length as u64,
            prp: h.prp,
            source: "heuristic",
        },
    ));
    if let Some(a) = &comp.aco {
        findings.extend(check_claims(
            &g,
            &ScheduleClaim {
                length: a.length as u64,
                prp: a.prp,
                source: "aco",
            },
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::compile_region;

    fn paper_cfg() -> PipelineConfig {
        let mut c = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        c.aco.blocks = 4;
        c
    }

    #[test]
    fn cache_key_covers_every_probed_field() {
        let occ = OccupancyModel::vega_like();
        let findings = check_config_drift(&paper_cfg(), &occ);
        assert!(
            findings.is_empty(),
            "cache key lost a scheduling-relevant field:\n{}",
            sched_analyze::render_text(&findings)
        );
    }

    #[test]
    fn a_lossy_fingerprint_is_caught_per_field() {
        // A fingerprint that ignores the whole config: every probe must
        // report S007 against its own field name.
        let base = (paper_cfg(), OccupancyModel::vega_like());
        let probes = drift_probes();
        let findings = check_config_coverage(&base, &probes, |_| 0u64);
        assert_eq!(findings.len(), probes.len());
        for (f, p) in findings.iter().zip(&probes) {
            assert_eq!(f.code, sched_analyze::codes::CONFIG_DRIFT);
            assert!(
                f.anchor.to_string().contains(p.field),
                "finding {f} does not name probed field {}",
                p.field
            );
        }
    }

    #[test]
    fn pipeline_compilations_analyze_clean_of_deny_findings() {
        let occ = OccupancyModel::vega_like();
        let cfg = paper_cfg();
        for seed in 0..6u64 {
            let ddg = workloads::patterns::sized(40 + 10 * (seed as usize % 3), seed);
            let comp = compile_region(&ddg, &occ, &cfg);
            let findings = analyze_region(&ddg, &comp);
            let deny: Vec<_> = findings.iter().filter(|f| f.level == Level::Deny).collect();
            assert!(
                deny.is_empty(),
                "seed {seed}: real compilation flagged: {deny:?}"
            );
        }
    }

    #[test]
    fn infeasible_claims_are_denied() {
        let occ = OccupancyModel::vega_like();
        let ddg = workloads::patterns::sized(50, 7);
        let mut comp = compile_region(&ddg, &occ, &paper_cfg());
        comp.heuristic.length = 1; // no 50-instruction schedule fits 1 cycle
        let findings = analyze_region(&ddg, &comp);
        assert!(findings
            .iter()
            .any(|f| f.code == sched_analyze::codes::LENGTH_INFEASIBLE));
    }

    #[test]
    fn report_counts_and_caps() {
        let mut rep = AnalysisReport::default();
        assert!(rep.is_clean());
        let g = RegionGraph::from_ddg(&workloads::patterns::sized(30, 3));
        for _ in 0..MAX_REPORTED_DENY + 5 {
            rep.absorb(check_claims(
                &g,
                &ScheduleClaim {
                    length: 0,
                    prp: [0; sched_ir::REG_CLASS_COUNT],
                    source: "test",
                },
            ));
        }
        assert!(!rep.is_clean());
        assert!(rep.deny > MAX_REPORTED_DENY);
        assert_eq!(rep.deny_findings.len(), MAX_REPORTED_DENY);
    }
}
