//! Per-region compilation: heuristic → LB gate → ACO → filters.

use crate::config::{PipelineConfig, SchedulerKind};
use aco::{AcoResult, ParallelScheduler, SequentialScheduler, WarmStart};
use list_sched::{Heuristic, ListScheduler, ScheduleResult};
use machine_model::OccupancyModel;
use sched_ir::{Cycle, Ddg};

/// Which schedule the pipeline kept for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalChoice {
    /// The heuristic schedule (ACO not invoked, not better, or reverted by
    /// the post-scheduling filter).
    Heuristic,
    /// The ACO schedule.
    Aco,
}

/// Compilation outcome of one scheduling region.
#[derive(Debug, Clone)]
pub struct RegionCompilation {
    /// Region size (instructions).
    pub size: usize,
    /// The heuristic baseline schedule.
    pub heuristic: ScheduleResult,
    /// The ACO run, when one happened.
    pub aco: Option<AcoResult>,
    /// Which schedule was kept.
    pub choice: FinalChoice,
    /// Final occupancy.
    pub occupancy: u32,
    /// Final schedule length.
    pub length: Cycle,
    /// Whether ACO processed this region in pass 1 / pass 2.
    pub pass1_processed: bool,
    /// Whether ACO's pass 2 actually iterated (survived the gate).
    pub pass2_processed: bool,
    /// Modeled scheduling time, microseconds.
    pub sched_time_us: f64,
    /// Whether the post-scheduling filter reverted an ACO schedule.
    pub reverted: bool,
}

/// Compiles one region under the configured scheduler.
///
/// For the ACO schedulers this implements the full Section VI-A/VI-D flow:
/// the region is first scheduled with the AMD heuristic; if the heuristic
/// already matches the lower bounds ACO is skipped; otherwise ACO runs with
/// the pass-2 cycle-threshold gate, and the post-scheduling filter compares
/// the final ACO schedule against the heuristic one.
pub fn compile_region(ddg: &Ddg, occ: &OccupancyModel, cfg: &PipelineConfig) -> RegionCompilation {
    compile_region_warm(ddg, occ, cfg, None)
}

/// [`compile_region`] with an optional pheromone warm-start hint for the
/// ACO schedulers (see [`aco::warm`]). With `warm = None` this is exactly
/// `compile_region`, bit for bit; non-ACO scheduler kinds ignore the hint.
///
/// A warm-started compilation is a *different* pure function of its inputs
/// than a cold one, so callers memoizing results must key on the hint too
/// ([`crate::ScheduleCache::compile_solo_with`] does).
pub fn compile_region_warm(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    warm: Option<&WarmStart>,
) -> RegionCompilation {
    // The heuristic cost is charged to every scheduler kind: the ACO flow
    // always runs the heuristic first (Section VI-A).
    let heuristic_kind = match cfg.scheduler {
        SchedulerKind::CriticalPath => Heuristic::CriticalPath,
        _ => Heuristic::AmdMaxOccupancy,
    };
    let heuristic = ListScheduler::new(heuristic_kind).schedule(ddg, occ);
    let heuristic_time_us = heuristic_model_time_us(ddg);

    // A batched-mode solo compilation (trivial regions the planner leaves
    // out, and the kernel post filter's occupancy-capped re-schedules) runs
    // the full-colony parallel scheduler, exactly like `ParallelAco`.
    let aco_result = match cfg.scheduler {
        SchedulerKind::BaseAmd | SchedulerKind::CriticalPath => None,
        SchedulerKind::SequentialAco => {
            Some(SequentialScheduler::new(cfg.aco).schedule_with(ddg, occ, warm))
        }
        SchedulerKind::ParallelAco | SchedulerKind::BatchedParallelAco => Some(
            ParallelScheduler::new(cfg.aco)
                .schedule_with(ddg, occ, warm)
                .result,
        ),
    };

    assemble_compilation(ddg, heuristic, heuristic_time_us, aco_result, cfg)
}

/// Assembles a [`RegionCompilation`] from a heuristic baseline and an
/// optional ACO result: the Section VI-D post-scheduling filter, the
/// processing flags, and the time accounting. Shared by the per-region
/// flow above and the batched kernel flow ([`crate::batch`]), which obtains
/// its ACO results from cooperative multi-region launches.
pub(crate) fn assemble_compilation(
    ddg: &Ddg,
    heuristic: ScheduleResult,
    heuristic_time_us: f64,
    aco_result: Option<AcoResult>,
    cfg: &PipelineConfig,
) -> RegionCompilation {
    match aco_result {
        None => RegionCompilation {
            size: ddg.len(),
            occupancy: heuristic.occupancy,
            length: heuristic.length,
            pass1_processed: false,
            pass2_processed: false,
            sched_time_us: heuristic_time_us,
            reverted: false,
            choice: FinalChoice::Heuristic,
            aco: None,
            heuristic,
        },
        Some(aco) => {
            let pass1_processed = aco.pass1.iterations > 0;
            let pass2_processed = aco.pass2.iterations > 0;
            // Post-scheduling filter (Section VI-D): keep ACO unless it
            // bought little occupancy at a large length cost.
            let occ_gain = aco.occupancy as i64 - heuristic.occupancy as i64;
            let len_delta = aco.length as i64 - heuristic.length as i64;
            let keep_aco = if occ_gain < 0 {
                false
            } else if occ_gain == 0 {
                len_delta < 0
            } else if occ_gain <= cfg.revert_occupancy_gain as i64 {
                len_delta <= cfg.revert_length_penalty as i64
            } else {
                true
            };
            let aco_differs =
                aco.occupancy != heuristic.occupancy || aco.length != heuristic.length;
            let reverted = !keep_aco && aco_differs && (pass1_processed || pass2_processed);
            let (choice, occupancy, length) = if keep_aco {
                (FinalChoice::Aco, aco.occupancy, aco.length)
            } else {
                (
                    FinalChoice::Heuristic,
                    heuristic.occupancy,
                    heuristic.length,
                )
            };
            RegionCompilation {
                size: ddg.len(),
                occupancy,
                length,
                pass1_processed,
                pass2_processed,
                sched_time_us: heuristic_time_us + aco.time_us,
                reverted,
                choice,
                aco: Some(aco),
                heuristic,
            }
        }
    }
}

/// Modeled cost of one heuristic list-scheduling run, microseconds
/// (linear-ish in region size; negligible next to ACO).
pub(crate) fn heuristic_model_time_us(ddg: &Ddg) -> f64 {
    0.5 + 0.02 * (ddg.len() + ddg.edge_count()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn cfg(kind: SchedulerKind) -> PipelineConfig {
        let mut c = PipelineConfig::paper(kind, 0);
        c.aco.blocks = 8;
        c
    }

    #[test]
    fn base_amd_never_runs_aco() {
        let ddg = workloads::patterns::sized(80, 1);
        let occ = OccupancyModel::vega_like();
        let r = compile_region(&ddg, &occ, &cfg(SchedulerKind::BaseAmd));
        assert!(r.aco.is_none());
        assert_eq!(r.choice, FinalChoice::Heuristic);
        assert!(!r.pass1_processed && !r.pass2_processed);
        assert!(r.sched_time_us < 100.0, "heuristic alone is cheap");
    }

    #[test]
    fn final_schedule_is_never_worse_than_heuristic() {
        let occ = OccupancyModel::vega_like();
        for seed in 0..8u64 {
            let ddg = workloads::patterns::sized(30 + 25 * (seed as usize % 4), seed);
            for kind in [SchedulerKind::SequentialAco, SchedulerKind::ParallelAco] {
                let r = compile_region(&ddg, &occ, &cfg(kind));
                assert!(
                    r.occupancy > r.heuristic.occupancy
                        || (r.occupancy == r.heuristic.occupancy && r.length <= r.heuristic.length),
                    "seed {seed} {kind:?}: kept schedule worse than heuristic \
                     (occ {} vs {}, len {} vs {})",
                    r.occupancy,
                    r.heuristic.occupancy,
                    r.length,
                    r.heuristic.length
                );
            }
        }
    }

    #[test]
    fn aco_flow_reports_processing_flags() {
        let occ = OccupancyModel::vega_like();
        let mut any_p1 = false;
        let mut any_p2 = false;
        for seed in 0..10u64 {
            let ddg = workloads::patterns::sized(100, 40 + seed);
            let mut c = cfg(SchedulerKind::ParallelAco);
            c.aco.pass2_gate_cycles = 1;
            let r = compile_region(&ddg, &occ, &c);
            any_p1 |= r.pass1_processed;
            any_p2 |= r.pass2_processed;
        }
        assert!(any_p1, "some regions must be processed by pass 1");
        assert!(any_p2, "some regions must be processed by pass 2");
    }

    #[test]
    fn cycle_threshold_gates_pass2() {
        let occ = OccupancyModel::vega_like();
        // With an absurd threshold, pass 2 never runs.
        let mut c = cfg(SchedulerKind::ParallelAco);
        c.aco.pass2_gate_cycles = 100_000;
        for seed in 0..5u64 {
            let ddg = workloads::patterns::sized(90, seed);
            let r = compile_region(&ddg, &occ, &c);
            assert!(!r.pass2_processed, "seed {seed}: pass 2 must be gated out");
        }
    }

    #[test]
    fn critical_path_kind_uses_cp_heuristic() {
        let ddg = workloads::patterns::sized(60, 2);
        let occ = OccupancyModel::vega_like();
        let cp = compile_region(&ddg, &occ, &cfg(SchedulerKind::CriticalPath));
        let amd = compile_region(&ddg, &occ, &cfg(SchedulerKind::BaseAmd));
        assert!(cp.aco.is_none());
        // CP minimizes length aggressively; AMD protects occupancy.
        assert!(cp.length <= amd.length || cp.occupancy <= amd.occupancy);
    }
}
