//! Pipeline configuration.

use aco::AcoConfig;
use serde::{Deserialize, Serialize};

/// Which scheduler drives the pre-allocation scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The production AMD heuristic alone (the paper's "Base AMD").
    BaseAmd,
    /// The Critical-Path list scheduler alone (used by the sensitivity
    /// classification of Section VI-A).
    CriticalPath,
    /// Heuristic + sequential ACO on the CPU.
    SequentialAco,
    /// Heuristic + parallel ACO on the (simulated) GPU.
    ParallelAco,
}

impl SchedulerKind {
    /// All scheduler kinds.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::BaseAmd,
        SchedulerKind::CriticalPath,
        SchedulerKind::SequentialAco,
        SchedulerKind::ParallelAco,
    ];

    /// Human-readable name used in table output.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::BaseAmd => "Base AMD",
            SchedulerKind::CriticalPath => "Critical Path",
            SchedulerKind::SequentialAco => "Sequential ACO",
            SchedulerKind::ParallelAco => "Parallel ACO",
        }
    }
}

/// Configuration of the per-region compilation flow and its filters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Scheduler selection.
    pub scheduler: SchedulerKind,
    /// ACO parameters (both ACO schedulers).
    pub aco: AcoConfig,
    /// Post-scheduling filter: revert to the heuristic schedule when ACO's
    /// occupancy gain is at most this much...
    pub revert_occupancy_gain: u32,
    /// ...while its schedule length degradation exceeds this many cycles.
    /// The paper settles on gain ≤ 3 combined with degradation > 63 cycles
    /// (Section VI-D).
    pub revert_length_penalty: u32,
    /// Fixed non-scheduling compile cost per region, microseconds (parsing,
    /// instruction selection, register allocation, code emission, ...).
    pub base_cost_per_region_us: f64,
    /// Additional non-scheduling compile cost per instruction,
    /// microseconds.
    pub base_cost_per_instr_us: f64,
}

impl PipelineConfig {
    /// The paper's headline configuration for the given scheduler: cycle
    /// threshold 21, post filter (3, 63).
    pub fn paper(scheduler: SchedulerKind, seed: u64) -> PipelineConfig {
        let mut aco = AcoConfig::small(seed);
        aco.pass2_gate_cycles = 21;
        PipelineConfig {
            scheduler,
            aco,
            revert_occupancy_gain: 3,
            revert_length_penalty: 63,
            // The paper's base compile time is ~4.6 ms per region (840 s /
            // 181,883 regions). Our default colonies are ~6x smaller than
            // the paper's 11,520 ants, so the modeled scheduling times are
            // ~6x smaller too; the base cost is scaled by the same factor
            // to preserve the *share* of compile time that scheduling
            // contributes (what Table 5 is about).
            base_cost_per_region_us: 980.0,
            base_cost_per_instr_us: 28.0,
        }
    }

    /// The base (non-scheduling) compile cost of a region with `n`
    /// instructions, microseconds.
    pub fn base_cost_us(&self, n: usize) -> f64 {
        self.base_cost_per_region_us + self.base_cost_per_instr_us * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_threshold_21() {
        let c = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        assert_eq!(c.aco.pass2_gate_cycles, 21);
        assert_eq!(c.revert_occupancy_gain, 3);
        assert_eq!(c.revert_length_penalty, 63);
    }

    #[test]
    fn base_cost_scales_with_region_size() {
        let c = PipelineConfig::paper(SchedulerKind::BaseAmd, 0);
        assert!(c.base_cost_us(100) > c.base_cost_us(10));
        // A scaled-down fraction of the paper's 4.6 ms per region,
        // matching the scheduling-cost scale of the default colony.
        let per_region_us = c.base_cost_us(15);
        assert!(
            (900.0..2000.0).contains(&per_region_us),
            "{per_region_us} us"
        );
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SchedulerKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SchedulerKind::ALL.len());
    }
}
