//! Pipeline configuration.

use aco::AcoConfig;
use serde::{Deserialize, Serialize};

/// Which scheduler drives the pre-allocation scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The production AMD heuristic alone (the paper's "Base AMD").
    BaseAmd,
    /// The Critical-Path list scheduler alone (used by the sensitivity
    /// classification of Section VI-A).
    CriticalPath,
    /// Heuristic + sequential ACO on the CPU.
    SequentialAco,
    /// Heuristic + parallel ACO on the (simulated) GPU.
    ParallelAco,
    /// Parallel ACO with a kernel's regions batched into cooperative
    /// multi-region launches (the paper's Section VII proposal promoted
    /// into a pipeline mode; see [`crate::batch`]).
    BatchedParallelAco,
}

impl SchedulerKind {
    /// All scheduler kinds.
    pub const ALL: [SchedulerKind; 5] = [
        SchedulerKind::BaseAmd,
        SchedulerKind::CriticalPath,
        SchedulerKind::SequentialAco,
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ];

    /// Human-readable name used in table output.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::BaseAmd => "Base AMD",
            SchedulerKind::CriticalPath => "Critical Path",
            SchedulerKind::SequentialAco => "Sequential ACO",
            SchedulerKind::ParallelAco => "Parallel ACO",
            SchedulerKind::BatchedParallelAco => "Batched Parallel ACO",
        }
    }
}

/// Grouping policy of the batched pipeline mode
/// ([`SchedulerKind::BatchedParallelAco`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Hard cap on regions per cooperative launch group.
    pub max_group: u32,
    /// Minimum blocks (wavefront groups) every batched region keeps when
    /// the colony is split across a group — bounds how far batching
    /// dilutes a region's ant population.
    pub min_blocks_per_region: u32,
}

impl BatchingConfig {
    /// The default policy: groups of at most 8 regions, each keeping at
    /// least 2 of the colony's blocks.
    pub fn paper() -> BatchingConfig {
        BatchingConfig {
            max_group: 8,
            min_blocks_per_region: 2,
        }
    }

    /// The largest group a colony of `blocks` blocks admits under this
    /// policy: at most `max_group` regions, each keeping at least
    /// `min_blocks_per_region` blocks (and never fewer than one — the
    /// block-budget invariant `group size <= blocks` is what keeps a
    /// cooperative launch from oversubscribing the device).
    pub fn group_cap(&self, blocks: u32) -> usize {
        let by_budget = blocks / self.min_blocks_per_region.max(1);
        by_budget.clamp(1, self.max_group.max(1)).min(blocks.max(1)) as usize
    }
}

impl Default for BatchingConfig {
    fn default() -> BatchingConfig {
        BatchingConfig::paper()
    }
}

/// The content-addressed schedule cache knob (see [`crate::cache`]).
///
/// The cache is transparent — region compilation is a pure function of the
/// cache key, every hit is re-certified against the new region instance,
/// and suite golden fingerprints are identical on and off at any thread
/// count — so it defaults to **on**. The knob exists for A/B timing
/// (`BENCH_cache.json`) and for the D004 transparency check itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Consult and populate the schedule cache during suite compilation.
    pub enabled: bool,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { enabled: true }
    }
}

/// The in-pipeline static-analysis knob (see [`crate::analyze`]).
///
/// When enabled, every compiled region is run through `sched-analyze`'s
/// exact S-code passes — the DDG itself (S001–S004) and the winning
/// schedule's claimed length/PRP against recomputed lower bounds
/// (S005/S006) — plus a once-per-suite S007 cache-key coverage check, and
/// the findings are aggregated into [`crate::AnalysisReport`]. Analysis is
/// read-only: schedules, records, and golden fingerprints are bitwise
/// identical on and off. Defaults to **off** because the closure-based
/// passes cost real time on large suites; the CI gate and
/// `gpu-aco-cli analyze` switch it on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzeConfig {
    /// Run the S-code passes during suite compilation.
    pub enabled: bool,
}

#[allow(clippy::derivable_impls)] // symmetry with CacheConfig; the default
                                  // polarity is a deliberate choice, not an
                                  // accident of Default
impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig { enabled: false }
    }
}

/// The self-tuning search knob (see `aco-tune` and [`crate::tune`]).
///
/// When enabled, solo ACO region jobs consult a shared [`aco_tune::TuneStore`]:
/// a deterministic per-class bandit picks the `AcoConfig` arm, and
/// structure-fingerprint near-misses seed the pheromone trail from a
/// previously converged order. Tuned compilations remain pure functions of
/// `(DDG, tuned config, warm hint, machine model)` and key into the
/// schedule cache accordingly, so cache transparency (D004) and
/// thread-determinism hold with tuning on. Defaults to **off**: the
/// untuned paper configuration stays the golden-fingerprint baseline, and
/// tuning changes which schedules are produced (never their validity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneConfig {
    /// Consult the tuning store for arm choices and warm-start hints.
    pub enabled: bool,
}

#[allow(clippy::derivable_impls)] // symmetry with CacheConfig; the default
                                  // polarity is a deliberate choice, not an
                                  // accident of Default
impl Default for TuneConfig {
    fn default() -> TuneConfig {
        TuneConfig { enabled: false }
    }
}

/// Configuration of the per-region compilation flow and its filters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Scheduler selection.
    pub scheduler: SchedulerKind,
    /// ACO parameters (both ACO schedulers).
    pub aco: AcoConfig,
    /// Batch-planner policy ([`SchedulerKind::BatchedParallelAco`] only).
    pub batching: BatchingConfig,
    /// Post-scheduling filter: revert to the heuristic schedule when ACO's
    /// occupancy gain is at most this much...
    pub revert_occupancy_gain: u32,
    /// ...while its schedule length degradation exceeds this many cycles.
    /// The paper settles on gain ≤ 3 combined with degradation > 63 cycles
    /// (Section VI-D).
    pub revert_length_penalty: u32,
    /// Fixed non-scheduling compile cost per region, microseconds (parsing,
    /// instruction selection, register allocation, code emission, ...).
    pub base_cost_per_region_us: f64,
    /// Additional non-scheduling compile cost per instruction,
    /// microseconds.
    pub base_cost_per_instr_us: f64,
    /// Host worker threads compiling the suite's regions concurrently
    /// (work-stealing pool; see `host_pool`). This is purely a host
    /// wall-clock knob: every schedule, record, observer callback and
    /// modeled time is byte-identical at any value. Values ≤ 1 compile
    /// inline on the calling thread.
    pub host_threads: usize,
    /// Content-addressed schedule memoization across a suite compilation.
    /// Like `host_threads`, purely a wall-clock knob: results are
    /// byte-identical on and off (only the [`crate::CacheStats`] counters
    /// differ).
    pub cache: CacheConfig,
    /// In-pipeline exact static analysis (S-code passes over every region
    /// and schedule claim). Read-only: results are byte-identical on and
    /// off; only [`crate::SuiteRun::analysis`] is populated.
    pub analyze: AnalyzeConfig,
    /// Self-tuning search: per-class bandit arm selection plus pheromone
    /// warm-starts from a shared tuning store. Changes which schedules the
    /// ACO search converges to (deterministically); defaults to off.
    pub tune: TuneConfig,
}

impl PipelineConfig {
    /// The paper's headline configuration for the given scheduler: cycle
    /// threshold 21, post filter (3, 63).
    pub fn paper(scheduler: SchedulerKind, seed: u64) -> PipelineConfig {
        let mut aco = AcoConfig::small(seed);
        aco.pass2_gate_cycles = 21;
        PipelineConfig {
            scheduler,
            aco,
            batching: BatchingConfig::paper(),
            revert_occupancy_gain: 3,
            revert_length_penalty: 63,
            // The paper's base compile time is ~4.6 ms per region (840 s /
            // 181,883 regions). Our default colonies are ~6x smaller than
            // the paper's 11,520 ants, so the modeled scheduling times are
            // ~6x smaller too; the base cost is scaled by the same factor
            // to preserve the *share* of compile time that scheduling
            // contributes (what Table 5 is about).
            base_cost_per_region_us: 980.0,
            base_cost_per_instr_us: 28.0,
            host_threads: 1,
            cache: CacheConfig::default(),
            analyze: AnalyzeConfig::default(),
            tune: TuneConfig::default(),
        }
    }

    /// The same configuration compiling on `threads` host worker threads.
    pub fn with_host_threads(mut self, threads: usize) -> PipelineConfig {
        self.host_threads = threads;
        self
    }

    /// The same configuration with the schedule cache switched on or off.
    pub fn with_cache(mut self, enabled: bool) -> PipelineConfig {
        self.cache = CacheConfig { enabled };
        self
    }

    /// The same configuration with in-pipeline static analysis switched on
    /// or off.
    pub fn with_analyze(mut self, enabled: bool) -> PipelineConfig {
        self.analyze = AnalyzeConfig { enabled };
        self
    }

    /// The same configuration with self-tuning search switched on or off.
    pub fn with_tune(mut self, enabled: bool) -> PipelineConfig {
        self.tune = TuneConfig { enabled };
        self
    }

    /// The base (non-scheduling) compile cost of a region with `n`
    /// instructions, microseconds.
    pub fn base_cost_us(&self, n: usize) -> f64 {
        self.base_cost_per_region_us + self.base_cost_per_instr_us * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_threshold_21() {
        let c = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        assert_eq!(c.aco.pass2_gate_cycles, 21);
        assert_eq!(c.revert_occupancy_gain, 3);
        assert_eq!(c.revert_length_penalty, 63);
    }

    #[test]
    fn base_cost_scales_with_region_size() {
        let c = PipelineConfig::paper(SchedulerKind::BaseAmd, 0);
        assert!(c.base_cost_us(100) > c.base_cost_us(10));
        // A scaled-down fraction of the paper's 4.6 ms per region,
        // matching the scheduling-cost scale of the default colony.
        let per_region_us = c.base_cost_us(15);
        assert!(
            (900.0..2000.0).contains(&per_region_us),
            "{per_region_us} us"
        );
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            SchedulerKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SchedulerKind::ALL.len());
    }

    #[test]
    fn group_cap_respects_budget_and_policy() {
        let b = BatchingConfig::paper();
        // 16 blocks / min 2 per region = 8 regions, within max_group.
        assert_eq!(b.group_cap(16), 8);
        // The max_group cap binds for big colonies.
        assert_eq!(b.group_cap(180), 8);
        // Tiny colonies: never more regions than blocks.
        assert_eq!(b.group_cap(3), 1);
        assert_eq!(b.group_cap(1), 1);
        // Degenerate policies stay safe.
        let loose = BatchingConfig {
            max_group: 64,
            min_blocks_per_region: 1,
        };
        assert_eq!(loose.group_cap(4), 4);
        let zero = BatchingConfig {
            max_group: 0,
            min_blocks_per_region: 0,
        };
        assert_eq!(zero.group_cap(8), 1);
    }
}
