//! Content-addressed memoization of region compilations.
//!
//! Template-instantiated kernels produce many *structurally identical*
//! scheduling regions, and the whole per-region flow
//! ([`compile_region`], [`crate::batch::compile_batch_group`]) is a pure
//! function of `(DDG content, scheduling config, occupancy model)` — so a
//! schedule computed once can be reused for every duplicate. The
//! [`ScheduleCache`] keys entries by the canonical FNV-1a fingerprint of
//! exactly those inputs ([`sched_ir::ddg_content_fingerprint`] plus the
//! scheduling-relevant configuration) and guards every hit twice:
//!
//! 1. **Full structural equality** — the entry stores its DDG and config;
//!    a hit requires [`Ddg::content_eq`] and exact config/machine-model
//!    equality, so a 64-bit collision can never smuggle in a wrong
//!    schedule.
//! 2. **Re-certification** — the reused schedules are validated against
//!    the *new* region instance (precedence/latency/single-issue via
//!    [`sched_ir::Schedule::validate`], PRP recomputed from scratch,
//!    occupancy and final-choice consistency). A tampered or stale entry
//!    is bypassed, recomputed, and overwritten — never adopted.
//!
//! Because every adopted result is bitwise what a fresh run would have
//! produced, the cache is *transparent*: `SuiteRun` golden fingerprints
//! are identical with the cache on and off at any thread count
//! (sched-verify's D004 check asserts this). The hit/miss/insert/bypass
//! counters are the one exception — at `host_threads > 1` two workers may
//! race to first-compile the same content, so counters are reported in
//! [`crate::SuiteRun::cache`] but excluded from the suite fingerprint.
//!
//! # Concurrency
//!
//! The cache is shared read-mostly across the work-stealing host pool, and
//! the vendored `parking_lot` offers no `RwLock`, so the store is sharded
//! copy-on-write: each shard publishes an immutable `HashMap` snapshot
//! through an `AtomicPtr` (reads are a single atomic load — lock-free),
//! while inserts clone-and-swap the snapshot under a per-shard mutex.
//! Retired snapshots are parked until the cache drops, so a reader holding
//! yesterday's pointer is always reading live memory.
//!
//! # Persistence
//!
//! [`ScheduleCache::save_to`]/[`ScheduleCache::load_from`] persist solo
//! entries as a hand-rolled line format (the workspace deliberately
//! vendors no serializer — the `serde` stub's derives are no-ops). Loaded
//! entries pass through the same equality + re-certification gates as
//! in-memory ones, so a corrupted or hand-edited cache file can cost
//! misses, never wrong schedules. Group entries are launch-geometry
//! specific and are not persisted.
//!
//! Persistence is **durable** — a long-running server leans on it across
//! restarts (see `sched-serve`):
//!
//! * `save_to` writes a sibling temporary file, flushes and syncs it, and
//!   atomically renames it over the target. A crash mid-save (even
//!   `kill -9`) leaves either the old file or the new one, never a
//!   truncated hybrid. Flush/sync errors surface as `Err` instead of
//!   being swallowed by a buffered writer's drop.
//! * The file ends with an `eof <count>` trailer, so `load_from` detects
//!   truncation by *any* means — a prefix cut at every line boundary (or
//!   mid-line) is rejected with `InvalidData`, never half-loaded.
//! * `load_from` streams one line at a time; boot-time loading never
//!   buffers the whole file in memory alongside the parsed entries.
//!
//! # Bounded memory
//!
//! The store is **capacity-bounded** ([`ScheduleCache::with_capacity`],
//! default [`ScheduleCache::DEFAULT_CAPACITY`] entries): every entry
//! carries a last-touch stamp from a global logical clock (bumped on
//! insert and on every certified hit), and an insert that would push a
//! shard past its share of the capacity evicts the stalest entries first
//! (ties broken by key). Eviction is counted in [`CacheStats::evictions`]
//! and only ever costs future misses — transparency is untouched, because
//! an evicted entry is simply recomputed. Under host parallelism the
//! stamps (and therefore the victim choice) depend on interleaving, which
//! is fine for the same reason the other counters are excluded from the
//! suite fingerprint.
//!
//! # Warm-started entries
//!
//! [`ScheduleCache::compile_solo_with`] memoizes *warm-started*
//! compilations (see [`aco::warm`]): a hint changes the compiled result,
//! so the hint's fingerprint is folded into the key and stored in the
//! entry's equality gate. `compile_solo` (no hint) keys exactly as it
//! always has, so a warm entry can never answer a cold lookup or vice
//! versa. Warm entries are **not persisted** — the `schedcache v1` format
//! is unchanged — because a hint is reconstructed from the tuning store,
//! not from the cache file.

use crate::batch::compile_batch_group;
use crate::config::{PipelineConfig, SchedulerKind};
use crate::region::{compile_region_warm, FinalChoice, RegionCompilation};
use aco::{batch_block_split, AcoConfig, AcoResult, PassStats};
use gpu_sim::MemLayout;
use list_sched::{Heuristic, ScheduleResult};
use machine_model::OccupancyModel;
use parking_lot::Mutex;
use sched_ir::{ddg_content_fingerprint, textir, Cycle, Ddg, Fnv64, InstrId, Schedule};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use workloads::Kernel;

/// Hit/miss/insert/bypass counters of one suite compilation (or one cache
/// lifetime). A *bypass* is a lookup whose entry failed re-certification
/// or structural equality and was recomputed instead of adopted.
///
/// Counters depend on execution interleaving at `host_threads > 1` (two
/// workers can race to first-compile the same content), so they are
/// reported alongside a [`crate::SuiteRun`] but excluded from its golden
/// fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (equality + re-certification held).
    pub hits: u64,
    /// Lookups with no entry under the key.
    pub misses: u64,
    /// Entries written (first computations and self-healing overwrites).
    pub inserts: u64,
    /// Lookups whose entry was rejected by equality or re-certification.
    pub bypasses: u64,
    /// Entries evicted to keep the store within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }

    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - start` (for reporting one run's
    /// activity on a longer-lived cache).
    pub fn since(&self, start: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - start.hits,
            misses: self.misses - start.misses,
            inserts: self.inserts - start.inserts,
            bypasses: self.bypasses - start.bypasses,
            evictions: self.evictions - start.evictions,
        }
    }
}

/// What a cache entry memoizes.
///
/// The variants differ in size, but a `Payload` only ever lives inside an
/// `Arc<CacheEntry>` — one allocation per entry, never moved by value on
/// a hot path — so boxing the large variant would add indirection for
/// nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Payload {
    /// One solo region compilation.
    Solo { ddg: Ddg, comp: RegionCompilation },
    /// One cooperative batch group: per-member compilations in group
    /// order (member DDGs stored for the equality check).
    Group {
        ddgs: Vec<Ddg>,
        comps: Vec<RegionCompilation>,
    },
}

/// One memoized compilation plus everything the equality gate compares.
#[derive(Debug)]
struct CacheEntry {
    scheduler: SchedulerKind,
    aco: AcoConfig,
    revert: (u32, u32),
    occ: OccupancyModel,
    /// Fingerprint of the warm-start hint the compilation ran under
    /// (`None` = cold). Part of the equality gate: a warm result must
    /// never answer a cold lookup (or one under a different hint), even
    /// across a 64-bit key collision.
    warm_fp: Option<u64>,
    /// Last-touch logical time (set on insert and on every certified
    /// hit); the eviction victim is the entry with the smallest stamp.
    stamp: AtomicU64,
    payload: Payload,
}

type Map = HashMap<u64, Arc<CacheEntry>>;

/// One copy-on-write shard: `live` is the published snapshot (readers do
/// one atomic load and walk an immutable map), `retired` parks superseded
/// snapshots until the cache drops (a reader may still hold them).
struct Shard {
    live: AtomicPtr<Map>,
    retired: Mutex<Vec<*mut Map>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            live: AtomicPtr::new(Box::into_raw(Box::default())),
            retired: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, key: u64) -> Option<Arc<CacheEntry>> {
        // SAFETY: `live` always points to a map published by `insert` (or
        // `new`) and never freed before the shard drops; shared references
        // to it are read-only.
        let map = unsafe { &*self.live.load(Ordering::Acquire) };
        map.get(&key).cloned()
    }

    /// Uncapped insert — tests poke entries past the capacity discipline.
    #[cfg(test)]
    fn insert(&self, key: u64, entry: Arc<CacheEntry>) {
        self.insert_capped(key, entry, usize::MAX);
    }

    /// Inserts and then evicts stalest-first (smallest stamp, ties broken
    /// by key) until the shard holds at most `cap` entries; the entry just
    /// inserted is never the victim. Returns the number evicted.
    fn insert_capped(&self, key: u64, entry: Arc<CacheEntry>, cap: usize) -> u64 {
        let mut retired = self.retired.lock();
        let old = self.live.load(Ordering::Relaxed);
        // SAFETY: as in `get`; the mutex serializes writers, so `old` is
        // the current snapshot and no other writer frees or replaces it.
        let mut next: Map = unsafe { &*old }.clone();
        next.insert(key, entry);
        let mut evicted = 0u64;
        while next.len() > cap.max(1) {
            let victim = next
                .iter()
                .filter(|&(&k, _)| k != key)
                .map(|(&k, e)| (e.stamp.load(Ordering::Relaxed), k))
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    next.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        self.live
            .store(Box::into_raw(Box::new(next)), Ordering::Release);
        // The old snapshot may still be referenced by concurrent readers;
        // park it until the whole cache drops.
        retired.push(old);
        evicted
    }

    fn len(&self) -> usize {
        // SAFETY: as in `get`.
        unsafe { &*self.live.load(Ordering::Acquire) }.len()
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no reader or writer is active, so the
        // live snapshot and every retired one can be reclaimed exactly once.
        unsafe {
            drop(Box::from_raw(self.live.load(Ordering::Relaxed)));
            // The vendored parking_lot has no `get_mut`; locking in drop is
            // uncontended by the `&mut self` guarantee.
            for ptr in self.retired.lock().drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

// SAFETY: the raw pointers are only ever created from `Box::into_raw`,
// dereferenced read-only while published, and freed exclusively in `Drop`
// (which holds `&mut self`). All shared mutation goes through the atomic
// pointer and the mutex, so moving or sharing a `Shard` across threads
// cannot produce a data race.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

const SHARD_COUNT: usize = 16;

/// The content-addressed schedule cache (see module docs).
pub struct ScheduleCache {
    shards: Vec<Shard>,
    /// Per-shard entry cap (the total capacity split across the shards).
    shard_cap: usize,
    /// Global logical clock for last-touch stamps.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache::new()
    }
}

impl ScheduleCache {
    /// Default entry capacity of [`ScheduleCache::new`].
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// An empty cache holding at most [`Self::DEFAULT_CAPACITY`] entries.
    pub fn new() -> ScheduleCache {
        ScheduleCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to roughly `capacity` entries (the bound is
    /// enforced per shard, as `max(1, capacity / SHARD_COUNT)` each, so the
    /// effective total is at least [`SHARD_COUNT`] and within one shard's
    /// share of the requested value). Exceeding the bound evicts the
    /// least-recently-touched entries — see the module docs.
    pub fn with_capacity(capacity: usize) -> ScheduleCache {
        ScheduleCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
            shard_cap: (capacity / SHARD_COUNT).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The effective entry capacity (per-shard cap times shard count).
    pub fn capacity(&self) -> usize {
        self.shard_cap * SHARD_COUNT
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the cache holds no entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: u64) -> &Shard {
        // High bits pick the shard; the map uses the full key.
        &self.shards[(key >> 59) as usize % SHARD_COUNT]
    }

    /// The next last-touch stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stamps and inserts under the capacity bound, counting evictions but
    /// not inserts (shared by [`Self::store`] and the loader).
    fn admit(&self, key: u64, entry: CacheEntry) {
        entry.stamp.store(self.tick(), Ordering::Relaxed);
        let evicted = self
            .shard(key)
            .insert_capped(key, Arc::new(entry), self.shard_cap);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn store(&self, key: u64, entry: CacheEntry) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.admit(key, entry);
    }

    /// Compiles one solo region through the cache: adopt a certified hit,
    /// otherwise run [`compile_region`] and memoize the result. The
    /// returned compilation is bitwise what an uncached run produces.
    pub fn compile_solo(
        &self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        cfg: &PipelineConfig,
    ) -> RegionCompilation {
        self.compile_solo_with(ddg, occ, cfg, None)
    }

    /// [`Self::compile_solo`] with an optional warm-start hint (see
    /// [`crate::region::compile_region_warm`]). A hint changes the
    /// compiled result, so warm lookups key on the hint's fingerprint as
    /// well — a cold lookup can never adopt a warm result or vice versa —
    /// and the hint fingerprint sits in the entry's equality gate to hold
    /// across 64-bit key collisions. With `warm = None` this is exactly
    /// `compile_solo`, same keys and all.
    pub fn compile_solo_with(
        &self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        cfg: &PipelineConfig,
        warm: Option<&aco::WarmStart>,
    ) -> RegionCompilation {
        let warm_fp = warm.map(aco::WarmStart::fingerprint);
        let key = solo_key_warm(ddg, occ, cfg, warm_fp);
        match self.shard(key).get(key) {
            Some(entry) => {
                if let Payload::Solo {
                    ddg: cached_ddg,
                    comp,
                } = &entry.payload
                {
                    if same_inputs(&entry, cfg, occ)
                        && entry.warm_fp == warm_fp
                        && cached_ddg.content_eq(ddg)
                        && certify_hit(ddg, occ, comp)
                    {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        entry.stamp.store(self.tick(), Ordering::Relaxed);
                        return comp.clone();
                    }
                }
                // Collision, config mismatch under a colliding key, or a
                // tampered entry: never adopt — recompute and self-heal.
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                let comp = compile_region_warm(ddg, occ, cfg, warm);
                self.store(key, solo_entry_warm(ddg, occ, cfg, &comp, warm_fp));
                comp
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let comp = compile_region_warm(ddg, occ, cfg, warm);
                self.store(key, solo_entry_warm(ddg, occ, cfg, &comp, warm_fp));
                comp
            }
        }
    }

    /// Compiles one cooperative batch group through the cache. The key
    /// covers every member's content in group order (construction results
    /// depend on the whole group), and a hit re-certifies every member
    /// against its new region instance.
    pub(crate) fn compile_group(
        &self,
        kernel: &Kernel,
        group: &[usize],
        occ: &OccupancyModel,
        cfg: &PipelineConfig,
    ) -> Vec<(usize, PipelineConfig, RegionCompilation)> {
        let members: Vec<&Ddg> = group.iter().map(|&ri| &kernel.regions[ri]).collect();
        let key = group_key(&members, occ, cfg);
        if let Some(entry) = self.shard(key).get(key) {
            if let Payload::Group { ddgs, comps } = &entry.payload {
                let ok = same_inputs(&entry, cfg, occ)
                    && ddgs.len() == members.len()
                    && ddgs
                        .iter()
                        .zip(&members)
                        .all(|(cached, new)| cached.content_eq(new))
                    && comps
                        .iter()
                        .zip(&members)
                        .all(|(comp, new)| certify_hit(new, occ, comp));
                if ok {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    entry.stamp.store(self.tick(), Ordering::Relaxed);
                    return attach_group_cfgs(group, comps.clone(), cfg);
                }
            }
            self.bypasses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let outcomes = compile_batch_group(kernel, group, occ, cfg);
        self.store(
            key,
            CacheEntry {
                scheduler: cfg.scheduler,
                aco: cfg.aco,
                revert: (cfg.revert_occupancy_gain, cfg.revert_length_penalty),
                occ: *occ,
                warm_fp: None,
                stamp: AtomicU64::new(0),
                payload: Payload::Group {
                    ddgs: members.into_iter().cloned().collect(),
                    comps: outcomes.iter().map(|(_, _, c)| c.clone()).collect(),
                },
            },
        );
        outcomes
    }

    /// Writes every solo entry to `out` in the hand-rolled line format
    /// (deterministic order: sorted by key), terminated by the
    /// `eof <count>` trailer [`Self::load_from`] requires, and **flushes
    /// explicitly** — a write or flush error (ENOSPC, EIO, a broken pipe)
    /// surfaces as `Err` here rather than being swallowed by a buffered
    /// writer's drop. Group entries are skipped (launch-geometry
    /// specific).
    pub fn save_to_writer(&self, out: &mut impl Write) -> io::Result<()> {
        let mut entries: Vec<(u64, Arc<CacheEntry>)> = Vec::new();
        for shard in &self.shards {
            // SAFETY: as in `Shard::get`.
            let map = unsafe { &*shard.live.load(Ordering::Acquire) };
            for (&k, e) in map {
                // Warm-started entries are skipped along with group ones:
                // their hints come from a tuning store, not the cache file,
                // and the `schedcache v1` format stays hint-free.
                if matches!(e.payload, Payload::Solo { .. }) && e.warm_fp.is_none() {
                    entries.push((k, e.clone()));
                }
            }
        }
        entries.sort_by_key(|&(k, _)| k);
        writeln!(out, "schedcache v1")?;
        let count = entries.len();
        for (key, entry) in entries {
            let Payload::Solo { ddg, comp } = &entry.payload else {
                unreachable!("group entries filtered above")
            };
            writeln!(out, "key {key:#018x}")?;
            write_cfg_line(out, &entry)?;
            let text = textir::to_text(ddg);
            writeln!(out, "ddg {}", text.lines().count())?;
            out.write_all(text.as_bytes())?;
            write_comp(out, comp)?;
            writeln!(out, "end")?;
        }
        writeln!(out, "eof {count}")?;
        out.flush()
    }

    /// Persists the cache at `path` **atomically**: the entries are
    /// written to a sibling temporary file (flushed and fsynced), which is
    /// then renamed over the target. A crash mid-save — even `kill -9` —
    /// leaves either the previous file or the complete new one, never a
    /// truncated hybrid; and the `eof` trailer lets [`Self::load_from`]
    /// reject a file truncated by any other means. On error the temporary
    /// file is removed and the target is untouched.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "schedcache: save path has no file name",
                )
            })?
            .to_string_lossy();
        // Unique per process *and* per call, so concurrent saves to the
        // same target never clobber each other's temp file — last rename
        // wins, and each rename installs a complete file.
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_file_name(format!(
            ".{file_name}.tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
            self.save_to_writer(&mut out)?;
            let file = out.into_inner().map_err(io::IntoInnerError::into_error)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads a cache persisted by [`Self::save_to`], streaming one line at
    /// a time (a multi-gigabyte persisted cache is never double-buffered
    /// in memory at boot). Malformed or truncated files — the `eof
    /// <count>` trailer must be present and agree with the entry count —
    /// are rejected with `InvalidData`; entries that are structurally
    /// sound but wrong (hand-edited schedules, stale claims) survive
    /// loading and are rejected at hit time by re-certification.
    pub fn load_from(path: &Path) -> io::Result<ScheduleCache> {
        Self::load_from_reader(io::BufReader::new(std::fs::File::open(path)?))
    }

    /// [`Self::load_from`] over any buffered reader (the daemon's tests
    /// and tooling feed in-memory buffers through the same parser).
    pub fn load_from_reader(reader: impl BufRead) -> io::Result<ScheduleCache> {
        let mut lines = LineStream::new(reader);
        let header = lines.expect_line("header")?;
        if header.trim() != "schedcache v1" {
            return Err(bad_data("not a schedcache v1 file"));
        }
        let cache = ScheduleCache::new();
        let mut entries = 0u64;
        let claimed: u64 = loop {
            let Some(line) = lines.next_line()? else {
                return Err(bad_data("truncated file: missing `eof` trailer"));
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(count) = trimmed.strip_prefix("eof ") {
                break count
                    .trim()
                    .parse()
                    .map_err(|_| bad_data("bad `eof` entry count"))?;
            }
            let key = parse_prefixed(&line, "key ")?;
            let key = u64::from_str_radix(key.trim_start_matches("0x"), 16)
                .map_err(|_| bad_data("bad key"))?;
            let cfg_line = lines.expect_line("cfg")?;
            let (scheduler, aco, revert, occ) = parse_cfg_line(&cfg_line)?;
            let ddg_header = lines.expect_line("ddg")?;
            let n_lines: usize = parse_prefixed(&ddg_header, "ddg ")?
                .parse()
                .map_err(|_| bad_data("bad ddg line count"))?;
            let mut text = String::new();
            for _ in 0..n_lines {
                let l = lines.expect_line("ddg line")?;
                text.push_str(&l);
                text.push('\n');
            }
            let ddg = textir::parse(&text).map_err(|e| bad_data(&e.to_string()))?;
            let comp = read_comp(&mut lines, ddg.len())?;
            if lines.expect_line("entry terminator")?.trim() != "end" {
                return Err(bad_data("missing entry terminator"));
            }
            cache.admit(
                key,
                CacheEntry {
                    scheduler,
                    aco,
                    revert,
                    occ,
                    warm_fp: None,
                    stamp: AtomicU64::new(0),
                    payload: Payload::Solo { ddg, comp },
                },
            );
            entries += 1;
        };
        if claimed != entries {
            return Err(bad_data(&format!(
                "`eof` trailer claims {claimed} entries, file holds {entries}"
            )));
        }
        while let Some(l) = lines.next_line()? {
            if !l.trim().is_empty() {
                return Err(bad_data("content after `eof` trailer"));
            }
        }
        Ok(cache)
    }
}

/// Streaming line source over a `BufRead`: one line in memory at a time.
struct LineStream<R: BufRead> {
    lines: io::Lines<R>,
}

impl<R: BufRead> LineStream<R> {
    fn new(reader: R) -> LineStream<R> {
        LineStream {
            lines: reader.lines(),
        }
    }

    /// Next line, `None` at end of file; I/O errors propagate.
    fn next_line(&mut self) -> io::Result<Option<String>> {
        self.lines.next().transpose()
    }

    /// Next line, or `InvalidData` when the file ends early.
    fn expect_line(&mut self, what: &str) -> io::Result<String> {
        self.next_line()?
            .ok_or_else(|| bad_data(&format!("truncated file: missing {what}")))
    }
}

/// Attaches the split-colony per-member configuration to cached group
/// compilations, mirroring what [`compile_batch_group`] returns.
fn attach_group_cfgs(
    group: &[usize],
    comps: Vec<RegionCompilation>,
    cfg: &PipelineConfig,
) -> Vec<(usize, PipelineConfig, RegionCompilation)> {
    let split = batch_block_split(cfg.aco.blocks, group.len() as u32);
    group
        .iter()
        .zip(comps)
        .enumerate()
        .map(|(pos, (&ri, comp))| {
            let mut region_cfg = *cfg;
            region_cfg.aco.blocks = split[pos];
            (ri, region_cfg, comp)
        })
        .collect()
}

/// The scheduling-relevant config equality gate: everything a
/// [`RegionCompilation`] can depend on. Host-thread count, base compile
/// costs, batching policy (group membership is already in the key) and the
/// cache knob itself are deliberately excluded.
fn same_inputs(entry: &CacheEntry, cfg: &PipelineConfig, occ: &OccupancyModel) -> bool {
    entry.scheduler == cfg.scheduler
        && entry.aco == cfg.aco
        && entry.revert == (cfg.revert_occupancy_gain, cfg.revert_length_penalty)
        && entry.occ == *occ
}

#[cfg(test)]
fn solo_entry(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    comp: &RegionCompilation,
) -> CacheEntry {
    solo_entry_warm(ddg, occ, cfg, comp, None)
}

fn solo_entry_warm(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    comp: &RegionCompilation,
    warm_fp: Option<u64>,
) -> CacheEntry {
    CacheEntry {
        scheduler: cfg.scheduler,
        aco: cfg.aco,
        revert: (cfg.revert_occupancy_gain, cfg.revert_length_penalty),
        occ: *occ,
        warm_fp,
        stamp: AtomicU64::new(0),
        payload: Payload::Solo {
            ddg: ddg.clone(),
            comp: comp.clone(),
        },
    }
}

/// In-pipeline re-certification of a reused compilation against the *new*
/// region instance: schedule validity (precedence, latency, single issue),
/// from-scratch PRP recomputation, occupancy and length claims, and
/// final-choice consistency. Anything that fails here is bypassed, never
/// adopted. (sched-verify independently re-runs its C001–C012 checks on
/// every observed compilation — including cache hits — through the suite
/// observer.)
fn certify_hit(ddg: &Ddg, occ: &OccupancyModel, comp: &RegionCompilation) -> bool {
    if comp.size != ddg.len() {
        return false;
    }
    let claims_hold = |sched: &Schedule, order: &[InstrId], prp, occupancy, length| {
        is_permutation(order, ddg.len())
            && sched.validate(ddg).is_ok()
            && reg_pressure::prp_of_order(ddg, order) == prp
            && occ.occupancy(prp) == occupancy
            && sched.length() == length
    };
    let h = &comp.heuristic;
    if !claims_hold(&h.schedule, &h.order, h.prp, h.occupancy, h.length) {
        return false;
    }
    if let Some(a) = &comp.aco {
        if !claims_hold(&a.schedule, &a.order, a.prp, a.occupancy, a.length) {
            return false;
        }
    }
    let (src_occ, src_len) = match (comp.choice, &comp.aco) {
        (FinalChoice::Aco, Some(a)) => (a.occupancy, a.length),
        (FinalChoice::Aco, None) => return false,
        (FinalChoice::Heuristic, _) => (h.occupancy, h.length),
    };
    comp.occupancy == src_occ && comp.length == src_len
}

fn is_permutation(order: &[InstrId], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for id in order {
        match seen.get_mut(id.index()) {
            Some(s) if !*s => *s = true,
            _ => return false,
        }
    }
    true
}

// ---------------------------------------------------------------- keys --

/// Folds the scheduling-relevant configuration into a hasher: scheduler
/// kind, every `AcoConfig` field, the revert knobs, and the machine
/// model's full parameter signature.
///
/// `pub(crate)` so the S007 drift check ([`crate::analyze`]) can probe
/// that every field the passes read really moves this hash.
pub(crate) fn hash_config(h: &mut Fnv64, cfg: &PipelineConfig, occ: &OccupancyModel) {
    let kind = SchedulerKind::ALL
        .iter()
        .position(|k| *k == cfg.scheduler)
        .expect("every kind is in ALL") as u64;
    h.word(kind);
    h.word(cfg.revert_occupancy_gain as u64);
    h.word(cfg.revert_length_penalty as u64);
    let a = &cfg.aco;
    h.word(a.seed);
    h.word(a.sequential_ants as u64);
    h.word(a.blocks as u64);
    h.word(a.threads_per_block as u64);
    h.word(a.decay.to_bits());
    h.word(a.q0.to_bits());
    h.word(a.beta.to_bits());
    h.word(a.initial_pheromone.to_bits());
    h.word(a.deposit.to_bits());
    h.word(a.tau_min.to_bits());
    h.word(a.tau_max.to_bits());
    h.word(a.termination.small as u64);
    h.word(a.termination.medium as u64);
    h.word(a.termination.large as u64);
    h.word(a.termination.max_iterations as u64);
    h.word(heuristic_index(a.heuristic));
    h.word(a.optional_stall_budget.to_bits());
    let t = &a.tuning;
    h.word(match t.layout {
        MemLayout::Soa => 0,
        MemLayout::Aos => 1,
    });
    h.word(t.preallocate as u64);
    h.word(t.batched_transfer as u64);
    h.word(t.tight_ready_ub as u64);
    h.word(t.wavefront_level_choice as u64);
    h.word(t.stall_wavefront_fraction.to_bits());
    h.word(t.early_wavefront_termination as u64);
    h.word(t.per_wavefront_heuristics as u64);
    h.word(a.pass2_gate_cycles as u64);
    h.word(a.occupancy_cap.map_or(u64::MAX, |c| c as u64));
    for w in occ.signature() {
        h.word(w as u64);
    }
}

fn heuristic_index(heur: Heuristic) -> u64 {
    Heuristic::ALL
        .iter()
        .position(|h| *h == heur)
        .expect("every heuristic is in ALL") as u64
}

#[cfg(test)]
fn solo_key(ddg: &Ddg, occ: &OccupancyModel, cfg: &PipelineConfig) -> u64 {
    solo_key_warm(ddg, occ, cfg, None)
}

/// Solo key with the warm-start hint folded in **only when present**:
/// a cold lookup's key is bit-identical to what it was before warm
/// memoization existed (tag 1, no extra words), while a warm lookup keys
/// under its own tag plus the hint fingerprint.
fn solo_key_warm(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    warm_fp: Option<u64>,
) -> u64 {
    let mut h = Fnv64::new();
    match warm_fp {
        None => h.word(1), // entry-kind tag: cold solo
        Some(fp) => {
            h.word(3); // entry-kind tag: warm solo
            h.word(fp);
        }
    }
    hash_config(&mut h, cfg, occ);
    h.word(ddg_content_fingerprint(ddg));
    h.finish()
}

fn group_key(members: &[&Ddg], occ: &OccupancyModel, cfg: &PipelineConfig) -> u64 {
    let mut h = Fnv64::new();
    h.word(2); // entry-kind tag
    hash_config(&mut h, cfg, occ);
    h.word(members.len() as u64);
    for ddg in members {
        h.word(ddg_content_fingerprint(ddg));
    }
    h.finish()
}

// -------------------------------------------------------- persistence --

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("schedcache: {msg}"))
}

fn parse_prefixed<'a>(line: &'a str, prefix: &str) -> io::Result<&'a str> {
    line.trim()
        .strip_prefix(prefix)
        .ok_or_else(|| bad_data(&format!("expected `{prefix}...`, got `{line}`")))
}

fn write_cfg_line(out: &mut impl Write, e: &CacheEntry) -> io::Result<()> {
    let kind = SchedulerKind::ALL
        .iter()
        .position(|k| *k == e.scheduler)
        .expect("every kind is in ALL");
    let a = &e.aco;
    let t = &a.tuning;
    write!(
        out,
        "cfg {kind} {} {} {} {} {} {} {:x} {:x} {:x} {:x} {:x} {:x} {:x} \
         {} {} {} {} {} {:x}",
        e.revert.0,
        e.revert.1,
        a.seed,
        a.sequential_ants,
        a.blocks,
        a.threads_per_block,
        a.decay.to_bits(),
        a.q0.to_bits(),
        a.beta.to_bits(),
        a.initial_pheromone.to_bits(),
        a.deposit.to_bits(),
        a.tau_min.to_bits(),
        a.tau_max.to_bits(),
        a.termination.small,
        a.termination.medium,
        a.termination.large,
        a.termination.max_iterations,
        heuristic_index(a.heuristic),
        a.optional_stall_budget.to_bits(),
    )?;
    write!(
        out,
        " {} {} {} {} {} {:x} {} {} {} {}",
        match t.layout {
            MemLayout::Soa => 0,
            MemLayout::Aos => 1,
        },
        t.preallocate as u8,
        t.batched_transfer as u8,
        t.tight_ready_ub as u8,
        t.wavefront_level_choice as u8,
        t.stall_wavefront_fraction.to_bits(),
        t.early_wavefront_termination as u8,
        t.per_wavefront_heuristics as u8,
        a.pass2_gate_cycles,
        a.occupancy_cap.map_or(-1i64, |c| c as i64),
    )?;
    for w in e.occ.signature() {
        write!(out, " {w}")?;
    }
    writeln!(out)
}

fn parse_cfg_line(
    line: &str,
) -> io::Result<(SchedulerKind, AcoConfig, (u32, u32), OccupancyModel)> {
    let body = parse_prefixed(line, "cfg ")?;
    let toks: Vec<&str> = body.split_whitespace().collect();
    if toks.len() != 30 + 7 {
        return Err(bad_data(&format!(
            "cfg expects 37 fields, got {}",
            toks.len()
        )));
    }
    let int =
        |i: usize| -> io::Result<u64> { toks[i].parse().map_err(|_| bad_data("bad cfg integer")) };
    let sint =
        |i: usize| -> io::Result<i64> { toks[i].parse().map_err(|_| bad_data("bad cfg integer")) };
    let float = |i: usize| -> io::Result<f64> {
        u64::from_str_radix(toks[i], 16)
            .map(f64::from_bits)
            .map_err(|_| bad_data("bad cfg float"))
    };
    let scheduler = *SchedulerKind::ALL
        .get(int(0)? as usize)
        .ok_or_else(|| bad_data("bad scheduler index"))?;
    let revert = (int(1)? as u32, int(2)? as u32);
    let heuristic = *Heuristic::ALL
        .get(int(18)? as usize)
        .ok_or_else(|| bad_data("bad heuristic index"))?;
    let aco = AcoConfig {
        seed: int(3)?,
        sequential_ants: int(4)? as u32,
        blocks: int(5)? as u32,
        threads_per_block: int(6)? as u32,
        decay: float(7)?,
        q0: float(8)?,
        beta: float(9)?,
        initial_pheromone: float(10)?,
        deposit: float(11)?,
        tau_min: float(12)?,
        tau_max: float(13)?,
        termination: aco::Termination {
            small: int(14)? as u32,
            medium: int(15)? as u32,
            large: int(16)? as u32,
            max_iterations: int(17)? as u32,
        },
        heuristic,
        optional_stall_budget: float(19)?,
        tuning: aco::GpuTuning {
            layout: match int(20)? {
                0 => MemLayout::Soa,
                1 => MemLayout::Aos,
                _ => return Err(bad_data("bad layout index")),
            },
            preallocate: int(21)? != 0,
            batched_transfer: int(22)? != 0,
            tight_ready_ub: int(23)? != 0,
            wavefront_level_choice: int(24)? != 0,
            stall_wavefront_fraction: float(25)?,
            early_wavefront_termination: int(26)? != 0,
            per_wavefront_heuristics: int(27)? != 0,
        },
        pass2_gate_cycles: int(28)? as u32,
        occupancy_cap: match sint(29)? {
            -1 => None,
            c if c >= 0 => Some(c as u32),
            _ => return Err(bad_data("bad occupancy cap")),
        },
    };
    let mut sig = [0u32; 7];
    for (i, s) in sig.iter_mut().enumerate() {
        *s = int(30 + i)? as u32;
    }
    let occ = OccupancyModel::from_signature(sig);
    Ok((scheduler, aco, revert, occ))
}

fn write_sres(out: &mut impl Write, tag: &str, r: &ScheduleResult) -> io::Result<()> {
    write!(
        out,
        "{tag} {} {} {} {} :",
        r.occupancy, r.length, r.prp[0], r.prp[1]
    )?;
    for id in 0..r.schedule.len() {
        write!(out, " {}", r.schedule.cycle(InstrId(id as u32)))?;
    }
    writeln!(out)
}

fn read_sres(line: &str, tag: &str, n: usize) -> io::Result<ScheduleResult> {
    let body = parse_prefixed(line, &format!("{tag} "))?;
    let (head, cycles) = body
        .split_once(':')
        .ok_or_else(|| bad_data("missing cycle list"))?;
    let head: Vec<&str> = head.split_whitespace().collect();
    if head.len() != 4 {
        return Err(bad_data("schedule result expects 4 claim fields"));
    }
    let int = |s: &str| -> io::Result<u32> { s.parse().map_err(|_| bad_data("bad integer")) };
    let cycles: Vec<Cycle> = cycles
        .split_whitespace()
        .map(int)
        .collect::<io::Result<_>>()?;
    if cycles.len() != n {
        return Err(bad_data("cycle list length mismatch"));
    }
    // Single-issue schedules have unique cycles, so the issue order is the
    // ids sorted by cycle (ties broken by id for stability; real entries
    // have none, and fabricated ones fail re-certification at hit time).
    let mut order: Vec<InstrId> = (0..n as u32).map(InstrId).collect();
    order.sort_by_key(|id| (cycles[id.index()], id.0));
    Ok(ScheduleResult {
        schedule: Schedule::from_cycles(cycles),
        order,
        prp: [int(head[2])?, int(head[3])?],
        occupancy: int(head[0])?,
        length: int(head[1])?,
    })
}

fn write_pass(out: &mut impl Write, p: &PassStats) -> io::Result<()> {
    writeln!(
        out,
        "pass {} {} {} {} {:x} {}",
        p.iterations,
        p.improved as u8,
        p.hit_lb as u8,
        p.best_cost,
        p.time_us.to_bits(),
        p.gated as u8
    )
}

fn read_pass(line: &str) -> io::Result<PassStats> {
    let toks: Vec<&str> = parse_prefixed(line, "pass ")?.split_whitespace().collect();
    if toks.len() != 6 {
        return Err(bad_data("pass stats expect 6 fields"));
    }
    Ok(PassStats {
        iterations: toks[0].parse().map_err(|_| bad_data("bad iterations"))?,
        improved: toks[1] != "0",
        hit_lb: toks[2] != "0",
        best_cost: toks[3].parse().map_err(|_| bad_data("bad best cost"))?,
        time_us: u64::from_str_radix(toks[4], 16)
            .map(f64::from_bits)
            .map_err(|_| bad_data("bad pass time"))?,
        gated: toks[5] != "0",
    })
}

fn write_comp(out: &mut impl Write, c: &RegionCompilation) -> io::Result<()> {
    writeln!(
        out,
        "comp {} {} {} {} {} {} {} {:x}",
        c.size,
        (c.choice == FinalChoice::Aco) as u8,
        c.occupancy,
        c.length,
        c.pass1_processed as u8,
        c.pass2_processed as u8,
        c.reverted as u8,
        c.sched_time_us.to_bits()
    )?;
    write_sres(out, "heur", &c.heuristic)?;
    match &c.aco {
        None => writeln!(out, "aco none"),
        Some(a) => {
            writeln!(
                out,
                "aco some {} {} {} {} {} {:x}",
                a.prp[0],
                a.prp[1],
                a.occupancy,
                a.length,
                a.ops,
                a.time_us.to_bits()
            )?;
            write_sres(out, "asched", &sres_of_aco(a))?;
            write_sres(out, "initial", &a.initial)?;
            write_pass(out, &a.pass1)?;
            write_pass(out, &a.pass2)
        }
    }
}

/// Views an ACO result's schedule as a `ScheduleResult` for the shared
/// writer (claims travel on the `aco some` line; these are ignored on
/// read).
fn sres_of_aco(a: &AcoResult) -> ScheduleResult {
    ScheduleResult {
        schedule: a.schedule.clone(),
        order: a.order.clone(),
        prp: a.prp,
        occupancy: a.occupancy,
        length: a.length,
    }
}

fn read_comp(it: &mut LineStream<impl BufRead>, n: usize) -> io::Result<RegionCompilation> {
    let comp_line = it.expect_line("comp")?;
    let toks: Vec<&str> = parse_prefixed(&comp_line, "comp ")?
        .split_whitespace()
        .collect();
    if toks.len() != 8 {
        return Err(bad_data("comp expects 8 fields"));
    }
    let heur_line = it.expect_line("heuristic")?;
    let heuristic = read_sres(&heur_line, "heur", n)?;
    let aco_line = it.expect_line("aco")?;
    let aco_body = parse_prefixed(&aco_line, "aco ")?;
    let aco = if aco_body.trim() == "none" {
        None
    } else {
        let atoks: Vec<&str> = aco_body
            .strip_prefix("some ")
            .ok_or_else(|| bad_data("bad aco line"))?
            .split_whitespace()
            .collect();
        if atoks.len() != 6 {
            return Err(bad_data("aco line expects 6 fields"));
        }
        let asched_line = it.expect_line("aco schedule")?;
        let asched = read_sres(&asched_line, "asched", n)?;
        let initial_line = it.expect_line("initial")?;
        let initial = read_sres(&initial_line, "initial", n)?;
        let p1_line = it.expect_line("pass1")?;
        let p2_line = it.expect_line("pass2")?;
        let int = |s: &str| -> io::Result<u32> { s.parse().map_err(|_| bad_data("bad integer")) };
        Some(AcoResult {
            schedule: asched.schedule,
            order: asched.order,
            prp: [int(atoks[0])?, int(atoks[1])?],
            occupancy: int(atoks[2])?,
            length: int(atoks[3])?,
            initial,
            pass1: read_pass(&p1_line)?,
            pass2: read_pass(&p2_line)?,
            ops: atoks[4].parse().map_err(|_| bad_data("bad ops"))?,
            time_us: u64::from_str_radix(atoks[5], 16)
                .map(f64::from_bits)
                .map_err(|_| bad_data("bad aco time"))?,
        })
    };
    let int = |s: &str| -> io::Result<u64> { s.parse().map_err(|_| bad_data("bad integer")) };
    Ok(RegionCompilation {
        size: int(toks[0])? as usize,
        heuristic,
        aco,
        choice: if toks[1] == "0" {
            FinalChoice::Heuristic
        } else {
            FinalChoice::Aco
        },
        occupancy: int(toks[2])? as u32,
        length: int(toks[3])? as u32,
        pass1_processed: toks[4] != "0",
        pass2_processed: toks[5] != "0",
        sched_time_us: f64::from_bits(
            u64::from_str_radix(toks[7], 16).map_err(|_| bad_data("bad sched time"))?,
        ),
        reverted: toks[6] != "0",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::compile_region;
    use workloads::{Suite, SuiteConfig};

    fn cfg(kind: SchedulerKind) -> PipelineConfig {
        let mut c = PipelineConfig::paper(kind, 0);
        c.aco.blocks = 4;
        c.aco.pass2_gate_cycles = 1;
        c
    }

    fn sample_ddg(seed: u64) -> Ddg {
        workloads::patterns::sized(40, seed)
    }

    fn comps_eq(a: &RegionCompilation, b: &RegionCompilation) -> bool {
        a.size == b.size
            && a.choice == b.choice
            && a.occupancy == b.occupancy
            && a.length == b.length
            && a.pass1_processed == b.pass1_processed
            && a.pass2_processed == b.pass2_processed
            && a.reverted == b.reverted
            && a.sched_time_us.to_bits() == b.sched_time_us.to_bits()
            && a.heuristic.schedule == b.heuristic.schedule
            && a.heuristic.order == b.heuristic.order
            && a.aco
                .as_ref()
                .map(|r| (&r.schedule, &r.order, r.ops, r.pass1, r.pass2))
                == b.aco
                    .as_ref()
                    .map(|r| (&r.schedule, &r.order, r.ops, r.pass1, r.pass2))
    }

    #[test]
    fn hit_returns_bitwise_identical_compilation() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let ddg = sample_ddg(7);
        let cache = ScheduleCache::new();
        let fresh = compile_region(&ddg, &occ, &c);
        let miss = cache.compile_solo(&ddg, &occ, &c);
        let hit = cache.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&fresh, &miss));
        assert!(comps_eq(&fresh, &hit));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                inserts: 1,
                bypasses: 0,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_content_config_and_occ_never_collide_in_practice() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let cache = ScheduleCache::new();
        let a = sample_ddg(1);
        let b = sample_ddg(2);
        cache.compile_solo(&a, &occ, &c);
        cache.compile_solo(&b, &occ, &c);
        // Different seed => different key even for the same content.
        let mut c2 = c;
        c2.aco.seed = 99;
        cache.compile_solo(&a, &occ, &c2);
        // Different machine model likewise.
        cache.compile_solo(&a, &machine_model::OccupancyModel::unit(), &c);
        // Capped re-schedules key separately too.
        let mut capped = c;
        capped.aco.occupancy_cap = Some(2);
        cache.compile_solo(&a, &occ, &capped);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.len(), 5);
    }

    /// The tentpole's safety property: a tampered entry is detected by
    /// re-certification, bypassed, recomputed, and overwritten — a
    /// poisoned cache can cost misses, never wrong schedules.
    #[test]
    fn poisoned_entry_is_rejected_and_self_healed() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let ddg = sample_ddg(11);
        let cache = ScheduleCache::new();
        let fresh = cache.compile_solo(&ddg, &occ, &c);
        let key = solo_key(&ddg, &occ, &c);

        // Tamper 1: an invalid schedule (precedence/latency broken by
        // swapping the first two issue cycles).
        let mut poisoned = fresh.clone();
        let mut cycles = poisoned.heuristic.schedule.cycles().to_vec();
        cycles.swap(0, 1);
        poisoned.heuristic.schedule = Schedule::from_cycles(cycles);
        cache
            .shard(key)
            .insert(key, Arc::new(solo_entry(&ddg, &occ, &c, &poisoned)));
        let healed = cache.compile_solo(&ddg, &occ, &c);
        assert!(
            comps_eq(&fresh, &healed),
            "bypass must recompute the true result"
        );
        assert_eq!(cache.stats().bypasses, 1);

        // Self-heal: the overwrite restored a certified entry.
        let again = cache.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&fresh, &again));
        assert_eq!(cache.stats().bypasses, 1, "healed entry must hit cleanly");

        // Tamper 2: a valid schedule with inflated claims (occupancy lie).
        let mut liar = fresh.clone();
        liar.occupancy += 1;
        if let Some(a) = &mut liar.aco {
            a.occupancy += 1;
        } else {
            liar.heuristic.occupancy += 1;
        }
        cache
            .shard(key)
            .insert(key, Arc::new(solo_entry(&ddg, &occ, &c, &liar)));
        let healed = cache.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&fresh, &healed));
        assert_eq!(cache.stats().bypasses, 2);

        // Tamper 3: entry whose stored DDG doesn't match the lookup's
        // (a forged key); content equality must reject it.
        let other = sample_ddg(12);
        let entry = solo_entry(&other, &occ, &c, &compile_region(&other, &occ, &c));
        cache.shard(key).insert(key, Arc::new(entry));
        let healed = cache.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&fresh, &healed));
        assert_eq!(cache.stats().bypasses, 3);
    }

    /// Satellite: the store is capacity-bounded. Overfilling it evicts
    /// (counted), keeps the entry count within the effective capacity, and
    /// an evicted entry is transparently recomputed — same bits, one more
    /// miss.
    #[test]
    fn bounded_cache_evicts_and_stays_transparent() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let cache = ScheduleCache::with_capacity(SHARD_COUNT);
        assert_eq!(cache.capacity(), SHARD_COUNT);
        let ddgs: Vec<Ddg> = (0..48).map(|i| sample_ddg(500 + i)).collect();
        let fresh: Vec<RegionCompilation> = ddgs
            .iter()
            .map(|d| cache.compile_solo(d, &occ, &c))
            .collect();
        let unique: std::collections::HashSet<u64> =
            ddgs.iter().map(ddg_content_fingerprint).collect();
        assert!(unique.len() > cache.capacity(), "test must overfill");
        assert!(cache.len() <= cache.capacity());
        let s = cache.stats();
        assert_eq!(s.evictions, s.inserts - cache.len() as u64);
        assert!(s.evictions > 0, "overfilling must evict");
        // Every lookup still returns the true compilation, evicted or not.
        for (d, f) in ddgs.iter().zip(&fresh) {
            assert!(comps_eq(f, &cache.compile_solo(d, &occ, &c)));
        }
        assert_eq!(cache.stats().bypasses, 0);
    }

    /// Eviction is stalest-first: the victim is the smallest last-touch
    /// stamp, never the entry just inserted.
    #[test]
    fn eviction_prefers_stale_stamps() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let shard = Shard::new();
        for (key, stamp) in [(1u64, 10u64), (2, 5), (3, 20)] {
            let ddg = sample_ddg(key);
            let entry = solo_entry(&ddg, &occ, &c, &compile_region(&ddg, &occ, &c));
            entry.stamp.store(stamp, Ordering::Relaxed);
            shard.insert(key, Arc::new(entry));
        }
        let ddg = sample_ddg(4);
        let entry = solo_entry(&ddg, &occ, &c, &compile_region(&ddg, &occ, &c));
        entry.stamp.store(1, Ordering::Relaxed); // stalest of all, but new
        let evicted = shard.insert_capped(4, Arc::new(entry), 2);
        assert_eq!(evicted, 2);
        assert!(shard.get(4).is_some(), "the new entry always survives");
        assert!(shard.get(3).is_some(), "freshest stamp survives");
        assert!(shard.get(1).is_none() && shard.get(2).is_none());
    }

    /// A certified hit refreshes the entry's stamp, so hot entries outlive
    /// cold ones under eviction pressure.
    #[test]
    fn hits_refresh_the_eviction_stamp() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let cache = ScheduleCache::new();
        let a = sample_ddg(41);
        let b = sample_ddg(42);
        cache.compile_solo(&a, &occ, &c);
        cache.compile_solo(&b, &occ, &c);
        let key_a = solo_key(&a, &occ, &c);
        let before = cache
            .shard(key_a)
            .get(key_a)
            .unwrap()
            .stamp
            .load(Ordering::Relaxed);
        cache.compile_solo(&a, &occ, &c); // hit
        let after = cache
            .shard(key_a)
            .get(key_a)
            .unwrap()
            .stamp
            .load(Ordering::Relaxed);
        assert!(after > before, "hit must refresh the stamp");
    }

    /// Warm-started results memoize under their own keys: they never
    /// answer a cold lookup (or one under a different hint), and they are
    /// not persisted — the cache file format stays hint-free.
    #[test]
    fn warm_entries_key_separately_and_are_not_persisted() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let ddg = sample_ddg(77);
        let hint = aco::WarmStart::new(ddg.topo_order().to_vec()).unwrap();
        let cache = ScheduleCache::new();

        let cold = cache.compile_solo(&ddg, &occ, &c);
        let warm_miss = cache.compile_solo_with(&ddg, &occ, &c, Some(&hint));
        let warm_hit = cache.compile_solo_with(&ddg, &occ, &c, Some(&hint));
        assert!(comps_eq(&warm_miss, &warm_hit));
        assert!(comps_eq(
            &warm_miss,
            &compile_region_warm(&ddg, &occ, &c, Some(&hint))
        ));
        let cold_again = cache.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&cold, &cold_again));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (2, 2, 0));
        assert_eq!(cache.len(), 2, "cold and warm entries coexist");

        // Persistence drops the warm entry; the reloaded cache still
        // answers the cold lookup and recomputes the warm one.
        let mut bytes = Vec::new();
        cache.save_to_writer(&mut bytes).unwrap();
        let loaded = ScheduleCache::load_from_reader(io::BufReader::new(&bytes[..])).unwrap();
        assert_eq!(loaded.len(), 1, "warm entries must not persist");
        assert!(comps_eq(&cold, &loaded.compile_solo(&ddg, &occ, &c)));
        assert_eq!(loaded.stats().hits, 1);
        assert!(comps_eq(
            &warm_miss,
            &loaded.compile_solo_with(&ddg, &occ, &c, Some(&hint))
        ));
        assert_eq!(loaded.stats().misses, 1);
    }

    #[test]
    fn group_hits_reconstruct_split_colony_configs() {
        let occ = machine_model::OccupancyModel::vega_like();
        let mut c = cfg(SchedulerKind::BatchedParallelAco);
        c.aco.blocks = 16;
        let suite = Suite::generate(&SuiteConfig::scaled(7, 0.008));
        let kernel = &suite.kernels[0];
        let group: Vec<usize> = (0..kernel.regions.len().min(3)).collect();
        assert!(group.len() >= 2, "need a real group");
        let cache = ScheduleCache::new();
        let fresh = compile_batch_group(kernel, &group, &occ, &c);
        let miss = cache.compile_group(kernel, &group, &occ, &c);
        let hit = cache.compile_group(kernel, &group, &occ, &c);
        for (f, m) in [(&fresh, &miss), (&fresh, &hit)] {
            assert_eq!(f.len(), m.len());
            for ((ri_a, cfg_a, comp_a), (ri_b, cfg_b, comp_b)) in f.iter().zip(m.iter()) {
                assert_eq!(ri_a, ri_b);
                assert_eq!(cfg_a, cfg_b, "split-colony config must be reconstructed");
                assert!(comps_eq(comp_a, comp_b));
            }
        }
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn save_load_roundtrip_preserves_solo_entries() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let cache = ScheduleCache::new();
        let ddgs: Vec<Ddg> = (1..5).map(sample_ddg).collect();
        let fresh: Vec<RegionCompilation> = ddgs
            .iter()
            .map(|d| cache.compile_solo(d, &occ, &c))
            .collect();
        // A BaseAmd entry too (no ACO payload on its comp).
        let base = cfg(SchedulerKind::BaseAmd);
        let base_fresh = cache.compile_solo(&ddgs[0], &occ, &base);

        let dir = std::env::temp_dir().join("schedcache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip_{}.txt", std::process::id()));
        cache.save_to(&path).unwrap();
        let loaded = ScheduleCache::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), cache.len());

        // Every lookup on the loaded cache is a certified hit with the
        // exact original compilation.
        for (d, f) in ddgs.iter().zip(&fresh) {
            let got = loaded.compile_solo(d, &occ, &c);
            assert!(comps_eq(f, &got));
        }
        assert!(comps_eq(
            &base_fresh,
            &loaded.compile_solo(&ddgs[0], &occ, &base)
        ));
        let s = loaded.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (5, 0, 0));
    }

    #[test]
    fn load_rejects_malformed_files() {
        let dir = std::env::temp_dir().join("schedcache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("malformed_{}.txt", std::process::id()));
        std::fs::write(&path, "not a cache\n").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        std::fs::write(&path, "schedcache v1\nkey 0x12\ngarbage\n").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        // An empty file is missing even the header.
        std::fs::write(&path, "").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        // A well-formed body without the `eof` trailer is a truncation.
        std::fs::write(&path, "schedcache v1\n").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        // Trailer entry-count mismatches are rejected.
        std::fs::write(&path, "schedcache v1\neof 3\n").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        // Content after the trailer is rejected.
        std::fs::write(&path, "schedcache v1\neof 0\nkey 0x1\n").unwrap();
        assert!(ScheduleCache::load_from(&path).is_err());
        // The empty cache itself round-trips.
        std::fs::write(&path, "schedcache v1\neof 0\n").unwrap();
        assert_eq!(ScheduleCache::load_from(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    /// A writer that accepts a bounded number of bytes and then fails, and
    /// can be told to fail on `flush` — models ENOSPC/EIO surfacing at the
    /// final buffered write, the exact error `BufWriter`'s drop swallows.
    struct FailingWriter {
        budget: usize,
        fail_flush: bool,
    }

    impl io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.len() > self.budget {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            if self.fail_flush {
                Err(io::Error::new(io::ErrorKind::StorageFull, "flush failed"))
            } else {
                Ok(())
            }
        }
    }

    /// The save path must report failures instead of returning `Ok(())`:
    /// both a mid-stream write error and a flush-time error (the historical
    /// bug — `BufWriter`'s drop silently discarded it).
    #[test]
    fn save_reports_write_and_flush_errors() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let cache = ScheduleCache::new();
        cache.compile_solo(&sample_ddg(3), &occ, &c);

        let mut out = FailingWriter {
            budget: 64,
            fail_flush: false,
        };
        let err = cache.save_to_writer(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);

        // Errors surfacing only at flush time (buffered tail write) must
        // propagate too.
        let mut out = io::BufWriter::new(FailingWriter {
            budget: usize::MAX,
            fail_flush: true,
        });
        let err = cache.save_to_writer(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    /// `save_to` goes through a sibling temp file + atomic rename: saving
    /// over an existing cache fully replaces it, leaves no temp droppings,
    /// and a save into a missing directory errors without touching
    /// anything.
    #[test]
    fn save_is_atomic_and_cleans_up() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let dir = std::env::temp_dir().join(format!("schedcache_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");

        let first = ScheduleCache::new();
        first.compile_solo(&sample_ddg(1), &occ, &c);
        first.save_to(&path).unwrap();
        let second = ScheduleCache::new();
        second.compile_solo(&sample_ddg(2), &occ, &c);
        second.compile_solo(&sample_ddg(3), &occ, &c);
        second.save_to(&path).unwrap();

        // The target holds exactly the second save (byte-for-byte what the
        // writer emits) and the directory holds no temp file.
        let mut expect = Vec::new();
        second.save_to_writer(&mut expect).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), expect);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["cache.txt".to_string()], "temp file leaked");

        // A failing save (missing parent directory) errors out loud.
        let missing = dir.join("nope").join("cache.txt");
        assert!(second.save_to(&missing).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The durability property the daemon's persist-on-shutdown depends
    /// on: a persisted cache truncated at *every* line boundary (and at
    /// assorted mid-line byte offsets) is rejected with a clean
    /// `InvalidData` error — never a panic, never a half-loaded cache that
    /// serves hits from the surviving prefix.
    #[test]
    fn truncation_fuzz_never_half_loads() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let base = cfg(SchedulerKind::BaseAmd);
        let cache = ScheduleCache::new();
        for seed in 1..4 {
            cache.compile_solo(&sample_ddg(seed), &occ, &c);
        }
        // A no-ACO entry too, so the fuzz crosses both comp layouts.
        cache.compile_solo(&sample_ddg(1), &occ, &base);
        let mut bytes = Vec::new();
        cache.save_to_writer(&mut bytes).unwrap();

        // The intact file loads completely.
        assert_eq!(
            ScheduleCache::load_from_reader(io::BufReader::new(&bytes[..]))
                .unwrap()
                .len(),
            cache.len()
        );

        // Every proper prefix ending at a line boundary must be rejected.
        let mut cut_points: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .filter(|&i| i < bytes.len())
            .collect();
        cut_points.push(0);
        // And a spread of mid-line offsets (never the full length).
        cut_points.extend((1..bytes.len()).step_by(97));
        for cut in cut_points {
            let prefix = &bytes[..cut];
            let err = match ScheduleCache::load_from_reader(io::BufReader::new(prefix)) {
                Err(e) => e,
                Ok(_) => panic!("truncation at byte {cut} must not load"),
            };
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "truncation at byte {cut} must be InvalidData, got {err}"
            );
        }
    }

    #[test]
    fn hand_edited_cache_file_cannot_poison() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let ddg = sample_ddg(23);
        let cache = ScheduleCache::new();
        let fresh = cache.compile_solo(&ddg, &occ, &c);
        let dir = std::env::temp_dir().join("schedcache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("edited_{}.txt", std::process::id()));
        cache.save_to(&path).unwrap();
        // Lie about the final occupancy in the persisted claims.
        let text = std::fs::read_to_string(&path).unwrap();
        let edited: Vec<String> = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("comp ") {
                    let mut t: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
                    t[2] = (t[2].parse::<u32>().unwrap() + 1).to_string();
                    format!("comp {}", t.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&path, edited.join("\n") + "\n").unwrap();
        let loaded = ScheduleCache::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let got = loaded.compile_solo(&ddg, &occ, &c);
        assert!(comps_eq(&fresh, &got), "edited claims must be bypassed");
        assert_eq!(loaded.stats().bypasses, 1);
    }

    /// Concurrent readers and writers on the sharded store: no torn reads,
    /// every thread sees its own inserts, and the cache survives drop with
    /// retired snapshots outstanding.
    #[test]
    fn sharded_store_is_safe_under_concurrency() {
        let occ = machine_model::OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::BaseAmd);
        let ddgs: Vec<Ddg> = (0..16).map(|i| sample_ddg(100 + i)).collect();
        let expected: Vec<RegionCompilation> =
            ddgs.iter().map(|d| compile_region(d, &occ, &c)).collect();
        let cache = ScheduleCache::new();
        crossbeam::scope(|s| {
            for t in 0..4 {
                let (cache, ddgs, expected, c) = (&cache, &ddgs, &expected, &c);
                let occ = &occ;
                s.spawn(move |_| {
                    for round in 0..3 {
                        for (i, d) in ddgs.iter().enumerate() {
                            // Stagger the order per thread so lookups and
                            // inserts interleave differently.
                            let i = (i + t * 5 + round) % ddgs.len();
                            let got = cache.compile_solo(&ddgs[i], occ, c);
                            assert!(comps_eq(&expected[i], &got));
                            let _ = d;
                        }
                    }
                });
            }
        })
        .unwrap();
        // Seeds may generate content-identical regions (that is the point
        // of the cache), so count distinct fingerprints, not seeds.
        let unique: std::collections::HashSet<u64> =
            ddgs.iter().map(ddg_content_fingerprint).collect();
        assert_eq!(cache.len(), unique.len());
        let s = cache.stats();
        assert_eq!(s.bypasses, 0);
        assert_eq!(s.hits + s.misses, 4 * 3 * 16);
    }
}
