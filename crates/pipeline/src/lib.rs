//! The compilation pipeline around the ACO scheduler.
//!
//! Reproduces the flow of Section VI: every scheduling region is first
//! scheduled by the production heuristic; ACO is invoked only when the
//! heuristic result is above a lower bound and the expected benefit passes
//! the compile-time filters; a post-scheduling filter reverts to the
//! heuristic schedule when ACO traded too much schedule length for too
//! little occupancy. On top of the per-region flow, the crate models:
//!
//! * **compile time** (Table 5) — a fixed per-region base compilation cost
//!   plus the modeled scheduling time of whichever scheduler is active,
//! * **execution time** (Figure 4) — an analytic kernel-throughput model
//!   driven by the two quantities a scheduler controls: occupancy and
//!   schedule length,
//! * **suite runs** — compiling a whole [`workloads::Suite`] under any
//!   [`SchedulerKind`] and aggregating the statistics the paper's tables
//!   report,
//! * **batched compilation** ([`batch`]) — the Section VII future-work
//!   mode: a kernel's ACO-eligible regions grouped into cooperative
//!   multi-region launches under the colony's block budget, sharing the
//!   launch/allocation/transfer overheads that dominate small regions,
//! * **host-parallel suite compilation** ([`host_pool`]) — a work-stealing
//!   pool of host threads compiling the suite's region jobs concurrently
//!   ([`PipelineConfig::host_threads`]), with a deterministic sequential
//!   merge that keeps every result byte-identical at any thread count,
//! * **content-addressed schedule memoization** ([`cache`]) — duplicate
//!   regions (template-instantiated library kernels) compile once; every
//!   cache hit is equality-checked and re-certified against the new
//!   region instance, so results are byte-identical cache on and off
//!   ([`PipelineConfig::cache`]),
//! * **in-pipeline static analysis** ([`analyze`]) — the `sched-analyze`
//!   S-code passes run read-only over every compiled region plus a
//!   once-per-suite cache-key coverage check, aggregated into
//!   [`SuiteRun::analysis`] ([`PipelineConfig::analyze`]),
//! * **self-tuning search** ([`tune`]) — a deterministic per-class bandit
//!   (`aco-tune`) picks ACO search-effort deltas per solo region and
//!   warm-starts pheromones from previously learned orders of the same
//!   structure class ([`PipelineConfig::tune`]); choices happen in the
//!   parallel job phase, observations only on the canonical merge, so
//!   tuned runs stay thread-count deterministic.

pub mod analyze;
pub mod batch;
pub mod cache;
pub mod config;
pub mod exec_model;
pub mod host_pool;
pub mod region;
pub mod suite_run;
pub mod tune;

pub use aco_tune::TuneStore;
pub use analyze::{analyze_region, check_config_drift, AnalysisReport};
pub use batch::plan_batches;
pub use cache::{CacheStats, ScheduleCache};
pub use config::{
    AnalyzeConfig, BatchingConfig, CacheConfig, PipelineConfig, SchedulerKind, TuneConfig,
};
pub use exec_model::{benchmark_throughput, kernel_time_us, ExecModel};
pub use host_pool::{
    plan_jobs as plan_suite_jobs, run_jobs_streaming, RegionJob, RegionOutcome, SlotTable,
    StreamTiming,
};
pub use region::{compile_region, compile_region_warm, FinalChoice, RegionCompilation};
pub use suite_run::{
    compile_suite, compile_suite_observed, compile_suite_timed, compile_suite_with_cache,
    compile_suite_with_stores, merge_job_results, RegionRecord, SuiteMerger, SuiteRun,
    SuiteWallclock,
};
pub use tune::{observe_outcome, tunable, tuned_solo_inputs, TuneTag};
