//! Compiling an entire benchmark suite and aggregating its statistics.

use crate::analyze::{analyze_region, check_config_drift, AnalysisReport};
use crate::cache::{CacheStats, ScheduleCache};
use crate::config::PipelineConfig;
use crate::exec_model::{
    benchmark_throughput, kernel_time_us, schedule_fingerprint, unmodeled_factor, ExecModel,
};
use crate::host_pool::{plan_jobs, run_jobs_streaming, RegionJob, RegionOutcome};
use crate::region::{compile_region, FinalChoice, RegionCompilation};
use crate::tune::observe_outcome;
use crate::SchedulerKind;
use aco_tune::TuneStore;
use machine_model::OccupancyModel;
use sched_ir::{Cycle, Ddg, Fnv64};
use workloads::Suite;

/// Per-region record of a suite compilation.
#[derive(Debug, Clone, Copy)]
pub struct RegionRecord {
    /// Kernel index within the suite.
    pub kernel: usize,
    /// Region index within the kernel.
    pub region: usize,
    /// Region size (instructions).
    pub size: usize,
    /// Final occupancy / length after filters.
    pub occupancy: u32,
    /// Final schedule length.
    pub length: Cycle,
    /// Heuristic baseline occupancy / length.
    pub heuristic_occupancy: u32,
    /// Heuristic baseline schedule length.
    pub heuristic_length: Cycle,
    /// Whether ACO pass 1 / pass 2 iterated on this region.
    pub pass1_processed: bool,
    /// Whether ACO pass 2 iterated (survived LB check and the gate).
    pub pass2_processed: bool,
    /// Pass-1 / pass-2 iteration counts.
    pub pass1_iterations: u32,
    /// Pass-2 iteration count.
    pub pass2_iterations: u32,
    /// Modeled per-pass scheduling times, microseconds.
    pub pass1_time_us: f64,
    /// Pass-2 scheduling time, microseconds.
    pub pass2_time_us: f64,
    /// Total scheduling time of the region, microseconds.
    pub sched_time_us: f64,
    /// Whether the post-scheduling filter reverted ACO's schedule.
    pub reverted: bool,
    /// Whether the ACO schedule was kept.
    pub kept_aco: bool,
}

/// The outcome of compiling a whole suite under one scheduler.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Which scheduler compiled the suite.
    pub scheduler: SchedulerKind,
    /// One record per region, in suite iteration order.
    pub regions: Vec<RegionRecord>,
    /// Final kernel occupancies (min over the kernel's regions).
    pub kernel_occupancy: Vec<u32>,
    /// Modeled kernel run times, microseconds.
    pub kernel_time_us: Vec<f64>,
    /// Modeled benchmark run times, microseconds.
    pub benchmark_time_us: Vec<f64>,
    /// Modeled benchmark throughputs, GB/s.
    pub benchmark_throughput: Vec<f64>,
    /// Total compile time (base + scheduling), seconds.
    pub compile_time_s: f64,
    /// Schedule-cache activity of this run (all zeros when the cache was
    /// disabled). Counters depend on execution interleaving at
    /// `host_threads > 1`, so they are deliberately **excluded** from the
    /// suite fingerprint sched-verify computes over a run.
    pub cache: CacheStats,
    /// In-pipeline static-analysis report: `Some` iff
    /// [`PipelineConfig::analyze`] was enabled. Analysis is read-only, so
    /// every other field is bitwise identical whether this ran or not.
    pub analysis: Option<AnalysisReport>,
    /// FNV-1a fingerprint of the run, folded *incrementally* as results
    /// stream through the merge (region records as each kernel closes;
    /// the small per-kernel/per-benchmark aggregates at the end). Equals
    /// `sched_verify::suite_fingerprint` on the finished run — pinned by
    /// the golden tests — without a second pass over `regions`. Excludes
    /// `cache` (interleaving-dependent) and `analysis` (read-only).
    pub fingerprint: u64,
}

impl SuiteRun {
    /// Total scheduling time across all regions, seconds.
    pub fn sched_time_s(&self) -> f64 {
        self.regions.iter().map(|r| r.sched_time_us).sum::<f64>() / 1e6
    }

    /// Number of regions ACO processed in pass 1.
    pub fn pass1_count(&self) -> usize {
        self.regions.iter().filter(|r| r.pass1_processed).count()
    }

    /// Number of regions ACO processed in pass 2.
    pub fn pass2_count(&self) -> usize {
        self.regions.iter().filter(|r| r.pass2_processed).count()
    }

    /// Sum of final occupancies over all kernels (the paper's aggregate
    /// occupancy metric of Table 2).
    pub fn total_occupancy(&self) -> u64 {
        self.kernel_occupancy.iter().map(|&o| o as u64).sum()
    }

    /// Sum of final schedule lengths over all regions (the paper's
    /// aggregate schedule-length metric of Table 2).
    pub fn total_length(&self) -> u64 {
        self.regions.iter().map(|r| r.length as u64).sum()
    }
}

/// Compiles every region of the suite and models kernel/benchmark
/// performance and total compile time.
///
/// Host parallelism: with `cfg.host_threads > 1` the per-region (or, in
/// batched mode, per-group) compilations run on a work-stealing pool of
/// host threads (see [`crate::host_pool`]); results are merged on the
/// calling thread in canonical order, so the returned [`SuiteRun`] is
/// byte-identical at any thread count — only wall-clock time changes.
pub fn compile_suite(suite: &Suite, occ: &OccupancyModel, cfg: &PipelineConfig) -> SuiteRun {
    compile_suite_observed(suite, occ, cfg, |_, _, _, _, _| {})
}

/// [`compile_suite`] with an observer invoked on every region compilation
/// (including the occupancy-capped re-schedules of the kernel post filter),
/// before the kernel-level filter mutates the outcome.
///
/// The observer receives `(kernel, region, ddg, config, compilation)`,
/// where `config` is the pipeline configuration that compilation actually
/// ran under (the post-filter re-schedules set `aco.occupancy_cap`). This
/// is the verification hook: `sched-verify` certifies every schedule the
/// pipeline produces through it without the pipeline depending on the
/// verifier.
pub fn compile_suite_observed<F>(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    observe: F,
) -> SuiteRun
where
    F: FnMut(usize, usize, &Ddg, &PipelineConfig, &RegionCompilation),
{
    let cache = cfg.cache.enabled.then(ScheduleCache::new);
    compile_suite_with_cache(suite, occ, cfg, cache.as_ref(), observe)
}

/// [`compile_suite_observed`] compiling through a caller-owned
/// [`ScheduleCache`] (or none, overriding `cfg.cache`). Use this to share
/// one cache across several suite compilations — e.g. repeated runs of the
/// same suite, or a persisted cache reloaded from disk. The run's
/// [`SuiteRun::cache`] counters report only this call's activity.
///
/// With [`PipelineConfig::tune`] enabled this consults a *fresh* tuning
/// store: the run explores arms and records hints, but the knowledge dies
/// with the call. To actually profit from tuning, share a long-lived
/// store via [`compile_suite_with_stores`].
pub fn compile_suite_with_cache<F>(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    cache: Option<&ScheduleCache>,
    observe: F,
) -> SuiteRun
where
    F: FnMut(usize, usize, &Ddg, &PipelineConfig, &RegionCompilation),
{
    let tune = cfg.tune.enabled.then(TuneStore::new);
    compile_suite_with_stores(suite, occ, cfg, cache, tune.as_ref(), observe)
}

/// [`compile_suite_with_cache`] compiling through caller-owned stores: a
/// schedule cache and a tuning store (either may be `None`, overriding
/// `cfg.cache` / `cfg.tune`). Sharing one [`TuneStore`] across repeated
/// compilations is how the self-tuner learns: each run's job phase only
/// *reads* the store (arm choices and warm hints are pure functions of the
/// frozen state), and each run's canonical merge feeds outcomes back in a
/// single-threaded fixed order — so the learned state after any run is
/// byte-identical at every `host_threads` value.
pub fn compile_suite_with_stores<F>(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    cache: Option<&ScheduleCache>,
    tune: Option<&TuneStore>,
    observe: F,
) -> SuiteRun
where
    F: FnMut(usize, usize, &Ddg, &PipelineConfig, &RegionCompilation),
{
    // Snapshot before the job phase: the run's counters must cover the job
    // phase's lookups, not just the merge's capped re-schedules.
    let stats_start = cache.map(ScheduleCache::stats).unwrap_or_default();
    let jobs = plan_jobs(suite, cfg);
    // Jobs must read a tuning state *frozen* at phase start — under the
    // barrier shape that held for free (all reads preceded all merge
    // writes); with the merge streaming alongside the jobs, a clone makes
    // it hold by construction. Observations still land on the caller's
    // store, in canonical order, on this thread.
    let job_store = tune.cloned();
    let mut merger = SuiteMerger::new(suite, occ, cfg, &jobs, cache, tune, observe);
    run_jobs_streaming(
        suite,
        occ,
        cfg,
        &jobs,
        cfg.host_threads,
        cache,
        job_store.as_ref(),
        |i, outcomes, _| merger.consume(i, outcomes),
    );
    let mut run = merger.finish();
    // The job phase's arm choices and warm hits landed on the frozen
    // clone; fold its counters back so the caller's store reports them.
    if let (Some(store), Some(job_store)) = (tune, job_store.as_ref()) {
        store.absorb_counters(&job_store.stats());
    }
    run.cache = cache
        .map(|c| c.stats().since(stats_start))
        .unwrap_or_default();
    run
}

/// Host wall-clock breakdown of one [`compile_suite_timed`] call, seconds.
/// These are *measured host* times — unrelated to the modeled GPU
/// microseconds inside [`SuiteRun`] (see DESIGN.md on the two time
/// domains).
#[derive(Debug, Clone, Copy)]
pub struct SuiteWallclock {
    /// Planning the job list.
    pub plan_s: f64,
    /// The job phase (what `host_threads` parallelizes). On a worker pool
    /// this is the wall span from phase start to the last job's
    /// completion; inline (`host_threads <= 1`) it is the cumulative time
    /// inside the jobs, excluding the interleaved merge work.
    pub jobs_s: f64,
    /// The deterministic merge's *busy* time: observer replay, kernel post
    /// filter, modeled time and throughput aggregation. With the streaming
    /// consumer this work is no longer a serial tail — see
    /// `merge_overlap_s`.
    pub merge_s: f64,
    /// The portion of `merge_s` that ran while jobs were still in flight
    /// on the pool — merge work hidden inside the job phase. Zero when
    /// `host_threads <= 1` (nothing runs concurrently inline). The serial
    /// merge tail is `merge_s - merge_overlap_s`, and
    /// `total_s < jobs_s + merge_s` exactly when overlap is non-zero.
    pub merge_overlap_s: f64,
    /// End-to-end wall-clock of the whole call.
    pub total_s: f64,
}

impl SuiteWallclock {
    /// The serialized critical path: plan, the job span, and only the
    /// non-overlapped remainder of the merge. This is what end-to-end
    /// time converges to as the streaming consumer hides the merge.
    pub fn critical_path_s(&self) -> f64 {
        self.plan_s + self.jobs_s + (self.merge_s - self.merge_overlap_s)
    }
}

/// [`compile_suite`] with a measured host wall-clock breakdown. The
/// returned [`SuiteRun`] is exactly what [`compile_suite`] returns —
/// timing instrumentation reads the clock only at phase and consume
/// boundaries, never inside the schedulers.
pub fn compile_suite_timed(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
) -> (SuiteRun, SuiteWallclock) {
    use std::time::Instant;
    let start = Instant::now();
    let cache = cfg.cache.enabled.then(ScheduleCache::new);
    let cache = cache.as_ref();
    let tune = cfg.tune.enabled.then(TuneStore::new);
    let tune = tune.as_ref();
    let jobs = plan_jobs(suite, cfg);
    let plan_s = start.elapsed().as_secs_f64();
    let job_store = tune.cloned();
    let mut merger = SuiteMerger::new(suite, occ, cfg, &jobs, cache, tune, |_, _, _, _, _| {});
    let (mut merge_s, mut merge_overlap_s) = (0.0, 0.0);
    let timing = run_jobs_streaming(
        suite,
        occ,
        cfg,
        &jobs,
        cfg.host_threads,
        cache,
        job_store.as_ref(),
        |i, outcomes, in_flight| {
            let t = Instant::now();
            merger.consume(i, outcomes);
            let d = t.elapsed().as_secs_f64();
            merge_s += d;
            if in_flight > 0 {
                merge_overlap_s += d;
            }
        },
    );
    let t_finish = Instant::now();
    let mut run = merger.finish();
    merge_s += t_finish.elapsed().as_secs_f64();
    run.cache = cache.map(ScheduleCache::stats).unwrap_or_default();
    (
        run,
        SuiteWallclock {
            plan_s,
            jobs_s: if timing.pooled {
                timing.jobs_span_s
            } else {
                timing.jobs_busy_s
            },
            merge_s,
            merge_overlap_s,
            total_s: start.elapsed().as_secs_f64(),
        },
    )
}

/// The barrier-shape merge, retained as the **reference implementation**:
/// every job already ran, `results` is indexed by canonical job, and the
/// whole merge executes here as one serial pass. The streaming compilers
/// above produce byte-identical output (both feed the same
/// [`SuiteMerger`] the same canonical stream) — the equivalence property
/// tests pin that against this entry point.
///
/// Public so out-of-crate executors — the `sched-serve` daemon runs suite
/// jobs through its own admission-controlled priority queue — can run
/// [`crate::host_pool::run_job`] in *any* order and still produce the
/// byte-identical [`SuiteRun`] this crate's own compilers return: `jobs`
/// must be [`plan_jobs`]'s canonical list and `results` its per-job
/// outcomes indexed the same way. [`SuiteRun::cache`] is left zeroed
/// (callers sharing a long-lived cache report deltas themselves).
///
/// When a [`TuneStore`] is supplied, every tuned outcome is fed back into
/// it here — and *only* here, single-threaded in canonical order, so the
/// store's learned state after the call is independent of how the jobs
/// were executed.
#[allow(clippy::too_many_arguments)]
pub fn merge_job_results<F>(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    jobs: &[RegionJob],
    results: Vec<Vec<RegionOutcome>>,
    cache: Option<&ScheduleCache>,
    tune: Option<&TuneStore>,
    observe: F,
) -> SuiteRun
where
    F: FnMut(usize, usize, &Ddg, &PipelineConfig, &RegionCompilation),
{
    let mut merger = SuiteMerger::new(suite, occ, cfg, jobs, cache, tune, observe);
    for (i, outcomes) in results.into_iter().enumerate() {
        merger.consume(i, outcomes);
    }
    merger.finish()
}

/// Folds one region record into the incremental suite fingerprint — the
/// exact word stream `sched_verify::suite_fingerprint` hashes per record.
fn fold_record(fp: &mut Fnv64, r: &RegionRecord) {
    fp.word(r.kernel as u64);
    fp.word(r.region as u64);
    fp.word(r.size as u64);
    fp.word(r.occupancy as u64);
    fp.word(r.length as u64);
    fp.word(r.heuristic_occupancy as u64);
    fp.word(r.heuristic_length as u64);
    fp.word(r.pass1_processed as u64);
    fp.word(r.pass2_processed as u64);
    fp.word(r.pass1_iterations as u64);
    fp.word(r.pass2_iterations as u64);
    fp.word(r.pass1_time_us.to_bits());
    fp.word(r.pass2_time_us.to_bits());
    fp.word(r.sched_time_us.to_bits());
    fp.word(r.reverted as u64);
    fp.word(r.kept_aco as u64);
}

/// The **streaming deterministic merge**: consumes per-job results one at
/// a time, strictly in canonical job order, and performs the entire
/// sequential half of suite compilation incrementally — observer replay,
/// in-pipeline analysis, tuner feedback, the kernel-level post filter the
/// moment a kernel's last job lands, modeled-time accounting, and the
/// suite fingerprint as a running FNV-1a fold.
///
/// Determinism is by construction: [`consume`](SuiteMerger::consume)
/// *requires* canonical order (asserted), runs on one thread, and every
/// float accumulation happens at a fixed point in that order — so the
/// finished [`SuiteRun`] is byte-identical whether results were produced
/// inline, by a work-stealing pool at any thread count, or by a daemon's
/// priority queue in any service order.
///
/// Merge-side buffers are pre-sized from the planned job list at
/// construction: in steady state (no occupancy-capped re-schedules, no
/// analysis) the merge loop performs **zero** allocator events — the
/// counting-allocator test extends the PR 3/7 allocation-free invariant
/// from `run_job` to this whole path.
pub struct SuiteMerger<'a, F> {
    suite: &'a Suite,
    occ: &'a OccupancyModel,
    cfg: &'a PipelineConfig,
    jobs: &'a [RegionJob],
    cache: Option<&'a ScheduleCache>,
    tune: Option<&'a TuneStore>,
    observe: F,
    exec: ExecModel,
    analysis: Option<AnalysisReport>,
    records: Vec<RegionRecord>,
    kernel_occupancy: Vec<u32>,
    kernel_times: Vec<f64>,
    compile_us: f64,
    fp: Fnv64,
    /// Planned job count per kernel (drives kernel-boundary detection).
    kernel_jobs: Vec<usize>,
    next_job: usize,
    kernel: usize,
    consumed_in_kernel: usize,
    /// Per-kernel scratch, pre-sized to the largest kernel and reused
    /// (cleared, never reallocated) across the whole merge.
    slots: Vec<Option<RegionCompilation>>,
    compiled: Vec<RegionCompilation>,
    per_region: Vec<(u32, Cycle)>,
    bench_times: Vec<f64>,
}

impl<'a, F> SuiteMerger<'a, F>
where
    F: FnMut(usize, usize, &Ddg, &PipelineConfig, &RegionCompilation),
{
    /// A merger ready to consume job 0. `jobs` must be [`plan_jobs`]'s
    /// canonical list for `(suite, cfg)`.
    pub fn new(
        suite: &'a Suite,
        occ: &'a OccupancyModel,
        cfg: &'a PipelineConfig,
        jobs: &'a [RegionJob],
        cache: Option<&'a ScheduleCache>,
        tune: Option<&'a TuneStore>,
        observe: F,
    ) -> SuiteMerger<'a, F> {
        let mut kernel_jobs = vec![0usize; suite.kernels.len()];
        for job in jobs {
            kernel_jobs[job.kernel()] += 1;
        }
        let max_regions = suite.kernels.iter().map(|k| k.regions.len()).max();
        let max_regions = max_regions.unwrap_or(0);
        let max_bench = suite.benchmarks.iter().map(|b| b.kernels.len()).max();
        // In-pipeline static analysis rides the observer path: it sees
        // exactly the compilations the observer sees (including capped
        // re-schedules) and never mutates one, so it cannot perturb the
        // run.
        let analysis = cfg.analyze.enabled.then(|| {
            let mut rep = AnalysisReport::default();
            rep.absorb(check_config_drift(cfg, occ));
            rep
        });
        let mut slots = Vec::with_capacity(max_regions);
        if let Some(first) = suite.kernels.first() {
            slots.resize_with(first.regions.len(), || None);
        }
        SuiteMerger {
            suite,
            occ,
            cfg,
            jobs,
            cache,
            tune,
            observe,
            exec: ExecModel {
                max_occupancy: occ.max_waves(),
            },
            analysis,
            records: Vec::with_capacity(suite.region_count()),
            kernel_occupancy: Vec::with_capacity(suite.kernels.len()),
            kernel_times: Vec::with_capacity(suite.kernels.len()),
            compile_us: 0.0,
            fp: Fnv64::new(),
            kernel_jobs,
            next_job: 0,
            kernel: 0,
            consumed_in_kernel: 0,
            slots,
            compiled: Vec::with_capacity(max_regions),
            per_region: Vec::with_capacity(max_regions),
            bench_times: Vec::with_capacity(max_bench.unwrap_or(0)),
        }
    }

    fn analyze_comp(&mut self, k: usize, ri: usize, ddg: &Ddg, comp: &RegionCompilation) {
        if let Some(rep) = self.analysis.as_mut() {
            rep.regions_analyzed += 1;
            rep.absorb(
                analyze_region(ddg, comp)
                    .into_iter()
                    .map(|f| f.in_region(k, ri))
                    .collect(),
            );
        }
    }

    /// Merges one job's outcomes. Must be called with `job_index` exactly
    /// one past the previous call (starting at 0) — the canonical order
    /// every determinism guarantee rests on; out-of-order consumption
    /// panics rather than silently producing a different run.
    pub fn consume(&mut self, job_index: usize, outcomes: Vec<RegionOutcome>) {
        assert_eq!(
            job_index, self.next_job,
            "job results must be consumed in canonical job order"
        );
        let k = self.jobs[job_index].kernel();
        // Kernels the canonical order skipped entirely (region-free) close
        // as we pass them.
        while self.kernel < k {
            self.finish_kernel();
        }
        let suite = self.suite;
        for RegionOutcome {
            region,
            cfg: region_cfg,
            comp,
            tune: tag,
        } in outcomes
        {
            let ddg = &suite.kernels[k].regions[region];
            (self.observe)(k, region, ddg, &region_cfg, &comp);
            self.analyze_comp(k, region, ddg, &comp);
            if let (Some(store), Some(tag)) = (self.tune, tag) {
                observe_outcome(store, &tag, &comp);
            }
            self.slots[region] = Some(comp);
        }
        self.next_job += 1;
        self.consumed_in_kernel += 1;
        if self.consumed_in_kernel == self.kernel_jobs[k] {
            self.finish_kernel();
        }
    }

    /// Closes the current kernel: post filter, records, modeled kernel
    /// time — the moment its last job was consumed, not at suite end.
    fn finish_kernel(&mut self) {
        let suite = self.suite;
        let k = self.kernel;
        let kernel = &suite.kernels[k];
        debug_assert_eq!(self.consumed_in_kernel, self.kernel_jobs[k]);
        // Move the scratch out so `&mut self` methods stay callable in the
        // loops below; both moves are pointer swaps, not allocations, and
        // the vectors go back (capacity intact) before returning.
        let mut compiled = std::mem::take(&mut self.compiled);
        compiled.extend(
            self.slots
                .drain(..)
                .map(|c| c.expect("every region compiled by some job")),
        );
        for (c, ddg) in compiled.iter().zip(&kernel.regions) {
            self.compile_us += self.cfg.base_cost_us(ddg.len()) + c.sched_time_us;
        }
        // Kernel-level post filter: occupancy is a whole-kernel property
        // (registers are allocated per kernel), so pressure savings beyond
        // the kernel's minimum occupancy are pure schedule-length loss.
        // This mirrors the production scheduler's kernel-wide occupancy
        // target. Two remedies, cheapest first:
        //  1. revert to the heuristic schedule when it is shorter and does
        //     not lower the kernel minimum;
        //  2. otherwise re-schedule the region with pass 2's pressure
        //     constraint relaxed to the kernel minimum's APRP band.
        let kmin = compiled.iter().map(|c| c.occupancy).min().unwrap_or(0);
        for (ri, (c, ddg)) in compiled.iter_mut().zip(&kernel.regions).enumerate() {
            if c.choice != FinalChoice::Aco || c.occupancy <= kmin || c.length <= c.heuristic.length
            {
                continue;
            }
            if c.heuristic.occupancy >= kmin {
                c.choice = FinalChoice::Heuristic;
                c.occupancy = c.heuristic.occupancy;
                c.length = c.heuristic.length;
                c.reverted = true;
                continue;
            }
            let mut capped_cfg = *self.cfg;
            capped_cfg.aco.occupancy_cap = Some(kmin);
            // The cap is part of the cache key (`occupancy_cap` is an
            // `AcoConfig` field), so capped re-schedules memoize
            // independently of the uncapped compilations.
            let capped = match self.cache {
                Some(cache) => cache.compile_solo(ddg, self.occ, &capped_cfg),
                None => compile_region(ddg, self.occ, &capped_cfg),
            };
            (self.observe)(k, ri, ddg, &capped_cfg, &capped);
            self.analyze_comp(k, ri, ddg, &capped);
            self.compile_us += capped.sched_time_us;
            c.sched_time_us += capped.sched_time_us;
            if let Some(a) = capped.aco {
                if a.occupancy >= kmin && a.length < c.length {
                    // The record must describe the compilation actually
                    // adopted: the capped run's pass flags, iteration
                    // counts and per-pass times replace the original
                    // run's (the total scheduling time above keeps both
                    // runs — both were paid).
                    c.occupancy = a.occupancy;
                    c.length = a.length;
                    c.pass1_processed = capped.pass1_processed;
                    c.pass2_processed = capped.pass2_processed;
                    c.aco = Some(a);
                }
            }
        }
        self.per_region.clear();
        for (ri, c) in compiled.drain(..).enumerate() {
            self.per_region.push((c.occupancy, c.length));
            let (p1_iter, p2_iter, p1_us, p2_us) = match &c.aco {
                Some(a) => (
                    a.pass1.iterations,
                    a.pass2.iterations,
                    a.pass1.time_us,
                    a.pass2.time_us,
                ),
                None => (0, 0, 0.0, 0.0),
            };
            let record = RegionRecord {
                kernel: k,
                region: ri,
                size: c.size,
                occupancy: c.occupancy,
                length: c.length,
                heuristic_occupancy: c.heuristic.occupancy,
                heuristic_length: c.heuristic.length,
                pass1_processed: c.pass1_processed,
                pass2_processed: c.pass2_processed,
                pass1_iterations: p1_iter,
                pass2_iterations: p2_iter,
                pass1_time_us: p1_us,
                pass2_time_us: p2_us,
                sched_time_us: c.sched_time_us,
                reverted: c.reverted,
                kept_aco: c.choice == FinalChoice::Aco,
            };
            fold_record(&mut self.fp, &record);
            self.records.push(record);
        }
        self.compiled = compiled;
        self.kernel_occupancy
            .push(self.per_region.iter().map(|&(o, _)| o).min().unwrap_or(0));
        // Modeled time plus the unmodeled-factor perturbation drawn from
        // the final schedules (see exec_model::unmodeled_factor).
        let noise = unmodeled_factor(schedule_fingerprint(k, &self.per_region));
        self.kernel_times
            .push(kernel_time_us(&self.exec, kernel, &self.per_region) * (1.0 + noise));
        self.kernel += 1;
        self.consumed_in_kernel = 0;
        if let Some(next) = suite.kernels.get(self.kernel) {
            self.slots.resize_with(next.regions.len(), || None);
        }
    }

    /// Finalizes the run: closes any trailing region-free kernels, folds
    /// the benchmark aggregates, and completes the incremental
    /// fingerprint. Panics if any planned job was never consumed.
    pub fn finish(mut self) -> SuiteRun {
        assert_eq!(
            self.next_job,
            self.jobs.len(),
            "every planned job must be consumed before finishing the merge"
        );
        while self.kernel < self.suite.kernels.len() {
            self.finish_kernel();
        }
        let suite = self.suite;
        let mut benchmark_time_us: Vec<f64> = Vec::with_capacity(suite.benchmarks.len());
        let mut throughput: Vec<f64> = Vec::with_capacity(suite.benchmarks.len());
        for b in &suite.benchmarks {
            self.bench_times.clear();
            self.bench_times
                .extend(b.kernels.iter().map(|&k| self.kernel_times[k]));
            let bytes: u64 = b
                .kernels
                .iter()
                .map(|&k| suite.kernels[k].bytes_per_launch)
                .sum();
            benchmark_time_us.push(self.bench_times.iter().sum());
            throughput.push(benchmark_throughput(bytes, &self.bench_times));
        }
        let compile_time_s = self.compile_us / 1e6;
        // Fingerprint tail: the per-kernel and per-benchmark aggregates
        // follow the region records in the canonical word stream. The
        // expensive part — one word-fold pass over every region record —
        // already happened incrementally as kernels closed.
        let mut fp = self.fp;
        for &o in &self.kernel_occupancy {
            fp.word(o as u64);
        }
        for &t in &self.kernel_times {
            fp.word(t.to_bits());
        }
        for &t in &benchmark_time_us {
            fp.word(t.to_bits());
        }
        for &t in &throughput {
            fp.word(t.to_bits());
        }
        fp.word(compile_time_s.to_bits());
        SuiteRun {
            scheduler: self.cfg.scheduler,
            regions: self.records,
            kernel_occupancy: self.kernel_occupancy,
            kernel_time_us: self.kernel_times,
            benchmark_time_us,
            benchmark_throughput: throughput,
            compile_time_s,
            // Callers overwrite with the delta over their whole
            // compilation (job phase + merge); the merge alone cannot see
            // the job phase's start.
            cache: CacheStats::default(),
            analysis: self.analysis,
            fingerprint: fp.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SuiteConfig;

    fn tiny_suite() -> Suite {
        Suite::generate(&SuiteConfig::scaled(5, 0.008))
    }

    fn cfg(kind: SchedulerKind) -> PipelineConfig {
        let mut c = PipelineConfig::paper(kind, 0);
        c.aco.blocks = 4;
        // Let pass 2 run on any above-LB region so the tiny suite has ACO
        // activity to observe.
        c.aco.pass2_gate_cycles = 1;
        c
    }

    #[test]
    fn base_run_has_no_aco_regions() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let run = compile_suite(&suite, &occ, &cfg(SchedulerKind::BaseAmd));
        assert_eq!(run.regions.len(), suite.region_count());
        assert_eq!(run.pass1_count(), 0);
        assert_eq!(run.pass2_count(), 0);
        assert_eq!(run.benchmark_throughput.len(), suite.benchmarks.len());
        assert!(run.compile_time_s > 0.0);
        assert!(run.benchmark_throughput.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn aco_run_improves_aggregate_metrics() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let base = compile_suite(&suite, &occ, &cfg(SchedulerKind::BaseAmd));
        let aco = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
        assert!(aco.total_occupancy() >= base.total_occupancy());
        // ACO may lengthen schedules to buy occupancy, so only the
        // occupancy aggregate is monotone; but some region must have been
        // processed for the comparison to mean anything.
        assert!(aco.pass1_count() + aco.pass2_count() > 0);
    }

    #[test]
    fn aco_compile_time_exceeds_base() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let base = compile_suite(&suite, &occ, &cfg(SchedulerKind::BaseAmd));
        let par = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
        assert!(par.compile_time_s > base.compile_time_s);
    }

    #[test]
    fn deterministic() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let a = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
        let b = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
        assert_eq!(a.total_length(), b.total_length());
        assert_eq!(a.benchmark_throughput, b.benchmark_throughput);
    }

    #[test]
    fn batched_mode_reduces_compile_time() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let mut par_cfg = cfg(SchedulerKind::ParallelAco);
        par_cfg.aco.blocks = 16;
        let mut bat_cfg = cfg(SchedulerKind::BatchedParallelAco);
        bat_cfg.aco.blocks = 16;
        let par = compile_suite(&suite, &occ, &par_cfg);
        let bat = compile_suite(&suite, &occ, &bat_cfg);
        assert_eq!(bat.regions.len(), suite.region_count());
        assert!(
            bat.compile_time_s < par.compile_time_s,
            "batching must cut modeled compile time: batched {} vs parallel {}",
            bat.compile_time_s,
            par.compile_time_s
        );
    }

    #[test]
    fn batched_mode_is_deterministic() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let a = compile_suite(&suite, &occ, &cfg(SchedulerKind::BatchedParallelAco));
        let b = compile_suite(&suite, &occ, &cfg(SchedulerKind::BatchedParallelAco));
        assert_eq!(a.total_length(), b.total_length());
        assert_eq!(a.benchmark_throughput, b.benchmark_throughput);
        assert_eq!(a.compile_time_s, b.compile_time_s);
    }

    #[test]
    fn analysis_is_read_only_and_clean_on_real_suites() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let base_cfg = cfg(SchedulerKind::ParallelAco);
        let off = compile_suite(&suite, &occ, &base_cfg);
        let on = compile_suite(&suite, &occ, &base_cfg.with_analyze(true));
        // Read-only: every modeled result is bitwise identical on and off.
        assert_eq!(off.total_length(), on.total_length());
        assert_eq!(off.total_occupancy(), on.total_occupancy());
        assert_eq!(off.kernel_time_us, on.kernel_time_us);
        assert_eq!(off.benchmark_time_us, on.benchmark_time_us);
        assert_eq!(off.benchmark_throughput, on.benchmark_throughput);
        assert_eq!(off.compile_time_s, on.compile_time_s);
        assert!(off.analysis.is_none());
        // The report exists, covered every observed compilation, and a
        // healthy pipeline has nothing deny-worthy to report.
        let rep = on.analysis.expect("analysis enabled");
        assert!(rep.regions_analyzed >= suite.region_count());
        assert!(
            rep.is_clean(),
            "real pipeline output flagged: {:?}",
            rep.deny_findings
        );
    }

    /// Satellite 3 / D004-with-tuning: compiling with a frozen learned
    /// store is cache-transparent (identical results cache on and off) and
    /// repeatable, and the knowledge a run feeds back is deterministic.
    #[test]
    fn tuned_runs_are_cache_transparent_and_repeatable() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        // Learn for two rounds (explore, then mostly commit).
        let store = TuneStore::new();
        for _ in 0..2 {
            compile_suite_with_stores(&suite, &occ, &c, None, Some(&store), |_, _, _, _, _| {});
        }
        assert!(store.stats().observations > 0, "merge must feed back");
        // Clones carry the knowledge; each run below starts from the same
        // frozen state.
        let (s1, s2, s3) = (store.clone(), store.clone(), store.clone());
        let cache = ScheduleCache::new();
        let off = compile_suite_with_stores(&suite, &occ, &c, None, Some(&s1), |_, _, _, _, _| {});
        let on = compile_suite_with_stores(
            &suite,
            &occ,
            &c,
            Some(&cache),
            Some(&s2),
            |_, _, _, _, _| {},
        );
        let again =
            compile_suite_with_stores(&suite, &occ, &c, None, Some(&s3), |_, _, _, _, _| {});
        for other in [&on, &again] {
            assert_eq!(off.total_length(), other.total_length());
            assert_eq!(off.total_occupancy(), other.total_occupancy());
            assert_eq!(off.kernel_time_us, other.kernel_time_us);
            assert_eq!(off.benchmark_throughput, other.benchmark_throughput);
            assert_eq!(off.compile_time_s, other.compile_time_s);
        }
        assert!(on.cache.lookups() > 0, "cached run must use the cache");
    }

    /// `cfg.tune` defaults off, and an explicitly disabled tuner is the
    /// bitwise default pipeline — the golden-fingerprint contract.
    #[test]
    fn tuning_disabled_is_bitwise_default() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        assert!(!c.tune.enabled, "paper config must not tune by default");
        let base = compile_suite(&suite, &occ, &c);
        let off = compile_suite(&suite, &occ, &c.with_tune(false));
        assert_eq!(base.total_length(), off.total_length());
        assert_eq!(base.kernel_time_us, off.kernel_time_us);
        assert_eq!(base.benchmark_throughput, off.benchmark_throughput);
        assert_eq!(base.compile_time_s, off.compile_time_s);
    }

    #[test]
    fn capped_reschedule_record_reflects_adopted_compilation() {
        use std::collections::HashMap;
        let occ = OccupancyModel::vega_like();
        let mut adoptions = 0usize;
        for seed in [3u64, 5, 9, 12, 21, 33] {
            let suite = Suite::generate(&SuiteConfig::scaled(seed, 0.008));
            let c = cfg(SchedulerKind::ParallelAco);
            // First and (when the kernel post filter re-scheduled) capped
            // compilation per region, in observation order.
            let mut seen: HashMap<(usize, usize), Vec<RegionCompilation>> = HashMap::new();
            let run = compile_suite_observed(&suite, &occ, &c, |k, ri, _, _, comp| {
                seen.entry((k, ri)).or_default().push(comp.clone());
            });
            for rec in &run.regions {
                let obs = &seen[&(rec.kernel, rec.region)];
                if obs.len() < 2 {
                    continue;
                }
                let (orig, capped) = (&obs[0], &obs[1]);
                let Some(a) = &capped.aco else { continue };
                // Adoption is visible in the record: the capped ACO result's
                // occupancy/length were kept and differ from the original
                // compilation's outcome.
                if (rec.occupancy, rec.length) == (a.occupancy, a.length)
                    && (orig.occupancy, orig.length) != (a.occupancy, a.length)
                {
                    adoptions += 1;
                    assert_eq!(
                        (rec.pass1_iterations, rec.pass2_iterations),
                        (a.pass1.iterations, a.pass2.iterations),
                        "adopted record must report the capped run's iterations"
                    );
                    assert_eq!(
                        (rec.pass1_time_us, rec.pass2_time_us),
                        (a.pass1.time_us, a.pass2.time_us),
                        "adopted record must report the capped run's pass times"
                    );
                }
            }
        }
        assert!(
            adoptions > 0,
            "no capped re-schedule was adopted; the accounting fix is untested"
        );
    }
}
