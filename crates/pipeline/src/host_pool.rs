//! Work-stealing host-parallel execution of suite compilation jobs.
//!
//! The suite compiler's unit of parallelism is the **region job**: one solo
//! region compilation, or one cooperative batch group (batched mode). Jobs
//! are pure — [`run_job`] reads only shared immutable inputs and returns
//! its outcomes — so running them on any number of host threads in any
//! order produces the same per-job results. Determinism of the whole suite
//! run then rests on two invariants:
//!
//! 1. [`plan_jobs`] enumerates jobs in **canonical order**: kernels in
//!    suite order; within a kernel, batch groups in plan order followed by
//!    solo fallbacks in region order (exactly the order the sequential
//!    compiler visits them).
//! 2. The caller merges job results **in job index order** on one thread —
//!    replaying observer callbacks, summing modeled compile time, and
//!    applying the kernel post filter exactly as the sequential flow does.
//!
//! Under those invariants, `SuiteRun`, every observer callback, and every
//! float accumulation are byte-identical at any `host_threads` value; the
//! pool only changes host wall-clock time.
//!
//! The pool itself is a classic injector + per-worker deque arrangement
//! (`crossbeam::deque`): all job indices start in a shared [`Injector`],
//! workers pull batches into their local queue and steal from siblings when
//! both run dry. Jobs never spawn jobs, so a worker that finds the injector
//! and every sibling empty can retire.
//!
//! Two execution shapes are offered over the same pool. [`run_jobs`] is the
//! barrier shape: every job completes, then the caller merges — retained as
//! the reference implementation the equivalence tests compare against.
//! [`run_jobs_streaming`] is the pipelined shape: workers publish finished
//! results into a pre-sized [`SlotTable`] (one write-once slot per
//! canonical job index — no channel, no unbounded buffering) and the
//! *calling thread* consumes slot `i` the moment it lands, in index order.
//! Because consumption order is canonical either way, both shapes feed the
//! merge the identical stream; streaming only moves the merge work into
//! the shadow of still-running jobs.

use crate::batch::{compile_batch_group, plan_batches};
use crate::cache::ScheduleCache;
use crate::config::{PipelineConfig, SchedulerKind};
use crate::region::{compile_region_warm, RegionCompilation};
use crate::tune::{tunable, tuned_solo_inputs, TuneTag};
use aco_tune::TuneStore;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use machine_model::OccupancyModel;
use parking_lot::Mutex;
use sched_ir::Ddg;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, PoisonError};
use std::time::Instant;
use workloads::Suite;

/// One unit of parallel suite-compilation work.
#[derive(Debug, Clone)]
pub enum RegionJob {
    /// Compile one region on its own launch pair.
    Solo {
        /// Kernel index within the suite.
        kernel: usize,
        /// Region index within the kernel.
        region: usize,
    },
    /// Compile one planned batch group in a cooperative launch pair.
    Group {
        /// Kernel index within the suite.
        kernel: usize,
        /// Member region indices, in group order.
        members: Vec<usize>,
    },
}

impl RegionJob {
    /// The kernel this job belongs to.
    pub fn kernel(&self) -> usize {
        match self {
            RegionJob::Solo { kernel, .. } | RegionJob::Group { kernel, .. } => *kernel,
        }
    }
}

/// One region's compilation, tagged with the configuration its
/// construction actually ran under (batch groups record the split colony).
#[derive(Debug)]
pub struct RegionOutcome {
    /// Region index within the kernel.
    pub region: usize,
    /// The configuration the region's construction ran under.
    pub cfg: PipelineConfig,
    /// The compilation outcome.
    pub comp: RegionCompilation,
    /// How the compilation was tuned (`None` when tuning was off, the job
    /// was a batch group, or the scheduler kind is not ACO). The merge
    /// uses this to feed the outcome back into the tuning store.
    pub tune: Option<TuneTag>,
}

/// Plans the suite's job list in canonical (sequential-replay) order.
pub fn plan_jobs(suite: &Suite, cfg: &PipelineConfig) -> Vec<RegionJob> {
    let mut jobs = Vec::with_capacity(suite.region_count());
    for (k, kernel) in suite.kernels.iter().enumerate() {
        if cfg.scheduler == SchedulerKind::BatchedParallelAco {
            let sizes: Vec<usize> = kernel.regions.iter().map(Ddg::len).collect();
            let groups = plan_batches(&sizes, cfg.aco.blocks, &cfg.batching);
            let mut planned = vec![false; kernel.regions.len()];
            for group in groups {
                for &ri in &group {
                    planned[ri] = true;
                }
                jobs.push(RegionJob::Group {
                    kernel: k,
                    members: group,
                });
            }
            // Solo fallback for the regions the planner left out, after the
            // groups — matching the sequential batched compiler's order.
            for (ri, done) in planned.iter().enumerate() {
                if !done {
                    jobs.push(RegionJob::Solo {
                        kernel: k,
                        region: ri,
                    });
                }
            }
        } else {
            for ri in 0..kernel.regions.len() {
                jobs.push(RegionJob::Solo {
                    kernel: k,
                    region: ri,
                });
            }
        }
    }
    jobs
}

/// Runs one job to completion. Pure: reads only the shared inputs, returns
/// outcomes in the order the sequential compiler would observe them. When a
/// [`ScheduleCache`] is supplied the per-region flow is consulted through
/// it — transparently, since every hit is equality-checked and re-certified
/// (see [`crate::cache`]), so the outcomes are byte-identical either way.
///
/// When a [`TuneStore`] is supplied, solo ACO compilations consult it for
/// an arm-adjusted configuration and a pheromone warm-start hint (see
/// [`crate::tune`]). The store is only *read* here — `choose`/`warm_hint`
/// are pure in (state, args) and the state is frozen for the whole job
/// phase — so jobs stay pure and thread-count independent. Batch groups
/// and non-ACO kinds ignore the store.
pub fn run_job(
    job: &RegionJob,
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    cache: Option<&ScheduleCache>,
    tune: Option<&TuneStore>,
) -> Vec<RegionOutcome> {
    match job {
        RegionJob::Solo { kernel, region } => {
            let ddg = &suite.kernels[*kernel].regions[*region];
            let (region_cfg, warm, tag) = match tune.filter(|_| tunable(cfg.scheduler)) {
                Some(store) => {
                    // The salt is the region's stable suite position, so a
                    // single run spreads exploration across a class's
                    // instances deterministically.
                    let salt = ((*kernel as u64) << 32) | *region as u64;
                    let (tcfg, warm, tag) = tuned_solo_inputs(ddg, salt, cfg, store);
                    (tcfg, warm, Some(tag))
                }
                None => (*cfg, None, None),
            };
            let comp = match cache {
                Some(cache) => cache.compile_solo_with(ddg, occ, &region_cfg, warm.as_ref()),
                None => compile_region_warm(ddg, occ, &region_cfg, warm.as_ref()),
            };
            vec![RegionOutcome {
                region: *region,
                cfg: region_cfg,
                comp,
                tune: tag,
            }]
        }
        RegionJob::Group { kernel, members } => {
            let kernel = &suite.kernels[*kernel];
            let outcomes = match cache {
                Some(cache) => cache.compile_group(kernel, members, occ, cfg),
                None => compile_batch_group(kernel, members, occ, cfg),
            };
            outcomes
                .into_iter()
                .map(|(ri, rcfg, comp)| RegionOutcome {
                    region: ri,
                    cfg: rcfg,
                    comp,
                    tune: None,
                })
                .collect()
        }
    }
}

/// Executes every job, returning results indexed by job. `threads <= 1`
/// (or a single job) runs inline on the calling thread; otherwise a
/// work-stealing pool of `threads` scoped workers drains the job list.
/// Either way the result vector is identical: jobs are pure and indexed.
pub fn run_jobs(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    jobs: &[RegionJob],
    threads: usize,
    cache: Option<&ScheduleCache>,
    tune: Option<&TuneStore>,
) -> Vec<Vec<RegionOutcome>> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|j| run_job(j, suite, occ, cfg, cache, tune))
            .collect();
    }
    let injector = Injector::new();
    for i in 0..jobs.len() {
        injector.push(i);
    }
    let slots: Vec<Mutex<Option<Vec<RegionOutcome>>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    // No point spawning more workers than jobs.
    let workers: Vec<Worker<usize>> = (0..threads.min(jobs.len()))
        .map(|_| Worker::new_fifo())
        .collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    crossbeam::scope(|s| {
        for (me, worker) in workers.iter().enumerate() {
            let (injector, stealers, slots) = (&injector, &stealers, &slots);
            s.spawn(move |_| {
                while let Some(i) = find_task(worker, me, injector, stealers) {
                    *slots[i].lock() = Some(run_job(&jobs[i], suite, occ, cfg, cache, tune));
                }
            });
        }
    })
    .expect("suite compilation worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job ran"))
        .collect()
}

/// A pre-sized table of write-once result slots, one per canonical job
/// index — the hand-off between streaming producers and the in-order
/// consumer. Unlike a channel it holds at most one value per job (bounded
/// by construction) and delivers them in *slot* order, not completion
/// order, which is exactly what the deterministic merge needs.
///
/// [`cancel`](SlotTable::cancel) aborts the rendezvous: pending and future
/// [`wait_take`](SlotTable::wait_take) calls return `None`, and late
/// publishes are dropped. The `sched-serve` daemon uses it to unblock a
/// suite's merge consumer when the request expires in the queue.
pub struct SlotTable<T> {
    state: StdMutex<SlotState<T>>,
    ready: Condvar,
}

struct SlotState<T> {
    slots: Vec<Option<T>>,
    cancelled: bool,
}

impl<T> SlotTable<T> {
    /// A table of `n` empty slots.
    pub fn new(n: usize) -> SlotTable<T> {
        SlotTable {
            state: StdMutex::new(SlotState {
                slots: (0..n).map(|_| None).collect(),
                cancelled: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Number of slots (not the number currently filled).
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SlotState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fills slot `i` and wakes the consumer. Each slot is write-once:
    /// publishing an occupied slot panics (two jobs claimed the same
    /// index). Publishes after [`cancel`](SlotTable::cancel) are dropped.
    pub fn publish(&self, i: usize, value: T) {
        let mut s = self.lock();
        if s.cancelled {
            return;
        }
        assert!(s.slots[i].is_none(), "job slot {i} published twice");
        s.slots[i] = Some(value);
        self.ready.notify_all();
    }

    /// Aborts the rendezvous: every pending and future `wait_take` returns
    /// `None`, and late publishes are dropped.
    pub fn cancel(&self) {
        self.lock().cancelled = true;
        self.ready.notify_all();
    }

    /// Blocks until slot `i` is published (returning the value) or the
    /// table is cancelled (returning `None`). A value already published
    /// before cancellation is still delivered.
    pub fn wait_take(&self, i: usize) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(v) = s.slots[i].take() {
                return Some(v);
            }
            if s.cancelled {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Host-timing facts of one [`run_jobs_streaming`] call, for wall-clock
/// instrumentation (the merge side is timed by the caller's consumer).
#[derive(Debug, Clone, Copy)]
pub struct StreamTiming {
    /// Cumulative wall time spent inside [`run_job`], summed over workers.
    pub jobs_busy_s: f64,
    /// Wall span from the start of the job phase to the completion of the
    /// last job. Inline mode: equals `jobs_busy_s` (jobs alternate with
    /// merge work on one thread, so a span would double-count the merge).
    pub jobs_span_s: f64,
    /// Whether jobs ran on a worker pool. `false` means inline on the
    /// calling thread — no merge work ever overlapped a running job, so
    /// consumers always saw `in_flight == 0`.
    pub pooled: bool,
}

/// Executes every job and hands each result to `consume` **in canonical
/// job index order** — `consume(i, outcomes, in_flight)` where `in_flight`
/// is the number of jobs not yet finished by the pool at hand-off time
/// (always 0 in inline mode). This is the streaming half of the
/// deterministic merge: the consumer is the single-threaded in-order
/// merge, and it runs on the *calling* thread (so non-`Send` observers
/// work), overlapped with the workers still compiling later jobs.
///
/// `threads <= 1` (or a single job) degenerates to strict alternation on
/// the calling thread: run job `i`, consume job `i`. Since jobs are pure
/// and consumption order is canonical either way, the consumer sees a
/// stream byte-identical to the pooled one at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_jobs_streaming<C>(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    jobs: &[RegionJob],
    threads: usize,
    cache: Option<&ScheduleCache>,
    tune: Option<&TuneStore>,
    mut consume: C,
) -> StreamTiming
where
    C: FnMut(usize, Vec<RegionOutcome>, usize),
{
    if threads <= 1 || jobs.len() <= 1 {
        let mut busy = 0.0;
        for (i, job) in jobs.iter().enumerate() {
            let t = Instant::now();
            let outcomes = run_job(job, suite, occ, cfg, cache, tune);
            busy += t.elapsed().as_secs_f64();
            consume(i, outcomes, 0);
        }
        return StreamTiming {
            jobs_busy_s: busy,
            jobs_span_s: busy,
            pooled: false,
        };
    }
    let start = Instant::now();
    let table = SlotTable::new(jobs.len());
    let remaining = AtomicUsize::new(jobs.len());
    let busy_ns = AtomicU64::new(0);
    let jobs_done_at: StdMutex<Option<Instant>> = StdMutex::new(None);
    let injector = Injector::new();
    for i in 0..jobs.len() {
        injector.push(i);
    }
    let workers: Vec<Worker<usize>> = (0..threads.min(jobs.len()))
        .map(|_| Worker::new_fifo())
        .collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    crossbeam::scope(|s| {
        for (me, worker) in workers.iter().enumerate() {
            let (injector, stealers) = (&injector, &stealers);
            let (table, remaining, busy_ns, jobs_done_at) =
                (&table, &remaining, &busy_ns, &jobs_done_at);
            s.spawn(move |_| {
                while let Some(i) = find_task(worker, me, injector, stealers) {
                    let t = Instant::now();
                    let outcomes = run_job(&jobs[i], suite, occ, cfg, cache, tune);
                    busy_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    table.publish(i, outcomes);
                    if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                        *jobs_done_at.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(Instant::now());
                    }
                }
            });
        }
        // The in-order consumer, on the calling thread: merge job `i` the
        // moment slot `i` lands, while workers keep compiling ahead.
        for i in 0..jobs.len() {
            let outcomes = table
                .wait_take(i)
                .expect("suite job table is never cancelled");
            consume(i, outcomes, remaining.load(Ordering::SeqCst));
        }
    })
    .expect("suite compilation worker panicked");
    let done_at = jobs_done_at
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .expect("last job records its completion");
    StreamTiming {
        jobs_busy_s: busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
        jobs_span_s: done_at.duration_since(start).as_secs_f64(),
        pooled: true,
    }
}

/// The work-stealing discipline: local queue first, then a batch from the
/// global injector, then a steal from any sibling. `None` means the system
/// is drained — jobs never spawn jobs, so no new work can appear once the
/// injector and every sibling queue are empty.
fn find_task(
    local: &Worker<usize>,
    me: usize,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
) -> Option<usize> {
    if let Some(i) = local.pop() {
        return Some(i);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(i) => return Some(i),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    loop {
        let mut retry = false;
        for (other, stealer) in stealers.iter().enumerate() {
            if other == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(i) => return Some(i),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SuiteConfig;

    /// Satellite 3 (determinism): with a *frozen* tuning store, tuned job
    /// results are bit-identical across thread counts — choices and warm
    /// hints are pure reads, so the pool only changes wall-clock time.
    #[test]
    fn tuned_execution_is_thread_count_deterministic() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        let c = cfg(SchedulerKind::ParallelAco);
        let jobs = plan_jobs(&suite, &c);
        // Pre-learn some state so warm hints and commits are exercised.
        let store = TuneStore::new();
        for _ in 0..2 {
            for results in run_jobs(&suite, &occ, &c, &jobs, 1, None, Some(&store)) {
                for o in results {
                    let tag = o.tune.expect("solo ACO jobs are tuned");
                    crate::tune::observe_outcome(&store, &tag, &o.comp);
                }
            }
        }
        let inline = run_jobs(&suite, &occ, &c, &jobs, 1, None, Some(&store));
        for threads in [2, 8] {
            let pooled = run_jobs(&suite, &occ, &c, &jobs, threads, None, Some(&store));
            assert_eq!(inline.len(), pooled.len());
            for (a, b) in inline.iter().zip(&pooled) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.region, y.region);
                    assert_eq!(x.cfg, y.cfg, "tuned config must not depend on threads");
                    assert_eq!(x.comp.occupancy, y.comp.occupancy);
                    assert_eq!(x.comp.length, y.comp.length);
                    assert_eq!(
                        x.comp.sched_time_us.to_bits(),
                        y.comp.sched_time_us.to_bits()
                    );
                    assert_eq!(
                        x.comp.aco.as_ref().map(|r| &r.order),
                        y.comp.aco.as_ref().map(|r| &r.order)
                    );
                    assert_eq!(
                        x.tune.map(|t| (t.class, t.arm, t.warm_started)),
                        y.tune.map(|t| (t.class, t.arm, t.warm_started))
                    );
                }
            }
        }
    }

    fn tiny_suite() -> Suite {
        Suite::generate(&SuiteConfig::scaled(7, 0.008))
    }

    fn cfg(kind: SchedulerKind) -> PipelineConfig {
        let mut c = PipelineConfig::paper(kind, 0);
        c.aco.blocks = 4;
        c.aco.pass2_gate_cycles = 1;
        c
    }

    #[test]
    fn plan_covers_every_region_exactly_once_in_kernel_order() {
        let suite = tiny_suite();
        for kind in [
            SchedulerKind::ParallelAco,
            SchedulerKind::BatchedParallelAco,
        ] {
            let jobs = plan_jobs(&suite, &cfg(kind));
            let mut seen = vec![Vec::new(); suite.kernels.len()];
            let mut last_kernel = 0;
            for job in &jobs {
                assert!(job.kernel() >= last_kernel, "jobs must be kernel-ordered");
                last_kernel = job.kernel();
                match job {
                    RegionJob::Solo { kernel, region } => seen[*kernel].push(*region),
                    RegionJob::Group { kernel, members } => seen[*kernel].extend(members),
                }
            }
            for (k, kernel) in suite.kernels.iter().enumerate() {
                let mut regions = seen[k].clone();
                regions.sort_unstable();
                let expect: Vec<usize> = (0..kernel.regions.len()).collect();
                assert_eq!(regions, expect, "{kind:?} kernel {k}");
            }
        }
    }

    #[test]
    fn pooled_execution_matches_inline() {
        let suite = tiny_suite();
        let occ = OccupancyModel::vega_like();
        for kind in [
            SchedulerKind::ParallelAco,
            SchedulerKind::BatchedParallelAco,
        ] {
            let c = cfg(kind);
            let jobs = plan_jobs(&suite, &c);
            let inline = run_jobs(&suite, &occ, &c, &jobs, 1, None, None);
            let cache = ScheduleCache::new();
            for (threads, cache) in [(2, None), (5, None), (3, Some(&cache))] {
                let pooled = run_jobs(&suite, &occ, &c, &jobs, threads, cache, None);
                assert_eq!(inline.len(), pooled.len());
                for (a, b) in inline.iter().zip(&pooled) {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.region, y.region);
                        assert_eq!(x.cfg, y.cfg);
                        assert_eq!(x.comp.occupancy, y.comp.occupancy);
                        assert_eq!(x.comp.length, y.comp.length);
                        assert_eq!(x.comp.sched_time_us, y.comp.sched_time_us);
                        assert_eq!(
                            x.comp.aco.as_ref().map(|r| &r.order),
                            y.comp.aco.as_ref().map(|r| &r.order)
                        );
                    }
                }
            }
        }
    }
}
