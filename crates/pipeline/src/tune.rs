//! Self-tuning glue: consulting an [`aco_tune::TuneStore`] on the solo
//! ACO path and feeding outcomes back during the canonical merge.
//!
//! The bandit lives in `aco-tune`; this module decides *where* it plugs
//! into the pipeline:
//!
//! * **Choice** — [`tuned_solo_inputs`] runs in the parallel job phase
//!   ([`crate::host_pool::run_job`]): it classifies the region, asks the
//!   store for an arm (salted by the region's stable suite position, so
//!   one run spreads exploration across a class's instances), applies the
//!   arm's deltas to the ACO config, and looks up a pheromone warm-start
//!   hint under the region's *structure* fingerprint — the template-class
//!   key that matches duplicate instances even when names, latencies and
//!   register identities differ. `TuneStore::choose`/`warm_hint` are pure
//!   in (state, args) and the store is never mutated during the job
//!   phase, so jobs stay pure and thread-count independent.
//! * **Observation** — [`observe_outcome`] runs only on the merge thread,
//!   in canonical job order ([`crate::suite_run::merge_job_results`]):
//!   it records the arm's achieved (length, iterations) and the adopted
//!   order as a future warm hint. Single-threaded, fixed order — the
//!   store's learned state after a run is byte-identical at any
//!   `host_threads`.
//!
//! Only **solo ACO** jobs are tuned. Batch groups share one cooperative
//! launch whose block split is part of the batching contract, and the
//! non-ACO scheduler kinds have nothing to tune; both run exactly as
//! before even when tuning is enabled.

use crate::config::{PipelineConfig, SchedulerKind};
use crate::region::{FinalChoice, RegionCompilation};
use aco::WarmStart;
use aco_tune::{RegionClass, TuneStore, ARMS};
use sched_ir::{ddg_structure_fingerprint, Ddg};

/// How one region's compilation was tuned: carried from the job phase to
/// the merge so the observation lands on the same class/arm the choice
/// picked, without re-deriving either.
#[derive(Debug, Clone, Copy)]
pub struct TuneTag {
    /// The region's feature class.
    pub class: RegionClass,
    /// The arm index (into [`aco_tune::ARMS`]) the compilation ran under.
    pub arm: usize,
    /// The region's structure fingerprint (the warm-hint key).
    pub structure_fp: u64,
    /// Whether a warm-start hint was applied.
    pub warm_started: bool,
}

/// Whether tuning applies to a solo region under this scheduler kind.
pub fn tunable(kind: SchedulerKind) -> bool {
    matches!(
        kind,
        SchedulerKind::SequentialAco
            | SchedulerKind::ParallelAco
            | SchedulerKind::BatchedParallelAco
    )
}

/// The tuned inputs for one solo region compilation: the arm-adjusted
/// configuration, an applicable warm-start hint (if the store knows one
/// for this structure class), and the tag the merge needs to close the
/// loop. `salt` must be a stable per-region value (the suite position) —
/// see the module docs for the determinism contract.
pub fn tuned_solo_inputs(
    ddg: &Ddg,
    salt: u64,
    cfg: &PipelineConfig,
    store: &TuneStore,
) -> (PipelineConfig, Option<WarmStart>, TuneTag) {
    let class = RegionClass::of(ddg);
    let arm = store.choose(class, salt);
    let mut tuned = *cfg;
    tuned.aco = ARMS[arm].apply(cfg.aco);
    let structure_fp = ddg_structure_fingerprint(ddg);
    // A hint recorded under a colliding structure fingerprint (or a stale
    // one) may not fit this instance; `applies_to` checks size and every
    // dependence edge, so anything passed on is a sound candidate order.
    let warm = store.warm_hint(structure_fp).filter(|w| w.applies_to(ddg));
    let tag = TuneTag {
        class,
        arm,
        structure_fp,
        warm_started: warm.is_some(),
    };
    (tuned, warm, tag)
}

/// Feeds one tuned compilation's outcome back into the store: the arm's
/// achieved schedule length and total ACO iterations, and the adopted
/// order as a warm hint for future instances of the structure class.
/// Must only run on the merge thread, in canonical order.
pub fn observe_outcome(store: &TuneStore, tag: &TuneTag, comp: &RegionCompilation) {
    let iterations = comp
        .aco
        .as_ref()
        .map_or(0, |a| (a.pass1.iterations + a.pass2.iterations) as u64);
    store.observe(tag.class, tag.arm, comp.length as u64, iterations);
    let order = match (comp.choice, &comp.aco) {
        (FinalChoice::Aco, Some(a)) => &a.order,
        _ => &comp.heuristic.order,
    };
    store.record_warm(tag.structure_fp, order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tune::FIXED_ARM;
    use machine_model::OccupancyModel;

    fn cfg() -> PipelineConfig {
        let mut c = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        c.aco.blocks = 4;
        c.aco.pass2_gate_cycles = 1;
        c
    }

    #[test]
    fn tuned_inputs_only_move_search_effort_knobs() {
        let ddg = workloads::patterns::sized(60, 3);
        let store = TuneStore::new();
        let c = cfg();
        let (tuned, warm, tag) = tuned_solo_inputs(&ddg, 0, &c, &store);
        assert_eq!(tuned.scheduler, c.scheduler);
        assert_eq!(tuned.aco.seed, c.aco.seed);
        assert_eq!(tuned.aco.occupancy_cap, c.aco.occupancy_cap);
        assert_eq!(tuned.cache, c.cache);
        assert!(warm.is_none(), "empty store has no hints");
        assert!(!tag.warm_started);
        assert_eq!(tag.class, RegionClass::of(&ddg));
        assert_eq!(tag.structure_fp, ddg_structure_fingerprint(&ddg));
    }

    #[test]
    fn observation_closes_the_loop_into_a_warm_hint() {
        let occ = OccupancyModel::vega_like();
        let ddg = workloads::patterns::sized(60, 3);
        let store = TuneStore::new();
        let c = cfg();
        let (tuned, warm, tag) = tuned_solo_inputs(&ddg, 0, &c, &store);
        let comp = crate::region::compile_region_warm(&ddg, &occ, &tuned, warm.as_ref());
        observe_outcome(&store, &tag, &comp);
        assert_eq!(store.stats().observations, 1);
        assert_eq!(store.warm_len(), 1);
        // A structural duplicate (same DDG here) now warm-starts.
        let (_, warm2, tag2) = tuned_solo_inputs(&ddg, 1, &c, &store);
        let hint = warm2.expect("recorded order must come back as a hint");
        assert!(tag2.warm_started);
        assert!(hint.applies_to(&ddg));
    }

    #[test]
    fn salt_spreads_exploration_across_instances() {
        let ddg = workloads::patterns::sized(60, 3);
        let store = TuneStore::new();
        let c = cfg();
        let arms: std::collections::HashSet<usize> = (0..ARMS.len() as u64)
            .map(|salt| tuned_solo_inputs(&ddg, salt, &c, &store).2.arm)
            .collect();
        assert!(
            arms.len() > 1,
            "different salts must explore different arms on a fresh store"
        );
        assert!(arms.contains(&FIXED_ARM) || arms.len() == ARMS.len());
    }

    #[test]
    fn only_aco_kinds_are_tunable() {
        assert!(tunable(SchedulerKind::SequentialAco));
        assert!(tunable(SchedulerKind::ParallelAco));
        assert!(tunable(SchedulerKind::BatchedParallelAco));
        assert!(!tunable(SchedulerKind::BaseAmd));
        assert!(!tunable(SchedulerKind::CriticalPath));
    }
}
