//! The kernel execution-time model behind the Figure-4 experiment.
//!
//! An instruction scheduler influences GPU kernel performance through
//! exactly two quantities: the **occupancy** its register pressure permits
//! (how well memory latency is hidden) and the **schedule length** of the
//! code it emits (how many issue slots a wavefront needs). This module maps
//! those two quantities to kernel run time:
//!
//! ```text
//! time = latency_bound · Σ_r w_r·len_r · penalty(occ)·T0
//!      + (1 − latency_bound) · bytes / BW
//! ```
//!
//! * `penalty(occ) = 1 / (1 − latency_bound·(1 − (occ/occ_max)^1.5))` grows
//!   as occupancy drops — with too few resident wavefronts the SIMDs idle
//!   on memory latency, and the marginal wavefront matters most when few
//!   are resident;
//! * the second term is the bandwidth-bound fraction of the kernel, which
//!   no scheduler can change — kernels dominated by it are the paper's
//!   *scheduling-insensitive* benchmarks (Section VI-A's 3% CoV rule);
//! * `w_r` weights the *hot* region (the innermost loop body, region 0 of a
//!   [`workloads::Kernel`]) far above the straight-line rest.
//!
//! Absolute microseconds are not meaningful — only ratios between builds
//! are, which is what Figure 4 reports.

use sched_ir::Cycle;
use workloads::Kernel;

/// Weight of the hot region relative to a cold region of the same size
/// (models the loop trip count).
const HOT_REGION_WEIGHT: f64 = 32.0;
/// Microseconds per weighted schedule cycle at full occupancy.
const US_PER_WEIGHTED_CYCLE: f64 = 0.01;
/// Device memory bandwidth, bytes per microsecond (1 TB/s-class HBM2).
const BYTES_PER_US: f64 = 1_000_000.0;

/// Parameters of the execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecModel {
    /// Maximum occupancy of the device (10 on the Vega-like model).
    pub max_occupancy: u32,
}

impl ExecModel {
    /// The model for the default Vega-like device.
    pub fn vega_like() -> ExecModel {
        ExecModel { max_occupancy: 10 }
    }

    /// The latency penalty at a given occupancy: 1.0 at full occupancy,
    /// growing as occupancy drops, steeper for more latency-bound kernels.
    /// The exponent makes the curve steep at low occupancy and saturating
    /// near full occupancy, as on real hardware (the first few resident
    /// wavefronts hide the most latency).
    pub fn penalty(&self, occupancy: u32, latency_bound: f64) -> f64 {
        let occ = occupancy.clamp(1, self.max_occupancy) as f64 / self.max_occupancy as f64;
        let hiding = occ.powf(1.5);
        // Capped: even fully serialized execution is at most ~3x slower
        // than fully hidden (matching measured occupancy sweeps).
        (1.0 / (1.0 - latency_bound.clamp(0.0, 0.95) * (1.0 - hiding))).min(3.0)
    }
}

impl Default for ExecModel {
    fn default() -> ExecModel {
        ExecModel::vega_like()
    }
}

/// Modeled run time of one kernel launch, microseconds.
///
/// `per_region` gives the final `(occupancy, schedule length)` of each of
/// the kernel's regions, in the same order as [`Kernel::regions`]. The
/// kernel-wide occupancy is the minimum over regions (registers are
/// allocated for the whole kernel).
///
/// # Panics
///
/// Panics if `per_region` is empty or its length differs from the kernel's
/// region count.
pub fn kernel_time_us(model: &ExecModel, kernel: &Kernel, per_region: &[(u32, Cycle)]) -> f64 {
    assert_eq!(
        per_region.len(),
        kernel.regions.len(),
        "one (occupancy, length) pair per region"
    );
    assert!(!per_region.is_empty(), "kernels have at least one region");
    let kernel_occ = per_region.iter().map(|&(o, _)| o).min().expect("non-empty");
    let weighted_cycles: f64 = per_region
        .iter()
        .enumerate()
        .map(|(i, &(_, len))| {
            let w = if i == 0 { HOT_REGION_WEIGHT } else { 1.0 };
            w * len as f64
        })
        .sum();
    let lb = kernel.latency_bound.clamp(0.0, 0.95);
    let compute = lb
        * weighted_cycles
        * model.penalty(kernel_occ, kernel.latency_bound)
        * US_PER_WEIGHTED_CYCLE;
    let bandwidth = (1.0 - lb) * kernel.bytes_per_launch as f64 / BYTES_PER_US;
    compute + bandwidth
}

/// Amplitude of the unmodeled-factor perturbation (±3%).
const NOISE_AMPLITUDE: f64 = 0.03;

/// Deterministic "unmodeled factors" perturbation of a kernel's run time.
///
/// An instruction scheduler models register pressure and schedule length,
/// "but it does not model other factors that affect performance, such as
/// caching" (Section VI-E) — the paper's execution-time regressions come
/// from exactly these side effects, and its Table-7 filter exists to stop
/// churning schedules whose modeled benefit is too small to outweigh them.
/// We emulate them with a deterministic hash of the kernel's final
/// schedule fingerprint mapped to `[-3%, +3%]`: *any* change to a kernel's
/// schedules redraws its perturbation, so replacing a schedule for a
/// marginal modeled gain is a coin flip on real performance, exactly as on
/// hardware.
pub fn unmodeled_factor(fingerprint: u64) -> f64 {
    // splitmix64 finalizer for avalanche, then map to [-A, +A].
    let mut z = fingerprint.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    (unit * 2.0 - 1.0) * NOISE_AMPLITUDE
}

/// Fingerprint of a kernel's final schedules (order-sensitive FNV over the
/// per-region occupancy/length pairs).
pub fn schedule_fingerprint(kernel_index: usize, per_region: &[(u32, Cycle)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ kernel_index as u64;
    for &(occ, len) in per_region {
        h ^= (occ as u64) << 32 | len as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Throughput of a benchmark in GB/s given the run times of its kernels.
///
/// # Panics
///
/// Panics if `kernel_times_us` is empty.
pub fn benchmark_throughput(total_bytes: u64, kernel_times_us: &[f64]) -> f64 {
    assert!(!kernel_times_us.is_empty());
    let total_us: f64 = kernel_times_us.iter().sum();
    (total_bytes as f64 / 1e9) / (total_us / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::patterns;

    fn kernel(latency_bound: f64) -> Kernel {
        Kernel {
            name: "k".into(),
            regions: vec![patterns::sized(50, 0), patterns::sized(10, 1)],
            bytes_per_launch: 32 << 20,
            latency_bound,
        }
    }

    #[test]
    fn penalty_is_one_at_full_occupancy() {
        let m = ExecModel::vega_like();
        assert!((m.penalty(10, 0.8) - 1.0).abs() < 1e-12);
        assert!(m.penalty(5, 0.8) > 1.3);
        assert!(m.penalty(1, 0.8) > m.penalty(5, 0.8));
    }

    #[test]
    fn higher_occupancy_is_faster_for_latency_bound_kernels() {
        let m = ExecModel::vega_like();
        let k = kernel(0.8);
        let slow = kernel_time_us(&m, &k, &[(4, 100), (4, 20)]);
        let fast = kernel_time_us(&m, &k, &[(8, 100), (8, 20)]);
        assert!(fast < slow);
    }

    #[test]
    fn shorter_schedules_are_faster() {
        let m = ExecModel::vega_like();
        let k = kernel(0.8);
        let long = kernel_time_us(&m, &k, &[(8, 200), (8, 20)]);
        let short = kernel_time_us(&m, &k, &[(8, 100), (8, 20)]);
        assert!(short < long);
    }

    #[test]
    fn kernel_occupancy_is_min_over_regions() {
        let m = ExecModel::vega_like();
        let k = kernel(0.8);
        // One low-occupancy region drags the whole kernel down.
        let dragged = kernel_time_us(&m, &k, &[(10, 100), (2, 20)]);
        let uniform = kernel_time_us(&m, &k, &[(10, 100), (10, 20)]);
        assert!(dragged > uniform);
    }

    #[test]
    fn bandwidth_bound_kernels_are_insensitive() {
        let m = ExecModel::vega_like();
        let k = kernel(0.05);
        let a = kernel_time_us(&m, &k, &[(4, 200), (4, 20)]);
        let b = kernel_time_us(&m, &k, &[(10, 100), (10, 20)]);
        let rel = (a - b).abs() / b;
        assert!(rel < 0.15, "bandwidth-bound kernel moved {rel:.2}");
    }

    #[test]
    fn hot_region_dominates() {
        let m = ExecModel::vega_like();
        let k = kernel(0.9);
        let hot_longer = kernel_time_us(&m, &k, &[(8, 150), (8, 20)]);
        let cold_longer = kernel_time_us(&m, &k, &[(8, 100), (8, 70)]);
        assert!(
            hot_longer > cold_longer,
            "hot-region cycles must weigh more"
        );
    }

    #[test]
    fn throughput_inverts_time() {
        let t = benchmark_throughput(1 << 30, &[1000.0, 1000.0]);
        // 1 GiB in 2 ms ≈ 537 GB/s.
        assert!((t - 536.87).abs() < 1.0, "got {t}");
    }

    #[test]
    fn unmodeled_factor_is_bounded_and_deterministic() {
        for fp in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = unmodeled_factor(fp);
            assert_eq!(a, unmodeled_factor(fp), "deterministic");
            assert!(a.abs() <= 0.03 + 1e-12, "fp {fp}: {a} out of bounds");
        }
        // Different fingerprints give different draws (avalanche).
        assert_ne!(unmodeled_factor(1), unmodeled_factor(2));
    }

    #[test]
    fn fingerprint_changes_with_any_schedule_change() {
        let base = schedule_fingerprint(3, &[(10, 100), (8, 50)]);
        assert_eq!(base, schedule_fingerprint(3, &[(10, 100), (8, 50)]));
        assert_ne!(base, schedule_fingerprint(3, &[(10, 101), (8, 50)]));
        assert_ne!(base, schedule_fingerprint(3, &[(9, 100), (8, 50)]));
        assert_ne!(base, schedule_fingerprint(4, &[(10, 100), (8, 50)]));
        // Order-sensitive: swapping regions is a different kernel.
        assert_ne!(base, schedule_fingerprint(3, &[(8, 50), (10, 100)]));
    }

    #[test]
    fn penalty_saturates_at_three() {
        let m = ExecModel::vega_like();
        assert!(m.penalty(1, 0.95) <= 3.0 + 1e-12);
        // Both occ 1 and 2 sit on the cap at high latency-boundedness...
        assert!(m.penalty(1, 0.9) >= m.penalty(2, 0.9));
        // ...while the uncapped mid-range is strictly monotone.
        assert!(m.penalty(5, 0.9) > m.penalty(6, 0.9));
    }

    #[test]
    #[should_panic(expected = "one (occupancy, length) pair per region")]
    fn mismatched_regions_panic() {
        let m = ExecModel::vega_like();
        let k = kernel(0.5);
        kernel_time_us(&m, &k, &[(8, 100)]);
    }
}
