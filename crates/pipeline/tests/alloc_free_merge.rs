//! Extends the allocation-free invariant from `run_job`
//! (`alloc_free_run_job.rs`) to the **streaming merge loop**: once a
//! [`pipeline::SuiteMerger`] is constructed, consuming every job's
//! results in canonical order performs zero allocator events — every
//! merge-side buffer (record table, per-kernel slot/scratch vectors, the
//! incremental fingerprint) is pre-sized from `plan_jobs` counts at
//! construction.
//!
//! The measured configuration is the steady state: no in-pipeline
//! analysis, no tuning, no cache (inserts allocate), and a heuristic-only
//! scheduler so the kernel post filter never triggers an
//! occupancy-capped re-schedule (those legitimately run a fresh
//! compilation). Everything else — observer replay, slot drain, the
//! post-filter scan, record assembly, FNV folding, modeled kernel time —
//! runs in full.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use machine_model::OccupancyModel;
use pipeline::host_pool::{plan_jobs, run_jobs};
use pipeline::{PipelineConfig, SchedulerKind, SuiteMerger};
use workloads::{Suite, SuiteConfig};

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation and reallocation on this thread. Frees are not
/// counted: the assertion is about acquiring memory mid-merge, and a free
/// with no matching later alloc cannot hide one.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_EVENTS.with(Cell::get);
    let r = f();
    (ALLOC_EVENTS.with(Cell::get) - before, r)
}

#[test]
fn merge_loop_performs_zero_allocations() {
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    let cfg = PipelineConfig::paper(SchedulerKind::BaseAmd, 0).with_cache(false);
    let jobs = plan_jobs(&suite, &cfg);
    assert!(
        jobs.len() > 10 && suite.kernels.len() >= 2,
        "suite too small to make the invariant meaningful"
    );
    // Produce the per-job results up front (job-phase allocations are
    // covered by alloc_free_run_job.rs, not here).
    let results = run_jobs(&suite, &occ, &cfg, &jobs, 1, None, None);

    // Construction allocates (pre-sizing the merge-side buffers) — that
    // is the point: all acquisition happens here, none in the loop.
    let mut merger = SuiteMerger::new(&suite, &occ, &cfg, &jobs, None, None, |_, _, _, _, _| {});
    let (loop_events, ()) = count_events(|| {
        for (i, outcomes) in results.into_iter().enumerate() {
            merger.consume(i, outcomes);
        }
    });
    assert_eq!(
        loop_events, 0,
        "the streaming merge loop must not touch the allocator"
    );

    // Sanity: the merger actually produced a full run.
    let run = merger.finish();
    assert_eq!(run.regions.len(), suite.region_count());
    assert_eq!(run.kernel_occupancy.len(), suite.kernels.len());
    assert!(run.fingerprint != 0);
}
