//! Proves the allocation-free invariant holds for the *whole*
//! [`pipeline::host_pool::run_job`] unit of work, not just the ant inner
//! loop: a counting global allocator measures a full job (heuristic
//! baseline, analyses, ACO passes, result assembly) under two
//! configurations that differ only in how many ACO iterations they run.
//! The allocator-event counts must be **equal** — every per-iteration
//! buffer is preallocated at launch and reused, so iterating more costs
//! zero additional allocator traffic.
//!
//! The non-vacuity check matters as much as the equality: the two runs
//! must actually execute different iteration counts, otherwise the
//! equality proves nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use aco::Termination;
use machine_model::OccupancyModel;
use pipeline::host_pool::{plan_jobs, run_job, RegionJob, RegionOutcome};
use pipeline::{PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation and reallocation on this thread. Frees are not
/// counted: the assertion is about acquiring memory mid-job, and a free
/// with no matching later alloc cannot hide one.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_EVENTS.with(Cell::get);
    let r = f();
    (ALLOC_EVENTS.with(Cell::get) - before, r)
}

/// A pipeline config whose only iteration limit is the hard cap: the
/// no-improvement budgets are set far beyond reach, so every un-gated pass
/// runs exactly `max_iterations` iterations (unless it proves optimality
/// by hitting a lower bound — regions where that happens are skipped by
/// the callers below).
fn capped_cfg(kind: SchedulerKind, max_iterations: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper(kind, 0);
    cfg.aco.blocks = 4;
    cfg.aco.pass2_gate_cycles = 1;
    cfg.aco.termination = Termination {
        small: 100_000,
        medium: 100_000,
        large: 100_000,
        max_iterations,
    };
    cfg
}

fn total_iterations(outcomes: &[RegionOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|o| o.comp.aco.as_ref())
        .map(|a| (a.pass1.iterations + a.pass2.iterations) as u64)
        .sum()
}

/// Whether any pass of any member ran without hitting its lower bound —
/// i.e. the hard iteration cap was what stopped it, so raising the cap
/// must raise the iteration count.
fn cap_bound(outcomes: &[RegionOutcome]) -> bool {
    outcomes
        .iter()
        .filter_map(|o| o.comp.aco.as_ref())
        .any(|a| {
            (a.pass1.iterations > 0 && !a.pass1.hit_lb)
                || (a.pass2.iterations > 0 && !a.pass2.hit_lb)
        })
}

/// Measures one job under a low and a high iteration cap and asserts the
/// allocator-event counts match while the iteration counts do not.
fn assert_job_alloc_invariant(
    label: &str,
    job: &RegionJob,
    suite: &Suite,
    occ: &OccupancyModel,
    low: &PipelineConfig,
    high: &PipelineConfig,
) {
    // Warm-up: not measured (first run may touch lazily initialized
    // thread state outside the scheduler).
    let _ = run_job(job, suite, occ, low, None, None);
    let (n_low, out_low) = count_events(|| run_job(job, suite, occ, low, None, None));
    let (n_high, out_high) = count_events(|| run_job(job, suite, occ, high, None, None));
    let (it_low, it_high) = (total_iterations(&out_low), total_iterations(&out_high));
    assert!(
        it_high > it_low,
        "{label}: iteration counts must differ (low {it_low}, high {it_high}) \
         or the allocation equality below is vacuous"
    );
    assert_eq!(
        n_low, n_high,
        "{label}: allocator events must not scale with iterations \
         ({n_low} events over {it_low} iterations vs {n_high} over {it_high})"
    );
}

/// Finds a solo job whose ACO passes are stopped by the hard iteration cap
/// (not by a lower bound) under `low`.
fn find_cap_bound_solo(
    suite: &Suite,
    occ: &OccupancyModel,
    low: &PipelineConfig,
) -> Option<RegionJob> {
    for job in plan_jobs(suite, low) {
        let out = run_job(&job, suite, occ, low, None, None);
        if cap_bound(&out) {
            return Some(job);
        }
    }
    None
}

#[test]
fn solo_parallel_job_allocations_independent_of_iteration_count() {
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    let low = capped_cfg(SchedulerKind::ParallelAco, 4);
    let high = capped_cfg(SchedulerKind::ParallelAco, 16);
    let job = find_cap_bound_solo(&suite, &occ, &low)
        .expect("some region must be stopped by the iteration cap");
    assert_job_alloc_invariant("parallel solo", &job, &suite, &occ, &low, &high);
}

#[test]
fn solo_sequential_job_allocations_independent_of_iteration_count() {
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    let low = capped_cfg(SchedulerKind::SequentialAco, 4);
    let high = capped_cfg(SchedulerKind::SequentialAco, 16);
    let job = find_cap_bound_solo(&suite, &occ, &low)
        .expect("some region must be stopped by the iteration cap");
    assert_job_alloc_invariant("sequential solo", &job, &suite, &occ, &low, &high);
}

#[test]
fn group_job_allocations_independent_of_iteration_count() {
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    let low = capped_cfg(SchedulerKind::BatchedParallelAco, 4);
    let high = capped_cfg(SchedulerKind::BatchedParallelAco, 16);
    let job = plan_jobs(&suite, &low)
        .into_iter()
        .filter(|j| matches!(j, RegionJob::Group { members, .. } if members.len() >= 2))
        .find(|j| cap_bound(&run_job(j, &suite, &occ, &low, None, None)))
        .expect("some batch group must be stopped by the iteration cap");
    assert_job_alloc_invariant("batch group", &job, &suite, &occ, &low, &high);
}
