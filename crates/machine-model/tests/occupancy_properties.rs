//! Property tests of the occupancy/APRP model's defining laws.

use machine_model::OccupancyModel;
use proptest::prelude::*;
use sched_ir::RegClass;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Occupancy is non-increasing in pressure.
    #[test]
    fn occupancy_monotone(prp in 0u32..300) {
        let m = OccupancyModel::vega_like();
        for c in RegClass::ALL {
            prop_assert!(m.class_occupancy(c, prp) >= m.class_occupancy(c, prp + 1));
        }
    }

    /// APRP is the band maximum: same occupancy, idempotent, >= PRP —
    /// within the addressable register file (beyond it the model saturates
    /// at occupancy 1, modeling spills).
    #[test]
    fn aprp_band_laws(prp in 1u32..100) {
        let m = OccupancyModel::vega_like();
        for c in RegClass::ALL {
            let a = m.aprp(c, prp);
            prop_assert!(a >= prp);
            prop_assert_eq!(m.class_occupancy(c, a), m.class_occupancy(c, prp));
            prop_assert_eq!(m.aprp(c, a), a);
        }
    }

    /// Pressure beyond the addressable file saturates at occupancy 1.
    #[test]
    fn beyond_file_saturates(extra in 1u32..1000) {
        let m = OccupancyModel::vega_like();
        prop_assert_eq!(m.class_occupancy(RegClass::Vgpr, 256 + extra), 1);
        prop_assert_eq!(m.class_occupancy(RegClass::Sgpr, 102 + extra), 1);
    }

    /// The scalar RP cost is monotone in each class's pressure.
    #[test]
    fn rp_cost_monotone(v in 1u32..256, s in 1u32..100) {
        let m = OccupancyModel::vega_like();
        let base = m.rp_cost([v, s]);
        prop_assert!(m.rp_cost([v + 1, s]) >= base);
        prop_assert!(m.rp_cost([v, s + 1]) >= base);
    }

    /// max_prp_for_occupancy inverts class_occupancy wherever it is defined.
    #[test]
    fn max_prp_inverts_occupancy(occ in 1u32..11) {
        let m = OccupancyModel::vega_like();
        for c in RegClass::ALL {
            if let Some(prp) = m.max_prp_for_occupancy(c, occ) {
                prop_assert_eq!(m.class_occupancy(c, prp), occ);
                // One more register must drop the occupancy (band max) —
                // except at occupancy 1, where the model saturates.
                if occ > 1 {
                    prop_assert!(m.class_occupancy(c, prp + 1) < occ);
                }
            }
        }
    }

    /// The unit model is identity-APRP in its calibrated range.
    #[test]
    fn unit_model_identity(prp in 1u32..9) {
        let m = OccupancyModel::unit();
        prop_assert_eq!(m.aprp(RegClass::Vgpr, prp), prp);
    }
}
