//! Operation kinds and default latencies for a Vega-like GPU.
//!
//! Latencies annotate DDG edges. The values are representative of the
//! relative costs on the paper's target (vector ALU ops complete quickly;
//! memory operations have long, occupancy-hideable latencies) — the
//! workload generators use them to produce realistically latency-shaped
//! regions.

use serde::{Deserialize, Serialize};

/// Coarse operation classes of an AMD GCN-like ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Vector ALU operation (`v_add_f32`, ...).
    ValuAlu,
    /// Scalar ALU operation (`s_add_u32`, ...).
    SaluAlu,
    /// Vector memory load (`global_load_dword`, ...).
    VMemLoad,
    /// Vector memory store.
    VMemStore,
    /// Scalar (constant) memory load (`s_load_dword`, ...).
    SMemLoad,
    /// LDS (shared-memory) access.
    Lds,
    /// Transcendental / quarter-rate vector op.
    VTrans,
}

impl OpKind {
    /// All kinds, for enumeration in tests and generators.
    pub const ALL: [OpKind; 7] = [
        OpKind::ValuAlu,
        OpKind::SaluAlu,
        OpKind::VMemLoad,
        OpKind::VMemStore,
        OpKind::SMemLoad,
        OpKind::Lds,
        OpKind::VTrans,
    ];

    /// Short mnemonic prefix for generated instruction names.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::ValuAlu => "v_alu",
            OpKind::SaluAlu => "s_alu",
            OpKind::VMemLoad => "v_load",
            OpKind::VMemStore => "v_store",
            OpKind::SMemLoad => "s_load",
            OpKind::Lds => "ds_op",
            OpKind::VTrans => "v_trans",
        }
    }
}

/// Default producer→consumer latency (in cycles) of an operation kind.
///
/// ```
/// use machine_model::{op_latency, OpKind};
/// assert!(op_latency(OpKind::VMemLoad) > op_latency(OpKind::ValuAlu));
/// ```
pub fn op_latency(kind: OpKind) -> u16 {
    match kind {
        OpKind::ValuAlu => 1,
        OpKind::SaluAlu => 1,
        OpKind::VMemLoad => 64,
        OpKind::VMemStore => 1,
        OpKind::SMemLoad => 24,
        OpKind::Lds => 12,
        OpKind::VTrans => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_latencies_dominate_alu() {
        for k in [OpKind::VMemLoad, OpKind::SMemLoad, OpKind::Lds] {
            assert!(op_latency(k) > op_latency(OpKind::ValuAlu), "{k:?}");
        }
    }

    #[test]
    fn all_kinds_have_nonzero_latency_and_unique_mnemonics() {
        let mut names = std::collections::HashSet::new();
        for k in OpKind::ALL {
            assert!(op_latency(k) >= 1);
            assert!(names.insert(k.mnemonic()), "duplicate mnemonic for {k:?}");
        }
    }
}
