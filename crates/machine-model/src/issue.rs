//! Issue models.

use serde::{Deserialize, Serialize};

/// How many instructions the target may issue per cycle.
///
/// The paper's implementation "supports a general machine model", but all
/// experimental results use a single-issue model, "in which the processor
/// can issue one instruction of any type in each cycle" (Section II-A). We
/// mirror that: schedulers accept any width, benchmarks use
/// [`IssueModel::SingleIssue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueModel {
    /// One instruction of any type per cycle (the paper's evaluation model).
    #[default]
    SingleIssue,
    /// Up to `width` instructions of any type per cycle.
    MultiIssue {
        /// Instructions issuable per cycle; must be at least 1.
        width: u32,
    },
}

impl IssueModel {
    /// Instructions issuable per cycle.
    pub fn width(self) -> u32 {
        match self {
            IssueModel::SingleIssue => 1,
            IssueModel::MultiIssue { width } => width.max(1),
        }
    }

    /// Lower bound (in cycles) to issue `n` instructions, ignoring
    /// dependences.
    pub fn issue_cycles_lb(self, n: usize) -> u32 {
        (n as u32).div_ceil(self.width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_issue_width_is_one() {
        assert_eq!(IssueModel::SingleIssue.width(), 1);
        assert_eq!(IssueModel::SingleIssue.issue_cycles_lb(7), 7);
    }

    #[test]
    fn multi_issue_rounds_up() {
        let m = IssueModel::MultiIssue { width: 4 };
        assert_eq!(m.issue_cycles_lb(9), 3);
        assert_eq!(m.issue_cycles_lb(8), 2);
        assert_eq!(m.issue_cycles_lb(0), 0);
    }

    #[test]
    fn zero_width_is_clamped() {
        assert_eq!(IssueModel::MultiIssue { width: 0 }.width(), 1);
    }
}
