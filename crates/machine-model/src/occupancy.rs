//! Occupancy tables and the APRP cost function.

use sched_ir::{RegClass, REG_CLASS_COUNT};
use serde::{Deserialize, Serialize};

/// Number of wavefronts resident per SIMD unit (the paper's *occupancy*).
pub type Waves = u32;

/// Per-class register-file parameters determining occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ClassFile {
    /// Registers available per SIMD unit for this class.
    budget: u32,
    /// Allocation granularity: usage is rounded up to a multiple of this.
    granule: u32,
    /// Architectural maximum a single wavefront may address.
    per_wave_max: u32,
}

impl ClassFile {
    fn occupancy(&self, prp: u32, cap: Waves) -> Waves {
        if prp == 0 {
            return cap;
        }
        if prp > self.per_wave_max {
            // Pressure beyond the addressable file would spill; model as the
            // worst (single wavefront) occupancy.
            return 1;
        }
        let alloc = prp.div_ceil(self.granule) * self.granule;
        (self.budget / alloc).clamp(1, cap)
    }
}

/// Occupancy model: maps per-class peak register pressure (PRP) to
/// wavefront occupancy, and PRP to **adjusted PRP** (APRP).
///
/// The APRP of a PRP value `x` is the maximum PRP that yields the same
/// occupancy as `x` (Section II-A). Using APRP rather than raw PRP as the
/// pass-1 cost stops the scheduler from chasing register savings that cannot
/// change occupancy.
///
/// # Example
///
/// The paper's Radeon VII example: "a PRP of 24 VGPRs or less gives the
/// maximum occupancy of 10, while PRP values in the range \[25–28\] give an
/// occupancy of 9".
///
/// ```
/// use machine_model::OccupancyModel;
/// use sched_ir::RegClass;
///
/// let m = OccupancyModel::vega_like();
/// assert_eq!(m.class_occupancy(RegClass::Vgpr, 24), 10);
/// assert_eq!(m.class_occupancy(RegClass::Vgpr, 25), 9);
/// assert_eq!(m.class_occupancy(RegClass::Vgpr, 28), 9);
/// assert_eq!(m.aprp(RegClass::Vgpr, 1), 24);
/// assert_eq!(m.aprp(RegClass::Vgpr, 25), 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyModel {
    files: [ClassFile; REG_CLASS_COUNT],
    max_waves: Waves,
}

impl OccupancyModel {
    /// The Vega-20-like model used throughout the paper's evaluation:
    /// 256 VGPRs per SIMD lane (granule 4, per-wave max 256), 800 SGPRs
    /// (granule 16, per-wave max 102), at most 10 waves per SIMD.
    pub fn vega_like() -> OccupancyModel {
        OccupancyModel {
            files: [
                ClassFile {
                    budget: 256,
                    granule: 4,
                    per_wave_max: 256,
                },
                ClassFile {
                    budget: 800,
                    granule: 16,
                    per_wave_max: 102,
                },
            ],
            max_waves: 10,
        }
    }

    /// An identity-APRP model for fine-grained pressure studies and the
    /// paper's worked example: for PRP values up to 8, every PRP value is
    /// its own occupancy band, so `aprp(x) == x` and reducing PRP by one
    /// register always pays. The Figure-1 walkthrough (Section IV-C)
    /// treats PRP this way.
    ///
    /// ```
    /// use machine_model::OccupancyModel;
    /// use sched_ir::RegClass;
    /// let m = OccupancyModel::unit();
    /// for x in 1..=8 {
    ///     assert_eq!(m.aprp(RegClass::Vgpr, x), x);
    /// }
    /// ```
    pub fn unit() -> OccupancyModel {
        OccupancyModel::custom([64, 64], [1, 1], [64, 64], 64)
    }

    /// A custom model (same structure, different parameters). `budgets`,
    /// `granules` and `per_wave_max` are indexed by [`RegClass::index`].
    pub fn custom(
        budgets: [u32; REG_CLASS_COUNT],
        granules: [u32; REG_CLASS_COUNT],
        per_wave_max: [u32; REG_CLASS_COUNT],
        max_waves: Waves,
    ) -> OccupancyModel {
        let mk = |i: usize| ClassFile {
            budget: budgets[i],
            granule: granules[i].max(1),
            per_wave_max: per_wave_max[i],
        };
        OccupancyModel {
            files: [mk(0), mk(1)],
            max_waves,
        }
    }

    /// Maximum occupancy achievable on this machine.
    pub fn max_waves(&self) -> Waves {
        self.max_waves
    }

    /// The model's full parameter vector, flattened for fingerprinting and
    /// persistence: per-class `(budget, granule, per_wave_max)` in
    /// [`RegClass::index`] order, then `max_waves`. [`Self::from_signature`]
    /// inverts it.
    pub fn signature(&self) -> [u32; REG_CLASS_COUNT * 3 + 1] {
        let mut out = [0u32; REG_CLASS_COUNT * 3 + 1];
        for (i, f) in self.files.iter().enumerate() {
            out[i * 3] = f.budget;
            out[i * 3 + 1] = f.granule;
            out[i * 3 + 2] = f.per_wave_max;
        }
        out[REG_CLASS_COUNT * 3] = self.max_waves;
        out
    }

    /// Rebuilds a model from a [`Self::signature`] vector.
    pub fn from_signature(sig: [u32; REG_CLASS_COUNT * 3 + 1]) -> OccupancyModel {
        OccupancyModel::custom(
            [sig[0], sig[3]],
            [sig[1], sig[4]],
            [sig[2], sig[5]],
            sig[REG_CLASS_COUNT * 3],
        )
    }

    /// Occupancy permitted by a single class at the given PRP.
    pub fn class_occupancy(&self, class: RegClass, prp: u32) -> Waves {
        self.files[class.index()].occupancy(prp, self.max_waves)
    }

    /// Combined occupancy for per-class PRPs: the minimum over classes.
    pub fn occupancy(&self, prp: [u32; REG_CLASS_COUNT]) -> Waves {
        RegClass::ALL
            .iter()
            .map(|&c| self.class_occupancy(c, prp[c.index()]))
            .min()
            .unwrap_or(self.max_waves)
    }

    /// The adjusted PRP: the maximum PRP with the same occupancy as `prp`.
    pub fn aprp(&self, class: RegClass, prp: u32) -> u32 {
        let occ = self.class_occupancy(class, prp);
        self.max_prp_for_occupancy(class, occ).unwrap_or(prp)
    }

    /// The largest PRP of `class` that still yields occupancy `occ`, or
    /// `None` if no PRP yields exactly that occupancy.
    pub fn max_prp_for_occupancy(&self, class: RegClass, occ: Waves) -> Option<u32> {
        let file = &self.files[class.index()];
        if occ == 0 || occ > self.max_waves {
            return None;
        }
        // Largest allocation a with budget/a >= occ, rounded to granule,
        // clamped to the addressable file.
        let alloc = (file.budget / occ) / file.granule * file.granule;
        if alloc == 0 {
            return None;
        }
        let prp = alloc.min(file.per_wave_max);
        (self.class_occupancy(class, prp) == occ).then_some(prp)
    }

    /// Per-class APRPs for a PRP vector.
    pub fn aprp_vec(&self, prp: [u32; REG_CLASS_COUNT]) -> [u32; REG_CLASS_COUNT] {
        let mut out = [0u32; REG_CLASS_COUNT];
        for c in RegClass::ALL {
            out[c.index()] = self.aprp(c, prp[c.index()]);
        }
        out
    }

    /// Scalar pass-1 cost of a PRP vector: lost occupancy dominates, APRP
    /// breaks ties within an occupancy band.
    ///
    /// Lower is better. The occupancy term is scaled so that any occupancy
    /// improvement outweighs any APRP difference, matching the paper's
    /// objective ordering (occupancy is what the RP pass is really buying).
    pub fn rp_cost(&self, prp: [u32; REG_CLASS_COUNT]) -> u64 {
        let occ = self.occupancy(prp);
        let lost = (self.max_waves - occ) as u64;
        // Classes with zero pressure contribute nothing (their APRP band
        // max is a constant that would only obscure comparisons).
        let aprp_sum: u64 = RegClass::ALL
            .iter()
            .filter(|c| prp[c.index()] > 0)
            .map(|&c| self.aprp(c, prp[c.index()]) as u64)
            .sum();
        lost * 100_000 + aprp_sum
    }

    /// The best (lowest) possible [`Self::rp_cost`] given per-class PRP
    /// lower bounds — the pass-1 lower bound used to gate ACO.
    pub fn rp_cost_lb(&self, prp_lb: [usize; REG_CLASS_COUNT]) -> u64 {
        let prp = [prp_lb[0] as u32, prp_lb[1] as u32];
        self.rp_cost(prp)
    }
}

impl Default for OccupancyModel {
    fn default() -> OccupancyModel {
        OccupancyModel::vega_like()
    }
}

/// Dense per-class occupancy and APRP tables for one [`OccupancyModel`].
///
/// [`OccupancyModel::rp_cost`] costs a dozen-plus integer divisions
/// (occupancy banding plus the APRP band inversion), and schedule
/// construction calls it once per *candidate per step* — the pass-2
/// pressure-constraint check and the AMD heuristic's η both sit on it. The
/// PRP domain is tiny (bounded by each class's addressable file, 256 VGPRs
/// / 102 SGPRs on the paper's target), so the whole function tabulates:
/// build once per region, then every query is two array reads.
///
/// The tables cover PRP `0..=per_wave_max` exactly. Past the addressable
/// file the model is fixed: occupancy always spills to 1, and APRP is the
/// occupancy-1 band maximum when one exists, else the identity fallback of
/// [`OccupancyModel::aprp`]. All queries return exactly what the backing
/// model returns — verified by the equivalence tests below.
#[derive(Debug, Clone)]
pub struct OccupancyLut {
    /// `occ[c][prp]` = `class_occupancy(c, prp)` for `prp <= per_wave_max`.
    occ: [Vec<Waves>; REG_CLASS_COUNT],
    /// `aprp[c][prp]` = `aprp(c, prp)` for `prp <= per_wave_max`.
    aprp: [Vec<u32>; REG_CLASS_COUNT],
    /// `aprp` beyond the file: the occupancy-1 band maximum, or `None` for
    /// the model's identity fallback.
    aprp_overflow: [Option<u32>; REG_CLASS_COUNT],
    max_waves: Waves,
}

impl OccupancyLut {
    /// Tabulates the model. O(per-wave file sizes); build once per region.
    pub fn new(model: &OccupancyModel) -> OccupancyLut {
        let table = |c: RegClass| {
            let len = model.files[c.index()].per_wave_max as usize + 1;
            let mut occ = Vec::with_capacity(len);
            let mut aprp = Vec::with_capacity(len);
            for prp in 0..len as u32 {
                occ.push(model.class_occupancy(c, prp));
                aprp.push(model.aprp(c, prp));
            }
            (occ, aprp)
        };
        let (occ0, aprp0) = table(RegClass::ALL[0]);
        let (occ1, aprp1) = table(RegClass::ALL[1]);
        OccupancyLut {
            occ: [occ0, occ1],
            aprp: [aprp0, aprp1],
            aprp_overflow: [
                model.max_prp_for_occupancy(RegClass::ALL[0], 1),
                model.max_prp_for_occupancy(RegClass::ALL[1], 1),
            ],
            max_waves: model.max_waves,
        }
    }

    /// Table-lookup [`OccupancyModel::class_occupancy`].
    #[inline]
    pub fn class_occupancy(&self, class: RegClass, prp: u32) -> Waves {
        let t = &self.occ[class.index()];
        match t.get(prp as usize) {
            Some(&o) => o,
            None => 1, // past the addressable file: spill occupancy
        }
    }

    /// Table-lookup [`OccupancyModel::occupancy`].
    #[inline]
    pub fn occupancy(&self, prp: [u32; REG_CLASS_COUNT]) -> Waves {
        let a = self.class_occupancy(RegClass::ALL[0], prp[0]);
        let b = self.class_occupancy(RegClass::ALL[1], prp[1]);
        a.min(b)
    }

    /// Table-lookup [`OccupancyModel::aprp`].
    #[inline]
    pub fn aprp(&self, class: RegClass, prp: u32) -> u32 {
        let t = &self.aprp[class.index()];
        match t.get(prp as usize) {
            Some(&a) => a,
            None => self.aprp_overflow[class.index()].unwrap_or(prp),
        }
    }

    /// Table-lookup [`OccupancyModel::rp_cost`].
    #[inline]
    pub fn rp_cost(&self, prp: [u32; REG_CLASS_COUNT]) -> u64 {
        let occ = self.occupancy(prp);
        let lost = (self.max_waves - occ) as u64;
        let mut aprp_sum = 0u64;
        for c in RegClass::ALL {
            if prp[c.index()] > 0 {
                aprp_sum += self.aprp(c, prp[c.index()]) as u64;
            }
        }
        lost * 100_000 + aprp_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vgpr_bands() {
        let m = OccupancyModel::vega_like();
        for prp in 1..=24 {
            assert_eq!(m.class_occupancy(RegClass::Vgpr, prp), 10, "prp={prp}");
            assert_eq!(m.aprp(RegClass::Vgpr, prp), 24, "prp={prp}");
        }
        for prp in 25..=28 {
            assert_eq!(m.class_occupancy(RegClass::Vgpr, prp), 9, "prp={prp}");
            assert_eq!(m.aprp(RegClass::Vgpr, prp), 28, "prp={prp}");
        }
        assert_eq!(m.class_occupancy(RegClass::Vgpr, 32), 8);
        assert_eq!(m.class_occupancy(RegClass::Vgpr, 256), 1);
    }

    #[test]
    fn zero_pressure_gives_max_occupancy() {
        let m = OccupancyModel::vega_like();
        assert_eq!(m.class_occupancy(RegClass::Vgpr, 0), 10);
        assert_eq!(m.occupancy([0, 0]), 10);
    }

    #[test]
    fn combined_occupancy_is_min_of_classes() {
        let m = OccupancyModel::vega_like();
        // 40 VGPRs -> 256/40 -> 6; 16 SGPRs -> 800/16 -> 10 (capped)
        assert_eq!(m.occupancy([40, 16]), 6);
        // SGPR-limited case: 400 SGPRs is over the per-wave max -> occupancy 1
        assert_eq!(m.occupancy([1, 400]), 1);
    }

    #[test]
    fn aprp_is_idempotent_and_monotone_band_max() {
        let m = OccupancyModel::vega_like();
        for prp in 1..=256u32 {
            let a = m.aprp(RegClass::Vgpr, prp);
            assert!(a >= prp, "APRP must not be below PRP (prp={prp}, aprp={a})");
            assert_eq!(
                m.class_occupancy(RegClass::Vgpr, a),
                m.class_occupancy(RegClass::Vgpr, prp),
                "APRP must preserve occupancy (prp={prp})"
            );
            assert_eq!(m.aprp(RegClass::Vgpr, a), a, "APRP idempotent (prp={prp})");
        }
    }

    #[test]
    fn max_prp_for_occupancy_inverts_occupancy() {
        let m = OccupancyModel::vega_like();
        assert_eq!(m.max_prp_for_occupancy(RegClass::Vgpr, 10), Some(24));
        assert_eq!(m.max_prp_for_occupancy(RegClass::Vgpr, 9), Some(28));
        assert_eq!(m.max_prp_for_occupancy(RegClass::Vgpr, 0), None);
        assert_eq!(m.max_prp_for_occupancy(RegClass::Vgpr, 11), None);
    }

    #[test]
    fn rp_cost_prefers_occupancy_over_aprp() {
        let m = OccupancyModel::vega_like();
        // occupancy 10 with big SGPR use beats occupancy 9 with tiny use.
        let high_occ = m.rp_cost([24, 80]);
        let low_occ = m.rp_cost([25, 1]);
        assert!(high_occ < low_occ);
    }

    #[test]
    fn rp_cost_breaks_ties_by_aprp() {
        let m = OccupancyModel::vega_like();
        assert!(m.rp_cost([32, 0]) < m.rp_cost([36, 0])); // both occupancy 8
        assert_eq!(m.rp_cost([30, 0]), m.rp_cost([32, 0])); // same band
    }

    #[test]
    fn custom_model_respects_parameters() {
        let m = OccupancyModel::custom([64, 64], [1, 1], [64, 64], 4);
        assert_eq!(m.max_waves(), 4);
        assert_eq!(m.class_occupancy(RegClass::Vgpr, 16), 4);
        assert_eq!(m.class_occupancy(RegClass::Vgpr, 17), 3);
        assert_eq!(m.aprp(RegClass::Vgpr, 17), 21); // 64/3 = 21
    }

    #[test]
    fn lut_matches_model_exhaustively() {
        for m in [
            OccupancyModel::vega_like(),
            OccupancyModel::unit(),
            OccupancyModel::custom([64, 64], [1, 1], [64, 64], 4),
            OccupancyModel::custom([96, 800], [8, 16], [84, 102], 20),
        ] {
            let lut = OccupancyLut::new(&m);
            // Well past both per-wave maxima, to exercise the clamp rows.
            for p0 in 0..=300u32 {
                for c in RegClass::ALL {
                    assert_eq!(lut.class_occupancy(c, p0), m.class_occupancy(c, p0));
                    assert_eq!(lut.aprp(c, p0), m.aprp(c, p0));
                }
            }
            for p0 in (0..=300u32).step_by(7) {
                for p1 in (0..=150u32).step_by(3) {
                    assert_eq!(lut.occupancy([p0, p1]), m.occupancy([p0, p1]));
                    assert_eq!(lut.rp_cost([p0, p1]), m.rp_cost([p0, p1]));
                }
            }
        }
    }

    #[test]
    fn signature_roundtrips_every_model() {
        for m in [
            OccupancyModel::vega_like(),
            OccupancyModel::unit(),
            OccupancyModel::custom([31, 17], [3, 5], [20, 9], 7),
        ] {
            assert_eq!(OccupancyModel::from_signature(m.signature()), m);
        }
    }

    #[test]
    fn sgpr_band_example() {
        let m = OccupancyModel::vega_like();
        // 80 SGPRs -> 800/80 = 10 waves
        assert_eq!(m.class_occupancy(RegClass::Sgpr, 80), 10);
        // 96 SGPRs -> 800/96 = 8 waves
        assert_eq!(m.class_occupancy(RegClass::Sgpr, 96), 8);
    }
}
