//! Machine models for the scheduling target: issue width, operation
//! latencies, and the occupancy / adjusted-peak-register-pressure (APRP)
//! model of Section II-A of the paper.
//!
//! The evaluation target is an AMD Vega-like GPU (Radeon VII): occupancy —
//! the number of wavefronts resident per SIMD unit — is determined by the
//! number of vector and scalar registers a kernel uses. Multiple peak
//! register pressure (PRP) values map to the same occupancy;
//! [`OccupancyModel::aprp`] returns the largest PRP with the same occupancy,
//! which is the cost function the ACO scheduler minimizes in its first pass.

pub mod issue;
pub mod latency;
pub mod occupancy;

pub use issue::IssueModel;
pub use latency::{op_latency, OpKind};
pub use occupancy::{OccupancyLut, OccupancyModel, Waves};
