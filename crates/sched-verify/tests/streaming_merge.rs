//! Streaming-merge equivalence: the streaming deterministic merge (slot
//! table + in-order consumer, `pipeline::compile_suite*`) must produce
//! byte-identical output to the retained barrier reference
//! (`run_jobs` → `merge_job_results`) for every scheduler kind, thread
//! count and cache mode — and with tuning on, leave the caller's
//! `TuneStore` in a byte-identical learned state too.
//!
//! This is the property the whole PR rests on: overlapping the merge
//! with job execution is a pure wall-clock optimization, invisible in
//! every output byte.

use machine_model::OccupancyModel;
use pipeline::host_pool::{plan_jobs, run_jobs};
use pipeline::{
    compile_suite_with_cache, compile_suite_with_stores, merge_job_results, PipelineConfig,
    ScheduleCache, SchedulerKind,
};
use sched_verify::suite_fingerprint;
use workloads::{Suite, SuiteConfig};

const KINDS: [SchedulerKind; 4] = [
    SchedulerKind::BaseAmd,
    SchedulerKind::SequentialAco,
    SchedulerKind::ParallelAco,
    SchedulerKind::BatchedParallelAco,
];

fn cfg_for(kind: SchedulerKind, threads: usize, cache: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper(kind, 0)
        .with_host_threads(threads)
        .with_cache(cache);
    cfg.aco.blocks = 4;
    cfg.aco.pass2_gate_cycles = 1;
    cfg
}

/// The barrier reference run: all jobs first, one merge after.
fn barrier_run(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    cache: Option<&ScheduleCache>,
    tune: Option<&pipeline::TuneStore>,
) -> pipeline::SuiteRun {
    let jobs = plan_jobs(suite, cfg);
    let results = run_jobs(suite, occ, cfg, &jobs, cfg.host_threads, cache, tune);
    merge_job_results(
        suite,
        occ,
        cfg,
        &jobs,
        results,
        cache,
        tune,
        |_, _, _, _, _| {},
    )
}

#[test]
fn streaming_merge_is_byte_equal_to_barrier_reference() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::scaled(9, 0.006));
    for kind in KINDS {
        for threads in [1usize, 2, 8] {
            for cache_on in [true, false] {
                let cfg = cfg_for(kind, threads, cache_on);
                let cache = cache_on.then(ScheduleCache::new);
                let reference = barrier_run(&suite, &occ, &cfg, cache.as_ref(), None);
                let cache = cache_on.then(ScheduleCache::new);
                let streamed = compile_suite_with_cache(
                    &suite,
                    &occ,
                    &cfg,
                    cache.as_ref(),
                    |_, _, _, _, _| {},
                );
                assert_eq!(
                    suite_fingerprint(&streamed),
                    suite_fingerprint(&reference),
                    "streaming merge drifted from barrier reference under \
                     {kind:?}, {threads} threads, cache {cache_on}"
                );
                assert_eq!(
                    streamed.fingerprint,
                    suite_fingerprint(&streamed),
                    "incremental fingerprint fold disagrees with the \
                     whole-run recomputation under {kind:?}, {threads} \
                     threads, cache {cache_on}"
                );
            }
        }
    }
}

/// With tuning on, the streaming job phase reads a snapshot of the store
/// while the merge writes observations into the caller's copy — which
/// must leave both the run *and* the learned store byte-identical to the
/// barrier shape (where all reads preceded all writes for free), at any
/// thread count.
#[test]
fn streaming_merge_preserves_tuned_runs_and_learned_state() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::scaled(9, 0.006));
    for threads in [1usize, 8] {
        let mut cfg = cfg_for(SchedulerKind::ParallelAco, threads, true);
        cfg.tune.enabled = true;

        let ref_store = pipeline::TuneStore::new();
        let ref_cache = ScheduleCache::new();
        let reference = barrier_run(&suite, &occ, &cfg, Some(&ref_cache), Some(&ref_store));

        let stream_store = pipeline::TuneStore::new();
        let stream_cache = ScheduleCache::new();
        let streamed = compile_suite_with_stores(
            &suite,
            &occ,
            &cfg,
            Some(&stream_cache),
            Some(&stream_store),
            |_, _, _, _, _| {},
        );

        assert_eq!(
            suite_fingerprint(&streamed),
            suite_fingerprint(&reference),
            "tuned streaming run drifted at {threads} threads"
        );

        // Learned state: persist both stores and compare bytes.
        let dir = std::env::temp_dir();
        let ref_path = dir.join(format!(
            "streaming-merge-ref-{threads}-{}",
            std::process::id()
        ));
        let stream_path = dir.join(format!(
            "streaming-merge-stream-{threads}-{}",
            std::process::id()
        ));
        ref_store.save_to(&ref_path).unwrap();
        stream_store.save_to(&stream_path).unwrap();
        let ref_bytes = std::fs::read(&ref_path).unwrap();
        let stream_bytes = std::fs::read(&stream_path).unwrap();
        let _ = std::fs::remove_file(&ref_path);
        let _ = std::fs::remove_file(&stream_path);
        assert_eq!(
            ref_bytes, stream_bytes,
            "learned tuning state drifted between merge shapes at {threads} threads"
        );

        // And the learned state must steer a follow-up run identically.
        let next_ref = compile_suite_with_stores(
            &suite,
            &occ,
            &cfg,
            Some(&ref_cache),
            Some(&ref_store),
            |_, _, _, _, _| {},
        );
        let next_stream = compile_suite_with_stores(
            &suite,
            &occ,
            &cfg,
            Some(&stream_cache),
            Some(&stream_store),
            |_, _, _, _, _| {},
        );
        assert_eq!(
            suite_fingerprint(&next_ref),
            suite_fingerprint(&next_stream),
            "follow-up tuned runs drifted at {threads} threads"
        );
    }
}
