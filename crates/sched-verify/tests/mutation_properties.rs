//! Mutation-based property tests for the certificate checker.
//!
//! Each property starts from a *valid* certified schedule (the AMD list
//! scheduler's output for a generated region), applies one mutation, and
//! asserts the checker flags the violation class that mutation injects —
//! on every single case (a 100% catch rate), never with a code outside the
//! classes the mutation can plausibly trigger.

use list_sched::{Heuristic, ListScheduler};
use machine_model::OccupancyModel;
use proptest::prelude::*;
use sched_verify::{certify_list, certify_schedule, codes, has_errors, render, Claim, Diagnostic};

fn scheduled(
    size: usize,
    seed: u64,
) -> (sched_ir::Ddg, OccupancyModel, list_sched::ScheduleResult) {
    let ddg = workloads::patterns::sized(size, seed);
    let occ = OccupancyModel::vega_like();
    let r = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
    (ddg, occ, r)
}

fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Claim about the mutated schedule, with the order claim dropped so the
/// diagnostics isolate schedule-level violation classes.
fn claim_of(r: &list_sched::ScheduleResult) -> Claim<'_> {
    Claim {
        order: None,
        prp: r.prp,
        occupancy: Some(r.occupancy),
        length: r.length,
    }
}

proptest! {
    /// Baseline: the unmutated schedule certifies clean. Without this the
    /// catch-rate properties below could pass vacuously.
    #[test]
    fn valid_schedules_certify_clean(size in 10usize..70, seed in 0u64..500) {
        let (ddg, occ, r) = scheduled(size, seed);
        let diags = certify_list(&ddg, &occ, &r);
        prop_assert!(diags.is_empty(), "{}", render(&diags));
    }

    /// Swapping the cycles of the two endpoints of a DDG edge reverses a
    /// dependence: the checker must flag the latency (or def/use) class.
    #[test]
    fn swapped_dependent_cycles_are_caught(size in 10usize..70, seed in 0u64..500, pick in 0usize..4096) {
        let (ddg, occ, r) = scheduled(size, seed);
        // Pick an edge; regions always have at least one.
        let edges: Vec<_> = ddg
            .ids()
            .flat_map(|a| ddg.succs(a).iter().map(move |&(b, _)| (a, b)))
            .collect();
        prop_assert!(!edges.is_empty());
        let (from, to) = edges[pick % edges.len()];
        let mut cycles = r.schedule.cycles().to_vec();
        cycles.swap(from.index(), to.index());
        let mutated = sched_ir::Schedule::from_cycles(cycles);
        let diags = certify_schedule(&ddg, &occ, &mutated, &claim_of(&r));
        prop_assert!(
            diags.iter().any(|d| d.code == codes::LATENCY || d.code == codes::DEPENDENCE),
            "swap {from}<->{to} uncaught: {}",
            render(&diags)
        );
        for d in &diags {
            prop_assert!(
                [
                    codes::LATENCY,
                    codes::DEPENDENCE,
                    codes::PRP_MISMATCH,
                    codes::OCCUPANCY_MISMATCH,
                ]
                .contains(&d.code),
                "unexpected class for a cycle swap: {d}"
            );
        }
    }

    /// Decrementing one instruction's cycle either collides with the
    /// previous issue slot or breaks a predecessor's latency — list
    /// schedules have no removable slack in front of an instruction.
    #[test]
    fn decremented_cycle_is_caught(size in 10usize..70, seed in 0u64..500, pick in 0usize..4096) {
        let (ddg, occ, r) = scheduled(size, seed);
        let mut cycles = r.schedule.cycles().to_vec();
        // Pick an instruction not already at cycle 0.
        let movable: Vec<usize> = (0..cycles.len()).filter(|&i| cycles[i] > 0).collect();
        prop_assert!(!movable.is_empty());
        let i = movable[pick % movable.len()];
        cycles[i] -= 1;
        let mutated = sched_ir::Schedule::from_cycles(cycles);
        let diags = certify_schedule(&ddg, &occ, &mutated, &claim_of(&r));
        prop_assert!(
            diags.iter().any(|d| {
                d.code == codes::LATENCY
                    || d.code == codes::ISSUE_CONFLICT
                    || d.code == codes::DEPENDENCE
            }),
            "decrement of i{i} uncaught: {}",
            render(&diags)
        );
        for d in &diags {
            prop_assert!(
                [
                    codes::LATENCY,
                    codes::ISSUE_CONFLICT,
                    codes::DEPENDENCE,
                    codes::PRP_MISMATCH,
                    codes::OCCUPANCY_MISMATCH,
                    codes::LENGTH_MISMATCH,
                ]
                .contains(&d.code),
                "unexpected class for a cycle decrement: {d}"
            );
        }
    }

    /// Dropping an instruction from the schedule is caught as the
    /// wrong-length class, alone — nothing else is checkable.
    #[test]
    fn dropped_instruction_is_caught(size in 10usize..70, seed in 0u64..500) {
        let (ddg, occ, r) = scheduled(size, seed);
        let mut cycles = r.schedule.cycles().to_vec();
        cycles.pop();
        let mutated = sched_ir::Schedule::from_cycles(cycles);
        let diags = certify_schedule(&ddg, &occ, &mutated, &claim_of(&r));
        prop_assert_eq!(codes_of(&diags), vec![codes::WRONG_LENGTH]);
    }

    /// Inflating the reported PRP is caught as exactly a PRP mismatch: the
    /// schedule itself is untouched and stays valid.
    #[test]
    fn inflated_prp_claim_is_caught(size in 10usize..70, seed in 0u64..500, bump in 1u32..5) {
        let (ddg, occ, mut r) = scheduled(size, seed);
        r.prp[0] += bump;
        let diags = certify_list(&ddg, &occ, &r);
        prop_assert!(has_errors(&diags));
        prop_assert_eq!(codes_of(&diags), vec![codes::PRP_MISMATCH]);
    }

    /// Deflating the reported PRP (claiming better pressure than real) is
    /// the dangerous direction — caught the same way.
    #[test]
    fn deflated_prp_claim_is_caught(size in 10usize..70, seed in 0u64..500) {
        let (ddg, occ, mut r) = scheduled(size, seed);
        prop_assert!(r.prp[0] > 0);
        r.prp[0] -= 1;
        let diags = certify_list(&ddg, &occ, &r);
        prop_assert!(diags.iter().any(|d| d.code == codes::PRP_MISMATCH));
    }

    /// Misreporting the schedule length is caught as a length mismatch.
    #[test]
    fn inflated_length_claim_is_caught(size in 10usize..70, seed in 0u64..500, bump in 1u32..10) {
        let (ddg, occ, mut r) = scheduled(size, seed);
        r.length += bump;
        let diags = certify_list(&ddg, &occ, &r);
        prop_assert!(has_errors(&diags));
        prop_assert_eq!(codes_of(&diags), vec![codes::LENGTH_MISMATCH]);
    }

    /// Corrupting the claimed order (swapping two entries) is caught as an
    /// order mismatch.
    #[test]
    fn shuffled_order_claim_is_caught(size in 10usize..70, seed in 0u64..500, pick in 0usize..4096) {
        let (ddg, occ, mut r) = scheduled(size, seed);
        let n = r.order.len();
        prop_assert!(n >= 2);
        let i = pick % (n - 1);
        r.order.swap(i, i + 1);
        let diags = certify_list(&ddg, &occ, &r);
        prop_assert!(
            diags.iter().any(|d| d.code == codes::ORDER_MISMATCH),
            "order swap at {i} uncaught: {}",
            render(&diags)
        );
    }
}
