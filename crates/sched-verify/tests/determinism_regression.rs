//! Determinism regression: the host-parallel scheduler must return
//! identical results no matter how many threads split the colony, and the
//! suite compiler must return identical runs no matter how many host
//! threads its work-stealing pool uses.
//!
//! Covers the Figure-1 region and three generated workloads at 1, 2, and
//! 8 threads, plus whole-suite compilations at 1, 2, and 8 `host_threads`.
//! This is the regression guard for the independent-ants parallelization
//! argument (`D001`) and the pure-jobs + deterministic-merge suite
//! compiler argument (`D003`) — any thread-count-dependent reduction
//! order, RNG stream split, or merge-order slip shows up here.

use aco::{batch_block_split, AcoConfig, HostParallelScheduler, ParallelScheduler};
use machine_model::OccupancyModel;
use pipeline::{compile_suite_observed, PipelineConfig, SchedulerKind};
use sched_ir::{figure1, Ddg};
use sched_verify::{
    check_host_determinism, check_parallel_repeatability, check_suite_thread_determinism, render,
};
use workloads::{Suite, SuiteConfig};

const THREADS: &[usize] = &[1, 2, 8];

fn cfg(seed: u64) -> AcoConfig {
    let mut c = AcoConfig::small(seed);
    c.blocks = 8;
    c.pass2_gate_cycles = 1;
    c
}

fn workload_regions() -> Vec<(&'static str, Ddg)> {
    vec![
        ("figure1", figure1::ddg()),
        ("sized-40", workloads::patterns::sized(40, 7)),
        ("sized-80", workloads::patterns::sized(80, 11)),
        ("sized-120", workloads::patterns::sized(120, 13)),
    ]
}

#[test]
fn host_parallel_is_thread_count_invariant() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let diags = check_host_determinism(&ddg, &occ, &cfg(3), THREADS);
        assert!(diags.is_empty(), "{name}:\n{}", render(&diags));
    }
}

#[test]
fn host_parallel_pass_stats_are_thread_count_invariant() {
    // Beyond the schedule itself, the search trajectory (iteration counts,
    // improvement flags) must not depend on the thread count either.
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let results: Vec<_> = THREADS
            .iter()
            .map(|&t| HostParallelScheduler::new(cfg(3), t).schedule(&ddg, &occ))
            .collect();
        for (r, &t) in results.iter().zip(THREADS).skip(1) {
            let a = &results[0];
            assert_eq!(
                (
                    r.pass1.iterations,
                    r.pass1.improved,
                    r.pass1.hit_lb,
                    r.pass1.best_cost
                ),
                (
                    a.pass1.iterations,
                    a.pass1.improved,
                    a.pass1.hit_lb,
                    a.pass1.best_cost
                ),
                "{name}: pass-1 trajectory differs at {t} threads"
            );
            assert_eq!(
                (
                    r.pass2.iterations,
                    r.pass2.improved,
                    r.pass2.hit_lb,
                    r.pass2.best_cost
                ),
                (
                    a.pass2.iterations,
                    a.pass2.improved,
                    a.pass2.hit_lb,
                    a.pass2.best_cost
                ),
                "{name}: pass-2 trajectory differs at {t} threads"
            );
        }
    }
}

#[test]
fn batched_launch_equals_solo_split_colony_runs() {
    // The cooperative multi-region launch only changes the cost model:
    // each region's constructed schedule must be bitwise-identical to a
    // solo run whose colony holds exactly that region's block share. A
    // non-divisible block count exercises the remainder distribution.
    let occ = OccupancyModel::vega_like();
    let regions = workload_regions();
    let ddgs: Vec<&Ddg> = regions.iter().map(|(_, d)| d).collect();
    let mut batch_cfg = cfg(3);
    batch_cfg.blocks = 10; // 4 regions -> split [3, 3, 2, 2]
    let batch = ParallelScheduler::new(batch_cfg).schedule_batch(&ddgs, &occ);
    let split = batch_block_split(batch_cfg.blocks, ddgs.len() as u32);
    for (pos, (name, ddg)) in regions.iter().enumerate() {
        let mut solo_cfg = batch_cfg;
        solo_cfg.blocks = split[pos];
        let solo = ParallelScheduler::new(solo_cfg).schedule(ddg, &occ);
        let (b, s) = (&batch.outcomes[pos].result, &solo.result);
        assert_eq!(b.order, s.order, "{name}: order drifted");
        assert_eq!(b.schedule, s.schedule, "{name}: schedule drifted");
        assert_eq!(b.prp, s.prp, "{name}: pressure drifted");
        assert_eq!(b.length, s.length, "{name}: length drifted");
        assert_eq!(b.occupancy, s.occupancy, "{name}: occupancy drifted");
        assert_eq!(
            (
                b.pass1.iterations,
                b.pass1.best_cost,
                b.pass2.iterations,
                b.pass2.best_cost
            ),
            (
                s.pass1.iterations,
                s.pass1.best_cost,
                s.pass2.iterations,
                s.pass2.best_cost
            ),
            "{name}: search trajectory drifted"
        );
    }
}

#[test]
fn simulated_gpu_scheduler_is_run_repeatable() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let diags = check_parallel_repeatability(&ddg, &occ, &cfg(5), 2);
        assert!(diags.is_empty(), "{name}:\n{}", render(&diags));
    }
}

fn suite_cfg(kind: SchedulerKind) -> PipelineConfig {
    let mut c = PipelineConfig::paper(kind, 0);
    c.aco.blocks = 4;
    c.aco.pass2_gate_cycles = 1;
    c
}

#[test]
fn suite_compilation_is_host_thread_invariant() {
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    for kind in [
        SchedulerKind::BaseAmd,
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ] {
        let diags = check_suite_thread_determinism(&suite, &occ, &suite_cfg(kind), &[1, 8]);
        assert!(diags.is_empty(), "{kind:?}:\n{}", render(&diags));
    }
}

#[test]
fn suite_observer_stream_is_host_thread_invariant() {
    // Stronger than the run fingerprint: the *observer callback sequence* —
    // which region, under which effective configuration, with which
    // outcome, in which order — must replay identically at any thread
    // count, or sched-verify's certification hook would see different
    // events depending on the host machine.
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    for kind in [
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ] {
        let capture = |threads: usize| {
            let mut events = Vec::new();
            let cfg = suite_cfg(kind).with_host_threads(threads);
            compile_suite_observed(&suite, &occ, &cfg, |k, ri, ddg, rcfg, c| {
                events.push((
                    k,
                    ri,
                    ddg.len(),
                    rcfg.aco.blocks,
                    rcfg.aco.occupancy_cap,
                    c.occupancy,
                    c.length,
                    c.sched_time_us.to_bits(),
                    c.aco.as_ref().map(|a| a.order.clone()),
                ));
            });
            events
        };
        let reference = capture(1);
        assert!(!reference.is_empty());
        for threads in [2usize, 8] {
            assert_eq!(
                reference,
                capture(threads),
                "{kind:?}: observer stream differs at {threads} host threads"
            );
        }
    }
}
