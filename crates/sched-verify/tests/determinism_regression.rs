//! Determinism regression: the host-parallel scheduler must return
//! identical results no matter how many threads split the colony.
//!
//! Covers the Figure-1 region and three generated workloads at 1, 2, and
//! 8 threads. This is the regression guard for the independent-ants
//! parallelization argument — any thread-count-dependent reduction order
//! or RNG stream split shows up here as a `D001` diagnostic.

use aco::{AcoConfig, HostParallelScheduler};
use machine_model::OccupancyModel;
use sched_ir::{figure1, Ddg};
use sched_verify::{check_host_determinism, check_parallel_repeatability, render};

const THREADS: &[usize] = &[1, 2, 8];

fn cfg(seed: u64) -> AcoConfig {
    let mut c = AcoConfig::small(seed);
    c.blocks = 8;
    c.pass2_gate_cycles = 1;
    c
}

fn workload_regions() -> Vec<(&'static str, Ddg)> {
    vec![
        ("figure1", figure1::ddg()),
        ("sized-40", workloads::patterns::sized(40, 7)),
        ("sized-80", workloads::patterns::sized(80, 11)),
        ("sized-120", workloads::patterns::sized(120, 13)),
    ]
}

#[test]
fn host_parallel_is_thread_count_invariant() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let diags = check_host_determinism(&ddg, &occ, &cfg(3), THREADS);
        assert!(diags.is_empty(), "{name}:\n{}", render(&diags));
    }
}

#[test]
fn host_parallel_pass_stats_are_thread_count_invariant() {
    // Beyond the schedule itself, the search trajectory (iteration counts,
    // improvement flags) must not depend on the thread count either.
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let results: Vec<_> = THREADS
            .iter()
            .map(|&t| HostParallelScheduler::new(cfg(3), t).schedule(&ddg, &occ))
            .collect();
        for (r, &t) in results.iter().zip(THREADS).skip(1) {
            let a = &results[0];
            assert_eq!(
                (
                    r.pass1.iterations,
                    r.pass1.improved,
                    r.pass1.hit_lb,
                    r.pass1.best_cost
                ),
                (
                    a.pass1.iterations,
                    a.pass1.improved,
                    a.pass1.hit_lb,
                    a.pass1.best_cost
                ),
                "{name}: pass-1 trajectory differs at {t} threads"
            );
            assert_eq!(
                (
                    r.pass2.iterations,
                    r.pass2.improved,
                    r.pass2.hit_lb,
                    r.pass2.best_cost
                ),
                (
                    a.pass2.iterations,
                    a.pass2.improved,
                    a.pass2.hit_lb,
                    a.pass2.best_cost
                ),
                "{name}: pass-2 trajectory differs at {t} threads"
            );
        }
    }
}

#[test]
fn simulated_gpu_scheduler_is_run_repeatable() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in workload_regions() {
        let diags = check_parallel_repeatability(&ddg, &occ, &cfg(5), 2);
        assert!(diags.is_empty(), "{name}:\n{}", render(&diags));
    }
}
