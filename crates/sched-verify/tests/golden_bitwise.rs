//! Golden bitwise-equality tests: the scheduler stack's results on fixed
//! seeds, pinned as FNV-1a fingerprints captured from the seed
//! implementation (before the scratch-buffer / deferred-materialization /
//! host-parallel-suite refactors).
//!
//! Any change to ant construction, the winner reduction, or the suite
//! compiler must keep every constant here bit-for-bit. Regenerate with
//! `cargo run --release --example golden_dump` — and if a constant moves,
//! the burden of proof is on the change: either it intentionally alters
//! the search (explain it in the commit and update the golden), or it is
//! a regression.

use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use sched_verify::{aco_fingerprint, suite_fingerprint, Fnv};
use workloads::{Suite, SuiteConfig};

use aco::{AcoConfig, HostParallelScheduler, ParallelScheduler, SequentialScheduler};

/// Captured from the seed implementation (commit ef7a1ae) via
/// `examples/golden_dump.rs`.
const SEQ_GOLDEN: &[(usize, u64, u64, u64)] = &[
    (40, 7, 3, 0x3f93_1651_838a_ada3),
    (80, 21, 9, 0x0943_f344_e143_39b2),
    (120, 13, 5, 0x5497_62ff_7951_31b2),
];

const HOST_GOLDEN: &[(usize, u64, u64, u64)] = &[
    (40, 7, 3, 0x1242_90cd_c031_a5f7),
    (90, 5, 3, 0x3510_f1b0_293c_d6e5),
    (120, 13, 5, 0x5497_62ff_7951_31b2),
];

const PAR_GOLDEN: &[(usize, u64, u64, u64)] = &[
    (40, 7, 3, 0x2b43_207a_72cb_91a3),
    (80, 11, 3, 0xb352_e9e4_a96f_ecbf),
    (120, 13, 5, 0x131d_e74f_15d6_bff2),
];

const BATCH_GOLDEN: u64 = 0x7dbd_576b_6740_b537;

const SUITE_GOLDEN: &[(SchedulerKind, u64)] = &[
    (SchedulerKind::BaseAmd, 0x17ab_1421_e1f4_ab35),
    (SchedulerKind::SequentialAco, 0xfae2_90c1_d504_8d86),
    (SchedulerKind::ParallelAco, 0x0bab_ab0d_95ed_2a9b),
    (SchedulerKind::BatchedParallelAco, 0xf4e9_8570_6500_64e0),
];

fn paper_cfg(seed: u64) -> AcoConfig {
    let mut cfg = AcoConfig::paper(seed);
    cfg.blocks = 8;
    cfg.pass2_gate_cycles = 1;
    cfg
}

#[test]
fn sequential_matches_seed_goldens() {
    let occ = OccupancyModel::vega_like();
    for &(size, rseed, cseed, want) in SEQ_GOLDEN {
        let ddg = workloads::patterns::sized(size, rseed);
        let r = SequentialScheduler::new(paper_cfg(cseed)).schedule(&ddg, &occ);
        assert_eq!(
            aco_fingerprint(&r),
            want,
            "sequential drifted on sized({size}, {rseed}) seed {cseed}"
        );
    }
}

#[test]
fn host_parallel_matches_seed_goldens_at_1_2_8_threads() {
    let occ = OccupancyModel::vega_like();
    for &(size, rseed, cseed, want) in HOST_GOLDEN {
        let ddg = workloads::patterns::sized(size, rseed);
        for threads in [1usize, 2, 8] {
            let r = HostParallelScheduler::new(paper_cfg(cseed), threads).schedule(&ddg, &occ);
            assert_eq!(
                aco_fingerprint(&r),
                want,
                "host-parallel drifted on sized({size}, {rseed}) seed {cseed} at {threads} threads"
            );
        }
    }
}

#[test]
fn simulated_gpu_matches_seed_goldens() {
    let occ = OccupancyModel::vega_like();
    for &(size, rseed, cseed, want) in PAR_GOLDEN {
        let ddg = workloads::patterns::sized(size, rseed);
        let mut cfg = AcoConfig::small(cseed);
        cfg.blocks = 8;
        cfg.pass2_gate_cycles = 1;
        let r = ParallelScheduler::new(cfg).schedule(&ddg, &occ);
        assert_eq!(
            aco_fingerprint(&r.result),
            want,
            "simulated-GPU drifted on sized({size}, {rseed}) seed {cseed}"
        );
    }
}

#[test]
fn batched_launch_matches_seed_golden() {
    let occ = OccupancyModel::vega_like();
    let regions = [
        workloads::patterns::sized(40, 7),
        workloads::patterns::sized(80, 11),
        workloads::patterns::sized(120, 13),
    ];
    let refs: Vec<&sched_ir::Ddg> = regions.iter().collect();
    let mut cfg = AcoConfig::small(3);
    cfg.blocks = 10;
    cfg.pass2_gate_cycles = 1;
    let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
    let mut h = Fnv::new();
    for o in &batch.outcomes {
        h.word(aco_fingerprint(&o.result));
    }
    assert_eq!(h.finish(), BATCH_GOLDEN, "batched launch drifted");
}

#[test]
fn suite_compilations_match_seed_goldens() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    for &(kind, want) in SUITE_GOLDEN {
        let mut cfg = PipelineConfig::paper(kind, 0);
        cfg.aco.blocks = 4;
        cfg.aco.pass2_gate_cycles = 1;
        let run = compile_suite(&suite, &occ, &cfg);
        assert_eq!(
            suite_fingerprint(&run),
            want,
            "suite compilation drifted under {kind:?}"
        );
    }
}

/// The host worker pool is a pure wall-clock knob: compiling on 1, 2 or 8
/// host threads must reproduce the seed implementation's (sequential)
/// suite fingerprints bit for bit, for every scheduler kind.
#[test]
fn suite_compilations_are_thread_count_invariant() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    for &(kind, want) in SUITE_GOLDEN {
        for threads in [1usize, 2, 8] {
            let mut cfg = PipelineConfig::paper(kind, 0).with_host_threads(threads);
            cfg.aco.blocks = 4;
            cfg.aco.pass2_gate_cycles = 1;
            let run = compile_suite(&suite, &occ, &cfg);
            assert_eq!(
                suite_fingerprint(&run),
                want,
                "suite compilation drifted under {kind:?} at {threads} host threads"
            );
        }
    }
}

/// The schedule cache is equally pure: switching it **off** must reproduce
/// the same seed goldens (captured cache-on) at 1, 2 and 8 host threads,
/// for every scheduler kind — the full kinds x threads x cache matrix once
/// combined with the two tests above.
#[test]
fn suite_compilations_are_cache_invariant_at_any_thread_count() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
    for &(kind, want) in SUITE_GOLDEN {
        for threads in [1usize, 2, 8] {
            let mut cfg = PipelineConfig::paper(kind, 0)
                .with_host_threads(threads)
                .with_cache(false);
            cfg.aco.blocks = 4;
            cfg.aco.pass2_gate_cycles = 1;
            let run = compile_suite(&suite, &occ, &cfg);
            assert_eq!(
                suite_fingerprint(&run),
                want,
                "suite compilation drifted under {kind:?} at {threads} host threads, cache off"
            );
        }
    }
}
