//! End-to-end certification: every schedule produced by every scheduler
//! in the stack, on a generated workload suite, certifies with zero
//! diagnostics.
//!
//! This is the acceptance gate for the verification layer: list
//! scheduling, sequential ACO, GPU-parallel ACO (through the pipeline,
//! including its occupancy-capped re-schedules), host-parallel ACO, and
//! the exact branch-and-bound all have their claims re-derived from first
//! principles.

use aco::{AcoConfig, HostParallelScheduler};
use exact_sched::{two_pass_optimum, BnbConfig};
use list_sched::{Heuristic, ListScheduler};
use machine_model::OccupancyModel;
use pipeline::{PipelineConfig, SchedulerKind};
use sched_verify::{certify_aco, certify_exact, certify_list, render, verify_suite};
use workloads::{Suite, SuiteConfig};

fn suite() -> Suite {
    Suite::generate(&SuiteConfig::scaled(9, 0.01))
}

fn pipeline_cfg(kind: SchedulerKind) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper(kind, 0);
    cfg.aco.blocks = 4;
    cfg.aco.pass2_gate_cycles = 1;
    cfg
}

#[test]
fn list_sched_suite_certifies_clean() {
    let occ = OccupancyModel::vega_like();
    let v = verify_suite(&suite(), &occ, &pipeline_cfg(SchedulerKind::BaseAmd));
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
    assert!(!v.has_errors());
    assert!(v.schedules >= v.compilations);
}

#[test]
fn critical_path_suite_certifies_clean() {
    let occ = OccupancyModel::vega_like();
    let v = verify_suite(&suite(), &occ, &pipeline_cfg(SchedulerKind::CriticalPath));
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
}

#[test]
fn sequential_aco_suite_certifies_clean() {
    let occ = OccupancyModel::vega_like();
    let v = verify_suite(&suite(), &occ, &pipeline_cfg(SchedulerKind::SequentialAco));
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
    assert!(v.schedules > v.compilations, "ACO must have run somewhere");
}

#[test]
fn parallel_aco_suite_certifies_clean() {
    let occ = OccupancyModel::vega_like();
    let v = verify_suite(&suite(), &occ, &pipeline_cfg(SchedulerKind::ParallelAco));
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
    assert!(v.schedules > v.compilations, "ACO must have run somewhere");
}

#[test]
fn batched_parallel_aco_suite_certifies_clean() {
    // Batched mode routes every region through cooperative multi-region
    // launches; the observer hook still fires per region with the split
    // colony it ran under, so certification must stay exact.
    let occ = OccupancyModel::vega_like();
    let v = verify_suite(
        &suite(),
        &occ,
        &pipeline_cfg(SchedulerKind::BatchedParallelAco),
    );
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
    assert!(!v.has_errors());
    assert!(v.schedules > v.compilations, "ACO must have run somewhere");
}

#[test]
fn host_parallel_schedules_certify_clean() {
    let occ = OccupancyModel::vega_like();
    let mut cfg = AcoConfig::small(2);
    cfg.blocks = 4;
    cfg.pass2_gate_cycles = 1;
    for (k, _, ddg) in suite().regions().take(12) {
        let r = HostParallelScheduler::new(cfg, 4).schedule(ddg, &occ);
        let diags = certify_aco(ddg, &occ, &cfg, &r);
        assert!(diags.is_empty(), "kernel {k}:\n{}", render(&diags));
    }
}

#[test]
fn exact_schedules_certify_clean_and_dominate_heuristics() {
    let occ = OccupancyModel::vega_like();
    let bnb = BnbConfig::default();
    for seed in 0..6u64 {
        let ddg = workloads::patterns::sized(12, seed);
        let exact = two_pass_optimum(&ddg, &occ, &bnb);
        let diags = certify_exact(&ddg, &occ, &exact);
        assert!(diags.is_empty(), "seed {seed}:\n{}", render(&diags));
        // The exact optimum's pressure cost is a floor for the heuristic's.
        let heur = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
        let hdiags = certify_list(&ddg, &occ, &heur);
        assert!(hdiags.is_empty(), "seed {seed}:\n{}", render(&hdiags));
        if exact.proven_optimal {
            assert!(
                occ.rp_cost(exact.prp) <= occ.rp_cost(heur.prp),
                "seed {seed}: exact pass-1 optimum beaten by the heuristic"
            );
        }
    }
}
