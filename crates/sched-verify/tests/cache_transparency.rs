//! D004 cache transparency, pinned against the seed goldens: compiling a
//! suite with the content-addressed schedule cache ON must reproduce the
//! exact suite fingerprints captured *before the cache existed* — for
//! every scheduler kind, at 1, 2 and 8 host threads. The cache may only
//! change wall-clock time and the [`pipeline::SuiteRun::cache`] counters
//! (which the fingerprint deliberately excludes).
//!
//! The golden constants are the same ones `golden_bitwise.rs` pins for the
//! cache-off (seed) path; equality against them is therefore simultaneously
//! a no-regression check and a transparency proof.

use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use sched_verify::{check_cache_transparency, render, suite_fingerprint, verify_suite};
use workloads::{Suite, SuiteConfig};

/// Captured from the seed implementation (commit ef7a1ae) via
/// `examples/golden_dump.rs` — identical to `golden_bitwise.rs`.
const SUITE_GOLDEN: &[(SchedulerKind, u64)] = &[
    (SchedulerKind::BaseAmd, 0x17ab_1421_e1f4_ab35),
    (SchedulerKind::SequentialAco, 0xfae2_90c1_d504_8d86),
    (SchedulerKind::ParallelAco, 0x0bab_ab0d_95ed_2a9b),
    (SchedulerKind::BatchedParallelAco, 0xf4e9_8570_6500_64e0),
];

fn golden_suite() -> Suite {
    Suite::generate(&SuiteConfig::scaled(5, 0.008))
}

fn cfg(kind: SchedulerKind) -> PipelineConfig {
    let mut c = PipelineConfig::paper(kind, 0);
    c.aco.blocks = 4;
    c.aco.pass2_gate_cycles = 1;
    c
}

/// The tentpole acceptance test: cache on and cache off reproduce the
/// pre-cache golden fingerprint, for all four scheduler kinds, at every
/// thread count.
#[test]
fn golden_fingerprints_identical_cache_on_and_off_at_1_2_8_threads() {
    let occ = OccupancyModel::vega_like();
    let suite = golden_suite();
    for &(kind, want) in SUITE_GOLDEN {
        for threads in [1usize, 2, 8] {
            for cache in [false, true] {
                let c = cfg(kind).with_host_threads(threads).with_cache(cache);
                let run = compile_suite(&suite, &occ, &c);
                assert_eq!(
                    suite_fingerprint(&run),
                    want,
                    "suite fingerprint drifted under {kind:?} at {threads} \
                     host threads with cache {}",
                    if cache { "on" } else { "off" }
                );
                if !cache {
                    assert_eq!(
                        run.cache,
                        pipeline::CacheStats::default(),
                        "disabled cache must report zero activity"
                    );
                }
            }
        }
    }
}

/// The D004 checker agrees on a duplicate-heavy suite (where the cache
/// actually fires on a large fraction of lookups).
#[test]
fn d004_clean_on_duplicate_heavy_suite() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::duplicate_heavy(5, 0.008));
    for kind in [
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ] {
        let diags = check_cache_transparency(&suite, &occ, &cfg(kind), &[1, 2, 8]);
        assert!(diags.is_empty(), "{}", render(&diags));
    }
}

/// Cache hits flow through the same observer as fresh compilations, so
/// `verify_suite` re-certifies every adopted hit with the full C001–C012
/// battery — and finds nothing.
#[test]
fn verify_suite_certifies_cache_hits_clean() {
    let occ = OccupancyModel::vega_like();
    let suite = Suite::generate(&SuiteConfig::duplicate_heavy(5, 0.008));
    let stats = suite.duplicate_stats();
    assert!(
        stats.dedup_ratio() >= 0.30,
        "suite not duplicate-heavy enough to exercise hits: {:.3}",
        stats.dedup_ratio()
    );
    let c = cfg(SchedulerKind::ParallelAco).with_cache(true);
    let v = verify_suite(&suite, &occ, &c);
    assert!(
        v.run.cache.hits > 0,
        "no cache hit was certified: {:?}",
        v.run.cache
    );
    assert!(v.compilations >= suite.region_count());
    assert!(!v.has_errors(), "{}", render(&v.diagnostics));
    assert!(v.diagnostics.is_empty(), "{}", render(&v.diagnostics));
}
