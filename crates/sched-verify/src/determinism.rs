//! Determinism checks for the parallel schedulers.
//!
//! The host-parallel scheduler's whole argument rests on the claim that
//! splitting the colony across threads changes *nothing* about the result
//! — ants are independent within an iteration and the winner reduction is
//! associative over a deterministic total order. This module tests that
//! claim directly: the same region scheduled at several thread counts (and
//! the simulated-GPU scheduler run repeatedly) must produce bitwise
//! identical results.

use crate::diag::{codes, Diagnostic, Span};
use crate::fingerprint::suite_fingerprint;
use aco::{AcoConfig, AcoResult, HostParallelScheduler, ParallelScheduler};
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig};
use sched_ir::{Ddg, REG_CLASS_COUNT};
use workloads::Suite;

/// The parts of an [`AcoResult`] that must be reproducible. Timing and op
/// counts are cost-model outputs and may legitimately differ with the
/// thread count; everything the *search* decides may not.
fn fingerprint(r: &AcoResult) -> (Vec<u32>, Vec<u32>, [u32; REG_CLASS_COUNT], u32, u32) {
    (
        r.schedule.cycles().to_vec(),
        r.order.iter().map(|id| id.0).collect(),
        r.prp,
        r.occupancy,
        r.length,
    )
}

fn describe(r: &AcoResult) -> String {
    format!(
        "prp {:?}, occupancy {}, length {}, order {:?}",
        r.prp,
        r.occupancy,
        r.length,
        &r.order[..r.order.len().min(8)]
    )
}

/// Schedules `ddg` with [`HostParallelScheduler`] at every thread count in
/// `threads` and reports a `D001` error for each count whose result
/// deviates from the first.
pub fn check_host_determinism(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &AcoConfig,
    threads: &[usize],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some((&first, rest)) = threads.split_first() else {
        return diags;
    };
    let reference = HostParallelScheduler::new(*cfg, first).schedule(ddg, occ);
    let ref_fp = fingerprint(&reference);
    for &t in rest {
        let r = HostParallelScheduler::new(*cfg, t).schedule(ddg, occ);
        if fingerprint(&r) != ref_fp {
            diags.push(Diagnostic::error(
                codes::THREAD_NONDETERMINISM,
                Span::Region,
                format!(
                    "host-parallel result differs between {first} and {t} \
                     threads: [{}] vs [{}]",
                    describe(&reference),
                    describe(&r)
                ),
            ));
        }
    }
    diags
}

/// Compiles `suite` at every `host_threads` value in `threads` and reports
/// a `D003` error for each value whose [`pipeline::SuiteRun`] fingerprint
/// deviates from the first.
///
/// This is the suite-level analogue of [`check_host_determinism`]: the
/// pipeline's host worker pool must be a pure wall-clock knob, so the full
/// run — every region record, kernel occupancy, modeled time and
/// throughput — is hashed, not just the schedules.
pub fn check_suite_thread_determinism(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    threads: &[usize],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some((&first, rest)) = threads.split_first() else {
        return diags;
    };
    let reference = compile_suite(suite, occ, &cfg.with_host_threads(first));
    let ref_fp = suite_fingerprint(&reference);
    for &t in rest {
        let run = compile_suite(suite, occ, &cfg.with_host_threads(t));
        let fp = suite_fingerprint(&run);
        if fp != ref_fp {
            diags.push(Diagnostic::error(
                codes::SUITE_THREAD_NONDETERMINISM,
                Span::Region,
                format!(
                    "suite compilation ({:?}) differs between {first} and {t} \
                     host threads: fingerprint {ref_fp:#018x} vs {fp:#018x} \
                     (total length {} vs {}, total occupancy {} vs {})",
                    cfg.scheduler,
                    reference.total_length(),
                    run.total_length(),
                    reference.total_occupancy(),
                    run.total_occupancy(),
                ),
            ));
        }
    }
    diags
}

/// Compiles `suite` with the schedule cache off (the reference) and on,
/// at every `host_threads` value in `threads`, and reports a `D004` error
/// for each cache-on run whose [`pipeline::SuiteRun`] fingerprint deviates
/// from the cache-off reference at the same thread count.
///
/// This is the cache-transparency contract: content-addressed memoization
/// must be a pure wall-clock optimization. Every adopted hit passed an
/// exact content/config equality check plus re-certification, so the whole
/// run — every region record, kernel occupancy, modeled time, throughput —
/// must be byte-identical. (The [`pipeline::CacheStats`] counters are
/// interleaving-dependent and deliberately excluded from the suite
/// fingerprint; see `fingerprint.rs`.)
pub fn check_cache_transparency(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    threads: &[usize],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &t in threads {
        let tcfg = cfg.with_host_threads(t);
        let off = compile_suite(suite, occ, &tcfg.with_cache(false));
        let on = compile_suite(suite, occ, &tcfg.with_cache(true));
        let (off_fp, on_fp) = (suite_fingerprint(&off), suite_fingerprint(&on));
        if on_fp != off_fp {
            diags.push(Diagnostic::error(
                codes::CACHE_NONTRANSPARENT,
                Span::Region,
                format!(
                    "suite compilation ({:?}, {t} host threads) differs with \
                     the schedule cache on: fingerprint {on_fp:#018x} vs \
                     {off_fp:#018x} off (total length {} vs {}, total \
                     occupancy {} vs {}; cache activity: {} hits, {} misses, \
                     {} bypasses)",
                    cfg.scheduler,
                    on.total_length(),
                    off.total_length(),
                    on.total_occupancy(),
                    off.total_occupancy(),
                    on.cache.hits,
                    on.cache.misses,
                    on.cache.bypasses,
                ),
            ));
        }
    }
    diags
}

/// Runs the simulated-GPU [`ParallelScheduler`] `runs` times with one
/// configuration and reports a `D002` error for each run that deviates
/// from the first.
pub fn check_parallel_repeatability(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &AcoConfig,
    runs: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if runs < 2 {
        return diags;
    }
    let reference = ParallelScheduler::new(*cfg).schedule(ddg, occ).result;
    let ref_fp = fingerprint(&reference);
    for run in 1..runs {
        let r = ParallelScheduler::new(*cfg).schedule(ddg, occ).result;
        if fingerprint(&r) != ref_fp {
            diags.push(Diagnostic::error(
                codes::RUN_NONDETERMINISM,
                Span::Region,
                format!(
                    "simulated-GPU run {run} differs from run 0 with an \
                     identical configuration: [{}] vs [{}]",
                    describe(&reference),
                    describe(&r)
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::figure1;

    fn small_cfg() -> AcoConfig {
        let mut c = AcoConfig::small(3);
        c.blocks = 8;
        c
    }

    #[test]
    fn figure1_is_thread_count_invariant() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let diags = check_host_determinism(&ddg, &occ, &small_cfg(), &[1, 2, 4]);
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
    }

    #[test]
    fn figure1_is_run_repeatable() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let diags = check_parallel_repeatability(&ddg, &occ, &small_cfg(), 3);
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
    }

    #[test]
    fn tiny_suite_is_host_thread_invariant() {
        use pipeline::SchedulerKind;
        use workloads::SuiteConfig;
        let suite = Suite::generate(&SuiteConfig::scaled(3, 0.004));
        let occ = OccupancyModel::vega_like();
        for kind in [
            SchedulerKind::ParallelAco,
            SchedulerKind::BatchedParallelAco,
        ] {
            let mut cfg = PipelineConfig::paper(kind, 0);
            cfg.aco.blocks = 4;
            cfg.aco.pass2_gate_cycles = 1;
            let diags = check_suite_thread_determinism(&suite, &occ, &cfg, &[1, 2, 5]);
            assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
        }
    }

    #[test]
    fn tiny_duplicate_heavy_suite_is_cache_transparent() {
        use pipeline::SchedulerKind;
        use workloads::SuiteConfig;
        let suite = Suite::generate(&SuiteConfig::duplicate_heavy(3, 0.004));
        let occ = OccupancyModel::vega_like();
        let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        cfg.aco.blocks = 4;
        cfg.aco.pass2_gate_cycles = 1;
        let diags = check_cache_transparency(&suite, &occ, &cfg, &[1, 2]);
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
        // The check is meaningful only if the cache actually fired.
        let run = compile_suite(&suite, &occ, &cfg.with_cache(true));
        assert!(run.cache.hits > 0, "duplicate-heavy suite must hit");
    }
}
