//! Bitwise fingerprints of scheduler and pipeline outputs.
//!
//! A fingerprint folds everything a run *decides* — orders, cycles,
//! pressure, pass statistics, modeled times — into one `u64`, so golden
//! tests can pin a result and determinism checks can compare whole suite
//! runs cheaply. Floats are hashed by their IEEE-754 bit patterns: two
//! runs fingerprint equal only if they are byte-identical, which is
//! exactly the determinism contract the host-parallel paths promise.

use aco::AcoResult;
use pipeline::SuiteRun;

/// FNV-1a accumulator over a stream of `u64` words.
///
/// FNV is not cryptographic; it is chosen because it is dependency-free,
/// byte-order stable, and trivially reimplementable when regenerating
/// goldens outside this crate.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the hash, little-endian byte by byte.
    pub fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Fingerprint of everything the ACO search decides: issue order, cycles,
/// peak pressure, occupancy, length, and both passes' iteration counts and
/// best costs. Excludes op counts and modeled times, which depend on the
/// launch geometry rather than the search.
pub fn aco_fingerprint(r: &AcoResult) -> u64 {
    let mut h = Fnv::new();
    for id in &r.order {
        h.word(id.0 as u64);
    }
    for &c in r.schedule.cycles() {
        h.word(c as u64);
    }
    for &p in &r.prp {
        h.word(p as u64);
    }
    h.word(r.occupancy as u64);
    h.word(r.length as u64);
    h.word(r.pass1.iterations as u64);
    h.word(r.pass1.best_cost);
    h.word(r.pass2.iterations as u64);
    h.word(r.pass2.best_cost);
    h.finish()
}

/// Fingerprint of a whole suite run: every region record (including the
/// modeled times, as f64 bits), kernel occupancies and times, benchmark
/// aggregates, and the modeled compile time. Two runs fingerprint equal
/// only if the `SuiteRun`s are byte-identical.
///
/// `run.cache` (the schedule-cache hit/miss counters) is deliberately
/// **not** hashed: at `host_threads > 1` two workers can race to
/// first-compile the same content, making the counters
/// interleaving-dependent, while everything the compilation *decides*
/// stays bitwise identical — which is exactly what the D004
/// cache-transparency check asserts with this fingerprint.
pub fn suite_fingerprint(run: &SuiteRun) -> u64 {
    let mut h = Fnv::new();
    for r in &run.regions {
        h.word(r.kernel as u64);
        h.word(r.region as u64);
        h.word(r.size as u64);
        h.word(r.occupancy as u64);
        h.word(r.length as u64);
        h.word(r.heuristic_occupancy as u64);
        h.word(r.heuristic_length as u64);
        h.word(r.pass1_processed as u64);
        h.word(r.pass2_processed as u64);
        h.word(r.pass1_iterations as u64);
        h.word(r.pass2_iterations as u64);
        h.word(r.pass1_time_us.to_bits());
        h.word(r.pass2_time_us.to_bits());
        h.word(r.sched_time_us.to_bits());
        h.word(r.reverted as u64);
        h.word(r.kept_aco as u64);
    }
    for &o in &run.kernel_occupancy {
        h.word(o as u64);
    }
    for &t in &run.kernel_time_us {
        h.word(t.to_bits());
    }
    for &t in &run.benchmark_time_us {
        h.word(t.to_bits());
    }
    for &t in &run.benchmark_throughput {
        h.word(t.to_bits());
    }
    h.word(run.compile_time_s.to_bits());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_hashes_to_offset_basis() {
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn word_order_matters() {
        let mut a = Fnv::new();
        a.word(1);
        a.word(2);
        let mut b = Fnv::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn aco_fingerprint_is_stable_and_sensitive() {
        let ddg = sched_ir::figure1::ddg();
        let occ = machine_model::OccupancyModel::vega_like();
        let r = aco::SequentialScheduler::new(aco::AcoConfig::small(3)).schedule(&ddg, &occ);
        let base = aco_fingerprint(&r);
        assert_eq!(base, aco_fingerprint(&r), "pure function");
        let mut changed = r.clone();
        changed.length += 1;
        assert_ne!(base, aco_fingerprint(&changed));
    }
}
