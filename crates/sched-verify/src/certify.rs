//! The certificate checker: independent re-verification of scheduler
//! claims.
//!
//! A scheduler's output is treated as a *certificate*: a schedule plus the
//! claims it makes about that schedule (issue order, peak register
//! pressure, occupancy, length). Everything is recomputed here from first
//! principles — ordering and latency constraints from the DDG edges,
//! def/use ordering from the instructions' register sets, live ranges and
//! peak pressure from a from-scratch interval sweep, occupancy and cost
//! from the [`machine_model::OccupancyModel`] — and compared against the
//! claims. This module deliberately shares no code with the `reg-pressure`
//! crate, so a bug in the production pressure tracker cannot certify its
//! own wrong answer.

use crate::diag::{codes, Diagnostic, Span};
use aco::{pass2_target, AcoConfig, AcoResult};
use exact_sched::ExactResult;
use list_sched::ScheduleResult;
use machine_model::{OccupancyModel, Waves};
use sched_ir::{Cycle, Ddg, InstrId, Reg, RegClass, Schedule, REG_CLASS_COUNT};
use std::collections::HashMap;

/// What a scheduler claims about a schedule.
#[derive(Debug, Clone, Copy)]
pub struct Claim<'a> {
    /// Claimed issue order (checked against the schedule's cycles).
    pub order: Option<&'a [InstrId]>,
    /// Claimed peak register pressure per class.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Claimed occupancy (skipped when the producer does not report one).
    pub occupancy: Option<Waves>,
    /// Claimed schedule length in cycles.
    pub length: Cycle,
}

/// Recomputes peak register pressure per class for an issue order, from
/// first principles.
///
/// Live-range model (matching the paper's SSA-region semantics): a register
/// used but never defined in the region is live-in — live from region entry
/// (counting toward the *initial* peak) until its last use; a register
/// defined but never used is live-out — live from its definition to region
/// end; otherwise a register is live from its definition until its last
/// use. At one issue position, ranges ending there close before ranges
/// starting there open, and the peak is sampled after both.
///
/// Invalid orders (a use positioned at or before its def) do not panic;
/// the offending range simply contributes nothing — the dependence check
/// reports the real problem separately.
pub fn recompute_prp(ddg: &Ddg, order: &[InstrId]) -> [u32; REG_CLASS_COUNT] {
    let n = order.len();
    let mut pos: HashMap<InstrId, usize> = HashMap::with_capacity(n);
    for (p, &id) in order.iter().enumerate() {
        pos.insert(id, p);
    }

    #[derive(Default, Clone, Copy)]
    struct Life {
        def: Option<usize>,
        last_use: Option<usize>,
    }
    let mut life: HashMap<Reg, Life> = HashMap::new();
    for &id in order {
        let p = pos[&id];
        let instr = ddg.instr(id);
        for &r in instr.defs() {
            let l = life.entry(r).or_default();
            // First def wins (SSA; duplicate defs are a lint, not a crash).
            if l.def.is_none() {
                l.def = Some(p);
            }
        }
        for &r in instr.uses() {
            let l = life.entry(r).or_default();
            l.last_use = Some(l.last_use.map_or(p, |u| u.max(p)));
        }
    }

    // Per-position net change, closes applied before opens.
    let mut opens = vec![[0i64; REG_CLASS_COUNT]; n];
    let mut closes = vec![[0i64; REG_CLASS_COUNT]; n];
    let mut current = [0i64; REG_CLASS_COUNT];
    for (&reg, &l) in &life {
        let c = reg.class.index();
        match (l.def, l.last_use) {
            // Live-in: counted from region entry, closes at its last use.
            (None, Some(u)) => {
                current[c] += 1;
                closes[u][c] -= 1;
            }
            // Live-out: opens at its def, never closes.
            (Some(d), None) => opens[d][c] += 1,
            // Interior: opens at its def, closes at its last use — unless
            // the order is invalid (use at or before def), in which case
            // the range is empty and contributes nothing.
            (Some(d), Some(u)) => {
                if u > d {
                    opens[d][c] += 1;
                    closes[u][c] -= 1;
                }
            }
            (None, None) => unreachable!("reg interned without def or use"),
        }
    }

    // The entry state (live-ins) counts toward the peak.
    let mut peak = current;
    for p in 0..n {
        for c in 0..REG_CLASS_COUNT {
            current[c] += closes[p][c];
            current[c] += opens[p][c];
            peak[c] = peak[c].max(current[c]);
        }
    }
    let mut out = [0u32; REG_CLASS_COUNT];
    for c in 0..REG_CLASS_COUNT {
        out[c] = peak[c].max(0) as u32;
    }
    out
}

/// Checks a schedule and the claims made about it, returning every
/// violation found.
///
/// When the schedule does not even cover the DDG (wrong length), that
/// single diagnostic is returned and everything else is skipped — no other
/// check is meaningful against a truncated schedule.
pub fn certify_schedule(
    ddg: &Ddg,
    occ: &OccupancyModel,
    schedule: &Schedule,
    claim: &Claim<'_>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if schedule.len() != ddg.len() {
        diags.push(Diagnostic::error(
            codes::WRONG_LENGTH,
            Span::Region,
            format!(
                "schedule assigns cycles to {} instructions, DDG has {}",
                schedule.len(),
                ddg.len()
            ),
        ));
        return diags;
    }

    // C002 — def/use ordering straight from the register sets, independent
    // of whether the builder materialized an edge for the dependence.
    let mut def_of: HashMap<Reg, InstrId> = HashMap::new();
    for id in ddg.ids() {
        for &r in ddg.instr(id).defs() {
            def_of.entry(r).or_insert(id);
        }
    }
    for id in ddg.ids() {
        for &r in ddg.instr(id).uses() {
            if let Some(&def) = def_of.get(&r) {
                if def != id && schedule.cycle(id) <= schedule.cycle(def) {
                    diags.push(Diagnostic::error(
                        codes::DEPENDENCE,
                        Span::Reg(r),
                        format!(
                            "{id} reads {r} at cycle {} but its definition by {def} \
                             issues at cycle {}",
                            schedule.cycle(id),
                            schedule.cycle(def)
                        ),
                    ));
                }
            }
        }
    }

    // C003 — every materialized edge's latency.
    for id in ddg.ids() {
        for &(succ, lat) in ddg.succs(id) {
            let required = schedule.cycle(id) + lat as Cycle;
            if schedule.cycle(succ) < required {
                diags.push(Diagnostic::error(
                    codes::LATENCY,
                    Span::Edge { from: id, to: succ },
                    format!(
                        "{succ} must issue at cycle {required} or later \
                         (producer {id} + latency {lat}), but issues at {}",
                        schedule.cycle(succ)
                    ),
                ));
            }
        }
    }

    // C004 — single-issue machine: one instruction per cycle.
    let derived_order = schedule.order();
    for pair in derived_order.windows(2) {
        if schedule.cycle(pair[0]) == schedule.cycle(pair[1]) {
            diags.push(Diagnostic::error(
                codes::ISSUE_CONFLICT,
                Span::Instr(pair[1]),
                format!(
                    "{} and {} both issue at cycle {}",
                    pair[0],
                    pair[1],
                    schedule.cycle(pair[0])
                ),
            ));
        }
    }

    // C011 — a claimed order must be a permutation of the region issued in
    // strictly increasing cycles (i.e. it must *be* the schedule's order).
    let mut prp_order: &[InstrId] = &derived_order;
    if let Some(order) = claim.order {
        let mut seen = vec![false; ddg.len()];
        let perm = order.len() == ddg.len()
            && order.iter().all(|&id| {
                let i = id.index();
                i < ddg.len() && !std::mem::replace(&mut seen[i], true)
            });
        let increasing = order
            .windows(2)
            .all(|w| schedule.cycle(w[0]) < schedule.cycle(w[1]));
        if perm && increasing {
            prp_order = order;
        } else {
            diags.push(Diagnostic::error(
                codes::ORDER_MISMATCH,
                Span::Region,
                if perm {
                    "claimed order is not issued in strictly increasing cycles".to_string()
                } else {
                    "claimed order is not a permutation of the region".to_string()
                },
            ));
        }
    }

    // C005 — from-scratch PRP recomputation against the claim, per class.
    let recomputed = recompute_prp(ddg, prp_order);
    for (c, (&got, &claimed)) in recomputed.iter().zip(&claim.prp).enumerate() {
        if got != claimed {
            let class = if c == RegClass::Vgpr.index() {
                RegClass::Vgpr
            } else {
                RegClass::Sgpr
            };
            diags.push(Diagnostic::error(
                codes::PRP_MISMATCH,
                Span::Region,
                format!(
                    "claimed {class:?} peak pressure {claimed} but recomputed live \
                     ranges give {got}"
                ),
            ));
        }
    }

    // C006 — occupancy must follow from the recomputed pressure.
    if let Some(claimed_occ) = claim.occupancy {
        let actual = occ.occupancy(recomputed);
        if actual != claimed_occ {
            diags.push(Diagnostic::error(
                codes::OCCUPANCY_MISMATCH,
                Span::Region,
                format!(
                    "claimed occupancy {claimed_occ} waves but PRP {recomputed:?} \
                     implies {actual}"
                ),
            ));
        }
    }

    // C007 — claimed length against the schedule's actual length.
    if schedule.length() != claim.length {
        diags.push(Diagnostic::error(
            codes::LENGTH_MISMATCH,
            Span::Region,
            format!(
                "claimed length {} but the schedule spans {} cycles",
                claim.length,
                schedule.length()
            ),
        ));
    }

    // C008 / C009 — lower-bound consistency: no valid result may beat the
    // bounds the search trusts. Only meaningful for structurally valid
    // schedules; an invalid one already failed above.
    let structurally_valid = diags.is_empty();
    if structurally_valid {
        let length_lb = ddg.schedule_length_lb();
        if schedule.length() < length_lb {
            diags.push(Diagnostic::error(
                codes::LENGTH_BELOW_LB,
                Span::Region,
                format!(
                    "schedule length {} is below the DDG lower bound {length_lb}",
                    schedule.length()
                ),
            ));
        }
        let rp_lb = ddg.rp_lower_bound();
        for c in 0..REG_CLASS_COUNT {
            if (recomputed[c] as usize) < rp_lb[c] {
                diags.push(Diagnostic::error(
                    codes::PRP_BELOW_LB,
                    Span::Region,
                    format!(
                        "recomputed peak pressure {} (class {c}) is below the \
                         register-pressure lower bound {}",
                        recomputed[c], rp_lb[c]
                    ),
                ));
            }
        }
    }
    diags
}

/// Certifies a list scheduler's [`ScheduleResult`].
pub fn certify_list(ddg: &Ddg, occ: &OccupancyModel, r: &ScheduleResult) -> Vec<Diagnostic> {
    certify_schedule(
        ddg,
        occ,
        &r.schedule,
        &Claim {
            order: Some(&r.order),
            prp: r.prp,
            occupancy: Some(r.occupancy),
            length: r.length,
        },
    )
}

/// Certifies a two-pass ACO result: the final schedule, the initial
/// heuristic schedule it started from, and the two-pass invariant — the
/// final schedule's register-pressure cost may not exceed the pass-2
/// target derived from the pass-1 best cost (relaxed to the occupancy
/// cap's APRP band when one is set).
pub fn certify_aco(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &AcoConfig,
    r: &AcoResult,
) -> Vec<Diagnostic> {
    let mut diags = certify_schedule(
        ddg,
        occ,
        &r.schedule,
        &Claim {
            order: Some(&r.order),
            prp: r.prp,
            occupancy: Some(r.occupancy),
            length: r.length,
        },
    );
    diags.extend(certify_list(ddg, occ, &r.initial));

    // C010 — the two-pass invariant. Trivial results (region too small for
    // ACO) report a zero pass-1 cost without having measured one; the
    // invariant is vacuous there.
    let trivial = r.pass1.iterations == 0 && r.pass1.best_cost == 0;
    if !trivial {
        let target = pass2_target(cfg, occ, r.pass1.best_cost);
        let final_cost = occ.rp_cost(recompute_prp(ddg, &r.order));
        if final_cost > target {
            diags.push(Diagnostic::error(
                codes::TWO_PASS_INVARIANT,
                Span::Region,
                format!(
                    "final pressure cost {final_cost} exceeds the pass-2 target \
                     {target} (pass-1 best cost {})",
                    r.pass1.best_cost
                ),
            ));
        }
        // Pass 1 starts from the initial heuristic schedule, so its best
        // cost can only be at or below the initial cost.
        let initial_cost = occ.rp_cost(r.initial.prp);
        if r.pass1.best_cost > initial_cost {
            diags.push(Diagnostic::error(
                codes::TWO_PASS_INVARIANT,
                Span::Region,
                format!(
                    "pass-1 best cost {} is above the initial heuristic cost \
                     {initial_cost} it started from",
                    r.pass1.best_cost
                ),
            ));
        }
    }
    diags
}

/// Certifies an exact (branch-and-bound) result.
pub fn certify_exact(ddg: &Ddg, occ: &OccupancyModel, r: &ExactResult) -> Vec<Diagnostic> {
    let mut diags = certify_schedule(
        ddg,
        occ,
        &r.schedule,
        &Claim {
            order: Some(&r.order),
            prp: r.prp,
            occupancy: None,
            length: r.length,
        },
    );
    // C012 — the claimed scalar cost must follow from the claimed PRP.
    let implied = occ.rp_cost(r.prp);
    if r.rp_cost != implied {
        diags.push(Diagnostic::error(
            codes::EXACT_INCONSISTENT,
            Span::Region,
            format!(
                "claimed rp_cost {} but claimed PRP {:?} implies {implied}",
                r.rp_cost, r.prp
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use list_sched::{Heuristic, ListScheduler};
    use sched_ir::figure1;

    #[test]
    fn figure1_known_orders_recompute_to_paper_prps() {
        let ddg = figure1::ddg();
        // Program order A..G peaks at 4 VGPRs; the paper's optimized order
        // peaks at 3 (Figure 1).
        let program: Vec<InstrId> = (0..7).map(InstrId).collect();
        assert_eq!(recompute_prp(&ddg, &program)[0], 4);
        let optimized: Vec<InstrId> = [2, 3, 5, 0, 1, 4, 6].map(InstrId).to_vec();
        assert_eq!(recompute_prp(&ddg, &optimized)[0], 3);
    }

    #[test]
    fn list_schedule_certifies_clean() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
        let diags = certify_list(&ddg, &occ, &r);
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
    }

    #[test]
    fn inflated_prp_claim_is_caught() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let mut r = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
        r.prp[0] += 1;
        let diags = certify_list(&ddg, &occ, &r);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == codes::PRP_MISMATCH));
    }

    #[test]
    fn truncated_schedule_bails_with_wrong_length_only() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let schedule = Schedule::from_cycles(vec![0, 1, 2]);
        let claim = Claim {
            order: None,
            prp: [0; REG_CLASS_COUNT],
            occupancy: None,
            length: 3,
        };
        let diags = certify_schedule(&ddg, &occ, &schedule, &claim);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::WRONG_LENGTH);
    }

    #[test]
    fn invalid_order_does_not_panic_prp_recompute() {
        let ddg = figure1::ddg();
        // Reversed program order puts every use before its def.
        let rev: Vec<InstrId> = (0..7).rev().map(InstrId).collect();
        let prp = recompute_prp(&ddg, &rev);
        assert!(prp[0] <= 7);
    }
}
