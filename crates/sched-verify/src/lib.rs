//! `sched-verify` — an independent verification layer for the scheduler
//! stack.
//!
//! The schedulers in this workspace (list scheduling, sequential ACO, the
//! simulated-GPU parallel ACO, the host-parallel cross-check, and the
//! exact branch-and-bound) all *claim* things about their output: an issue
//! order, a peak register pressure, an occupancy, a length. This crate
//! re-derives every one of those claims from first principles and reports
//! disagreements as structured [`Diagnostic`]s:
//!
//! * [`certify`] — the certificate checker: topological/def-use ordering,
//!   latency satisfaction, single-issue conflicts, from-scratch live-range
//!   peak-pressure recomputation (sharing no code with `reg-pressure`),
//!   occupancy/cost recomputation, lower-bound consistency, and the
//!   two-pass invariant (final pressure cost ≤ the pass-2 target derived
//!   from the pass-1 best cost).
//! * [`lint`] — lints over DDGs (redundant transitive edges, duplicate
//!   defs, isolated nodes, cycles), ACO configurations (degenerate
//!   parameters), and pheromone tables (clamp-band escape, NaN).
//! * [`determinism`] — the determinism checker: identical results across
//!   host thread counts and repeated simulated-GPU runs.
//!
//! [`verify_suite`] wires the checker into the compilation pipeline via
//! [`pipeline::compile_suite_observed`], certifying every schedule the
//! pipeline produces — including the occupancy-capped re-schedules of the
//! kernel post filter, checked under the capped configuration they
//! actually ran with.

pub mod certify;
pub mod determinism;
pub mod diag;
pub mod fingerprint;
pub mod lint;

pub use certify::{
    certify_aco, certify_exact, certify_list, certify_schedule, recompute_prp, Claim,
};
pub use determinism::{
    check_cache_transparency, check_host_determinism, check_parallel_repeatability,
    check_suite_thread_determinism,
};
pub use diag::{codes, has_errors, render, Diagnostic, Severity, Span};
pub use fingerprint::{aco_fingerprint, suite_fingerprint, Fnv};
pub use lint::{lint_config, lint_ddg, lint_ddg_pedantic, lint_pheromone};

use machine_model::OccupancyModel;
use pipeline::{compile_suite_observed, PipelineConfig, RegionCompilation, SuiteRun};
use sched_ir::Ddg;
use workloads::Suite;

/// Verifies one region compilation: DDG lint plus certification of the
/// heuristic schedule and (when present) the ACO result under the
/// configuration it ran with.
pub fn verify_region_compilation(
    ddg: &Ddg,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
    c: &RegionCompilation,
) -> Vec<Diagnostic> {
    let mut diags = lint::lint_ddg(ddg);
    diags.extend(certify::certify_list(ddg, occ, &c.heuristic));
    if let Some(aco) = &c.aco {
        diags.extend(certify::certify_aco(ddg, occ, &cfg.aco, aco));
    }
    diags
}

/// The outcome of verifying a whole suite compilation.
#[derive(Debug)]
pub struct SuiteVerification {
    /// Every diagnostic, tagged with its kernel/region.
    pub diagnostics: Vec<Diagnostic>,
    /// Region compilations observed (including capped re-schedules).
    pub compilations: usize,
    /// Schedules certified (heuristic + ACO per compilation).
    pub schedules: usize,
    /// The suite run itself, so callers can also inspect the results.
    pub run: SuiteRun,
}

impl SuiteVerification {
    /// Whether any error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        diag::has_errors(&self.diagnostics)
    }
}

/// Compiles the suite under `cfg` and certifies every schedule the
/// pipeline produces along the way.
///
/// The configuration itself is linted once; each observed region
/// compilation — primary or occupancy-capped re-schedule — contributes a
/// DDG lint plus certificates for its heuristic and ACO schedules, all
/// tagged with the kernel/region they came from.
pub fn verify_suite(
    suite: &Suite,
    occ: &OccupancyModel,
    cfg: &PipelineConfig,
) -> SuiteVerification {
    let mut diagnostics = lint::lint_config(&cfg.aco);
    let mut compilations = 0usize;
    let mut schedules = 0usize;
    let run = compile_suite_observed(suite, occ, cfg, |k, r, ddg, region_cfg, c| {
        compilations += 1;
        schedules += 1 + c.aco.is_some() as usize;
        diagnostics.extend(
            verify_region_compilation(ddg, occ, region_cfg, c)
                .into_iter()
                .map(|d| d.in_region(k, r)),
        );
    });
    SuiteVerification {
        diagnostics,
        compilations,
        schedules,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::SchedulerKind;
    use workloads::SuiteConfig;

    #[test]
    fn tiny_suite_verifies_clean_under_parallel_aco() {
        let suite = Suite::generate(&SuiteConfig::scaled(5, 0.008));
        let occ = OccupancyModel::vega_like();
        let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
        cfg.aco.blocks = 4;
        cfg.aco.pass2_gate_cycles = 1;
        let v = verify_suite(&suite, &occ, &cfg);
        assert!(v.compilations >= suite.region_count());
        assert!(v.schedules > v.compilations, "some regions must run ACO");
        assert!(v.diagnostics.is_empty(), "{}", diag::render(&v.diagnostics));
    }
}
