//! The diagnostics framework shared by the certificate checker, the lint
//! pass, and the determinism checker.
//!
//! Every problem the verifier finds is reported as a structured
//! [`Diagnostic`] carrying a severity, a stable code (`C0xx` certificate,
//! `L0xx` DDG lint, `A0xx` config lint, `P0xx` pheromone, `D0xx`
//! determinism), a [`Span`] pinpointing where in the input the problem
//! lives, and a human-readable message. Rendering mimics `rustc`:
//!
//! ```text
//! error[C003]: i5 must issue at cycle 7 or later (producer i3 + latency 4), but issues at 6
//!   --> kernel 2, region 0, edge i3 -> i5
//! ```

use sched_ir::{InstrId, Reg};
use std::fmt;

/// How bad a finding is.
///
/// Only [`Severity::Error`] findings invalidate a schedule certificate;
/// warnings and notes are advisory (the CLI `verify` subcommand exits
/// nonzero only on errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: something worth knowing, nothing wrong.
    Note,
    /// Suspicious but not provably incorrect (e.g. a redundant edge).
    Warning,
    /// A violated invariant: the claim being checked is false.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the verified input a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// The region (or claim) as a whole.
    Region,
    /// One instruction.
    Instr(InstrId),
    /// One DDG edge.
    Edge { from: InstrId, to: InstrId },
    /// One register.
    Reg(Reg),
    /// A named configuration field.
    ConfigField(&'static str),
    /// One pheromone-table entry (row `n` is the virtual start row).
    PheromoneEntry { row: usize, col: usize },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Region => write!(f, "region"),
            Span::Instr(id) => write!(f, "instr {id}"),
            Span::Edge { from, to } => write!(f, "edge {from} -> {to}"),
            Span::Reg(r) => write!(f, "reg {r}"),
            Span::ConfigField(name) => write!(f, "config field `{name}`"),
            Span::PheromoneEntry { row, col } => {
                write!(f, "pheromone entry ({row}, {col})")
            }
        }
    }
}

/// Stable diagnostic codes.
///
/// Certificate checks (`C`): emitted when a scheduler's *claim* about a
/// schedule disagrees with an independent recomputation. Lints (`L`, `A`):
/// structural problems in a DDG or a configuration. Pheromone invariants
/// (`P`) and determinism findings (`D`) round out the set.
pub mod codes {
    /// Schedule covers a different number of instructions than the DDG.
    pub const WRONG_LENGTH: &str = "C001";
    /// A register is read at or before the cycle it is defined.
    pub const DEPENDENCE: &str = "C002";
    /// A DDG latency edge is violated.
    pub const LATENCY: &str = "C003";
    /// Two instructions share a cycle on the single-issue machine.
    pub const ISSUE_CONFLICT: &str = "C004";
    /// Claimed peak register pressure differs from the recomputed value.
    pub const PRP_MISMATCH: &str = "C005";
    /// Claimed occupancy differs from the occupancy implied by the PRP.
    pub const OCCUPANCY_MISMATCH: &str = "C006";
    /// Claimed schedule length differs from the schedule's actual length.
    pub const LENGTH_MISMATCH: &str = "C007";
    /// Schedule length is below the DDG length lower bound.
    pub const LENGTH_BELOW_LB: &str = "C008";
    /// Recomputed PRP is below the register-pressure lower bound.
    pub const PRP_BELOW_LB: &str = "C009";
    /// Two-pass invariant broken: final pressure cost exceeds the pass-2
    /// target derived from the pass-1 best cost.
    pub const TWO_PASS_INVARIANT: &str = "C010";
    /// Claimed issue order disagrees with the schedule's cycles.
    pub const ORDER_MISMATCH: &str = "C011";
    /// An exact-scheduler result is internally inconsistent (claimed
    /// `rp_cost` does not match its own PRP).
    pub const EXACT_INCONSISTENT: &str = "C012";

    /// A DDG edge implied by a longer (or equal) transitive path.
    ///
    /// Historically the heuristic lint `L001`; now the *exact*
    /// effective-latency transitive reduction of `sched-analyze`, reported
    /// under its stable S-code. Consumers matching on this constant keep
    /// working; anything matching the literal string must use `"S001"`.
    pub const REDUNDANT_EDGE: &str = "S001";

    /// Deprecated alias for [`REDUNDANT_EDGE`] under its pre-migration
    /// name, kept so diagnostics-consuming code written against the L001
    /// lint still compiles.
    #[deprecated(note = "the heuristic L001 lint became the exact S001 pass; \
                         use REDUNDANT_EDGE")]
    pub const L001_REDUNDANT_EDGE: &str = REDUNDANT_EDGE;
    /// Two instructions define the same register (SSA violation).
    pub const DUPLICATE_DEF: &str = "L002";
    /// An instruction with no edges, defs, or uses.
    pub const ISOLATED_NODE: &str = "L003";
    /// The dependence graph contains a cycle.
    pub const GRAPH_CYCLE: &str = "L004";

    /// `tau_min >= tau_max`: the pheromone band is empty.
    pub const TAU_BOUNDS: &str = "A001";
    /// A zero colony (no ants, blocks, or threads).
    pub const ZERO_ANTS: &str = "A002";
    /// Decay outside `(0, 1]` or non-finite (NaN-producing evaporation).
    pub const BAD_DECAY: &str = "A003";
    /// Exploitation probability `q0` outside `[0, 1]`.
    pub const BAD_Q0: &str = "A004";
    /// Non-finite or negative heuristic exponent / deposit / initial level.
    pub const BAD_PHEROMONE_PARAM: &str = "A005";
    /// A zero iteration budget: the search can never run.
    pub const ZERO_ITERATIONS: &str = "A006";
    /// Stall-wavefront fraction or stall budget outside `[0, 1]`.
    pub const BAD_STALL_FRACTION: &str = "A007";

    /// A pheromone entry is NaN or infinite.
    pub const PHEROMONE_NONFINITE: &str = "P001";
    /// A pheromone entry escaped the `[tau_min, tau_max]` clamp band.
    pub const PHEROMONE_OUT_OF_BOUNDS: &str = "P002";

    /// Host-parallel scheduling produced different results at different
    /// thread counts.
    pub const THREAD_NONDETERMINISM: &str = "D001";
    /// Repeated runs with one configuration disagree.
    pub const RUN_NONDETERMINISM: &str = "D002";
    /// Suite compilation produced different results at different
    /// `host_threads` values.
    pub const SUITE_THREAD_NONDETERMINISM: &str = "D003";
    /// The schedule cache changed a suite result: compilation with the
    /// cache on is not bitwise identical to compilation with it off.
    pub const CACHE_NONTRANSPARENT: &str = "D004";
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// Where it points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Kernel index within a suite, when verifying a suite.
    pub kernel: Option<usize>,
    /// Region index within the kernel, when verifying a suite.
    pub region: Option<usize>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            span,
            message: message.into(),
            kernel: None,
            region: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// A note-severity diagnostic.
    pub fn note(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Tags the diagnostic with its suite location.
    pub fn in_region(mut self, kernel: usize, region: usize) -> Diagnostic {
        self.kernel = Some(kernel);
        self.region = Some(region);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, "  --> ")?;
        if let (Some(k), Some(r)) = (self.kernel, self.region) {
            write!(f, "kernel {k}, region {r}, ")?;
        }
        write!(f, "{}", self.span)
    }
}

/// Whether any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders a batch of diagnostics, one per paragraph, `rustc`-style.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    if errors > 0 || warnings > 0 {
        out.push_str(&format!(
            "verify: {errors} error(s), {warnings} warning(s)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_rustc_like() {
        let d = Diagnostic::error(
            codes::LATENCY,
            Span::Edge {
                from: InstrId(3),
                to: InstrId(5),
            },
            "i5 issues too early",
        )
        .in_region(2, 0);
        let s = d.to_string();
        assert!(s.starts_with("error[C003]: i5 issues too early"));
        assert!(s.contains("--> kernel 2, region 0, edge i3 -> i5"));
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let w = Diagnostic::warning(codes::REDUNDANT_EDGE, Span::Region, "meh");
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error(codes::WRONG_LENGTH, Span::Region, "bad");
        assert!(has_errors(&[w, e]));
    }

    #[test]
    fn render_counts_severities() {
        let diags = vec![
            Diagnostic::error(codes::WRONG_LENGTH, Span::Region, "bad"),
            Diagnostic::warning(codes::REDUNDANT_EDGE, Span::Region, "meh"),
            Diagnostic::note(codes::ISOLATED_NODE, Span::Instr(InstrId(0)), "fyi"),
        ];
        let out = render(&diags);
        assert!(out.contains("verify: 1 error(s), 1 warning(s)"));
    }
}
