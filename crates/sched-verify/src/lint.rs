//! Lints over DDGs, scheduler configurations, and pheromone tables.
//!
//! Unlike the certificate checker, lints look for *suspicious inputs*
//! rather than wrong outputs: edges that carry no information, graphs that
//! violate the SSA assumptions the pressure model rests on, and
//! configurations that would send the ACO search into degenerate behavior
//! (empty pheromone bands, NaN-producing decay, zero colonies).

use crate::diag::{codes, Diagnostic, Span};
use aco::{AcoConfig, PheromoneTable};
use sched_ir::{Ddg, InstrId, Reg};
use std::collections::HashMap;

/// Lints a dependence graph. Structural errors (duplicate defs, cycles)
/// are `error` severity; isolated nodes are notes.
///
/// Redundant transitive edges (`S001`) are *not* reported here: the check
/// is exact, but DDGs built from def-use chains routinely carry edges a
/// longer path already implies, and that is normal, not suspicious. Use
/// [`lint_ddg_pedantic`] to include them.
pub fn lint_ddg(ddg: &Ddg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // L002 — duplicate definitions break the SSA assumption every pressure
    // computation in the stack relies on.
    let mut def_of: HashMap<Reg, InstrId> = HashMap::new();
    for id in ddg.ids() {
        for &r in ddg.instr(id).defs() {
            if let Some(&first) = def_of.get(&r) {
                diags.push(Diagnostic::error(
                    codes::DUPLICATE_DEF,
                    Span::Reg(r),
                    format!("{r} is defined by both {first} and {id} (SSA violation)"),
                ));
            } else {
                def_of.insert(r, id);
            }
        }
    }

    // L003 — a node with no edges, no defs, and no uses constrains nothing
    // and computes nothing; almost certainly a generator bug.
    for id in ddg.ids() {
        let instr = ddg.instr(id);
        if ddg.succs(id).is_empty()
            && ddg.preds(id).is_empty()
            && instr.defs().is_empty()
            && instr.uses().is_empty()
        {
            diags.push(Diagnostic::note(
                codes::ISOLATED_NODE,
                Span::Instr(id),
                format!("{id} has no dependences, defines nothing, and uses nothing"),
            ));
        }
    }

    // L004 — cycle detection. `Ddg` construction already topo-sorts, so
    // this is a defensive re-check (e.g. against hand-built cycle lists);
    // everything after it assumes acyclicity.
    if let Some(id) = find_cycle_member(ddg) {
        diags.push(Diagnostic::error(
            codes::GRAPH_CYCLE,
            Span::Instr(id),
            format!("{id} sits on a dependence cycle; the region is unschedulable"),
        ));
        return diags;
    }

    diags
}

/// [`lint_ddg`] plus the pedantic redundant-edge pass (`S001`).
///
/// Redundancy is *exact*, delegated to `sched-analyze`'s transitive
/// reduction: an edge `a -> b` is redundant iff a path of two or more
/// edges already enforces at least the same **effective** latency
/// (`max(lat, 1)` per edge — on a single-issue machine even a
/// zero-latency edge costs a cycle, which the old raw-latency heuristic
/// failed to credit).
pub fn lint_ddg_pedantic(ddg: &Ddg) -> Vec<Diagnostic> {
    let mut diags = lint_ddg(ddg);
    if diags.iter().any(|d| d.code == codes::GRAPH_CYCLE) {
        return diags;
    }
    let g = sched_analyze::RegionGraph::from_ddg(ddg);
    let order: Vec<u32> = ddg.topo_order().iter().map(|id| id.0).collect();
    for r in sched_analyze::redundant_edges(&g, &order) {
        let (a, b) = (InstrId(r.from), InstrId(r.to));
        diags.push(Diagnostic::warning(
            codes::REDUNDANT_EDGE,
            Span::Edge { from: a, to: b },
            format!(
                "edge {a} -> {b} (latency {}) is implied by a transitive \
                 path of effective latency {}",
                r.latency, r.implied
            ),
        ));
    }
    diags
}

/// Returns a member of a dependence cycle, if any (iterative DFS with
/// colors so deep graphs cannot blow the stack).
fn find_cycle_member(ddg: &Ddg) -> Option<InstrId> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; ddg.len()];
    for root in ddg.ids() {
        if color[root.index()] != WHITE {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root.index()] = GRAY;
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if let Some(&(succ, _)) = ddg.succs(id).get(*next) {
                *next += 1;
                match color[succ.index()] {
                    WHITE => {
                        color[succ.index()] = GRAY;
                        stack.push((succ, 0));
                    }
                    GRAY => return Some(succ),
                    _ => {}
                }
            } else {
                color[id.index()] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Lints an ACO configuration for degenerate parameter settings.
pub fn lint_config(cfg: &AcoConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let field = Span::ConfigField;

    // A001 — an inverted or empty pheromone band pins every entry.
    if cfg.tau_min >= cfg.tau_max {
        diags.push(Diagnostic::error(
            codes::TAU_BOUNDS,
            field("tau_min"),
            format!(
                "tau_min {} >= tau_max {}: the pheromone band is empty and the \
                 search cannot differentiate links",
                cfg.tau_min, cfg.tau_max
            ),
        ));
    }

    // A002 — a zero colony never constructs a schedule.
    if cfg.sequential_ants == 0 {
        diags.push(Diagnostic::error(
            codes::ZERO_ANTS,
            field("sequential_ants"),
            "sequential colony has zero ants",
        ));
    }
    if cfg.blocks == 0 || cfg.threads_per_block == 0 {
        diags.push(Diagnostic::error(
            codes::ZERO_ANTS,
            field("blocks"),
            format!(
                "parallel colony is empty ({} blocks x {} threads)",
                cfg.blocks, cfg.threads_per_block
            ),
        ));
    }

    // A003 — decay outside (0, 1] either freezes the table or explodes it;
    // non-finite decay poisons every entry with NaN on the first update.
    if !cfg.decay.is_finite() || cfg.decay <= 0.0 || cfg.decay > 1.0 {
        diags.push(Diagnostic::error(
            codes::BAD_DECAY,
            field("decay"),
            format!(
                "decay {} is outside (0, 1]; evaporation would corrupt the table",
                cfg.decay
            ),
        ));
    }

    // A004 — q0 is a probability.
    if !cfg.q0.is_finite() || !(0.0..=1.0).contains(&cfg.q0) {
        diags.push(Diagnostic::error(
            codes::BAD_Q0,
            field("q0"),
            format!("exploitation probability q0 {} is outside [0, 1]", cfg.q0),
        ));
    }

    // A005 — the remaining pheromone parameters must be finite and
    // non-negative or selection weights become NaN.
    for (name, value) in [
        ("beta", cfg.beta),
        ("initial_pheromone", cfg.initial_pheromone),
        ("deposit", cfg.deposit),
        ("tau_min", cfg.tau_min),
        ("tau_max", cfg.tau_max),
    ] {
        if !value.is_finite() || value < 0.0 {
            diags.push(Diagnostic::error(
                codes::BAD_PHEROMONE_PARAM,
                field(name),
                format!("{name} = {value} must be finite and non-negative"),
            ));
        }
    }

    // A006 — a zero iteration cap means no pass ever runs.
    if cfg.termination.max_iterations == 0 {
        diags.push(Diagnostic::error(
            codes::ZERO_ITERATIONS,
            field("termination.max_iterations"),
            "max_iterations is 0: neither pass can execute an iteration",
        ));
    }

    // A007 — stall knobs are fractions of [0, 1].
    for (name, value) in [
        (
            "tuning.stall_wavefront_fraction",
            cfg.tuning.stall_wavefront_fraction,
        ),
        ("optional_stall_budget", cfg.optional_stall_budget),
    ] {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            diags.push(Diagnostic::error(
                codes::BAD_STALL_FRACTION,
                field(name),
                format!("{name} = {value} is outside [0, 1]"),
            ));
        }
    }
    diags
}

/// Checks a pheromone table's numeric invariants against the
/// configuration's clamp band via the table's debug hook.
pub fn lint_pheromone(table: &PheromoneTable, cfg: &AcoConfig) -> Vec<Diagnostic> {
    match table.check_invariants(cfg.tau_min, cfg.tau_max) {
        Ok(()) => Vec::new(),
        Err((row, col, value)) => {
            let span = Span::PheromoneEntry { row, col };
            if value.is_finite() {
                vec![Diagnostic::error(
                    codes::PHEROMONE_OUT_OF_BOUNDS,
                    span,
                    format!(
                        "entry ({row}, {col}) = {value} escaped the clamp band \
                         [{}, {}]",
                        cfg.tau_min.min(table.initial()),
                        cfg.tau_max.max(table.initial())
                    ),
                )]
            } else {
                vec![Diagnostic::error(
                    codes::PHEROMONE_NONFINITE,
                    span,
                    format!("entry ({row}, {col}) = {value} is not finite"),
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use sched_ir::{figure1, DdgBuilder};

    #[test]
    fn figure1_lints_clean() {
        let diags = lint_ddg_pedantic(&figure1::ddg());
        assert!(diags.is_empty(), "{}", crate::diag::render(&diags));
    }

    #[test]
    fn redundant_transitive_edge_is_flagged() {
        // a -> b -> c with latency 2+2, plus a direct a -> c of latency 3:
        // the path already forces c four cycles after a.
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [sched_ir::Reg::vgpr(0)], []);
        let m = b.instr("b", [sched_ir::Reg::vgpr(1)], []);
        let c = b.instr("c", [], []);
        b.edge(a, m, 2).unwrap();
        b.edge(m, c, 2).unwrap();
        b.edge(a, c, 3).unwrap();
        let ddg = b.build().unwrap();
        let diags = lint_ddg_pedantic(&ddg);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::REDUNDANT_EDGE && d.span == Span::Edge { from: a, to: c }));
        assert!(
            !lint_ddg(&ddg)
                .iter()
                .any(|d| d.code == codes::REDUNDANT_EDGE),
            "default lint excludes S001"
        );
        assert_eq!(codes::REDUNDANT_EDGE, "S001", "migrated off heuristic L001");
    }

    #[test]
    fn zero_latency_chains_are_now_caught_exactly() {
        // The retired heuristic summed raw latencies (0 + 0 = 0 < 1) and
        // missed this; effective latencies make the path cost 2 cycles.
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [sched_ir::Reg::vgpr(0)], []);
        let m = b.instr("b", [sched_ir::Reg::vgpr(1)], []);
        let c = b.instr("c", [], []);
        b.edge(a, m, 0).unwrap();
        b.edge(m, c, 0).unwrap();
        b.edge(a, c, 1).unwrap();
        let ddg = b.build().unwrap();
        assert!(lint_ddg_pedantic(&ddg)
            .iter()
            .any(|d| d.code == codes::REDUNDANT_EDGE && d.span == Span::Edge { from: a, to: c }));
    }

    #[test]
    fn necessary_long_latency_edge_is_not_flagged() {
        // Direct edge longer than the transitive path: it adds information.
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [sched_ir::Reg::vgpr(0)], []);
        let m = b.instr("b", [sched_ir::Reg::vgpr(1)], []);
        let c = b.instr("c", [], []);
        b.edge(a, m, 1).unwrap();
        b.edge(m, c, 1).unwrap();
        b.edge(a, c, 5).unwrap();
        let ddg = b.build().unwrap();
        assert!(!lint_ddg_pedantic(&ddg)
            .iter()
            .any(|d| d.code == codes::REDUNDANT_EDGE));
    }

    #[test]
    fn duplicate_def_is_an_error() {
        let mut b = DdgBuilder::new();
        let r = sched_ir::Reg::vgpr(0);
        b.instr("a", [r], []);
        b.instr("b", [r], []);
        let ddg = b.build().unwrap();
        let diags = lint_ddg(&ddg);
        assert!(diags.iter().any(|d| d.code == codes::DUPLICATE_DEF));
        assert!(has_errors(&diags));
    }

    #[test]
    fn isolated_node_is_a_note() {
        let mut b = DdgBuilder::new();
        b.instr("nop", [], []);
        b.instr("real", [sched_ir::Reg::vgpr(0)], []);
        let ddg = b.build().unwrap();
        let diags = lint_ddg(&ddg);
        assert!(diags.iter().any(|d| d.code == codes::ISOLATED_NODE));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn paper_config_lints_clean() {
        assert!(lint_config(&AcoConfig::paper(0)).is_empty());
        assert!(lint_config(&AcoConfig::small(7)).is_empty());
    }

    #[test]
    fn degenerate_configs_are_flagged() {
        let mut c = AcoConfig::small(0);
        c.tau_min = 9.0; // above tau_max 8.0
        assert!(lint_config(&c).iter().any(|d| d.code == codes::TAU_BOUNDS));

        let mut c = AcoConfig::small(0);
        c.blocks = 0;
        assert!(lint_config(&c).iter().any(|d| d.code == codes::ZERO_ANTS));

        let mut c = AcoConfig::small(0);
        c.decay = f64::NAN;
        assert!(lint_config(&c).iter().any(|d| d.code == codes::BAD_DECAY));

        let mut c = AcoConfig::small(0);
        c.q0 = 1.5;
        assert!(lint_config(&c).iter().any(|d| d.code == codes::BAD_Q0));

        let mut c = AcoConfig::small(0);
        c.termination.max_iterations = 0;
        assert!(lint_config(&c)
            .iter()
            .any(|d| d.code == codes::ZERO_ITERATIONS));
    }

    #[test]
    fn pheromone_lint_reports_corruption() {
        let cfg = AcoConfig::small(0);
        let mut t = PheromoneTable::new(3, cfg.initial_pheromone);
        assert!(lint_pheromone(&t, &cfg).is_empty());
        t.deposit_order(
            &[sched_ir::InstrId(0), sched_ir::InstrId(1)],
            1e9,
            1e12, // bogus clamp lets the entry escape the configured band
        );
        let diags = lint_pheromone(&t, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PHEROMONE_OUT_OF_BOUNDS);
    }
}
