//! Host wall-clock measurement of suite compilation.
//!
//! Everything else in this harness reports **modeled GPU time** — the
//! simulated microseconds the cost model charges to launches, transfers
//! and construction steps. This module measures the other time domain:
//! real host seconds spent inside [`pipeline::compile_suite`], which is
//! what [`PipelineConfig::host_threads`] actually changes. The two domains
//! never mix: the modeled times inside the returned [`pipeline::SuiteRun`]
//! are byte-identical at any thread count (asserted here via result
//! checksums), while the wall-clock numbers scale with host cores.
//!
//! Results are emitted as a hand-rolled JSON report (`BENCH_wallclock.json`
//! via `scripts/bench.sh`) — the workspace deliberately vendors no JSON
//! serializer.

use machine_model::OccupancyModel;
use pipeline::host_pool::{plan_jobs, run_jobs};
use pipeline::{
    compile_suite_timed, merge_job_results, PipelineConfig, SchedulerKind, SuiteWallclock,
};
use sched_verify::suite_fingerprint;
use workloads::{Suite, SuiteConfig};

/// Version stamp of the JSON report layout. Bump on any key change.
/// v2: per-sample `oversubscribed` flag; `parallel_best_s`/`speedup`
/// consider non-oversubscribed samples only.
/// v3: streaming-merge split — per-sample `merge_overlap_s` (merge busy
/// time hidden under still-running jobs) and `critical_path_s`
/// (`plan + jobs + (merge − overlap)`); `total_s < jobs_s + merge_s`
/// at `threads ≥ 2` is the direct signature of a non-zero overlap.
pub const SCHEMA_VERSION: u32 = 3;

/// Wall-clock samples for one `host_threads` setting.
#[derive(Debug, Clone)]
pub struct ThreadSample {
    /// The `host_threads` value measured.
    pub threads: usize,
    /// Whether this sample requested more workers than the host has
    /// cores. Oversubscribed rows are reported (the scaling tail is
    /// informative) but never feed the headline speedup: claiming a
    /// "16-thread speedup" measured on 4 cores would be dishonest.
    pub oversubscribed: bool,
    /// End-to-end seconds of every repetition, in run order.
    pub all_total_s: Vec<f64>,
    /// Per-stage breakdown of the best (fastest) repetition.
    pub best: SuiteWallclock,
    /// The modeled compile time the run reports (identical across
    /// repetitions and thread counts — it lives in the simulated domain).
    pub modeled_compile_s: f64,
    /// FNV-1a fingerprint of the full `SuiteRun` (identical across
    /// repetitions and thread counts by construction; verified).
    pub checksum: u64,
}

/// A complete wall-clock benchmark report.
#[derive(Debug, Clone)]
pub struct WallclockReport {
    /// Host cores available to the pool (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Scheduler kind the suite was compiled under.
    pub scheduler: SchedulerKind,
    /// Suite generation seed.
    pub suite_seed: u64,
    /// Suite scale factor (fraction of the paper-scale suite).
    pub suite_scale: f64,
    /// Kernel count of the generated suite.
    pub kernels: usize,
    /// Region count of the generated suite.
    pub regions: usize,
    /// Repetitions per thread count (best is reported).
    pub repetitions: usize,
    /// One sample per measured thread count, in measurement order.
    pub samples: Vec<ThreadSample>,
}

impl WallclockReport {
    /// Best end-to-end seconds of the 1-thread (sequential) sample.
    pub fn sequential_best_s(&self) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.threads <= 1)
            .map(|s| s.best.total_s)
    }

    /// Best end-to-end seconds over every multi-thread sample that the
    /// host could genuinely run in parallel (oversubscribed rows are
    /// excluded — their numbers measure scheduler thrash, not the pool).
    pub fn parallel_best_s(&self) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.threads > 1 && !s.oversubscribed)
            .map(|s| s.best.total_s)
            .min_by(f64::total_cmp)
    }

    /// Sequential / parallel best-time ratio (> 1 means the pool won).
    /// `None` when no honest (non-oversubscribed) parallel sample exists.
    pub fn speedup(&self) -> Option<f64> {
        match (self.sequential_best_s(), self.parallel_best_s()) {
            (Some(seq), Some(par)) if par > 0.0 => Some(seq / par),
            _ => None,
        }
    }

    /// Whether every sample produced the same result checksum.
    pub fn checksums_agree(&self) -> bool {
        let mut it = self.samples.iter().map(|s| s.checksum);
        match it.next() {
            Some(first) => it.all(|c| c == first),
            None => true,
        }
    }

    /// Renders the report as a JSON document (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str("  \"benchmark\": \"suite_compile_wallclock\",\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"scheduler\": \"{:?}\",\n", self.scheduler));
        out.push_str(&format!(
            "  \"suite\": {{\"seed\": {}, \"scale\": {}, \"kernels\": {}, \"regions\": {}}},\n",
            self.suite_seed, self.suite_scale, self.kernels, self.regions
        ));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        let checksum = self.samples.first().map_or(0, |s| s.checksum);
        out.push_str(&format!("  \"checksum\": \"{checksum:#018x}\",\n"));
        out.push_str(&format!(
            "  \"checksums_agree\": {},\n",
            self.checksums_agree()
        ));
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let all: Vec<String> = s.all_total_s.iter().map(|t| format!("{t}")).collect();
            out.push_str(&format!(
                "    {{\"threads\": {}, \"oversubscribed\": {}, \
                 \"best_total_s\": {}, \"plan_s\": {}, \
                 \"jobs_s\": {}, \"merge_s\": {}, \"merge_overlap_s\": {}, \
                 \"critical_path_s\": {}, \"all_total_s\": [{}], \
                 \"modeled_compile_s\": {}}}{}\n",
                s.threads,
                s.oversubscribed,
                s.best.total_s,
                s.best.plan_s,
                s.best.jobs_s,
                s.best.merge_s,
                s.best.merge_overlap_s,
                s.best.critical_path_s(),
                all.join(", "),
                s.modeled_compile_s,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
        out.push_str(&format!(
            "  \"sequential_best_s\": {},\n",
            opt(self.sequential_best_s())
        ));
        out.push_str(&format!(
            "  \"parallel_best_s\": {},\n",
            opt(self.parallel_best_s())
        ));
        out.push_str(&format!("  \"speedup\": {}\n", opt(self.speedup())));
        out.push_str("}\n");
        out
    }
}

/// Keys every schema-3 report must contain. Used by the smoke gate (and
/// tests) as a cheap structural check without a JSON parser.
pub const SCHEMA_KEYS: &[&str] = &[
    "\"schema_version\"",
    "\"benchmark\"",
    "\"cores\"",
    "\"scheduler\"",
    "\"suite\"",
    "\"repetitions\"",
    "\"checksum\"",
    "\"checksums_agree\"",
    "\"samples\"",
    "\"threads\"",
    "\"oversubscribed\"",
    "\"best_total_s\"",
    "\"plan_s\"",
    "\"jobs_s\"",
    "\"merge_s\"",
    "\"merge_overlap_s\"",
    "\"critical_path_s\"",
    "\"all_total_s\"",
    "\"modeled_compile_s\"",
    "\"sequential_best_s\"",
    "\"parallel_best_s\"",
    "\"speedup\"",
];

/// Structural validation of a rendered report: every schema key present
/// and braces/brackets balanced. Returns the first problem found.
pub fn validate_schema(json: &str) -> Result<(), String> {
    for key in SCHEMA_KEYS {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mut depth = (0i64, 0i64);
    let mut in_str = false;
    for c in json.chars() {
        match c {
            '"' => in_str = !in_str,
            '{' if !in_str => depth.0 += 1,
            '}' if !in_str => depth.0 -= 1,
            '[' if !in_str => depth.1 += 1,
            ']' if !in_str => depth.1 -= 1,
            _ => {}
        }
        if depth.0 < 0 || depth.1 < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != (0, 0) || in_str {
        return Err("unbalanced braces or unterminated string".into());
    }
    Ok(())
}

/// Fingerprint of the same suite configuration compiled through the
/// retained **barrier reference** merge (all jobs first, one serial merge
/// after, single-threaded) instead of the streaming path `measure` times.
/// The `--smoke` gate asserts this equals the streamed checksum, so every
/// CI run exercises both merge implementations against each other.
pub fn reference_checksum(suite_seed: u64, suite_scale: f64, scheduler: SchedulerKind) -> u64 {
    let suite = Suite::generate(&SuiteConfig::scaled(suite_seed, suite_scale));
    let occ = OccupancyModel::vega_like();
    let mut cfg = PipelineConfig::paper(scheduler, 0);
    cfg.aco.pass2_gate_cycles = 1;
    let cache = cfg.cache.enabled.then(pipeline::ScheduleCache::new);
    let jobs = plan_jobs(&suite, &cfg);
    let results = run_jobs(&suite, &occ, &cfg, &jobs, 1, cache.as_ref(), None);
    let run = merge_job_results(
        &suite,
        &occ,
        &cfg,
        &jobs,
        results,
        cache.as_ref(),
        None,
        |_, _, _, _, _| {},
    );
    suite_fingerprint(&run)
}

/// Measures suite compilation wall-clock across `thread_counts`, running
/// `repetitions` repetitions per count and keeping the fastest.
///
/// Panics if any repetition's `SuiteRun` fingerprint deviates — a wall
/// clock benchmark that changes results would be measuring the wrong
/// thing.
pub fn measure(
    suite_seed: u64,
    suite_scale: f64,
    scheduler: SchedulerKind,
    thread_counts: &[usize],
    repetitions: usize,
) -> WallclockReport {
    let suite = Suite::generate(&SuiteConfig::scaled(suite_seed, suite_scale));
    let occ = OccupancyModel::vega_like();
    let base_cfg = {
        let mut c = PipelineConfig::paper(scheduler, 0);
        c.aco.pass2_gate_cycles = 1;
        c
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = repetitions.max(1);

    let mut samples = Vec::with_capacity(thread_counts.len());
    let mut reference: Option<u64> = None;
    for &threads in thread_counts {
        let cfg = base_cfg.with_host_threads(threads);
        let mut all_total_s = Vec::with_capacity(reps);
        let mut best: Option<SuiteWallclock> = None;
        let mut modeled = 0.0;
        let mut checksum = 0;
        for _ in 0..reps {
            let (run, wall) = compile_suite_timed(&suite, &occ, &cfg);
            checksum = suite_fingerprint(&run);
            match reference {
                None => reference = Some(checksum),
                Some(want) => assert_eq!(
                    checksum, want,
                    "result drifted at {threads} threads: the pool must be \
                     a pure wall-clock knob"
                ),
            }
            modeled = run.compile_time_s;
            all_total_s.push(wall.total_s);
            if best.is_none_or(|b| wall.total_s < b.total_s) {
                best = Some(wall);
            }
        }
        samples.push(ThreadSample {
            threads,
            oversubscribed: threads > cores,
            all_total_s,
            best: best.expect("at least one repetition"),
            modeled_compile_s: modeled,
            checksum,
        });
    }
    WallclockReport {
        cores,
        scheduler,
        suite_seed,
        suite_scale,
        kernels: suite.kernels.len(),
        regions: suite.region_count(),
        repetitions: reps,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_structurally_valid_and_checksums_agree() {
        let report = measure(3, 0.002, SchedulerKind::ParallelAco, &[1, 2], 1);
        assert!(report.checksums_agree());
        assert_eq!(report.samples.len(), 2);
        for s in &report.samples {
            assert!(
                s.best.merge_overlap_s >= 0.0 && s.best.merge_overlap_s <= s.best.merge_s,
                "overlap must be a sub-slice of merge time"
            );
            let cp = s.best.critical_path_s();
            let want = s.best.plan_s + s.best.jobs_s + (s.best.merge_s - s.best.merge_overlap_s);
            assert!((cp - want).abs() < 1e-12);
            if s.threads <= 1 {
                assert_eq!(
                    s.best.merge_overlap_s, 0.0,
                    "inline runs interleave but never overlap"
                );
            }
        }
        let json = report.to_json();
        validate_schema(&json).expect("schema-valid report");
        assert!(json.contains("\"schema_version\": 3"));
        assert!(report.sequential_best_s().is_some());
        if report.cores >= 2 {
            assert!(report.parallel_best_s().is_some());
        } else {
            // On a single-core host the 2-thread row is oversubscribed
            // and must not masquerade as a parallel measurement.
            assert!(report.parallel_best_s().is_none());
            assert!(report.speedup().is_none());
        }
    }

    #[test]
    fn streaming_and_barrier_reference_checksums_agree() {
        let report = measure(3, 0.002, SchedulerKind::ParallelAco, &[1], 1);
        let streamed = report.samples[0].checksum;
        assert_eq!(
            streamed,
            reference_checksum(3, 0.002, SchedulerKind::ParallelAco),
            "streaming merge and barrier reference disagree"
        );
    }

    #[test]
    fn validate_schema_rejects_truncation_and_missing_keys() {
        let report = measure(3, 0.002, SchedulerKind::BaseAmd, &[1], 1);
        let json = report.to_json();
        let truncated = &json[..json.len() - 3];
        assert!(validate_schema(truncated).is_err());
        let gutted = json.replace("\"speedup\"", "\"sidewaysup\"");
        assert!(validate_schema(&gutted).is_err());
    }

    #[test]
    fn oversubscribed_samples_are_labeled_and_excluded_from_speedup() {
        let mut report = measure(3, 0.002, SchedulerKind::BaseAmd, &[1, 2], 1);
        let cores = report.cores;
        for s in &report.samples {
            assert_eq!(s.oversubscribed, s.threads > cores);
        }
        // Fabricate an impossibly fast oversubscribed row: it must not
        // become the headline parallel time.
        let mut fake = report.samples[1].clone();
        fake.threads = cores * 4;
        fake.oversubscribed = true;
        fake.best.total_s = 1e-12;
        report.samples.push(fake);
        let honest = report
            .samples
            .iter()
            .filter(|s| s.threads > 1 && !s.oversubscribed)
            .map(|s| s.best.total_s)
            .min_by(f64::total_cmp);
        assert_eq!(report.parallel_best_s(), honest);
        assert_ne!(report.parallel_best_s(), Some(1e-12));
        assert!(report.to_json().contains("\"oversubscribed\": true"));
    }
}
