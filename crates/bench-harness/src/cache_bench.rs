//! Wall-clock benefit of the content-addressed schedule cache.
//!
//! The cache (`pipeline::ScheduleCache`) memoizes region compilations by
//! canonical DDG content fingerprint plus the scheduling-relevant
//! configuration, re-certifying every hit before adopting it. On a
//! duplicate-heavy suite — the common case for real shader/kernel corpora,
//! where the same unrolled loop body or template instantiation recurs
//! across kernels — a large fraction of ACO searches is skipped entirely.
//! This module measures that skip as real host seconds: the same suite is
//! compiled with the cache off (the reference) and on, and the report
//! records both wall clocks, the hit rate, and proof (via result
//! fingerprints) that the cache changed nothing but time.
//!
//! Results are emitted as a hand-rolled JSON report (`BENCH_cache.json`
//! via `scripts/bench.sh`) — the workspace deliberately vendors no JSON
//! serializer.

use machine_model::OccupancyModel;
use pipeline::{compile_suite_timed, CacheStats, PipelineConfig, SchedulerKind};
use sched_verify::suite_fingerprint;
use workloads::{Suite, SuiteConfig};

/// Version stamp of the JSON report layout. Bump on any key change.
pub const SCHEMA_VERSION: u32 = 1;

/// Wall-clock samples for one cache setting (off or on).
#[derive(Debug, Clone)]
pub struct CacheSample {
    /// Whether the schedule cache was enabled for this sample.
    pub enabled: bool,
    /// End-to-end seconds of every repetition, in run order.
    pub all_total_s: Vec<f64>,
    /// Best (fastest) end-to-end seconds.
    pub best_total_s: f64,
    /// Cache counters of the *last* repetition. Exact hit/miss splits can
    /// vary between repetitions at `host_threads > 1` (two workers racing
    /// to first-compile the same content), but `lookups()` and the results
    /// themselves cannot.
    pub stats: CacheStats,
    /// FNV-1a fingerprint of the full `SuiteRun` (identical across
    /// repetitions and cache settings by construction; verified).
    pub checksum: u64,
}

/// A complete cache benchmark report: one duplicate-heavy suite compiled
/// with the cache off and on at a fixed thread count.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Host cores available to the pool.
    pub cores: usize,
    /// Scheduler kind the suite was compiled under.
    pub scheduler: SchedulerKind,
    /// Suite generation seed.
    pub suite_seed: u64,
    /// Suite scale factor (fraction of the paper-scale suite).
    pub suite_scale: f64,
    /// Kernel count of the generated suite.
    pub kernels: usize,
    /// Region count of the generated suite.
    pub regions: usize,
    /// Content-distinct region count (full structural equality classes).
    pub distinct_regions: usize,
    /// Fraction of regions that are duplicates of an earlier one.
    pub dedup_ratio: f64,
    /// `host_threads` both runs used.
    pub threads: usize,
    /// Repetitions per cache setting (best is reported).
    pub repetitions: usize,
    /// The cache-off reference sample.
    pub off: CacheSample,
    /// The cache-on sample.
    pub on: CacheSample,
}

impl CacheReport {
    /// Hit rate of the cache-on run: hits / (hits + misses + bypasses).
    pub fn hit_rate(&self) -> f64 {
        self.on.stats.hit_rate()
    }

    /// Cache-off / cache-on best-time ratio (> 1 means the cache won).
    pub fn speedup(&self) -> Option<f64> {
        if self.on.best_total_s > 0.0 {
            Some(self.off.best_total_s / self.on.best_total_s)
        } else {
            None
        }
    }

    /// Whether both samples produced the same result checksum — the
    /// transparency contract in one bit.
    pub fn fingerprints_agree(&self) -> bool {
        self.off.checksum == self.on.checksum
    }

    /// Renders the report as a JSON document (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str("  \"benchmark\": \"suite_compile_cache\",\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"scheduler\": \"{:?}\",\n", self.scheduler));
        out.push_str(&format!(
            "  \"suite\": {{\"seed\": {}, \"scale\": {}, \"kernels\": {}, \
             \"regions\": {}, \"distinct_regions\": {}, \"dedup_ratio\": {}}},\n",
            self.suite_seed,
            self.suite_scale,
            self.kernels,
            self.regions,
            self.distinct_regions,
            self.dedup_ratio
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str(&format!(
            "  \"checksum\": \"{:#018x}\",\n",
            self.off.checksum
        ));
        out.push_str(&format!(
            "  \"fingerprints_agree\": {},\n",
            self.fingerprints_agree()
        ));
        out.push_str("  \"samples\": [\n");
        for (i, s) in [&self.off, &self.on].into_iter().enumerate() {
            let all: Vec<String> = s.all_total_s.iter().map(|t| format!("{t}")).collect();
            out.push_str(&format!(
                "    {{\"cache_enabled\": {}, \"best_total_s\": {}, \
                 \"all_total_s\": [{}], \"hits\": {}, \"misses\": {}, \
                 \"inserts\": {}, \"bypasses\": {}}}{}\n",
                s.enabled,
                s.best_total_s,
                all.join(", "),
                s.stats.hits,
                s.stats.misses,
                s.stats.inserts,
                s.stats.bypasses,
                if i == 0 { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cache_off_best_s\": {},\n",
            self.off.best_total_s
        ));
        out.push_str(&format!(
            "  \"cache_on_best_s\": {},\n",
            self.on.best_total_s
        ));
        out.push_str(&format!("  \"hit_rate\": {},\n", self.hit_rate()));
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
        out.push_str(&format!("  \"speedup\": {}\n", opt(self.speedup())));
        out.push_str("}\n");
        out
    }
}

/// Keys every schema-1 report must contain. Used by the smoke gate (and
/// tests) as a cheap structural check without a JSON parser.
pub const SCHEMA_KEYS: &[&str] = &[
    "\"schema_version\"",
    "\"benchmark\"",
    "\"cores\"",
    "\"scheduler\"",
    "\"suite\"",
    "\"dedup_ratio\"",
    "\"distinct_regions\"",
    "\"threads\"",
    "\"repetitions\"",
    "\"checksum\"",
    "\"fingerprints_agree\"",
    "\"samples\"",
    "\"cache_enabled\"",
    "\"best_total_s\"",
    "\"all_total_s\"",
    "\"hits\"",
    "\"misses\"",
    "\"inserts\"",
    "\"bypasses\"",
    "\"cache_off_best_s\"",
    "\"cache_on_best_s\"",
    "\"hit_rate\"",
    "\"speedup\"",
];

/// Structural validation of a rendered report: every schema key present
/// and braces/brackets balanced. Returns the first problem found.
pub fn validate_schema(json: &str) -> Result<(), String> {
    for key in SCHEMA_KEYS {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mut depth = (0i64, 0i64);
    let mut in_str = false;
    for c in json.chars() {
        match c {
            '"' => in_str = !in_str,
            '{' if !in_str => depth.0 += 1,
            '}' if !in_str => depth.0 -= 1,
            '[' if !in_str => depth.1 += 1,
            ']' if !in_str => depth.1 -= 1,
            _ => {}
        }
        if depth.0 < 0 || depth.1 < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != (0, 0) || in_str {
        return Err("unbalanced braces or unterminated string".into());
    }
    Ok(())
}

/// Measures cache-off vs cache-on wall clock on a duplicate-heavy suite,
/// running `repetitions` repetitions per setting and keeping the fastest.
///
/// Panics if any repetition's `SuiteRun` fingerprint deviates from the
/// cache-off reference — a cache that changes results would be a
/// miscompile, not an optimization.
pub fn measure(
    suite_seed: u64,
    suite_scale: f64,
    scheduler: SchedulerKind,
    threads: usize,
    repetitions: usize,
) -> CacheReport {
    let suite = Suite::generate(&SuiteConfig::duplicate_heavy(suite_seed, suite_scale));
    let dup = suite.duplicate_stats();
    let occ = OccupancyModel::vega_like();
    let base_cfg = {
        let mut c = PipelineConfig::paper(scheduler, 0);
        c.aco.pass2_gate_cycles = 1;
        c.with_host_threads(threads)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = repetitions.max(1);

    let mut reference: Option<u64> = None;
    let mut sample = |enabled: bool| -> CacheSample {
        let cfg = base_cfg.with_cache(enabled);
        let mut all_total_s = Vec::with_capacity(reps);
        let mut best_total_s = f64::INFINITY;
        let mut stats = CacheStats::default();
        let mut checksum = 0;
        for _ in 0..reps {
            let (run, wall) = compile_suite_timed(&suite, &occ, &cfg);
            checksum = suite_fingerprint(&run);
            match reference {
                None => reference = Some(checksum),
                Some(want) => assert_eq!(
                    checksum,
                    want,
                    "result drifted with cache {}: memoization must be a \
                     pure wall-clock knob",
                    if enabled { "on" } else { "off" }
                ),
            }
            stats = run.cache;
            all_total_s.push(wall.total_s);
            best_total_s = best_total_s.min(wall.total_s);
        }
        CacheSample {
            enabled,
            all_total_s,
            best_total_s,
            stats,
            checksum,
        }
    };
    let off = sample(false);
    let on = sample(true);

    CacheReport {
        cores,
        scheduler,
        suite_seed,
        suite_scale,
        kernels: suite.kernels.len(),
        regions: dup.regions,
        distinct_regions: dup.distinct,
        dedup_ratio: dup.dedup_ratio(),
        threads,
        repetitions: reps,
        off,
        on,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_structurally_valid_and_fingerprints_agree() {
        let report = measure(3, 0.004, SchedulerKind::ParallelAco, 2, 1);
        assert!(report.fingerprints_agree());
        assert_eq!(report.off.stats, CacheStats::default());
        assert!(report.on.stats.hits > 0, "duplicate-heavy suite must hit");
        assert!(report.hit_rate() > 0.0);
        assert!(report.dedup_ratio >= 0.30);
        let json = report.to_json();
        validate_schema(&json).expect("schema-valid report");
    }

    #[test]
    fn validate_schema_rejects_truncation_and_missing_keys() {
        let report = measure(3, 0.004, SchedulerKind::BaseAmd, 1, 1);
        let json = report.to_json();
        let truncated = &json[..json.len() - 3];
        assert!(validate_schema(truncated).is_err());
        let gutted = json.replace("\"speedup\"", "\"sidewaysup\"");
        assert!(validate_schema(&gutted).is_err());
    }
}
