//! Search-effort benefit of the self-tuning ACO store.
//!
//! The tuner (`aco_tune`) attacks the same redundancy the schedule cache
//! does, but from the other side: where the cache answers *identical*
//! regions for free, the tuner transfers knowledge between *similar*
//! regions — same template class, different instance. Per feature class
//! it learns which `AcoConfig` arm reaches the fixed-config schedule
//! length in fewer iterations, and per structure fingerprint it records
//! the winning order so the next instance's pheromone trails start near
//! the answer instead of uniform (`WARM_NO_IMPROVE_BUDGET` then cuts the
//! convergence leash).
//!
//! This module measures the payoff on a duplicate-heavy suite with the
//! schedule cache **off** (so every region really searches): the suite is
//! compiled once per repetition with the fixed paper configuration and
//! once through a tuning store pre-warmed by `warmup_rounds` passes. The
//! report records total ACO iterations (pass 1 + pass 2 summed over every
//! region), total schedule length, and wall clock for both settings. The
//! headline claims are `iterations_saved` (tuned must search strictly
//! less) and `length_regression = false` (tuned must end at the same or
//! better total length).
//!
//! Results are emitted as a hand-rolled JSON report (`BENCH_tuning.json`
//! via `scripts/bench.sh --tuning-out`) — the workspace deliberately
//! vendors no JSON serializer.

use aco_tune::{TuneStore, TunerStats};
use machine_model::OccupancyModel;
use pipeline::{compile_suite_with_stores, PipelineConfig, SchedulerKind, SuiteRun};
use workloads::{Suite, SuiteConfig};

/// Version stamp of the JSON report layout. Bump on any key change.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregates of one suite compilation under one tuning setting.
#[derive(Debug, Clone)]
pub struct TuneSample {
    /// Whether the self-tuning store drove this sample.
    pub tuned: bool,
    /// ACO iterations summed over every region (pass 1 + pass 2) of the
    /// measured repetition — identical across repetitions of the same
    /// setting, the searches are deterministic.
    pub total_iterations: u64,
    /// Final schedule length summed over every region.
    pub total_length: u64,
    /// End-to-end seconds of every repetition, in run order.
    pub all_total_s: Vec<f64>,
    /// Best (fastest) end-to-end seconds.
    pub best_total_s: f64,
}

/// A complete tuning benchmark report: one duplicate-heavy suite compiled
/// with the fixed paper configuration and through a pre-warmed tuning
/// store, cache off in both settings.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Host cores available to the pool.
    pub cores: usize,
    /// Scheduler kind the suite was compiled under.
    pub scheduler: SchedulerKind,
    /// Suite generation seed.
    pub suite_seed: u64,
    /// Suite scale factor (fraction of the paper-scale suite).
    pub suite_scale: f64,
    /// Kernel count of the generated suite.
    pub kernels: usize,
    /// Region count of the generated suite.
    pub regions: usize,
    /// Content-distinct region count (full structural equality classes).
    pub distinct_regions: usize,
    /// Fraction of regions that are duplicates of an earlier one.
    pub dedup_ratio: f64,
    /// `host_threads` both settings used.
    pub threads: usize,
    /// Learning passes over the suite before the measured tuned run.
    pub warmup_rounds: usize,
    /// Repetitions per setting (best wall clock is reported).
    pub repetitions: usize,
    /// The fixed-configuration reference sample.
    pub fixed: TuneSample,
    /// The tuned sample (measured with the warmed store).
    pub tuned: TuneSample,
    /// Tuner counters accumulated over warmup + measurement.
    pub tuner: TunerStats,
}

impl TuningReport {
    /// Iterations the tuned run avoided relative to fixed (negative would
    /// mean the tuner searched *more*).
    pub fn iterations_saved(&self) -> i64 {
        self.fixed.total_iterations as i64 - self.tuned.total_iterations as i64
    }

    /// Whether the tuned run ended with a worse total schedule length.
    pub fn length_regression(&self) -> bool {
        self.tuned.total_length > self.fixed.total_length
    }

    /// Fixed / tuned best-wall-clock ratio (> 1 means tuning also won
    /// real time; ~1 means it was free).
    pub fn wallclock_ratio(&self) -> Option<f64> {
        if self.tuned.best_total_s > 0.0 {
            Some(self.fixed.best_total_s / self.tuned.best_total_s)
        } else {
            None
        }
    }

    /// Renders the report as a JSON document (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str("  \"benchmark\": \"suite_compile_tuning\",\n");
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"scheduler\": \"{:?}\",\n", self.scheduler));
        out.push_str(&format!(
            "  \"suite\": {{\"seed\": {}, \"scale\": {}, \"kernels\": {}, \
             \"regions\": {}, \"distinct_regions\": {}, \"dedup_ratio\": {}}},\n",
            self.suite_seed,
            self.suite_scale,
            self.kernels,
            self.regions,
            self.distinct_regions,
            self.dedup_ratio
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"warmup_rounds\": {},\n", self.warmup_rounds));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str("  \"samples\": [\n");
        for (i, s) in [&self.fixed, &self.tuned].into_iter().enumerate() {
            let all: Vec<String> = s.all_total_s.iter().map(|t| format!("{t}")).collect();
            out.push_str(&format!(
                "    {{\"tuned\": {}, \"total_iterations\": {}, \
                 \"total_length\": {}, \"best_total_s\": {}, \
                 \"all_total_s\": [{}]}}{}\n",
                s.tuned,
                s.total_iterations,
                s.total_length,
                s.best_total_s,
                all.join(", "),
                if i == 0 { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"tuner\": {{\"choices\": {}, \"explored\": {}, \"committed\": {}, \
             \"warm_hits\": {}, \"warm_misses\": {}, \"observations\": {}, \
             \"warm_records\": {}}},\n",
            self.tuner.choices,
            self.tuner.explored,
            self.tuner.committed,
            self.tuner.warm_hits,
            self.tuner.warm_misses,
            self.tuner.observations,
            self.tuner.warm_records
        ));
        out.push_str(&format!(
            "  \"iterations_saved\": {},\n",
            self.iterations_saved()
        ));
        out.push_str(&format!(
            "  \"length_regression\": {},\n",
            self.length_regression()
        ));
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
        out.push_str(&format!(
            "  \"wallclock_ratio\": {}\n",
            opt(self.wallclock_ratio())
        ));
        out.push_str("}\n");
        out
    }
}

/// Keys every schema-1 report must contain. Used by the smoke gate (and
/// tests) as a cheap structural check without a JSON parser.
pub const SCHEMA_KEYS: &[&str] = &[
    "\"schema_version\"",
    "\"benchmark\"",
    "\"cores\"",
    "\"scheduler\"",
    "\"suite\"",
    "\"dedup_ratio\"",
    "\"distinct_regions\"",
    "\"threads\"",
    "\"warmup_rounds\"",
    "\"repetitions\"",
    "\"samples\"",
    "\"tuned\"",
    "\"total_iterations\"",
    "\"total_length\"",
    "\"best_total_s\"",
    "\"all_total_s\"",
    "\"tuner\"",
    "\"choices\"",
    "\"warm_hits\"",
    "\"observations\"",
    "\"iterations_saved\"",
    "\"length_regression\"",
    "\"wallclock_ratio\"",
];

/// Structural validation of a rendered report: every schema key present
/// and braces/brackets balanced. Returns the first problem found.
pub fn validate_schema(json: &str) -> Result<(), String> {
    for key in SCHEMA_KEYS {
        if !json.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mut depth = (0i64, 0i64);
    let mut in_str = false;
    for c in json.chars() {
        match c {
            '"' => in_str = !in_str,
            '{' if !in_str => depth.0 += 1,
            '}' if !in_str => depth.0 -= 1,
            '[' if !in_str => depth.1 += 1,
            ']' if !in_str => depth.1 -= 1,
            _ => {}
        }
        if depth.0 < 0 || depth.1 < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != (0, 0) || in_str {
        return Err("unbalanced braces or unterminated string".into());
    }
    Ok(())
}

/// Iterations (pass 1 + pass 2) summed over every region of a run.
fn total_iterations(run: &SuiteRun) -> u64 {
    run.regions
        .iter()
        .map(|r| r.pass1_iterations as u64 + r.pass2_iterations as u64)
        .sum()
}

/// Final schedule length summed over every region of a run.
fn total_length(run: &SuiteRun) -> u64 {
    run.regions.iter().map(|r| r.length as u64).sum()
}

/// Measures fixed-config vs tuned+warm-started suite compilation on a
/// duplicate-heavy suite, schedule cache off in both settings so every
/// region genuinely searches.
///
/// The tuned setting first learns for `warmup_rounds` full passes over
/// the suite (choices + observations accumulate in one store), then the
/// measured repetitions run against the warmed store. Wall clock is taken
/// around the same entry point ([`compile_suite_with_stores`]) in both
/// settings.
pub fn measure(
    suite_seed: u64,
    suite_scale: f64,
    scheduler: SchedulerKind,
    threads: usize,
    warmup_rounds: usize,
    repetitions: usize,
) -> TuningReport {
    use std::time::Instant;

    let suite = Suite::generate(&SuiteConfig::duplicate_heavy(suite_seed, suite_scale));
    let dup = suite.duplicate_stats();
    let occ = OccupancyModel::vega_like();
    let cfg = {
        let mut c = PipelineConfig::paper(scheduler, 0);
        c.aco.pass2_gate_cycles = 1;
        c.with_host_threads(threads)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = repetitions.max(1);
    let warmup = warmup_rounds.max(1);

    let sample = |store: Option<&TuneStore>| -> TuneSample {
        let mut all_total_s = Vec::with_capacity(reps);
        let mut best_total_s = f64::INFINITY;
        let mut iterations = 0;
        let mut length = 0;
        for _ in 0..reps {
            let t = Instant::now();
            let run =
                compile_suite_with_stores(&suite, &occ, &cfg, None, store, |_, _, _, _, _| {});
            let wall = t.elapsed().as_secs_f64();
            iterations = total_iterations(&run);
            length = total_length(&run);
            all_total_s.push(wall);
            best_total_s = best_total_s.min(wall);
        }
        TuneSample {
            tuned: store.is_some(),
            total_iterations: iterations,
            total_length: length,
            all_total_s,
            best_total_s,
        }
    };

    let fixed = sample(None);

    // Learning phase: every pass feeds arm observations and warm-start
    // records back into one shared store; by the measured repetitions the
    // per-class bandit has committed and the warm hints are in place.
    let store = TuneStore::new();
    for _ in 0..warmup {
        let _ =
            compile_suite_with_stores(&suite, &occ, &cfg, None, Some(&store), |_, _, _, _, _| {});
    }
    let tuned = sample(Some(&store));

    TuningReport {
        cores,
        scheduler,
        suite_seed,
        suite_scale,
        kernels: suite.kernels.len(),
        regions: dup.regions,
        distinct_regions: dup.distinct,
        dedup_ratio: dup.dedup_ratio(),
        threads,
        warmup_rounds: warmup,
        repetitions: reps,
        fixed,
        tuned,
        tuner: store.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_run_searches_less_without_length_regression() {
        let report = measure(3, 0.004, SchedulerKind::ParallelAco, 2, 2, 1);
        assert!(!report.length_regression(), "tuned total length regressed");
        assert!(
            report.iterations_saved() > 0,
            "tuned run must search strictly fewer iterations \
             (fixed {}, tuned {})",
            report.fixed.total_iterations,
            report.tuned.total_iterations
        );
        assert!(report.tuner.warm_hits > 0, "warm hints never applied");
        let json = report.to_json();
        validate_schema(&json).expect("schema-valid report");
    }

    #[test]
    fn validate_schema_rejects_truncation_and_missing_keys() {
        let report = measure(3, 0.004, SchedulerKind::SequentialAco, 1, 1, 1);
        let json = report.to_json();
        let truncated = &json[..json.len() - 3];
        assert!(validate_schema(truncated).is_err());
        let gutted = json.replace("\"wallclock_ratio\"", "\"sidewaysup\"");
        assert!(validate_schema(&gutted).is_err());
    }
}
