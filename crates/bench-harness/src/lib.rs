//! Shared helpers for the table/figure reproduction harnesses.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target (`cargo bench -p bench-harness --bench <name>`); this library
//! holds what they share: region sampling by the paper's size bands,
//! speedup measurement between the sequential and parallel schedulers,
//! aggregate statistics, and plain-text table rendering.

use aco::{AcoConfig, ParallelScheduler, SequentialScheduler};
use machine_model::OccupancyModel;
use sched_ir::Ddg;

pub mod cache_bench;
pub mod tuning_bench;
pub mod wallclock;

/// The paper's region-size bands: `[1-49]`, `[50-99]`, `>= 100`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeBand {
    /// 1–49 instructions.
    Small,
    /// 50–99 instructions.
    Medium,
    /// 100 or more instructions.
    Large,
}

impl SizeBand {
    /// All bands in table order.
    pub const ALL: [SizeBand; 3] = [SizeBand::Small, SizeBand::Medium, SizeBand::Large];

    /// The band of a region size.
    pub fn of(n: usize) -> SizeBand {
        match n {
            0..=49 => SizeBand::Small,
            50..=99 => SizeBand::Medium,
            _ => SizeBand::Large,
        }
    }

    /// The column header the paper uses.
    pub fn label(self) -> &'static str {
        match self {
            SizeBand::Small => "1-49",
            SizeBand::Medium => "50-99",
            SizeBand::Large => ">=100",
        }
    }
}

/// Samples `count` regions inside one size band (deterministic in `seed`).
pub fn regions_in_band(band: SizeBand, count: usize, seed: u64) -> Vec<Ddg> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x8B1D_BA5E);
    (0..count)
        .map(|_| {
            // Generated sizes can deviate from the target by up to ~20%, so
            // sample conservatively and retry the rare escapee.
            loop {
                let target = match band {
                    SizeBand::Small => rng.gen_range(10..42),
                    SizeBand::Medium => rng.gen_range(58..92),
                    SizeBand::Large => rng.gen_range(120..400),
                };
                let ddg = workloads::patterns::sized(target, rng.gen());
                if SizeBand::of(ddg.len()) == band {
                    break ddg;
                }
            }
        })
        .collect()
}

/// One region's sequential-vs-parallel measurement.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupRecord {
    /// Region size.
    pub size: usize,
    /// Per-pass speedups `seq_time / par_time`, `None` when the pass did
    /// not run identically in both schedulers (not *comparable* in the
    /// paper's sense).
    pub pass1: Option<f64>,
    /// Pass-2 speedup, when comparable.
    pub pass2: Option<f64>,
    /// Whether ACO processed the region at all in pass 1 / pass 2.
    pub pass1_processed: bool,
    /// Pass-2 processing flag.
    pub pass2_processed: bool,
}

/// Runs both schedulers on a region and extracts per-pass speedups.
///
/// Following Section VI-C, a pass is *comparable* only when both
/// schedulers took the same number of iterations on it.
pub fn measure_speedup(ddg: &Ddg, occ: &OccupancyModel, cfg: AcoConfig) -> SpeedupRecord {
    let seq = SequentialScheduler::new(cfg).schedule(ddg, occ);
    let par = ParallelScheduler::new(cfg).schedule(ddg, occ).result;
    let cmp = |s: &aco::PassStats, p: &aco::PassStats| -> Option<f64> {
        if s.iterations > 0 && s.iterations == p.iterations && p.time_us > 0.0 {
            Some(s.time_us / p.time_us)
        } else {
            None
        }
    };
    SpeedupRecord {
        size: ddg.len(),
        pass1: cmp(&seq.pass1, &par.pass1),
        pass2: cmp(&seq.pass2, &par.pass2),
        pass1_processed: par.pass1.iterations > 0,
        pass2_processed: par.pass2.iterations > 0,
    }
}

/// Geometric mean; `None` when empty.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Renders a fixed-width table with a title row, as the paper's tables.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("{line}");
    let hdr: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!(" {:<w$} ", h, w = widths[i]))
        .collect();
    println!("{}", hdr.join("|"));
    println!("{line}");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>w$} ", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", cells.join("|"));
    }
    println!("{line}");
}

/// Renders a unit-width text histogram (the Figure 2/3 distributions).
pub fn print_histogram(title: &str, values: &[f64], bucket_width: f64) {
    println!("\n{title}");
    if values.is_empty() {
        println!("  (no data)");
        return;
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let buckets = ((max / bucket_width).ceil() as usize + 1).max(1);
    let mut counts = vec![0usize; buckets];
    for &v in values {
        counts[((v / bucket_width) as usize).min(buckets - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat((c * 50).div_ceil(peak));
        println!(
            "  [{:>5.1}-{:>5.1}) {:>4} {}",
            i as f64 * bucket_width,
            (i + 1) as f64 * bucket_width,
            c,
            bar
        );
    }
}

/// Formats a float with two decimals, or "-" for `None`.
pub fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| format!("{v:.2}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_sizes() {
        assert_eq!(SizeBand::of(1), SizeBand::Small);
        assert_eq!(SizeBand::of(49), SizeBand::Small);
        assert_eq!(SizeBand::of(50), SizeBand::Medium);
        assert_eq!(SizeBand::of(99), SizeBand::Medium);
        assert_eq!(SizeBand::of(100), SizeBand::Large);
    }

    #[test]
    fn regions_in_band_respect_bounds() {
        for band in SizeBand::ALL {
            for d in regions_in_band(band, 10, 1) {
                assert_eq!(
                    SizeBand::of(d.len()),
                    band,
                    "size {} escaped band {band:?}",
                    d.len()
                );
            }
        }
    }

    #[test]
    fn geomean_of_known_values() {
        assert!(geomean(&[]).is_none());
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn measure_speedup_runs_both_schedulers() {
        let ddg = workloads::patterns::sized(100, 9);
        let occ = OccupancyModel::vega_like();
        let mut cfg = AcoConfig::small(1);
        cfg.blocks = 8;
        let r = measure_speedup(&ddg, &occ, cfg);
        assert_eq!(r.size, ddg.len());
        if let Some(s) = r.pass1 {
            assert!(s > 0.0);
        }
    }
}
