//! `tuning_bench` — search-effort benchmark of the self-tuning ACO store.
//!
//! Compiles one duplicate-heavy suite with the fixed paper configuration
//! and through a pre-warmed tuning store (schedule cache off in both
//! settings), and writes a JSON report (default `BENCH_tuning.json`) with
//! total ACO iterations, total schedule length, tuner counters and wall
//! clocks. Invoked by `scripts/bench.sh --tuning-out`.
//!
//! ```text
//! tuning_bench [--smoke] [--out PATH] [--threads N] [--warmup N]
//!              [--reps N] [--seed N] [--scale F] [--scheduler KIND]
//! ```
//!
//! `--smoke` runs a tiny suite and then **gates**: the report must pass
//! structural schema validation, the tuned run must reach the fixed
//! configuration's total schedule length (or better) in strictly fewer
//! total iterations, warm hints must actually fire, and the tuned wall
//! clock must not lose to fixed by more than 25% (the tuned searches are
//! shorter, but arm exploration rides along). Any violation exits
//! non-zero, failing `scripts/check.sh`.

use bench_harness::tuning_bench::{measure, validate_schema, TuningReport};
use pipeline::SchedulerKind;

struct Args {
    smoke: bool,
    out: String,
    threads: Option<usize>,
    warmup: usize,
    reps: usize,
    seed: u64,
    scale: f64,
    scheduler: SchedulerKind,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_tuning.json".to_string(),
        threads: None,
        warmup: 2,
        reps: 3,
        seed: 5,
        scale: 0.02,
        scheduler: SchedulerKind::ParallelAco,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value("--out"),
            "--threads" => {
                args.threads = Some(
                    value("--threads")
                        .parse()
                        .expect("--threads takes a number"),
                );
            }
            "--warmup" => {
                args.warmup = value("--warmup").parse().expect("--warmup takes a number");
            }
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes a number"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes a number"),
            "--scale" => args.scale = value("--scale").parse().expect("--scale takes a float"),
            "--scheduler" => {
                let name = value("--scheduler");
                args.scheduler = SchedulerKind::ALL
                    .into_iter()
                    .find(|k| format!("{k:?}").eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| panic!("unknown scheduler {name}"));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn smoke_gate(report: &TuningReport, json: &str) {
    validate_schema(json).unwrap_or_else(|e| panic!("smoke: schema violation: {e}"));
    assert!(
        !report.length_regression(),
        "smoke: tuned total length {} regressed against fixed {}",
        report.tuned.total_length,
        report.fixed.total_length
    );
    assert!(
        report.iterations_saved() > 0,
        "smoke: tuned run searched {} iterations, fixed {} — tuning must \
         strictly reduce search effort on a duplicate-heavy suite",
        report.tuned.total_iterations,
        report.fixed.total_iterations
    );
    assert!(
        report.tuner.warm_hits > 0,
        "smoke: no warm-start hint ever applied (warm_records {})",
        report.tuner.warm_records
    );
    let (fixed, tuned) = (report.fixed.best_total_s, report.tuned.best_total_s);
    assert!(
        tuned <= fixed * 1.25,
        "smoke: tuned best {tuned:.4}s lost to fixed {fixed:.4}s by more \
         than the 25% allowance"
    );
    eprintln!("smoke: tuning gate passed");
}

fn main() {
    let mut args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if args.smoke {
        args.scale = 0.008;
        args.reps = args.reps.min(2);
        args.warmup = args.warmup.min(2);
    }
    let threads = args.threads.unwrap_or(cores);
    let report = measure(
        args.seed,
        args.scale,
        args.scheduler,
        threads,
        args.warmup,
        args.reps,
    );
    let json = report.to_json();
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    eprintln!(
        "suite: {} regions, {} distinct (dedup ratio {:.3})",
        report.regions, report.distinct_regions, report.dedup_ratio
    );
    for s in [&report.fixed, &report.tuned] {
        eprintln!(
            "{:<5} {:>8} iterations, total length {:>7}, best {:.4}s",
            if s.tuned { "tuned" } else { "fixed" },
            s.total_iterations,
            s.total_length,
            s.best_total_s
        );
    }
    eprintln!(
        "iterations saved: {} ({} warm hits, {} arm choices)",
        report.iterations_saved(),
        report.tuner.warm_hits,
        report.tuner.choices
    );
    eprintln!("wrote {}", args.out);
    if args.smoke {
        smoke_gate(&report, &json);
    }
}
