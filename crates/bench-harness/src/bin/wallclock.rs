//! `wallclock` — host wall-clock benchmark of suite compilation.
//!
//! Measures real host seconds spent in `pipeline::compile_suite` across a
//! range of `host_threads` values and writes a JSON report (default
//! `BENCH_wallclock.json`). Invoked by `scripts/bench.sh`.
//!
//! ```text
//! wallclock [--smoke] [--out PATH] [--threads 1,2,4] [--reps N]
//!           [--seed N] [--scale F] [--scheduler KIND]
//! ```
//!
//! `--smoke` runs a tiny suite and then **gates**: the report must pass
//! structural schema validation, every repetition must produce the same
//! result checksum, that checksum must equal the retained barrier-merge
//! reference implementation's (so both merge paths run every CI pass),
//! and on a machine with ≥ 2 cores the best parallel time must not lose
//! to sequential by more than 10% (wall-clock noise allowance). Any
//! violation exits non-zero, failing `scripts/check.sh`.

use bench_harness::wallclock::{measure, reference_checksum, validate_schema, WallclockReport};
use pipeline::SchedulerKind;

struct Args {
    smoke: bool,
    out: String,
    threads: Option<Vec<usize>>,
    reps: usize,
    seed: u64,
    scale: f64,
    scheduler: SchedulerKind,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_wallclock.json".to_string(),
        threads: None,
        reps: 3,
        seed: 5,
        scale: 0.02,
        scheduler: SchedulerKind::ParallelAco,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value("--out"),
            "--threads" => {
                let list = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes a list like 1,2,4"))
                    .collect();
                args.threads = Some(list);
            }
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes a number"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes a number"),
            "--scale" => args.scale = value("--scale").parse().expect("--scale takes a float"),
            "--scheduler" => {
                let name = value("--scheduler");
                args.scheduler = SchedulerKind::ALL
                    .into_iter()
                    .find(|k| format!("{k:?}").eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| panic!("unknown scheduler {name}"));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Default ladder: 1, 2, 4, ... up to the core count, always ending on it.
fn default_threads(cores: usize) -> Vec<usize> {
    let mut t = vec![1usize];
    let mut n = 2;
    while n < cores {
        t.push(n);
        n *= 2;
    }
    if cores > 1 {
        t.push(cores);
    }
    t
}

fn smoke_gate(report: &WallclockReport, json: &str) {
    validate_schema(json).unwrap_or_else(|e| panic!("smoke: schema violation: {e}"));
    assert!(
        report.checksums_agree(),
        "smoke: result checksums differ across thread counts"
    );
    // Exercise the retained barrier reference merge and pin it against
    // the streaming path's checksum: both merge implementations must
    // agree byte-for-byte on every CI run.
    let streamed = report
        .samples
        .first()
        .expect("at least one sample")
        .checksum;
    let reference = reference_checksum(report.suite_seed, report.suite_scale, report.scheduler);
    assert_eq!(
        streamed, reference,
        "smoke: streaming merge and barrier reference merge disagree"
    );
    eprintln!("smoke: streaming and reference merge checksums agree ({streamed:#018x})");
    if report.cores >= 2 {
        let seq = report
            .sequential_best_s()
            .expect("smoke always measures 1 thread");
        let par = report
            .parallel_best_s()
            .expect("smoke always measures >1 thread");
        assert!(
            par <= seq * 1.10,
            "smoke: parallel best {par:.4}s lost to sequential {seq:.4}s \
             on a {}-core host",
            report.cores
        );
    } else {
        eprintln!("smoke: single-core host, skipping the parallel<=sequential gate");
    }
    eprintln!("smoke: wall-clock gate passed");
}

fn main() {
    let mut args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if args.smoke {
        args.scale = 0.004;
        args.reps = args.reps.min(2);
        args.threads.get_or_insert_with(|| vec![1, 2.max(cores)]);
    }
    let threads = args.threads.unwrap_or_else(|| default_threads(cores));
    let report = measure(args.seed, args.scale, args.scheduler, &threads, args.reps);
    let json = report.to_json();
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    for s in &report.samples {
        eprintln!(
            "host_threads={:<3} best {:.4}s (jobs {:.4}s, merge {:.4}s, \
             overlapped {:.4}s, critical path {:.4}s){}",
            s.threads,
            s.best.total_s,
            s.best.jobs_s,
            s.best.merge_s,
            s.best.merge_overlap_s,
            s.best.critical_path_s(),
            if s.oversubscribed {
                " [oversubscribed]"
            } else {
                ""
            }
        );
    }
    if let Some(sp) = report.speedup() {
        eprintln!("speedup (best honest parallel vs 1 thread): {sp:.2}x on {cores} cores");
    }
    eprintln!("wrote {}", args.out);
    if args.smoke {
        smoke_gate(&report, &json);
    }
}
