//! `cache_bench` — wall-clock benchmark of the content-addressed schedule
//! cache.
//!
//! Compiles one duplicate-heavy suite with the cache off and on, and
//! writes a JSON report (default `BENCH_cache.json`) with both wall
//! clocks, the hit rate, and the result fingerprints. Invoked by
//! `scripts/bench.sh`.
//!
//! ```text
//! cache_bench [--smoke] [--out PATH] [--threads N] [--reps N]
//!             [--seed N] [--scale F] [--scheduler KIND]
//! ```
//!
//! `--smoke` runs a tiny suite and then **gates**: the report must pass
//! structural schema validation, the cache-on run must produce a result
//! fingerprint bitwise identical to the cache-off reference, the hit rate
//! on the duplicate-heavy suite must reach 30%, and the cache-on run must
//! not lose to cache-off by more than 10% (wall-clock noise allowance).
//! Any violation exits non-zero, failing `scripts/check.sh`.

use bench_harness::cache_bench::{measure, validate_schema, CacheReport};
use pipeline::SchedulerKind;

struct Args {
    smoke: bool,
    out: String,
    threads: Option<usize>,
    reps: usize,
    seed: u64,
    scale: f64,
    scheduler: SchedulerKind,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_cache.json".to_string(),
        threads: None,
        reps: 3,
        seed: 5,
        scale: 0.02,
        scheduler: SchedulerKind::ParallelAco,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value("--out"),
            "--threads" => {
                args.threads = Some(
                    value("--threads")
                        .parse()
                        .expect("--threads takes a number"),
                );
            }
            "--reps" => args.reps = value("--reps").parse().expect("--reps takes a number"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed takes a number"),
            "--scale" => args.scale = value("--scale").parse().expect("--scale takes a float"),
            "--scheduler" => {
                let name = value("--scheduler");
                args.scheduler = SchedulerKind::ALL
                    .into_iter()
                    .find(|k| format!("{k:?}").eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| panic!("unknown scheduler {name}"));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn smoke_gate(report: &CacheReport, json: &str) {
    validate_schema(json).unwrap_or_else(|e| panic!("smoke: schema violation: {e}"));
    assert!(
        report.fingerprints_agree(),
        "smoke: cache-on result fingerprint differs from cache-off"
    );
    assert!(
        report.hit_rate() >= 0.30,
        "smoke: hit rate {:.3} below the 30% duplicate-heavy floor \
         (dedup ratio {:.3})",
        report.hit_rate(),
        report.dedup_ratio
    );
    let (off, on) = (report.off.best_total_s, report.on.best_total_s);
    assert!(
        on <= off * 1.10,
        "smoke: cache-on best {on:.4}s lost to cache-off {off:.4}s"
    );
    eprintln!("smoke: cache gate passed");
}

fn main() {
    let mut args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if args.smoke {
        args.scale = 0.008;
        args.reps = args.reps.min(2);
    }
    let threads = args.threads.unwrap_or(cores);
    let report = measure(args.seed, args.scale, args.scheduler, threads, args.reps);
    let json = report.to_json();
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    eprintln!(
        "suite: {} regions, {} distinct (dedup ratio {:.3})",
        report.regions, report.distinct_regions, report.dedup_ratio
    );
    for s in [&report.off, &report.on] {
        eprintln!(
            "cache {:<3} best {:.4}s ({} hits, {} misses, {} bypasses)",
            if s.enabled { "on" } else { "off" },
            s.best_total_s,
            s.stats.hits,
            s.stats.misses,
            s.stats.bypasses
        );
    }
    eprintln!("hit rate: {:.1}%", report.hit_rate() * 100.0);
    if let Some(sp) = report.speedup() {
        eprintln!("speedup (cache on vs off): {sp:.2}x at {threads} host threads");
    }
    eprintln!("wrote {}", args.out);
    if args.smoke {
        smoke_gate(&report, &json);
    }
}
