//! Future-work projection (Section VII): "scheduling multiple regions in
//! parallel" — one cooperative launch per pass for a whole batch of
//! regions, with the colony's wavefront groups split across them.
//!
//! Not a paper table; it quantifies the paper's stated next step on the
//! same cost model as Tables 3–5.

use aco::{AcoConfig, ParallelScheduler};
use bench_harness::{print_table, regions_in_band, SizeBand};
use machine_model::OccupancyModel;
use sched_ir::Ddg;

const SEED: u64 = 91;

fn main() {
    let occ = OccupancyModel::vega_like();
    let mut rows = Vec::new();
    for (band, count) in [
        (SizeBand::Small, 12),
        (SizeBand::Medium, 8),
        (SizeBand::Large, 4),
    ] {
        let regions = regions_in_band(band, count, SEED);
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(SEED);
        cfg.blocks = 32;
        cfg.pass2_gate_cycles = 1;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        let saving = if batch.individual_us > 0.0 {
            100.0 * (batch.individual_us - batch.batched_us) / batch.individual_us
        } else {
            0.0
        };
        rows.push(vec![
            format!("{} x {}", count, band.label()),
            format!("{:.0}", batch.individual_us),
            format!("{:.0}", batch.batched_us),
            format!("{saving:.1}%"),
        ]);
    }
    print_table(
        "FUTURE WORK — BATCHED MULTI-REGION SCHEDULING (one launch per pass per batch)",
        &["batch", "individual (us)", "batched (us)", "saving"],
        &rows,
    );
    println!(
        "expected shape: the saving is largest for batches of small regions, whose\n\
         individual launches are dominated by the fixed launch/copy overheads that\n\
         batching shares — exactly why the paper proposes it (Section VII)."
    );
}
