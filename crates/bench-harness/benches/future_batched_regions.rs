//! Batched multi-region scheduling (Section VII), planner-driven: the
//! pipeline's batch planner groups a mixed bag of regions into cooperative
//! launches under the colony's block budget, and this sweep quantifies the
//! launch-overhead saving as the group cap grows.
//!
//! Not a paper table; it quantifies the paper's stated next step on the
//! same cost model as Tables 3–5, now through the production planner
//! (`pipeline::plan_batches`) rather than a hand-built demo batch.

use aco::{AcoConfig, ParallelScheduler};
use bench_harness::{print_table, regions_in_band, SizeBand};
use machine_model::OccupancyModel;
use pipeline::BatchingConfig;
use sched_ir::Ddg;

const SEED: u64 = 91;
const BLOCKS: u32 = 32;

fn main() {
    let occ = OccupancyModel::vega_like();

    // A mixed workload: mostly small regions (the Table-3 shape), a few
    // medium and large ones.
    let mut regions: Vec<Ddg> = Vec::new();
    for (band, count) in [
        (SizeBand::Small, 12),
        (SizeBand::Medium, 8),
        (SizeBand::Large, 4),
    ] {
        regions.extend(regions_in_band(band, count, SEED));
    }
    let sizes: Vec<usize> = regions.iter().map(Ddg::len).collect();

    let mut aco = AcoConfig::paper(SEED);
    aco.blocks = BLOCKS;
    aco.pass2_gate_cycles = 1;

    let mut rows = Vec::new();
    for max_group in [1u32, 2, 4, 8, 16] {
        let cfg = BatchingConfig {
            max_group,
            min_blocks_per_region: 2,
        };
        let groups = pipeline::plan_batches(&sizes, BLOCKS, &cfg);
        let mut individual = 0.0;
        let mut batched = 0.0;
        for group in &groups {
            let refs: Vec<&Ddg> = group.iter().map(|&i| &regions[i]).collect();
            let batch = ParallelScheduler::new(aco).schedule_batch(&refs, &occ);
            individual += batch.individual_us;
            batched += batch.batched_us;
        }
        let saving = if individual > 0.0 {
            100.0 * (individual - batched) / individual
        } else {
            0.0
        };
        rows.push(vec![
            format!("{max_group}"),
            format!("{}", groups.len()),
            format!("{individual:.0}"),
            format!("{batched:.0}"),
            format!("{saving:.1}%"),
        ]);
    }
    print_table(
        &format!(
            "BATCHED MULTI-REGION SCHEDULING — planner sweep \
             ({} regions, {BLOCKS}-block colony)",
            regions.len()
        ),
        &[
            "group cap",
            "launches",
            "individual (us)",
            "batched (us)",
            "saving",
        ],
        &rows,
    );
    println!(
        "expected shape: saving grows with the group cap and saturates once groups\n\
         span the whole small-region band — the shared launch/alloc/copy overheads\n\
         are amortized over more regions per launch, while each region's schedule\n\
         stays bitwise-identical to a solo run with its split colony (the planner\n\
         never hands a region fewer blocks than the budget allows)."
    );
}
