//! Figure 4 — execution-time speedup of the benchmarks compiled with
//! parallel ACO relative to the AMD scheduler.
//!
//! Benchmarks are classified scheduling-sensitive with the paper's 3%
//! coefficient-of-variation rule over three builds (base LLVM/AMD,
//! parallel ACO, CP heuristic); improvements of at least 1% are
//! *significant*.

use bench_harness::{geomean, print_histogram};
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

const SCALE: f64 = 0.06;
const SEED: u64 = 77;

fn main() {
    let suite = Suite::generate(&SuiteConfig::scaled(SEED, SCALE));
    let occ = OccupancyModel::vega_like();
    let mk = |kind| {
        let mut cfg = PipelineConfig::paper(kind, SEED);
        cfg.aco.blocks = 16;
        compile_suite(&suite, &occ, &cfg)
    };
    let base = mk(SchedulerKind::BaseAmd);
    let cp = mk(SchedulerKind::CriticalPath);
    let aco = mk(SchedulerKind::ParallelAco);

    // Sensitivity: CoV of the three builds' run times within 3% -> drop.
    let mut sensitive = Vec::new();
    for i in 0..suite.benchmarks.len() {
        let xs = [
            base.benchmark_time_us[i],
            cp.benchmark_time_us[i],
            aco.benchmark_time_us[i],
        ];
        let mean = xs.iter().sum::<f64>() / 3.0;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 3.0;
        if var.sqrt() / mean > 0.03 {
            sensitive.push(i);
        }
    }
    println!(
        "{} of {} benchmarks are scheduling-sensitive (3% CoV rule)",
        sensitive.len(),
        suite.benchmarks.len()
    );

    let mut improvements: Vec<(usize, f64)> = sensitive
        .iter()
        .map(|&i| {
            (
                i,
                100.0 * (aco.benchmark_throughput[i] - base.benchmark_throughput[i])
                    / base.benchmark_throughput[i],
            )
        })
        .collect();
    improvements.sort_by(|a, b| b.1.total_cmp(&a.1));

    let significant: Vec<(usize, f64)> = improvements
        .iter()
        .copied()
        .filter(|&(_, d)| d.abs() >= 1.0)
        .collect();
    println!("\nFIGURE 4 — EXECUTION-TIME SPEEDUP OF BENCHMARKS (significant = |delta| >= 1%)");
    for &(i, d) in &significant {
        let bar = "#".repeat((d.abs().min(80.0)) as usize);
        println!("  {:<12} {:+7.1}% {}", suite.benchmarks[i].name, d, bar);
    }
    let positives: Vec<f64> = significant
        .iter()
        .map(|&(_, d)| 1.0 + d / 100.0)
        .filter(|&x| x > 0.0)
        .collect();
    if let Some(g) = geomean(&positives) {
        println!(
            "\n  geometric-mean improvement over significant benchmarks: {:+.1}%",
            (g - 1.0) * 100.0
        );
    }
    let ge5 = significant.iter().filter(|&&(_, d)| d >= 5.0).count();
    let ge10 = significant.iter().filter(|&&(_, d)| d >= 10.0).count();
    let max_reg = improvements
        .iter()
        .map(|&(_, d)| -d)
        .fold(f64::MIN, f64::max)
        .max(0.0);
    println!("  improvements >= 5%: {ge5}   improvements >= 10%: {ge10}");
    println!("  maximum regression: {max_reg:.1}%");
    print_histogram(
        "distribution of significant improvements (%)",
        &significant
            .iter()
            .map(|&(_, d)| d.max(0.0))
            .collect::<Vec<_>>(),
        5.0,
    );
    println!(
        "\npaper: max +74%, geomean +13.2%, 20 benchmarks >= 5%, 11 >= 10%, max regression 0.7%.\n\
         expected shape: all (or nearly all) significant deltas are improvements with a\n\
         long right tail; regressions stay under ~1%."
    );
}
