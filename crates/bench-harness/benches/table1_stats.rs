//! Table 1 — benchmark statistics.
//!
//! Regenerates the suite-statistics table: number of benchmarks, kernels
//! and scheduling regions; how many regions ACO processes in each pass;
//! and the average/maximum processed region sizes. The suite is a scaled
//! generated stand-in for rocPRIM (see DESIGN.md); counts scale with
//! `SCALE` while the *proportions* are the reproduction target.

use bench_harness::print_table;
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

/// Fraction of the paper-scale suite generated (1.0 = 341 benchmarks /
/// 269 kernels / ~182k regions, minutes of runtime).
const SCALE: f64 = 0.02;
const SEED: u64 = 2024;

fn main() {
    let suite = Suite::generate(&SuiteConfig::scaled(SEED, SCALE));
    let occ = OccupancyModel::vega_like();
    let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, SEED);
    cfg.aco.blocks = 16;
    let run = compile_suite(&suite, &occ, &cfg);

    let p1: Vec<usize> = run
        .regions
        .iter()
        .filter(|r| r.pass1_processed)
        .map(|r| r.size)
        .collect();
    let p2: Vec<usize> = run
        .regions
        .iter()
        .filter(|r| r.pass2_processed)
        .map(|r| r.size)
        .collect();
    let avg = |v: &[usize]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };

    let rows = vec![
        vec![
            "Number of benchmarks".into(),
            suite.benchmarks.len().to_string(),
        ],
        vec!["Number of kernels".into(), suite.kernels.len().to_string()],
        vec![
            "Number of scheduling regions".into(),
            suite.region_count().to_string(),
        ],
        vec![
            "Regions processed by ACO in pass 1".into(),
            p1.len().to_string(),
        ],
        vec![
            "Regions processed by ACO in pass 2".into(),
            p2.len().to_string(),
        ],
        vec![
            "Avg. processed region size in pass 1".into(),
            format!("{:.1}", avg(&p1)),
        ],
        vec![
            "Avg. processed region size in pass 2".into(),
            format!("{:.1}", avg(&p2)),
        ],
        vec![
            "Max. processed region size in pass 1".into(),
            p1.iter().max().copied().unwrap_or(0).to_string(),
        ],
        vec![
            "Max. processed region size in pass 2".into(),
            p2.iter().max().copied().unwrap_or(0).to_string(),
        ],
    ];
    print_table(
        &format!("TABLE 1 — BENCHMARK STATISTICS (generated suite, scale {SCALE})"),
        &["Stat", "Value"],
        &rows,
    );
    println!(
        "\npaper (full scale): 341 benchmarks, 269 kernels, 181,883 regions;\n\
         1,734 regions in pass 1 (avg 68.3, max 1,176); 12,192 in pass 2 (avg 40.2, max 2,223).\n\
         expected shape: pass-2 count >> pass-1 count; processed sizes skew far above the\n\
         suite-wide average region size."
    );
}
