//! Table 7 — experimentation with the cycle-based compile-time filter:
//! pass 2 runs only on regions whose input schedule is at least
//! `threshold` cycles above the length lower bound. Higher thresholds
//! should eliminate execution-time regressions while keeping the
//! improvements.

use bench_harness::print_table;
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

const SCALE: f64 = 0.05;
const SEED: u64 = 77;

fn main() {
    let suite = Suite::generate(&SuiteConfig::scaled(SEED, SCALE));
    let occ = OccupancyModel::vega_like();
    let mut base_cfg = PipelineConfig::paper(SchedulerKind::BaseAmd, SEED);
    base_cfg.aco.blocks = 16;
    let base = compile_suite(&suite, &occ, &base_cfg);

    let thresholds = [5u32, 10, 15, 20, 21, 25];
    let mut imp3 = vec!["Imps. >= 3%".to_string()];
    let mut imp5 = vec!["Imps. >= 5%".to_string()];
    let mut imp10 = vec!["Imps. >= 10%".to_string()];
    let mut reg3 = vec!["Regs. >= 3%".to_string()];
    let mut reg5 = vec!["Regs. >= 5%".to_string()];
    let mut reg10 = vec!["Regs. >= 10%".to_string()];
    let mut maxreg = vec!["Max. Reg.".to_string()];

    for &th in &thresholds {
        let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, SEED);
        cfg.aco.blocks = 16;
        cfg.aco.pass2_gate_cycles = th;
        let run = compile_suite(&suite, &occ, &cfg);
        let deltas: Vec<f64> = run
            .benchmark_throughput
            .iter()
            .zip(&base.benchmark_throughput)
            .map(|(&a, &b)| 100.0 * (a - b) / b)
            .collect();
        imp3.push(deltas.iter().filter(|&&d| d >= 3.0).count().to_string());
        imp5.push(deltas.iter().filter(|&&d| d >= 5.0).count().to_string());
        imp10.push(deltas.iter().filter(|&&d| d >= 10.0).count().to_string());
        reg3.push(deltas.iter().filter(|&&d| d <= -3.0).count().to_string());
        reg5.push(deltas.iter().filter(|&&d| d <= -5.0).count().to_string());
        reg10.push(deltas.iter().filter(|&&d| d <= -10.0).count().to_string());
        let mr = deltas.iter().map(|&d| -d).fold(f64::MIN, f64::max).max(0.0);
        maxreg.push(format!("{mr:.1}%"));
    }

    print_table(
        "TABLE 7 — EXPERIMENTATION WITH CYCLE-BASED FILTER",
        &["Cycles", "5", "10", "15", "20", "21", "25"],
        &[imp3, imp5, imp10, reg3, reg5, reg10, maxreg],
    );
    println!(
        "paper: improvement counts stay roughly flat across thresholds while regressions\n\
         vanish as the threshold grows (max regression 14.5% at 5 cycles -> 0.7% at 21);\n\
         21 cycles is the paper's operating point."
    );
}
