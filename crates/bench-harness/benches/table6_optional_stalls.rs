//! Table 6 — experimentation with optional stalls: the percentage of
//! wavefronts allowed to insert optional stalls in pass 2, swept over
//! regions of 100+ instructions, against the 0% baseline.

use aco::{AcoConfig, ParallelScheduler};
use bench_harness::{print_table, regions_in_band, SizeBand};
use machine_model::OccupancyModel;

const REGIONS: usize = 20;
const SEED: u64 = 55;

fn main() {
    let occ = OccupancyModel::vega_like();
    let regions = regions_in_band(SizeBand::Large, REGIONS, SEED);

    let run = |fraction: f64| {
        let mut time = 0.0;
        let mut lengths = Vec::new();
        for (i, ddg) in regions.iter().enumerate() {
            let mut cfg = AcoConfig::paper(SEED + i as u64);
            cfg.blocks = 32;
            cfg.tuning.stall_wavefront_fraction = fraction;
            let out = ParallelScheduler::new(cfg).schedule(ddg, &occ);
            time += out.gpu.total_us();
            lengths.push(out.result.length as f64);
        }
        (time, lengths)
    };

    let (t0, len0) = run(0.0);
    let mut time_row = vec!["% Increase in ACO Time".to_string()];
    let mut len_row = vec!["% Improvement in schedule length".to_string()];
    let mut max_row = vec!["Max. % improvement in schedule length".to_string()];
    for &f in &[0.25, 0.5, 0.75] {
        let (t, len) = run(f);
        time_row.push(format!("{:.2}%", 100.0 * (t - t0) / t0));
        let sum0: f64 = len0.iter().sum();
        let sum: f64 = len.iter().sum();
        len_row.push(format!("{:.2}%", 100.0 * (sum0 - sum) / sum0));
        let max_impr = len0
            .iter()
            .zip(&len)
            .map(|(&a, &b)| 100.0 * (a - b) / a)
            .fold(f64::MIN, f64::max);
        max_row.push(format!("{:.2}%", max_impr));
    }

    print_table(
        "TABLE 6 — EXPERIMENTATION WITH OPTIONAL STALLS (regions >= 100 instrs)",
        &[
            "% Wavefronts inserting optional stalls",
            "25%",
            "50%",
            "75%",
        ],
        &[time_row, len_row, max_row],
    );
    println!(
        "paper: time +8.65% / +12.30% / +20.28%; length +0.27% / +0.30% / +0.95%\n\
         (max +15.75 / +15.75 / +23.58). expected shape: allowing more wavefronts to\n\
         stall costs scheduling time roughly monotonically while buying small average\n\
         (occasionally large) schedule-length improvements; 25% is the sweet spot."
    );
}
