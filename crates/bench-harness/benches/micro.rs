//! Criterion micro-benchmarks of the scheduler's hot kernels: pass-1 ant
//! construction, pass-2 ant construction, pheromone update, and the greedy
//! list scheduler.

use aco::{AcoConfig, AntContext, Pass1Ant, Pass2Ant, PheromoneTable};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use list_sched::{Heuristic, ListScheduler, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use reg_pressure::RegUniverse;
use sched_ir::InstrId;

fn bench_construction(c: &mut Criterion) {
    let ddg = workloads::patterns::sized(100, 9);
    let analysis = RegionAnalysis::new(&ddg);
    let universe = RegUniverse::new(&ddg);
    let occ = OccupancyLut::new(&OccupancyModel::vega_like());
    let cfg = AcoConfig::small(1);
    let ctx = AntContext {
        ddg: &ddg,
        analysis: &analysis,
        universe: &universe,
        lut: &occ,
        cfg: &cfg,
    };
    let pheromone = PheromoneTable::new(ddg.len(), 1.0);

    c.bench_function("pass1_ant_construction_n100", |b| {
        b.iter_batched(
            || Pass1Ant::new(&ctx, Heuristic::LastUseCount, 7),
            |mut ant| ant.run(&ctx, &pheromone),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pass2_ant_construction_n100", |b| {
        b.iter_batched(
            || Pass2Ant::new(&ctx, Heuristic::CriticalPath, 7, u64::MAX, true),
            |mut ant| ant.run(&ctx, &pheromone),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pheromone(c: &mut Criterion) {
    let order: Vec<InstrId> = (0..200).map(InstrId).collect();
    c.bench_function("pheromone_evaporate_deposit_n200", |b| {
        let mut table = PheromoneTable::new(200, 1.0);
        b.iter(|| {
            table.evaporate(0.8, 0.01);
            table.deposit_order(&order, 1.0, 8.0);
        })
    });
}

fn bench_list_scheduler(c: &mut Criterion) {
    let ddg = workloads::patterns::sized(100, 9);
    let occ = OccupancyModel::vega_like();
    c.bench_function("amd_list_scheduler_n100", |b| {
        b.iter(|| ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ))
    });
    c.bench_function("transitive_closure_n100", |b| {
        b.iter(|| ddg.transitive_closure())
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_pheromone,
    bench_list_scheduler
);
criterion_main!(benches);
