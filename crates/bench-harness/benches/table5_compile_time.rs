//! Table 5 — total compile time of the suite under the base AMD
//! scheduler, sequential ACO, parallel ACO, and batched parallel ACO.
//!
//! Compile time = per-region base compilation cost (everything that is not
//! pre-allocation scheduling) + the modeled scheduling time of the active
//! scheduler, with the paper's compile-time filters enabled (threshold 21).

use bench_harness::print_table;
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

const SCALE: f64 = 0.02;
const SEED: u64 = 2024;

fn main() {
    let suite = Suite::generate(&SuiteConfig::scaled(SEED, SCALE));
    let occ = OccupancyModel::vega_like();

    let mut rows = Vec::new();
    let mut base_time = None;
    for kind in [
        SchedulerKind::BaseAmd,
        SchedulerKind::SequentialAco,
        SchedulerKind::ParallelAco,
        SchedulerKind::BatchedParallelAco,
    ] {
        let mut cfg = PipelineConfig::paper(kind, SEED);
        cfg.aco.blocks = 16;
        let run = compile_suite(&suite, &occ, &cfg);
        let delta = base_time.map(|b: f64| 100.0 * (run.compile_time_s - b) / b);
        if base_time.is_none() {
            base_time = Some(run.compile_time_s);
        }
        rows.push(vec![
            kind.name().to_string(),
            match delta {
                Some(d) => format!("{:.1} ({:+.1}%)", run.compile_time_s, d),
                None => format!("{:.1}", run.compile_time_s),
            },
        ]);
    }
    print_table(
        &format!("TABLE 5 — TOTAL COMPILE TIMES (scale {SCALE})"),
        &["Scheduler", "Total Compile Time (seconds)"],
        &rows,
    );
    println!(
        "paper: Base AMD 840 s; Sequential ACO 1225 s (+45.8%); Parallel ACO 967 s (+15.1%)\n\
         — i.e. scheduling on the GPU cuts total compile time by ~21% versus sequential\n\
         ACO on the CPU.\n\
         expected shape: base < batched parallel ACO < parallel ACO < sequential ACO —\n\
         batching shares the launch/copy overheads that dominate small regions\n\
         (Section VII), so it undercuts per-region parallel ACO while producing\n\
         the identical schedules."
    );
}
