//! Tables 3.a / 3.b — parallel speedup over the sequential scheduler, by
//! region-size band and pass.
//!
//! For every sampled region both schedulers run with identical parameters;
//! a region is *comparable* in a pass when both took the same number of
//! iterations (Section VI-C). The speedup is modeled-CPU-time over
//! modeled-GPU-time per pass.

use aco::AcoConfig;
use bench_harness::{fmt_opt, geomean, measure_speedup, print_table, regions_in_band, SizeBand};
use machine_model::OccupancyModel;

/// Regions sampled per size band.
const PER_BAND: usize = 24;
const SEED: u64 = 33;

fn main() {
    let occ = OccupancyModel::vega_like();
    let mut cfg = AcoConfig::paper(SEED);
    cfg.blocks = 32; // scaled colony; see EXPERIMENTS.md

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut processed_row_a = vec!["Regions processed by ACO".to_string()];
    let mut processed_row_b = vec!["Regions processed by ACO".to_string()];
    let mut comparable_row_a = vec!["Comparable regions".to_string()];
    let mut comparable_row_b = vec!["Comparable regions".to_string()];
    let mut geo_row_a = vec!["Geometric mean speedup".to_string()];
    let mut geo_row_b = vec!["Geometric mean speedup".to_string()];
    let mut max_row_a = vec!["Max. speedup".to_string()];
    let mut max_row_b = vec!["Max. speedup".to_string()];
    let mut min_row_a = vec!["Min. speedup".to_string()];
    let mut min_row_b = vec!["Min. speedup".to_string()];

    for band in SizeBand::ALL {
        let regions = regions_in_band(band, PER_BAND, SEED);
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        let mut processed1 = 0usize;
        let mut processed2 = 0usize;
        for (i, ddg) in regions.iter().enumerate() {
            let r = measure_speedup(
                ddg,
                &occ,
                AcoConfig {
                    seed: SEED + i as u64,
                    ..cfg
                },
            );
            processed1 += r.pass1_processed as usize;
            processed2 += r.pass2_processed as usize;
            if let Some(s) = r.pass1 {
                p1.push(s);
            }
            if let Some(s) = r.pass2 {
                p2.push(s);
            }
        }
        processed_row_a.push(processed1.to_string());
        processed_row_b.push(processed2.to_string());
        comparable_row_a.push(p1.len().to_string());
        comparable_row_b.push(p2.len().to_string());
        geo_row_a.push(fmt_opt(geomean(&p1)));
        geo_row_b.push(fmt_opt(geomean(&p2)));
        max_row_a.push(fmt_opt(p1.iter().cloned().reduce(f64::max)));
        max_row_b.push(fmt_opt(p2.iter().cloned().reduce(f64::max)));
        min_row_a.push(fmt_opt(p1.iter().cloned().reduce(f64::min)));
        min_row_b.push(fmt_opt(p2.iter().cloned().reduce(f64::min)));
    }
    rows_a.extend([
        processed_row_a,
        comparable_row_a,
        geo_row_a,
        max_row_a,
        min_row_a,
    ]);
    rows_b.extend([
        processed_row_b,
        comparable_row_b,
        geo_row_b,
        max_row_b,
        min_row_b,
    ]);

    print_table(
        "TABLE 3.a — PARALLEL SPEEDUP IN THE FIRST PASS",
        &["Inst. count range", "1-49", "50-99", ">=100"],
        &rows_a,
    );
    println!(
        "paper: geomean 2.07 / 7.44 / 12.48, max 5.69 / 12.69 / 27.19, min 0.63 / 3.30 / 5.66"
    );

    print_table(
        "TABLE 3.b — PARALLEL SPEEDUP IN THE SECOND PASS",
        &["Inst. count range", "1-49", "50-99", ">=100"],
        &rows_b,
    );
    println!("paper: geomean 1.99 / 4.80 / 7.55, max 8.25 / 13.03 / 17.37, min 0.45 / 1.08 / 4.10");
    println!(
        "\nexpected shape: speedup grows with region size (overheads amortize); pass-2\n\
         speedups sit below pass-1 (latency-driven divergence); small regions may not\n\
         benefit at all (min < 1)."
    );
}
