//! Table 4.b — improvement in ACO scheduling time from the
//! thread-divergence optimizations of Section V-B (wavefront-level
//! explore/exploit choice, stall-wavefront restriction, early wavefront
//! termination, per-wavefront heuristics).

use aco::{AcoConfig, GpuTuning, ParallelScheduler};
use bench_harness::{print_table, regions_in_band, SizeBand};
use machine_model::OccupancyModel;

const PER_BAND: usize = 16;
const SEED: u64 = 71;

fn main() {
    let occ = OccupancyModel::vega_like();
    let mut overall1 = vec!["Pass 1 overall improvement".to_string()];
    let mut max1 = vec!["Pass 1 max. improvement".to_string()];
    let mut overall2 = vec!["Pass 2 overall improvement".to_string()];
    let mut max2 = vec!["Pass 2 max. improvement".to_string()];

    for band in SizeBand::ALL {
        let regions = regions_in_band(band, PER_BAND, SEED);
        let mut sum = [0.0f64; 2];
        let mut sum_un = [0.0f64; 2];
        let mut best = [0.0f64; 2];
        for (i, ddg) in regions.iter().enumerate() {
            let mut cfg = AcoConfig::paper(SEED + i as u64);
            cfg.blocks = 32;
            let opt = ParallelScheduler::new(cfg).schedule(ddg, &occ);
            cfg.tuning = GpuTuning::optimized().divergence_unoptimized();
            let unopt = ParallelScheduler::new(cfg).schedule(ddg, &occ);
            for (p, (o, u)) in [
                (
                    opt.gpu.pass1_profile.total_us(),
                    unopt.gpu.pass1_profile.total_us(),
                ),
                (
                    opt.gpu.pass2_profile.total_us(),
                    unopt.gpu.pass2_profile.total_us(),
                ),
            ]
            .into_iter()
            .enumerate()
            {
                if o > 0.0 && u > 0.0 {
                    sum[p] += o;
                    sum_un[p] += u;
                    best[p] = best[p].max((u / o - 1.0) * 100.0);
                }
            }
        }
        let pct = |un: f64, o: f64| {
            if o > 0.0 {
                format!("{:.2}%", (un / o - 1.0) * 100.0)
            } else {
                "-".to_string()
            }
        };
        overall1.push(pct(sum_un[0], sum[0]));
        max1.push(format!("{:.2}%", best[0]));
        overall2.push(pct(sum_un[1], sum[1]));
        max2.push(format!("{:.2}%", best[1]));
    }

    print_table(
        "TABLE 4.b — IMPROVEMENTS IN ACO TIME FROM DIVERGENCE OPTIMIZATIONS",
        &["Inst. count range", "1-49", "50-99", ">=100"],
        &[overall1, max1, overall2, max2],
    );
    println!(
        "paper: pass-1 overall 0.68% / 3.81% / 7.00% (max 17/16/66);\n\
         pass-2 overall 3.78% / 12.06% / 15.42% (max 56/72/101).\n\
         expected shape: far smaller than the memory optimizations (Table 4.a), larger\n\
         in pass 2 than pass 1, and growing with region size."
    );
}
