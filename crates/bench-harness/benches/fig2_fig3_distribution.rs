//! Figures 2 and 3 — distribution of the parallel speedup ratios per
//! region-size band, for the first and second pass.
//!
//! Text histograms over the same measurements as Table 3.

use aco::AcoConfig;
use bench_harness::{measure_speedup, print_histogram, regions_in_band, SizeBand};
use machine_model::OccupancyModel;

const PER_BAND: usize = 24;
const SEED: u64 = 33;

fn main() {
    let occ = OccupancyModel::vega_like();
    let mut cfg = AcoConfig::paper(SEED);
    cfg.blocks = 32;

    for (fig, pass) in [
        ("FIGURE 2 — SPEEDUP DISTRIBUTION, FIRST PASS", 1u8),
        ("FIGURE 3 — SPEEDUP DISTRIBUTION, SECOND PASS", 2u8),
    ] {
        println!("\n=== {fig} ===");
        for band in SizeBand::ALL {
            let regions = regions_in_band(band, PER_BAND, SEED);
            let mut speedups = Vec::new();
            for (i, ddg) in regions.iter().enumerate() {
                let r = measure_speedup(
                    ddg,
                    &occ,
                    AcoConfig {
                        seed: SEED + i as u64,
                        ..cfg
                    },
                );
                let s = if pass == 1 { r.pass1 } else { r.pass2 };
                if let Some(s) = s {
                    speedups.push(s);
                }
            }
            print_histogram(
                &format!(
                    "size range {} ({} comparable regions)",
                    band.label(),
                    speedups.len()
                ),
                &speedups,
                2.0,
            );
        }
    }
    println!(
        "\nexpected shape: mass shifts right as region size grows; the second pass's\n\
         distributions sit left of the first pass's (thread divergence)."
    );
}
