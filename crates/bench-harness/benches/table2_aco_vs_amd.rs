//! Table 2 — schedule-quality improvement of ACO over the AMD production
//! heuristic: aggregate occupancy and schedule length across a generated
//! suite, plus per-kernel/per-region maxima.

use bench_harness::print_table;
use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, SchedulerKind};
use workloads::{Suite, SuiteConfig};

const SCALE: f64 = 0.02;
const SEED: u64 = 2024;

fn main() {
    let suite = Suite::generate(&SuiteConfig::scaled(SEED, SCALE));
    let occ = OccupancyModel::vega_like();
    let mut base_cfg = PipelineConfig::paper(SchedulerKind::BaseAmd, SEED);
    base_cfg.aco.blocks = 16;
    let mut aco_cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, SEED);
    aco_cfg.aco.blocks = 16;

    let base = compile_suite(&suite, &occ, &base_cfg);
    let aco = compile_suite(&suite, &occ, &aco_cfg);

    let occ_gain = 100.0 * (aco.total_occupancy() as f64 - base.total_occupancy() as f64)
        / base.total_occupancy() as f64;
    let len_red = 100.0 * (base.total_length() as f64 - aco.total_length() as f64)
        / base.total_length() as f64;
    let max_kernel_occ_gain = aco
        .kernel_occupancy
        .iter()
        .zip(&base.kernel_occupancy)
        .map(|(&a, &b)| 100.0 * (a as f64 - b as f64) / (b.max(1) as f64))
        .fold(f64::MIN, f64::max);
    let max_len_red = aco
        .regions
        .iter()
        .zip(&base.regions)
        .map(|(a, b)| 100.0 * (b.length as f64 - a.length as f64) / b.length as f64)
        .fold(f64::MIN, f64::max);
    // Length comparison restricted to regions where ACO did not trade
    // length for occupancy (same final occupancy as the baseline).
    let (same_occ_base, same_occ_aco) = aco
        .regions
        .iter()
        .zip(&base.regions)
        .filter(|(a, b)| a.occupancy == b.occupancy)
        .fold((0u64, 0u64), |(b_sum, a_sum), (a, b)| {
            (b_sum + b.length as u64, a_sum + a.length as u64)
        });
    let same_occ_red =
        100.0 * (same_occ_base as f64 - same_occ_aco as f64) / same_occ_base.max(1) as f64;

    let rows = vec![
        vec![
            "Regions processed by ACO in pass 1".into(),
            aco.pass1_count().to_string(),
        ],
        vec![
            "Regions processed by ACO in pass 2".into(),
            aco.pass2_count().to_string(),
        ],
        vec![
            "Overall occupancy increase".into(),
            format!("{occ_gain:.2}%"),
        ],
        vec![
            "Max. occupancy increase in any kernel".into(),
            format!("{max_kernel_occ_gain:.2}%"),
        ],
        vec![
            "Overall schedule length reduction".into(),
            format!("{len_red:.2}%"),
        ],
        vec![
            "Length reduction at equal occupancy".into(),
            format!("{same_occ_red:.2}%"),
        ],
        vec![
            "Max. schedule length reduction".into(),
            format!("{max_len_red:.2}%"),
        ],
    ];
    print_table(
        &format!("TABLE 2 — IMPROVEMENT OF ACO RELATIVE TO AMD SCHEDULER (scale {SCALE})"),
        &["Stat", "Value"],
        &rows,
    );
    println!(
        "paper: 1,734 / 12,192 regions; overall occupancy +0.66% (max +300% on a kernel);\n\
         overall schedule length −5.52% (max −78.52% on a region).\n\
         expected shape: modest aggregate gains with large improvements on individual\n\
         hot kernels/regions — most regions are already optimally scheduled by the\n\
         heuristic and ACO only touches the hard ones. NOTE: where our aggregate length\n\
         delta is negative it is because ACO deliberately buys occupancy with schedule\n\
         length (kept by the post filter when the gain is large); the equal-occupancy\n\
         row isolates the pure ILP improvements."
    );
}
