//! Graphviz (DOT) export of DDGs and schedules — a debugging aid for
//! inspecting generated regions and scheduler decisions.

use crate::ddg::Ddg;
use crate::schedule::Schedule;
use std::fmt::Write;

/// Renders the DDG in Graphviz DOT syntax.
///
/// Nodes are labelled `name\ndefs/uses`; edges are labelled with their
/// latency.
///
/// ```
/// let ddg = sched_ir::figure1::ddg();
/// let dot = sched_ir::dot::to_dot(&ddg);
/// assert!(dot.starts_with("digraph ddg {"));
/// assert!(dot.contains("label=\"4\""));
/// ```
pub fn to_dot(ddg: &Ddg) -> String {
    let mut out = String::from("digraph ddg {\n  rankdir=TB;\n  node [shape=box];\n");
    for id in ddg.ids() {
        let instr = ddg.instr(id);
        let defs: Vec<String> = instr.defs().iter().map(|r| r.to_string()).collect();
        let uses: Vec<String> = instr.uses().iter().map(|r| r.to_string()).collect();
        writeln!(
            out,
            "  n{} [label=\"{}\\ndefs: {}\\nuses: {}\"];",
            id.0,
            instr.name(),
            defs.join(","),
            uses.join(",")
        )
        .expect("writing to a String cannot fail");
    }
    for id in ddg.ids() {
        for &(s, lat) in ddg.succs(id) {
            writeln!(out, "  n{} -> n{} [label=\"{}\"];", id.0, s.0, lat)
                .expect("writing to a String cannot fail");
        }
    }
    out.push_str("}\n");
    out
}

/// Like [`to_dot`] but annotates every node with its issue cycle in the
/// given schedule.
///
/// # Panics
///
/// Panics if the schedule covers a different number of instructions.
pub fn to_dot_with_schedule(ddg: &Ddg, schedule: &Schedule) -> String {
    assert_eq!(schedule.len(), ddg.len(), "schedule must cover the region");
    let mut out = String::from("digraph ddg {\n  rankdir=TB;\n  node [shape=box];\n");
    for id in ddg.ids() {
        writeln!(
            out,
            "  n{} [label=\"{} @ cycle {}\"];",
            id.0,
            ddg.instr(id).name(),
            schedule.cycle(id)
        )
        .expect("writing to a String cannot fail");
    }
    for id in ddg.ids() {
        for &(s, lat) in ddg.succs(id) {
            writeln!(out, "  n{} -> n{} [label=\"{}\"];", id.0, s.0, lat)
                .expect("writing to a String cannot fail");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1;

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let ddg = figure1::ddg();
        let dot = to_dot(&ddg);
        for id in ddg.ids() {
            assert!(dot.contains(&format!("n{} [", id.0)));
        }
        assert_eq!(dot.matches(" -> ").count(), ddg.edge_count());
        assert!(dot.contains("defs: v1"));
    }

    #[test]
    fn dot_with_schedule_shows_cycles() {
        let ddg = figure1::ddg();
        let s = Schedule::from_order(&ddg, ddg.topo_order());
        let dot = to_dot_with_schedule(&ddg, &s);
        assert!(dot.contains("@ cycle 0"));
        assert_eq!(dot.matches(" -> ").count(), ddg.edge_count());
    }
}
