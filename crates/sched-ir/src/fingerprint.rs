//! Canonical content fingerprints of scheduling regions.
//!
//! The pipeline's schedule cache keys regions by *content*: two regions
//! with the same instruction count, the same per-id Def/Use register
//! sets, and the same successor edges in the same stored order produce
//! bitwise-identical scheduler output, so a schedule computed for one can
//! be reused for the other. [`ddg_content_fingerprint`] hashes exactly
//! that content — walking nodes in the cached topological order so the
//! hash also commits to the build-time canonicalization — and
//! [`Ddg::content_eq`] is the full structural-equality check run on every
//! hash match, so a 64-bit collision can never smuggle in a wrong
//! schedule.
//!
//! Instruction *names* are deliberately excluded from both the hash and
//! the equality check: no scheduler reads them, and no schedule,
//! pressure, occupancy, or cost result depends on them. Template
//! instantiation produces regions identical up to mnemonic suffixes;
//! keying on names would needlessly miss those.
//!
//! The hash is 64-bit FNV-1a with the same constants as the golden suite
//! fingerprints in `sched-verify` (which depends on this crate, so the
//! accumulator is duplicated here rather than imported).

use crate::ddg::Ddg;

/// 64-bit FNV-1a accumulator (offset basis / prime per the reference
/// parameters). Words are folded in little-endian byte order.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh accumulator at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one 64-bit word, byte by byte.
    #[inline]
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Canonical fingerprint of a region's scheduling content.
///
/// Hashes, in the cached topological order: each node's topo position,
/// its raw id, its Def and Use register lists (class index + id, in list
/// order), and its successor edges as `(topo position of target,
/// latency)` in stored adjacency order — prefixed by the instruction and
/// edge counts. Everything a scheduler's output can depend on is
/// committed; instruction names are not (see module docs).
pub fn ddg_content_fingerprint(ddg: &Ddg) -> u64 {
    let mut topo_pos = vec![0u64; ddg.len()];
    for (pos, id) in ddg.topo_order().iter().enumerate() {
        topo_pos[id.index()] = pos as u64;
    }
    let mut h = Fnv64::new();
    h.word(ddg.len() as u64);
    h.word(ddg.edge_count() as u64);
    for &id in ddg.topo_order() {
        let i = ddg.instr(id);
        h.word(topo_pos[id.index()]);
        h.word(id.0 as u64);
        h.word(i.defs().len() as u64);
        for r in i.defs() {
            h.word(r.class.index() as u64);
            h.word(r.id as u64);
        }
        h.word(i.uses().len() as u64);
        for r in i.uses() {
            h.word(r.class.index() as u64);
            h.word(r.id as u64);
        }
        let succs = ddg.succs(id);
        h.word(succs.len() as u64);
        for &(s, lat) in succs {
            h.word(topo_pos[s.index()]);
            h.word(lat as u64);
        }
    }
    h.finish()
}

/// Coarse *structure* fingerprint of a region: the template-class key of
/// the tuner's pheromone warm-start store.
///
/// Where [`ddg_content_fingerprint`] commits to everything a scheduler's
/// output can depend on (so equality implies bitwise-identical results),
/// this hash deliberately commits only to the dependence *shape*: the
/// instruction count, each node's Def/Use **counts** (not register
/// identities), and the successor edges as topo-position pairs **without
/// latencies**. Two instantiations of the same template — identical graphs
/// whose latencies or concrete registers differ — therefore share a
/// structure fingerprint while their content fingerprints differ.
///
/// A match is a *hint*, never a proof: consumers may only use it to bias a
/// search (e.g. seeding a pheromone table), not to reuse results. The only
/// hard guarantee equal hashes are given is nothing — even the instruction
/// count must be re-validated by the consumer, since 64-bit collisions are
/// possible.
pub fn ddg_structure_fingerprint(ddg: &Ddg) -> u64 {
    let mut topo_pos = vec![0u64; ddg.len()];
    for (pos, id) in ddg.topo_order().iter().enumerate() {
        topo_pos[id.index()] = pos as u64;
    }
    let mut h = Fnv64::new();
    h.word(ddg.len() as u64);
    h.word(ddg.edge_count() as u64);
    for &id in ddg.topo_order() {
        let i = ddg.instr(id);
        h.word(topo_pos[id.index()]);
        h.word(i.defs().len() as u64);
        h.word(i.uses().len() as u64);
        let succs = ddg.succs(id);
        h.word(succs.len() as u64);
        for &(s, _lat) in succs {
            h.word(topo_pos[s.index()]);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::instr::Reg;

    fn chain(names: [&str; 3], lat: u16) -> Ddg {
        let mut b = DdgBuilder::new();
        let a = b.instr(names[0], [Reg::vgpr(0)], []);
        let c = b.instr(names[1], [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let d = b.instr(names[2], [], [Reg::vgpr(1)]);
        b.edge(a, c, lat).unwrap();
        b.edge(c, d, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_name_blind() {
        let a = chain(["ld", "add", "st"], 4);
        let b = chain(["load_dword", "v_add", "store"], 4);
        assert_eq!(ddg_content_fingerprint(&a), ddg_content_fingerprint(&b));
        assert!(a.content_eq(&b));
        assert!(b.content_eq(&a));
    }

    #[test]
    fn fingerprint_separates_latency_registers_and_shape() {
        let base = chain(["a", "b", "c"], 4);
        let lat = chain(["a", "b", "c"], 5);
        assert_ne!(
            ddg_content_fingerprint(&base),
            ddg_content_fingerprint(&lat)
        );
        assert!(!base.content_eq(&lat));

        let mut b = DdgBuilder::new();
        let x = b.instr("a", [Reg::sgpr(0)], []); // vgpr -> sgpr
        let y = b.instr("b", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let z = b.instr("c", [], [Reg::vgpr(1)]);
        b.edge(x, y, 4).unwrap();
        b.edge(y, z, 1).unwrap();
        let regs = b.build().unwrap();
        assert_ne!(
            ddg_content_fingerprint(&base),
            ddg_content_fingerprint(&regs)
        );
        assert!(!base.content_eq(&regs));

        let mut b = DdgBuilder::new();
        b.instr("a", [Reg::vgpr(0)], []);
        b.instr("b", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let indep = b.build().unwrap();
        assert_ne!(
            ddg_content_fingerprint(&base),
            ddg_content_fingerprint(&indep)
        );
    }

    #[test]
    fn generated_duplicates_agree_and_distinct_seeds_differ() {
        // Same construction twice -> same fingerprint; different latency
        // profile -> different one. (Cross-crate generators are covered by
        // the workloads duplicate_stats tests.)
        let a = chain(["p", "q", "r"], 2);
        let b = chain(["p", "q", "r"], 2);
        assert_eq!(ddg_content_fingerprint(&a), ddg_content_fingerprint(&b));
        let c = chain(["p", "q", "r"], 3);
        assert_ne!(ddg_content_fingerprint(&a), ddg_content_fingerprint(&c));
    }

    #[test]
    fn structure_fingerprint_ignores_latency_and_registers_but_not_shape() {
        // Same shape, different latency: content differs, structure agrees.
        let base = chain(["a", "b", "c"], 4);
        let lat = chain(["a", "b", "c"], 5);
        assert_ne!(
            ddg_content_fingerprint(&base),
            ddg_content_fingerprint(&lat)
        );
        assert_eq!(
            ddg_structure_fingerprint(&base),
            ddg_structure_fingerprint(&lat)
        );

        // Same shape, different register class: structure still agrees.
        let mut b = DdgBuilder::new();
        let x = b.instr("a", [Reg::sgpr(9)], []);
        let y = b.instr("b", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let z = b.instr("c", [], [Reg::vgpr(1)]);
        b.edge(x, y, 4).unwrap();
        b.edge(y, z, 1).unwrap();
        let regs = b.build().unwrap();
        assert_eq!(
            ddg_structure_fingerprint(&base),
            ddg_structure_fingerprint(&regs)
        );

        // Different edge shape: structure differs.
        let mut b = DdgBuilder::new();
        let x = b.instr("a", [Reg::vgpr(0)], []);
        let y = b.instr("b", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let z = b.instr("c", [], [Reg::vgpr(1)]);
        b.edge(x, y, 4).unwrap();
        b.edge(y, z, 1).unwrap();
        b.edge(x, z, 1).unwrap();
        let extra_edge = b.build().unwrap();
        assert_ne!(
            ddg_structure_fingerprint(&base),
            ddg_structure_fingerprint(&extra_edge)
        );

        // Different Def/Use counts at the same shape: structure differs
        // (operand counts steer the guiding heuristics, so they are part of
        // the template class).
        let mut b = DdgBuilder::new();
        let x = b.instr("a", [Reg::vgpr(0), Reg::vgpr(7)], []);
        let y = b.instr("b", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let z = b.instr("c", [], [Reg::vgpr(1)]);
        b.edge(x, y, 4).unwrap();
        b.edge(y, z, 1).unwrap();
        let extra_def = b.build().unwrap();
        assert_ne!(
            ddg_structure_fingerprint(&base),
            ddg_structure_fingerprint(&extra_def)
        );
    }

    #[test]
    fn empty_region_fingerprint_is_stable() {
        let a = DdgBuilder::new().build().unwrap();
        let b = DdgBuilder::new().build().unwrap();
        assert_eq!(ddg_content_fingerprint(&a), ddg_content_fingerprint(&b));
        assert!(a.content_eq(&b));
    }
}
