//! A plain-text interchange format for scheduling regions.
//!
//! One region per file, one item per line:
//!
//! ```text
//! # comment
//! instr <name> [defs <reg>,<reg>,...] [uses <reg>,...]
//! edge <from-index> <to-index> <latency>
//! ```
//!
//! Registers are written AMD-style: `v<N>` (VGPR) or `s<N>` (SGPR).
//! Instruction indices refer to `instr` lines in order of appearance.
//! The format round-trips through [`to_text`] / [`parse`].
//!
//! Parsing is split in two layers:
//!
//! * [`parse_raw`] checks syntax and index ranges only and returns a
//!   [`RawRegion`] with a source position ([`SrcPos`]) on every
//!   instruction and edge. Self edges, duplicate edges, and cycles are
//!   *representable* at this layer — that is what lets `sched-analyze`
//!   diagnose a cyclic region file with a witness cycle instead of a bare
//!   parse error.
//! * [`parse`] (the strict entry everything else uses) runs [`parse_raw`]
//!   and then builds a validated [`Ddg`], rejecting whatever the
//!   [`DdgBuilder`] rejects.
//!
//! # Example
//!
//! ```
//! let text = "\
//! instr load defs v0 uses s0
//! instr add defs v1 uses v0
//! edge 0 1 4
//! ";
//! let ddg = sched_ir::textir::parse(text).unwrap();
//! assert_eq!(ddg.len(), 2);
//! assert_eq!(sched_ir::textir::parse(&sched_ir::textir::to_text(&ddg)).unwrap().len(), 2);
//! ```

use crate::builder::DdgBuilder;
use crate::ddg::Ddg;
use crate::instr::{InstrId, Reg};
use std::error::Error;
use std::fmt;

/// A 1-indexed line/column position in a region text file.
///
/// The column points at the first byte of the token the item (or error)
/// refers to, so diagnostics can render `file:line:col` spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcPos {
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed byte column of the relevant token (0 = unknown).
    pub col: u32,
}

impl fmt::Display for SrcPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "{}", self.line)
        }
    }
}

/// Error produced when parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    /// 1-indexed line of the offending input (0 for whole-graph errors
    /// such as a cycle rejected by the builder).
    pub line: usize,
    /// 1-indexed byte column of the offending token (0 = unknown).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "line {}, column {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseTextError {}

fn err(pos: SrcPos, message: impl Into<String>) -> ParseTextError {
    ParseTextError {
        line: pos.line as usize,
        col: pos.col as usize,
        message: message.into(),
    }
}

/// One `instr` line of a [`RawRegion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInstr {
    /// Instruction name.
    pub name: String,
    /// Defined registers, in written order.
    pub defs: Vec<Reg>,
    /// Used registers, in written order.
    pub uses: Vec<Reg>,
    /// Where the `instr` keyword sits in the source.
    pub pos: SrcPos,
}

/// One `edge` line of a [`RawRegion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEdge {
    /// Producer instruction index.
    pub from: u32,
    /// Consumer instruction index.
    pub to: u32,
    /// Edge latency in cycles.
    pub latency: u16,
    /// Where the `edge` keyword sits in the source.
    pub pos: SrcPos,
}

/// A syntactically valid region with source positions, *before* graph
/// validation: edge endpoints are range-checked, but self edges, duplicate
/// edges, and cycles are representable (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawRegion {
    /// Instructions in file order (edge indices refer to this order).
    pub instrs: Vec<RawInstr>,
    /// Edges in file order.
    pub edges: Vec<RawEdge>,
}

impl RawRegion {
    /// Builds the validated [`Ddg`], rejecting whatever [`DdgBuilder`]
    /// rejects (self edges, cycles), with the error pinned to the source
    /// position of the offending edge where one exists.
    pub fn build(&self) -> Result<Ddg, ParseTextError> {
        let mut b = DdgBuilder::new();
        for ri in &self.instrs {
            b.instr(
                ri.name.clone(),
                ri.defs.iter().copied(),
                ri.uses.iter().copied(),
            );
        }
        for e in &self.edges {
            b.edge(InstrId(e.from), InstrId(e.to), e.latency)
                .map_err(|why| err(e.pos, why.to_string()))?;
        }
        b.build()
            .map_err(|e| err(SrcPos { line: 0, col: 0 }, e.to_string()))
    }
}

/// Whitespace-splits a line into `(1-indexed byte column, token)` pairs.
fn tokens(line: &str) -> impl Iterator<Item = (u32, &str)> {
    line.split_whitespace().map(move |tok| {
        // `split_whitespace` yields subslices of `line`, so the byte offset
        // recovers the column exactly.
        let off = tok.as_ptr() as usize - line.as_ptr() as usize;
        (off as u32 + 1, tok)
    })
}

fn parse_reg(tok: &str, pos: SrcPos) -> Result<Reg, ParseTextError> {
    let (class, rest) = tok.split_at(1.min(tok.len()));
    let id: u32 = rest
        .parse()
        .map_err(|_| err(pos, format!("bad register `{tok}`")))?;
    match class {
        "v" => Ok(Reg::vgpr(id)),
        "s" => Ok(Reg::sgpr(id)),
        _ => Err(err(
            pos,
            format!("bad register class in `{tok}` (expected v<N> or s<N>)"),
        )),
    }
}

fn parse_reg_list(tok: &str, pos: SrcPos) -> Result<Vec<Reg>, ParseTextError> {
    // Column of each register within the comma-joined list.
    let mut col = pos.col;
    let mut regs = Vec::new();
    for part in tok.split(',') {
        if !part.is_empty() {
            regs.push(parse_reg(
                part,
                SrcPos {
                    line: pos.line,
                    col,
                },
            )?);
        }
        col += part.len() as u32 + 1;
    }
    Ok(regs)
}

/// Parses a region's *syntax*, returning a [`RawRegion`] with source
/// positions on every item.
///
/// Edge endpoints are range-checked against the final instruction count
/// (forward references are fine); graph-level validity (self edges,
/// cycles) is deliberately **not** checked here — use
/// [`RawRegion::build`] or [`parse`] for that.
///
/// # Errors
///
/// Returns a [`ParseTextError`] with the line and column of the first
/// offending token: unknown directives, malformed registers, indices, or
/// latencies, or out-of-range edge endpoints.
pub fn parse_raw(text: &str) -> Result<RawRegion, ParseTextError> {
    let mut region = RawRegion::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i as u32 + 1;
        let at = |col: u32| SrcPos { line: line_no, col };
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut toks = tokens(raw);
        let (kw_col, kw) = toks.next().expect("non-blank line has a token");
        match kw {
            "instr" => {
                let (name_col, name) = toks
                    .next()
                    .ok_or_else(|| err(at(kw_col), "instr needs a name"))?;
                let _ = name_col;
                let mut defs = Vec::new();
                let mut uses = Vec::new();
                while let Some((col, kw)) = toks.next() {
                    let (list_col, list) = toks
                        .next()
                        .ok_or_else(|| err(at(col), format!("{kw} needs a list")))?;
                    match kw {
                        "defs" => defs = parse_reg_list(list, at(list_col))?,
                        "uses" => uses = parse_reg_list(list, at(list_col))?,
                        other => return Err(err(at(col), format!("unknown keyword `{other}`"))),
                    }
                }
                region.instrs.push(RawInstr {
                    name: name.to_string(),
                    defs,
                    uses,
                    pos: at(kw_col),
                });
            }
            "edge" => {
                let mut num = |what: &str| -> Result<(u32, u32), ParseTextError> {
                    let (col, tok) = toks
                        .next()
                        .ok_or_else(|| err(at(kw_col), format!("edge needs {what}")))?;
                    let n = tok
                        .parse()
                        .map_err(|_| err(at(col), format!("bad {what}")))?;
                    Ok((col, n))
                };
                let (_, from) = num("a from-index")?;
                let (_, to) = num("a to-index")?;
                let (_, lat) = num("a latency")?;
                region.edges.push(RawEdge {
                    from,
                    to,
                    latency: lat as u16,
                    pos: at(kw_col),
                });
            }
            other => return Err(err(at(kw_col), format!("unknown directive `{other}`"))),
        }
    }
    let n = region.instrs.len() as u32;
    for e in &region.edges {
        for endpoint in [e.from, e.to] {
            if endpoint >= n {
                return Err(err(
                    e.pos,
                    format!("edge endpoint {endpoint} out of range ({n} instructions)"),
                ));
            }
        }
    }
    Ok(region)
}

/// Parses a region from the text format.
///
/// # Errors
///
/// Returns a [`ParseTextError`] naming the first offending line (and,
/// where known, column): unknown directives, malformed
/// registers/indices, out-of-range edge endpoints, or a graph the
/// [`DdgBuilder`] rejects (self edges, cycles).
pub fn parse(text: &str) -> Result<Ddg, ParseTextError> {
    parse_raw(text)?.build()
}

/// Renders a region in the text format (inverse of [`parse`]).
pub fn to_text(ddg: &Ddg) -> String {
    let mut out = String::new();
    for id in ddg.ids() {
        let instr = ddg.instr(id);
        out.push_str("instr ");
        out.push_str(instr.name());
        if !instr.defs().is_empty() {
            let regs: Vec<String> = instr.defs().iter().map(|r| r.to_string()).collect();
            out.push_str(" defs ");
            out.push_str(&regs.join(","));
        }
        if !instr.uses().is_empty() {
            let regs: Vec<String> = instr.uses().iter().map(|r| r.to_string()).collect();
            out.push_str(" uses ");
            out.push_str(&regs.join(","));
        }
        out.push('\n');
    }
    for id in ddg.ids() {
        for &(s, lat) in ddg.succs(id) {
            out.push_str(&format!("edge {} {} {}\n", id.0, s.0, lat));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1;

    #[test]
    fn figure1_roundtrips() {
        let ddg = figure1::ddg();
        let text = to_text(&ddg);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), ddg.len());
        assert_eq!(back.edge_count(), ddg.edge_count());
        for id in ddg.ids() {
            assert_eq!(back.instr(id).name(), ddg.instr(id).name());
            assert_eq!(back.instr(id).defs(), ddg.instr(id).defs());
            assert_eq!(back.succs(id), ddg.succs(id));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let ddg =
            parse("# header\n\ninstr a defs v0\n# mid\ninstr b uses v0\nedge 0 1 2\n").unwrap();
        assert_eq!(ddg.len(), 2);
        assert_eq!(ddg.succs(InstrId(0)), &[(InstrId(1), 2)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("bogus x").unwrap_err().line, 1);
        assert_eq!(parse("instr a\nedge 0 7 1").unwrap_err().line, 2);
        assert_eq!(parse("instr a defs q7").unwrap_err().line, 1);
        assert!(
            parse("instr a\ninstr b\nedge 0 1 1\nedge 1 0 1").is_err(),
            "cycle"
        );
    }

    #[test]
    fn errors_carry_columns() {
        // `q7` is the defs list, at byte column 14 of `instr a defs q7`.
        let e = parse("instr a defs q7").unwrap_err();
        assert_eq!((e.line, e.col), (1, 14));
        // The bad latency token `x` sits at column 10.
        let e = parse("instr a\ninstr b\nedge 0 1 x").unwrap_err();
        assert_eq!((e.line, e.col), (3, 10));
        // Leading indentation shifts the reported column.
        let e = parse("   bogus x").unwrap_err();
        assert_eq!((e.line, e.col), (1, 4));
        // A second register in a defs list gets its own column.
        let e = parse("instr a defs v0,q1").unwrap_err();
        assert_eq!((e.line, e.col), (1, 17));
    }

    #[test]
    fn raw_parse_represents_cycles_and_self_edges() {
        let raw = parse_raw("instr a\ninstr b\nedge 0 1 1\nedge 1 0 1").unwrap();
        assert_eq!(raw.instrs.len(), 2);
        assert_eq!(raw.edges.len(), 2);
        assert!(raw.build().is_err(), "strict build still rejects the cycle");
        let raw = parse_raw("instr a\nedge 0 0 1").unwrap();
        assert_eq!(raw.edges[0].from, raw.edges[0].to);
        assert!(
            raw.build().is_err(),
            "strict build still rejects self edges"
        );
        // Out-of-range endpoints stay a parse error even at the raw layer.
        let e = parse_raw("instr a\nedge 0 7 1").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn raw_positions_point_at_directives() {
        let raw = parse_raw("# hdr\ninstr a defs v0\n\ninstr b uses v0\nedge 0 1 2\n").unwrap();
        assert_eq!(raw.instrs[0].pos, SrcPos { line: 2, col: 1 });
        assert_eq!(raw.instrs[1].pos, SrcPos { line: 4, col: 1 });
        assert_eq!(raw.edges[0].pos, SrcPos { line: 5, col: 1 });
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse("edge 0 0 1").unwrap_err();
        assert!(e.to_string().contains("line 1"));
        let e = parse("instr a defs q7").unwrap_err();
        assert!(e.to_string().contains("column 14"));
    }
}
