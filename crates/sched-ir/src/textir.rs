//! A plain-text interchange format for scheduling regions.
//!
//! One region per file, one item per line:
//!
//! ```text
//! # comment
//! instr <name> [defs <reg>,<reg>,...] [uses <reg>,...]
//! edge <from-index> <to-index> <latency>
//! ```
//!
//! Registers are written AMD-style: `v<N>` (VGPR) or `s<N>` (SGPR).
//! Instruction indices refer to `instr` lines in order of appearance.
//! The format round-trips through [`to_text`] / [`parse`].
//!
//! # Example
//!
//! ```
//! let text = "\
//! instr load defs v0 uses s0
//! instr add defs v1 uses v0
//! edge 0 1 4
//! ";
//! let ddg = sched_ir::textir::parse(text).unwrap();
//! assert_eq!(ddg.len(), 2);
//! assert_eq!(sched_ir::textir::parse(&sched_ir::textir::to_text(&ddg)).unwrap().len(), 2);
//! ```

use crate::builder::DdgBuilder;
use crate::ddg::Ddg;
use crate::instr::{InstrId, Reg};
use std::error::Error;
use std::fmt;

/// Error produced when parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    /// 1-indexed line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTextError {}

fn err(line: usize, message: impl Into<String>) -> ParseTextError {
    ParseTextError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseTextError> {
    let (class, rest) = tok.split_at(1.min(tok.len()));
    let id: u32 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    match class {
        "v" => Ok(Reg::vgpr(id)),
        "s" => Ok(Reg::sgpr(id)),
        _ => Err(err(
            line,
            format!("bad register class in `{tok}` (expected v<N> or s<N>)"),
        )),
    }
}

fn parse_reg_list(tok: &str, line: usize) -> Result<Vec<Reg>, ParseTextError> {
    tok.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| parse_reg(t, line))
        .collect()
}

/// Parses a region from the text format.
///
/// # Errors
///
/// Returns a [`ParseTextError`] naming the first offending line: unknown
/// directives, malformed registers/indices, out-of-range edge endpoints,
/// or a graph the [`DdgBuilder`] rejects (self edges, cycles).
pub fn parse(text: &str) -> Result<Ddg, ParseTextError> {
    let mut b = DdgBuilder::new();
    let mut edges: Vec<(usize, u32, u32, u16)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("instr") => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(line_no, "instr needs a name"))?
                    .to_string();
                let mut defs = Vec::new();
                let mut uses = Vec::new();
                while let Some(kw) = toks.next() {
                    let list = toks
                        .next()
                        .ok_or_else(|| err(line_no, format!("{kw} needs a list")))?;
                    match kw {
                        "defs" => defs = parse_reg_list(list, line_no)?,
                        "uses" => uses = parse_reg_list(list, line_no)?,
                        other => return Err(err(line_no, format!("unknown keyword `{other}`"))),
                    }
                }
                b.instr(name, defs, uses);
            }
            Some("edge") => {
                let mut num = |what: &str| -> Result<u32, ParseTextError> {
                    toks.next()
                        .ok_or_else(|| err(line_no, format!("edge needs {what}")))?
                        .parse()
                        .map_err(|_| err(line_no, format!("bad {what}")))
                };
                let from = num("a from-index")?;
                let to = num("a to-index")?;
                let lat = num("a latency")? as u16;
                edges.push((line_no, from, to, lat));
            }
            Some(other) => return Err(err(line_no, format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines are skipped"),
        }
    }
    for (line_no, from, to, lat) in edges {
        b.edge(InstrId(from), InstrId(to), lat)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    b.build().map_err(|e| err(0, e.to_string()))
}

/// Renders a region in the text format (inverse of [`parse`]).
pub fn to_text(ddg: &Ddg) -> String {
    let mut out = String::new();
    for id in ddg.ids() {
        let instr = ddg.instr(id);
        out.push_str("instr ");
        out.push_str(instr.name());
        if !instr.defs().is_empty() {
            let regs: Vec<String> = instr.defs().iter().map(|r| r.to_string()).collect();
            out.push_str(" defs ");
            out.push_str(&regs.join(","));
        }
        if !instr.uses().is_empty() {
            let regs: Vec<String> = instr.uses().iter().map(|r| r.to_string()).collect();
            out.push_str(" uses ");
            out.push_str(&regs.join(","));
        }
        out.push('\n');
    }
    for id in ddg.ids() {
        for &(s, lat) in ddg.succs(id) {
            out.push_str(&format!("edge {} {} {}\n", id.0, s.0, lat));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1;

    #[test]
    fn figure1_roundtrips() {
        let ddg = figure1::ddg();
        let text = to_text(&ddg);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), ddg.len());
        assert_eq!(back.edge_count(), ddg.edge_count());
        for id in ddg.ids() {
            assert_eq!(back.instr(id).name(), ddg.instr(id).name());
            assert_eq!(back.instr(id).defs(), ddg.instr(id).defs());
            assert_eq!(back.succs(id), ddg.succs(id));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let ddg =
            parse("# header\n\ninstr a defs v0\n# mid\ninstr b uses v0\nedge 0 1 2\n").unwrap();
        assert_eq!(ddg.len(), 2);
        assert_eq!(ddg.succs(InstrId(0)), &[(InstrId(1), 2)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("bogus x").unwrap_err().line, 1);
        assert_eq!(parse("instr a\nedge 0 7 1").unwrap_err().line, 2);
        assert_eq!(parse("instr a defs q7").unwrap_err().line, 1);
        assert!(
            parse("instr a\ninstr b\nedge 0 1 1\nedge 1 0 1").is_err(),
            "cycle"
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse("edge 0 0 1").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
