//! The data dependence graph of a scheduling region.

use crate::bitmatrix::BitMatrix;
use crate::instr::{InstrId, Instruction};

/// A data dependence graph (DDG): the input to every scheduler.
///
/// Nodes are [`Instruction`]s, edges carry latencies. A `Ddg` is immutable
/// and validated at construction time (see [`crate::DdgBuilder`]): it is
/// guaranteed acyclic, and `topo_order` is a cached topological order.
///
/// Mirrors the problem definition of Section II-A of the paper: "In a DDG, a
/// node represents an instruction, an edge represents a dependency and an
/// edge label represents a latency."
///
/// Adjacency is stored in CSR (compressed sparse row) form: one flat edge
/// array per direction plus `n + 1` offsets, so a region's whole edge set
/// lives in two contiguous allocations and `succs(id)`/`preds(id)` are
/// offset-pair slices. Per-list *stored order* is identical to what the
/// old `Vec<Vec<_>>` layout held — `content_eq`, the content fingerprint,
/// and ACO tie-breaking all depend on it.
#[derive(Debug, Clone)]
pub struct Ddg {
    pub(crate) instrs: Vec<Instruction>,
    pub(crate) succ_off: Vec<u32>,
    pub(crate) succ_edges: Vec<(InstrId, u16)>,
    pub(crate) pred_off: Vec<u32>,
    pub(crate) pred_edges: Vec<(InstrId, u16)>,
    pub(crate) pred_counts: Vec<u32>,
    pub(crate) topo: Vec<InstrId>,
    pub(crate) roots: Vec<InstrId>,
}

impl Ddg {
    /// Number of instructions in the region.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn instr(&self, id: InstrId) -> &Instruction {
        &self.instrs[id.index()]
    }

    /// All instructions, indexed by [`InstrId`].
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Successor edges of `id` as `(successor, latency)` pairs.
    #[inline]
    pub fn succs(&self, id: InstrId) -> &[(InstrId, u16)] {
        let i = id.index();
        &self.succ_edges[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Predecessor edges of `id` as `(predecessor, latency)` pairs.
    #[inline]
    pub fn preds(&self, id: InstrId) -> &[(InstrId, u16)] {
        let i = id.index();
        &self.pred_edges[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Number of dependence edges. Cached at build time (it is the length
    /// of the flat CSR edge array), so calling this in a loop is free.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.succ_edges.len()
    }

    /// Predecessor count of every instruction, indexed by [`InstrId`].
    ///
    /// This is the initial pending-predecessor vector every ant reset
    /// needs; exposing it as a slice lets resets be a single `memcpy`
    /// instead of a per-id `preds(id).len()` loop.
    #[inline]
    pub fn pred_counts(&self) -> &[u32] {
        &self.pred_counts
    }

    /// Instructions with no predecessors (ready at cycle 0), in id order.
    ///
    /// Cached at build time: every ant construction seeds its ready list
    /// from the roots, so deriving them would otherwise put a full preds
    /// scan on the colony's hottest path.
    pub fn roots(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.roots.iter().copied()
    }

    /// Instructions with no successors.
    pub fn leaves(&self) -> impl Iterator<Item = InstrId> + '_ {
        (0..self.len())
            .filter_map(|i| (self.succ_off[i] == self.succ_off[i + 1]).then_some(InstrId(i as u32)))
    }

    /// A topological order of the instructions (cached at build time).
    pub fn topo_order(&self) -> &[InstrId] {
        &self.topo
    }

    /// Iterates over all instruction ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = InstrId> {
        (0..self.len() as u32).map(InstrId)
    }

    /// Whether two regions have identical *scheduling content*: the same
    /// instruction count, the same Def/Use register sets per id, and the
    /// same successor edges (targets and latencies) in the same stored
    /// order.
    ///
    /// Instruction names are deliberately excluded: no scheduler reads
    /// them and no schedule, pressure, or cost result depends on them, so
    /// two regions that differ only in names schedule identically. Edge
    /// *order* is included because ACO's tie-breaking walks the adjacency
    /// lists in stored order — equality here must guarantee bitwise-equal
    /// scheduler output, not just isomorphism.
    pub fn content_eq(&self, other: &Ddg) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let regs_eq = self
            .instrs
            .iter()
            .zip(&other.instrs)
            .all(|(a, b)| a.defs() == b.defs() && a.uses() == b.uses());
        // Offsets + flat edges compare exactly what the per-id adjacency
        // lists used to: the same targets and latencies in the same stored
        // order, partitioned identically across instructions.
        regs_eq && self.succ_off == other.succ_off && self.succ_edges == other.succ_edges
    }

    /// Computes the transitive closure of the dependence relation.
    ///
    /// The closure answers, for every pair `(x, y)`, whether `y` transitively
    /// depends on `x`. Section V-A of the paper uses it to derive a tight
    /// upper bound on the ready-list size, which in turn sizes the
    /// preallocated GPU arrays.
    pub fn transitive_closure(&self) -> TransitiveClosure {
        let n = self.len();
        let mut reach = BitMatrix::new(n);
        // Process in reverse topological order so each node's row already
        // contains its successors' full reachability when merged.
        for &id in self.topo.iter().rev() {
            for &(succ, _) in self.succs(id) {
                reach.set(id.index(), succ.index());
                reach.or_row_into(succ.index(), id.index());
            }
        }
        // Precompute per-node descendant (row popcount) and ancestor
        // (column popcount, one word-level sweep) totals so the
        // independence queries below are O(1) instead of O(n) single-bit
        // column probes each.
        let desc_counts: Vec<u32> = (0..n).map(|i| reach.count_row(i) as u32).collect();
        let mut anc_counts = vec![0u32; n];
        reach.accumulate_column_counts(&mut anc_counts);
        TransitiveClosure {
            reach,
            desc_counts,
            anc_counts,
        }
    }
}

/// The transitive closure of a [`Ddg`]'s dependence relation.
///
/// `depends(x, y)` is true when `y` must execute after `x` (there is a
/// directed path `x -> ... -> y`).
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    reach: BitMatrix,
    desc_counts: Vec<u32>,
    anc_counts: Vec<u32>,
}

impl TransitiveClosure {
    /// Whether `later` transitively depends on `earlier`.
    pub fn depends(&self, earlier: InstrId, later: InstrId) -> bool {
        self.reach.get(earlier.index(), later.index())
    }

    /// Whether the two instructions are independent (neither reaches the
    /// other, and they are distinct).
    pub fn independent(&self, a: InstrId, b: InstrId) -> bool {
        a != b && !self.depends(a, b) && !self.depends(b, a)
    }

    /// Number of instructions independent of `id`.
    ///
    /// O(1): descendant and ancestor totals are precomputed at closure
    /// construction (`n - 1` for self, minus both).
    pub fn independent_count(&self, id: InstrId) -> usize {
        let n = self.reach.len();
        n - 1 - self.desc_counts[id.index()] as usize - self.anc_counts[id.index()] as usize
    }

    /// The tight ready-list upper bound of Section V-A: one plus the maximum
    /// number of independent instructions any instruction has.
    ///
    /// For the Figure-1 DDG this is 5, versus the loose bound of 7 (the
    /// instruction count). O(n) over the precomputed counts.
    pub fn ready_list_ub(&self) -> usize {
        let n = self.reach.len();
        if n == 0 {
            return 0;
        }
        let max_indep = (0..n as u32)
            .map(|i| self.independent_count(InstrId(i)))
            .max()
            .unwrap_or(0);
        (1 + max_indep).min(n)
    }

    /// Side length (number of instructions).
    pub fn len(&self) -> usize {
        self.reach.len()
    }

    /// Whether the closure covers zero instructions.
    pub fn is_empty(&self) -> bool {
        self.reach.is_empty()
    }

    /// Iterates over the transitive successors of `id`.
    pub fn descendants(&self, id: InstrId) -> impl Iterator<Item = InstrId> + '_ {
        self.reach.iter_row(id.index()).map(|j| InstrId(j as u32))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DdgBuilder;
    use crate::instr::InstrId;

    /// Builds a diamond: a -> b, a -> c, b -> d, c -> d.
    fn diamond() -> crate::Ddg {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        let x = b.instr("b", [], []);
        let y = b.instr("c", [], []);
        let d = b.instr("d", [], []);
        b.edge(a, x, 1).unwrap();
        b.edge(a, y, 1).unwrap();
        b.edge(x, d, 1).unwrap();
        b.edge(y, d, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roots_and_leaves() {
        let g = diamond();
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![InstrId(0)]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![InstrId(3)]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn cached_roots_match_preds_scan_in_id_order() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        let x = b.instr("b", [], []);
        let y = b.instr("c", [], []);
        b.instr("d", [], []);
        b.edge(a, y, 1).unwrap();
        b.edge(x, y, 1).unwrap();
        let g = b.build().unwrap();
        let scanned: Vec<InstrId> = g.ids().filter(|&i| g.preds(i).is_empty()).collect();
        assert_eq!(g.roots().collect::<Vec<_>>(), scanned);
        assert_eq!(scanned, vec![InstrId(0), InstrId(1), InstrId(3)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for id in g.ids() {
            for &(s, _) in g.succs(id) {
                assert!(pos[id.index()] < pos[s.index()]);
            }
        }
    }

    #[test]
    fn closure_diamond() {
        let g = diamond();
        let tc = g.transitive_closure();
        let (a, b, c, d) = (InstrId(0), InstrId(1), InstrId(2), InstrId(3));
        assert!(tc.depends(a, d)); // transitive
        assert!(tc.depends(a, b));
        assert!(!tc.depends(d, a));
        assert!(tc.independent(b, c));
        assert!(!tc.independent(a, a));
        assert_eq!(tc.independent_count(b), 1); // only c
        assert_eq!(tc.ready_list_ub(), 2);
    }

    #[test]
    fn closure_descendants() {
        let g = diamond();
        let tc = g.transitive_closure();
        let mut desc: Vec<_> = tc.descendants(InstrId(0)).collect();
        desc.sort();
        assert_eq!(desc, vec![InstrId(1), InstrId(2), InstrId(3)]);
    }

    #[test]
    fn independent_chain_has_ub_one() {
        let mut b = DdgBuilder::new();
        let i0 = b.instr("x", [], []);
        let i1 = b.instr("y", [], []);
        let i2 = b.instr("z", [], []);
        b.edge(i0, i1, 1).unwrap();
        b.edge(i1, i2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.transitive_closure().ready_list_ub(), 1);
    }

    #[test]
    fn fully_independent_has_ub_n() {
        let mut b = DdgBuilder::new();
        for i in 0..6 {
            b.instr(format!("i{i}"), [], []);
        }
        let g = b.build().unwrap();
        assert_eq!(g.transitive_closure().ready_list_ub(), 6);
    }

    #[test]
    fn empty_ddg() {
        let g = DdgBuilder::new().build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.transitive_closure().ready_list_ub(), 0);
    }
}
