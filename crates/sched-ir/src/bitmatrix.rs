//! A dense square bit matrix used for transitive closures.

/// A square matrix of bits packed into `u64` words, row-major.
///
/// Used by [`crate::TransitiveClosure`] to store the reachability relation of
/// a DDG. For the region sizes the paper reports (up to ~2,200 instructions)
/// a dense bitset closure is both compact (~600 KiB worst case) and fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an `n`×`n` matrix of zeros.
    pub fn new(n: usize) -> BitMatrix {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// Side length of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(
            row < self.n && col < self.n,
            "bit ({row},{col}) out of bounds for {}",
            self.n
        );
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.n && col < self.n,
            "bit ({row},{col}) out of bounds for {}",
            self.n
        );
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`), the kernel of the
    /// closure computation.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of bounds.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n);
        if src == dst {
            return;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        // Split borrows: rows never overlap because src != dst.
        if s < d {
            let (a, b) = self.bits.split_at_mut(d);
            for i in 0..w {
                b[i] |= a[s + i];
            }
        } else {
            let (a, b) = self.bits.split_at_mut(s);
            for i in 0..w {
                a[d + i] |= b[i];
            }
        }
    }

    /// Number of set bits in `row`.
    pub fn count_row(&self, row: usize) -> usize {
        assert!(row < self.n);
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Adds one to `counts[col]` for every set bit `(row, col)` in the
    /// matrix — a column population count done with one word-level sweep
    /// over the backing store (popcount-style bit iteration) instead of
    /// `n` single-bit column probes per column.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than the side length.
    pub fn accumulate_column_counts(&self, counts: &mut [u32]) {
        assert!(counts.len() >= self.n, "counts slice shorter than matrix");
        let w = self.words_per_row;
        for row in 0..self.n {
            for (wi, &word) in self.bits[row * w..(row + 1) * w].iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    counts[wi * 64 + tz] += 1;
                }
            }
        }
    }

    /// Iterates over the column indices of set bits in `row`.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(row < self.n);
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let m = BitMatrix::new(70);
        for r in 0..70 {
            for c in 0..70 {
                assert!(!m.get(r, c));
            }
        }
    }

    #[test]
    fn set_and_get_across_word_boundary() {
        let mut m = BitMatrix::new(130);
        m.set(1, 63);
        m.set(1, 64);
        m.set(1, 129);
        assert!(m.get(1, 63));
        assert!(m.get(1, 64));
        assert!(m.get(1, 129));
        assert!(!m.get(1, 65));
        assert_eq!(m.count_row(1), 3);
        assert_eq!(m.count_row(0), 0);
    }

    #[test]
    fn or_row_into_merges_rows_both_directions() {
        let mut m = BitMatrix::new(10);
        m.set(2, 1);
        m.set(5, 7);
        m.or_row_into(2, 5); // forward (src < dst)
        assert!(m.get(5, 1) && m.get(5, 7));
        m.or_row_into(5, 0); // backward (src > dst)
        assert!(m.get(0, 1) && m.get(0, 7));
        // src row unchanged
        assert!(m.get(2, 1) && !m.get(2, 7));
    }

    #[test]
    fn or_row_into_self_is_noop() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        m.or_row_into(1, 1);
        assert!(m.get(1, 2));
        assert_eq!(m.count_row(1), 1);
    }

    #[test]
    fn iter_row_yields_sorted_set_bits() {
        let mut m = BitMatrix::new(200);
        for &c in &[0usize, 5, 63, 64, 100, 199] {
            m.set(3, c);
        }
        let got: Vec<usize> = m.iter_row(3).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 100, 199]);
    }

    #[test]
    fn column_counts_match_per_column_probes() {
        let mut m = BitMatrix::new(130);
        for &(r, c) in &[
            (0usize, 0usize),
            (1, 0),
            (5, 63),
            (5, 64),
            (7, 129),
            (9, 64),
        ] {
            m.set(r, c);
        }
        let mut counts = vec![0u32; 130];
        m.accumulate_column_counts(&mut counts);
        for (c, &count) in counts.iter().enumerate() {
            let brute = (0..130).filter(|&r| m.get(r, c)).count() as u32;
            assert_eq!(count, brute, "column {c}");
        }
        assert_eq!(counts[0], 2);
        assert_eq!(counts[64], 2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let m = BitMatrix::new(4);
        m.get(4, 0);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
