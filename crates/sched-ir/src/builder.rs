//! Construction and validation of [`Ddg`]s.

use crate::ddg::Ddg;
use crate::instr::{InstrId, Instruction, Reg};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error produced when a [`DdgBuilder`] is given an invalid graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgError {
    /// An edge referenced an instruction id that was never added.
    UnknownInstr(InstrId),
    /// A self edge `x -> x` was added.
    SelfEdge(InstrId),
    /// The dependence graph contains a cycle (no topological order exists).
    Cyclic,
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::UnknownInstr(id) => write!(f, "edge references unknown instruction {id}"),
            DdgError::SelfEdge(id) => write!(f, "self edge on instruction {id}"),
            DdgError::Cyclic => write!(f, "dependence graph contains a cycle"),
        }
    }
}

impl Error for DdgError {}

/// Incremental builder for a [`Ddg`].
///
/// # Example
///
/// ```
/// use sched_ir::{DdgBuilder, Reg};
///
/// let mut b = DdgBuilder::new();
/// let producer = b.instr("load", [Reg::vgpr(0)], []);
/// let consumer = b.instr("use", [], [Reg::vgpr(0)]);
/// b.edge(producer, consumer, 8)?;
/// let ddg = b.build()?;
/// assert_eq!(ddg.len(), 2);
/// # Ok::<(), sched_ir::DdgError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct DdgBuilder {
    instrs: Vec<Instruction>,
    edges: Vec<(InstrId, InstrId, u16)>,
}

impl DdgBuilder {
    /// Creates an empty builder.
    pub fn new() -> DdgBuilder {
        DdgBuilder::default()
    }

    /// Adds an instruction and returns its id.
    pub fn instr(
        &mut self,
        name: impl Into<String>,
        defs: impl IntoIterator<Item = Reg>,
        uses: impl IntoIterator<Item = Reg>,
    ) -> InstrId {
        let id = InstrId(self.instrs.len() as u32);
        self.instrs.push(Instruction::new(name, defs, uses));
        id
    }

    /// Adds a pre-built instruction and returns its id.
    pub fn push(&mut self, instruction: Instruction) -> InstrId {
        let id = InstrId(self.instrs.len() as u32);
        self.instrs.push(instruction);
        id
    }

    /// Adds a dependence edge with the given latency.
    ///
    /// A latency of `l` means the consumer may issue no earlier than
    /// `l` cycles after the producer (producer cycle + latency).
    ///
    /// # Errors
    ///
    /// Returns [`DdgError::UnknownInstr`] if either endpoint has not been
    /// added, or [`DdgError::SelfEdge`] for an `x -> x` edge.
    pub fn edge(&mut self, from: InstrId, to: InstrId, latency: u16) -> Result<(), DdgError> {
        let n = self.instrs.len() as u32;
        for &id in &[from, to] {
            if id.0 >= n {
                return Err(DdgError::UnknownInstr(id));
            }
        }
        if from == to {
            return Err(DdgError::SelfEdge(from));
        }
        self.edges.push((from, to, latency));
        Ok(())
    }

    /// Number of instructions added so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instruction has been added yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Validates the graph and produces an immutable [`Ddg`].
    ///
    /// Duplicate edges between the same pair are merged, keeping the largest
    /// latency (the binding constraint).
    ///
    /// # Errors
    ///
    /// Returns [`DdgError::Cyclic`] if the edges admit no topological order.
    pub fn build(self) -> Result<Ddg, DdgError> {
        let n = self.instrs.len();
        let mut succs: Vec<Vec<(InstrId, u16)>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<(InstrId, u16)>> = vec![Vec::new(); n];
        for (from, to, lat) in self.edges {
            // Merge duplicates, keeping max latency.
            match succs[from.index()].iter_mut().find(|(t, _)| *t == to) {
                Some((_, l)) => {
                    if lat > *l {
                        *l = lat;
                        let p = preds[to.index()]
                            .iter_mut()
                            .find(|(f, _)| *f == from)
                            .expect("pred mirror of existing succ edge");
                        p.1 = lat;
                    }
                }
                None => {
                    succs[from.index()].push((to, lat));
                    preds[to.index()].push((from, lat));
                }
            }
        }

        // Kahn's algorithm for topological sort + cycle detection. The
        // initial zero-indegree set doubles as the cached root set (in id
        // order, matching what the old preds scan produced).
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: VecDeque<InstrId> = (0..n as u32)
            .map(InstrId)
            .filter(|i| indeg[i.index()] == 0)
            .collect();
        let roots: Vec<InstrId> = queue.iter().copied().collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            for &(s, _) in &succs[id.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if topo.len() != n {
            return Err(DdgError::Cyclic);
        }

        // Flatten the per-id lists into CSR form. This is the cold path —
        // builds happen once per region — so the temporary `Vec<Vec<_>>`
        // assembly above is fine; what matters is that every per-id slice
        // keeps its stored order (first-insertion order with duplicates
        // merged in place), which the flattening preserves exactly.
        let (succ_off, succ_edges) = flatten_csr(&succs);
        let (pred_off, pred_edges) = flatten_csr(&preds);
        let pred_counts: Vec<u32> = preds.iter().map(|p| p.len() as u32).collect();

        Ok(Ddg {
            instrs: self.instrs,
            succ_off,
            succ_edges,
            pred_off,
            pred_edges,
            pred_counts,
            topo,
            roots,
        })
    }
}

/// Flattens per-id adjacency lists into `(offsets, flat edges)` CSR arrays,
/// preserving per-list stored order.
fn flatten_csr(lists: &[Vec<(InstrId, u16)>]) -> (Vec<u32>, Vec<(InstrId, u16)>) {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut off = Vec::with_capacity(lists.len() + 1);
    let mut edges = Vec::with_capacity(total);
    off.push(0u32);
    for list in lists {
        edges.extend_from_slice(list);
        off.push(edges.len() as u32);
    }
    (off, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_endpoints() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        assert_eq!(
            b.edge(a, InstrId(5), 1),
            Err(DdgError::UnknownInstr(InstrId(5)))
        );
        assert_eq!(
            b.edge(InstrId(7), a, 1),
            Err(DdgError::UnknownInstr(InstrId(7)))
        );
    }

    #[test]
    fn rejects_self_edges() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        assert_eq!(b.edge(a, a, 1), Err(DdgError::SelfEdge(a)));
    }

    #[test]
    fn detects_cycles() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        let c = b.instr("b", [], []);
        b.edge(a, c, 1).unwrap();
        b.edge(c, a, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), DdgError::Cyclic);
    }

    #[test]
    fn merges_duplicate_edges_keeping_max_latency() {
        let mut b = DdgBuilder::new();
        let a = b.instr("a", [], []);
        let c = b.instr("b", [], []);
        b.edge(a, c, 2).unwrap();
        b.edge(a, c, 9).unwrap();
        b.edge(a, c, 4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.succs(a), &[(c, 9)]);
        assert_eq!(g.preds(c), &[(a, 9)]);
        // The cached count must agree with what the builder merged down to.
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.pred_counts(), &[0, 1]);
    }

    #[test]
    fn push_prebuilt_instruction() {
        let mut b = DdgBuilder::new();
        let id = b.push(Instruction::new("nop", [], []));
        assert_eq!(id, InstrId(0));
        assert!(!b.is_empty());
        assert_eq!(b.len(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.instr(id).name(), "nop");
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(DdgError::Cyclic.to_string().contains("cycle"));
        assert!(DdgError::SelfEdge(InstrId(1)).to_string().contains("i1"));
        assert!(DdgError::UnknownInstr(InstrId(2))
            .to_string()
            .contains("i2"));
    }
}
