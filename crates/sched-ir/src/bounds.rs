//! Critical-path analyses and lower bounds.
//!
//! The ACO pipeline gates its invocation on lower bounds (Section VI-A): a
//! heuristic schedule that already matches the lower bound is provably
//! optimal and ACO is skipped. This module provides
//!
//! * latency-weighted critical-path distances (forward and backward), which
//!   also drive the Critical-Path guiding heuristic, and
//! * schedule-length and register-pressure lower bounds.

use crate::ddg::Ddg;
use crate::instr::{RegClass, REG_CLASS_COUNT};
use crate::schedule::Cycle;

/// Effective latency of a dependence edge under single-issue semantics:
/// even a latency-0 edge separates producer and consumer by one cycle,
/// because only one instruction issues per cycle. Shared by the forward
/// ([`Ddg::earliest_starts`]) and backward ([`Ddg::distance_to_leaf`])
/// critical-path analyses so they agree on 0-latency edges.
#[inline]
pub fn effective_latency(lat: u16) -> Cycle {
    (lat as Cycle).max(1)
}

impl Ddg {
    /// Earliest possible issue cycle of each instruction, considering
    /// latencies only (infinite issue width). This is the longest
    /// effective-latency-weighted path from any root.
    pub fn earliest_starts(&self) -> Vec<Cycle> {
        let mut est = vec![0 as Cycle; self.len()];
        for &id in self.topo_order() {
            for &(succ, lat) in self.succs(id) {
                let cand = est[id.index()] + effective_latency(lat);
                if cand > est[succ.index()] {
                    est[succ.index()] = cand;
                }
            }
        }
        est
    }

    /// Latency-weighted distance from each instruction to the end of the
    /// region: the longest path to any leaf, counting the instruction's own
    /// issue cycle. A leaf has distance 1 (its own cycle).
    ///
    /// This is the classic Critical-Path priority: scheduling the
    /// largest-distance instruction first tends to minimize the overall
    /// schedule length.
    pub fn distance_to_leaf(&self) -> Vec<Cycle> {
        let mut dist = vec![1 as Cycle; self.len()];
        for &id in self.topo_order().iter().rev() {
            for &(succ, lat) in self.succs(id) {
                let cand = dist[succ.index()] + effective_latency(lat);
                if cand > dist[id.index()] {
                    dist[id.index()] = cand;
                }
            }
        }
        dist
    }

    /// Length in cycles of the critical (longest latency) path.
    pub fn critical_path_length(&self) -> Cycle {
        self.distance_to_leaf().into_iter().max().unwrap_or(0)
    }

    /// Lower bound on the length of any single-issue schedule:
    /// `max(instruction count, critical path length)`.
    ///
    /// ```
    /// use sched_ir::figure1;
    /// let ddg = figure1::ddg();
    /// assert!(ddg.schedule_length_lb() >= ddg.len() as u32);
    /// ```
    pub fn schedule_length_lb(&self) -> Cycle {
        (self.len() as Cycle).max(self.critical_path_length())
    }

    /// Per-class register statistics of the region.
    ///
    /// Uses per-class dense tables indexed by register id (generators hand
    /// out small dense ids, so these stay compact) instead of hashing every
    /// register mention — this analysis runs for every region compiled.
    pub fn reg_stats(&self) -> RegStats {
        const USED: u8 = 1;
        const DEFINED: u8 = 2;
        let mut flags: [Vec<u8>; REG_CLASS_COUNT] = Default::default();
        let mark = |table: &mut Vec<u8>, id: u32, bit: u8| {
            let i = id as usize;
            if table.len() <= i {
                table.resize(i + 1, 0);
            }
            table[i] |= bit;
        };
        for id in self.ids() {
            let instr = self.instr(id);
            for &r in instr.uses() {
                mark(&mut flags[r.class.index()], r.id, USED);
            }
            for &r in instr.defs() {
                mark(&mut flags[r.class.index()], r.id, DEFINED);
            }
        }
        let mut live_in = [0usize; REG_CLASS_COUNT];
        let mut live_out = [0usize; REG_CLASS_COUNT];
        let mut reg_count = [0usize; REG_CLASS_COUNT];
        for c in 0..REG_CLASS_COUNT {
            for &f in &flags[c] {
                match f {
                    USED => live_in[c] += 1,
                    DEFINED => live_out[c] += 1,
                    _ => {}
                }
                if f != 0 {
                    reg_count[c] += 1;
                }
            }
        }
        RegStats {
            live_in,
            live_out,
            reg_count,
        }
    }

    /// Per-class lower bound on the peak register pressure of any schedule.
    ///
    /// Sound components: all live-in registers of a class are simultaneously
    /// live at region entry; all live-out registers (defined but never used
    /// in the region) are simultaneously live at region exit; and any single
    /// instruction's defs are simultaneously live right after it issues.
    pub fn rp_lower_bound(&self) -> [usize; REG_CLASS_COUNT] {
        let stats = self.reg_stats();
        let mut lb = [0usize; REG_CLASS_COUNT];
        for class in RegClass::ALL {
            let c = class.index();
            lb[c] = stats.live_in[c].max(stats.live_out[c]);
            for id in self.ids() {
                lb[c] = lb[c].max(self.instr(id).defs_of(class));
            }
        }
        lb
    }
}

/// Per-class register statistics of a region (see [`Ddg::reg_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegStats {
    /// Registers used but never defined in the region, per class.
    pub live_in: [usize; REG_CLASS_COUNT],
    /// Registers defined but never used in the region, per class.
    pub live_out: [usize; REG_CLASS_COUNT],
    /// Distinct registers mentioned in the region, per class.
    pub reg_count: [usize; REG_CLASS_COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::instr::Reg;

    #[test]
    fn earliest_starts_follow_longest_path() {
        // a --2--> b --3--> d ;  a --1--> c --1--> d
        let mut bld = DdgBuilder::new();
        let a = bld.instr("a", [], []);
        let b = bld.instr("b", [], []);
        let c = bld.instr("c", [], []);
        let d = bld.instr("d", [], []);
        bld.edge(a, b, 2).unwrap();
        bld.edge(b, d, 3).unwrap();
        bld.edge(a, c, 1).unwrap();
        bld.edge(c, d, 1).unwrap();
        let g = bld.build().unwrap();
        let est = g.earliest_starts();
        assert_eq!(est[a.index()], 0);
        assert_eq!(est[b.index()], 2);
        assert_eq!(est[c.index()], 1);
        assert_eq!(est[d.index()], 5);
        assert_eq!(g.critical_path_length(), 6);
        assert_eq!(g.schedule_length_lb(), 6); // cp (6) > n (4)
    }

    #[test]
    fn length_lb_is_instruction_count_when_no_latency() {
        let mut bld = DdgBuilder::new();
        for i in 0..5 {
            bld.instr(format!("i{i}"), [], []);
        }
        let g = bld.build().unwrap();
        assert_eq!(g.critical_path_length(), 1);
        assert_eq!(g.schedule_length_lb(), 5);
    }

    #[test]
    fn distance_to_leaf_counts_own_cycle() {
        let mut bld = DdgBuilder::new();
        let a = bld.instr("a", [], []);
        let b = bld.instr("b", [], []);
        bld.edge(a, b, 4).unwrap();
        let g = bld.build().unwrap();
        let d = g.distance_to_leaf();
        assert_eq!(d[b.index()], 1);
        assert_eq!(d[a.index()], 5);
    }

    #[test]
    fn zero_latency_edges_still_cost_a_cycle_in_cp() {
        // On a single-issue machine consecutive instructions occupy distinct
        // cycles even with latency 0.
        let mut bld = DdgBuilder::new();
        let a = bld.instr("a", [], []);
        let b = bld.instr("b", [], []);
        bld.edge(a, b, 0).unwrap();
        let g = bld.build().unwrap();
        assert_eq!(g.distance_to_leaf()[a.index()], 2);
    }

    #[test]
    fn zero_latency_edges_still_cost_a_cycle_in_earliest_starts() {
        // Forward mirror of the backward test above: with latency 0, `b`
        // still cannot issue in `a`'s cycle on a single-issue machine, so
        // both CP analyses must agree on effective latency 1.
        let mut bld = DdgBuilder::new();
        let a = bld.instr("a", [], []);
        let b = bld.instr("b", [], []);
        bld.edge(a, b, 0).unwrap();
        let g = bld.build().unwrap();
        let est = g.earliest_starts();
        assert_eq!(est[a.index()], 0);
        assert_eq!(est[b.index()], 1);
        assert_eq!(g.critical_path_length(), 2);
        // The two analyses agree on the same effective edge weight.
        assert_eq!(super::effective_latency(0), 1);
        assert_eq!(super::effective_latency(7), 7);
    }

    #[test]
    fn reg_stats_classifies_live_in_and_out() {
        let mut bld = DdgBuilder::new();
        // uses v0 (live-in), defines v1 used later, defines v2 never used
        // (live-out), defines s0 never used (live-out).
        let a = bld.instr("a", [Reg::vgpr(1), Reg::vgpr(2)], [Reg::vgpr(0)]);
        let b = bld.instr("b", [Reg::sgpr(0)], [Reg::vgpr(1)]);
        bld.edge(a, b, 1).unwrap();
        let g = bld.build().unwrap();
        let s = g.reg_stats();
        assert_eq!(s.live_in[RegClass::Vgpr.index()], 1);
        assert_eq!(s.live_in[RegClass::Sgpr.index()], 0);
        assert_eq!(s.live_out[RegClass::Vgpr.index()], 1); // v2
        assert_eq!(s.live_out[RegClass::Sgpr.index()], 1); // s0
        assert_eq!(s.reg_count[RegClass::Vgpr.index()], 3); // v0, v1, v2
    }

    #[test]
    fn rp_lb_covers_wide_defs() {
        let mut bld = DdgBuilder::new();
        bld.instr("wide", [Reg::vgpr(0), Reg::vgpr(1), Reg::vgpr(2)], []);
        let g = bld.build().unwrap();
        assert_eq!(g.rp_lower_bound()[RegClass::Vgpr.index()], 3);
    }

    #[test]
    fn empty_region_bounds() {
        let g = DdgBuilder::new().build().unwrap();
        assert_eq!(g.schedule_length_lb(), 0);
        assert_eq!(g.rp_lower_bound(), [0, 0]);
    }
}
