//! Schedules: assignments of issue cycles to instructions.

use crate::ddg::Ddg;
use crate::instr::{InstrId, Reg};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A machine cycle index within a schedule.
pub type Cycle = u32;

/// Error produced by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule covers a different number of instructions than the DDG.
    WrongLength { expected: usize, actual: usize },
    /// A register is used at or before the cycle its value is defined.
    ///
    /// Caught directly from the instructions' def/use sets, so it fires
    /// even when the corresponding DDG edge was never materialized.
    DependenceViolation {
        def: InstrId,
        user: InstrId,
        reg: Reg,
    },
    /// A latency constraint `from -> to` is violated.
    LatencyViolation {
        from: InstrId,
        to: InstrId,
        required: Cycle,
        actual: Cycle,
    },
    /// Two instructions share a cycle on a single-issue machine.
    IssueConflict {
        cycle: Cycle,
        a: InstrId,
        b: InstrId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, actual } => {
                write!(f, "schedule has {actual} instructions, DDG has {expected}")
            }
            ScheduleError::DependenceViolation { def, user, reg } => write!(
                f,
                "dependence violation: {user} reads {reg} at or before its \
                 definition by {def}"
            ),
            ScheduleError::LatencyViolation {
                from,
                to,
                required,
                actual,
            } => write!(
                f,
                "latency violation: {to} must issue at cycle {required} or later \
                 (producer {from}), but issues at {actual}"
            ),
            ScheduleError::IssueConflict { cycle, a, b } => {
                write!(
                    f,
                    "single-issue conflict at cycle {cycle} between {a} and {b}"
                )
            }
        }
    }
}

impl Error for ScheduleError {}

/// A schedule: one issue cycle per instruction of a region.
///
/// A schedule is more than an order — on a latency-constrained target some
/// cycles hold no instruction (stalls). This matches the paper's output
/// definition: "an assignment of a machine cycle to each instruction".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    cycles: Vec<Cycle>,
}

impl Schedule {
    /// Creates a schedule from per-instruction cycles (indexed by
    /// [`InstrId`]).
    pub fn from_cycles(cycles: Vec<Cycle>) -> Schedule {
        Schedule { cycles }
    }

    /// Builds the single-issue schedule obtained by issuing instructions in
    /// `order` as early as latencies allow, inserting necessary stalls.
    ///
    /// This is how a pass-1 (latency-free) instruction *order* is converted
    /// into a timed schedule, as done between the two passes in Section IV-C.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the DDG's instructions that
    /// respects its precedence constraints.
    pub fn from_order(ddg: &Ddg, order: &[InstrId]) -> Schedule {
        assert_eq!(order.len(), ddg.len(), "order must cover the whole region");
        let mut cycles = vec![0 as Cycle; ddg.len()];
        let mut done = vec![false; ddg.len()];
        let mut next_free: Cycle = 0;
        for &id in order {
            let mut earliest = next_free;
            for &(p, lat) in ddg.preds(id) {
                assert!(done[p.index()], "order violates precedence: {p} after {id}");
                earliest = earliest.max(cycles[p.index()] + lat as Cycle);
            }
            cycles[id.index()] = earliest;
            done[id.index()] = true;
            next_free = earliest + 1;
        }
        assert!(done.iter().all(|&d| d), "order is not a permutation");
        Schedule { cycles }
    }

    /// The issue cycle of an instruction.
    pub fn cycle(&self, id: InstrId) -> Cycle {
        self.cycles[id.index()]
    }

    /// Per-instruction cycles, indexed by [`InstrId`].
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the schedule covers zero instructions.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Schedule length in cycles: `1 + max cycle` (0 when empty).
    pub fn length(&self) -> Cycle {
        self.cycles.iter().max().map_or(0, |&m| m + 1)
    }

    /// Number of stall cycles on a single-issue machine
    /// (`length - instruction count`).
    pub fn stalls(&self) -> Cycle {
        self.length().saturating_sub(self.cycles.len() as Cycle)
    }

    /// Instructions sorted by issue cycle.
    pub fn order(&self) -> Vec<InstrId> {
        let mut ids: Vec<InstrId> = (0..self.cycles.len() as u32).map(InstrId).collect();
        ids.sort_by_key(|id| (self.cycles[id.index()], id.0));
        ids
    }

    /// Validates the schedule against a DDG and the single-issue model.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: length mismatch, a def/use
    /// ordering violation, a latency violation, or two instructions issued
    /// in the same cycle.
    pub fn validate(&self, ddg: &Ddg) -> Result<(), ScheduleError> {
        if self.cycles.len() != ddg.len() {
            return Err(ScheduleError::WrongLength {
                expected: ddg.len(),
                actual: self.cycles.len(),
            });
        }
        // Def/use ordering from the instructions themselves: every in-region
        // use must issue strictly after its (SSA) definition, whether or not
        // an edge carries that dependence.
        let mut def_of: HashMap<Reg, InstrId> = HashMap::new();
        for id in ddg.ids() {
            for &r in ddg.instr(id).defs() {
                def_of.entry(r).or_insert(id);
            }
        }
        for id in ddg.ids() {
            for &r in ddg.instr(id).uses() {
                if let Some(&def) = def_of.get(&r) {
                    if def != id && self.cycle(id) <= self.cycle(def) {
                        return Err(ScheduleError::DependenceViolation {
                            def,
                            user: id,
                            reg: r,
                        });
                    }
                }
            }
        }
        for id in ddg.ids() {
            for &(succ, lat) in ddg.succs(id) {
                let required = self.cycle(id) + lat as Cycle;
                if self.cycle(succ) < required {
                    return Err(ScheduleError::LatencyViolation {
                        from: id,
                        to: succ,
                        required,
                        actual: self.cycle(succ),
                    });
                }
            }
        }
        let order = self.order();
        for pair in order.windows(2) {
            if self.cycle(pair[0]) == self.cycle(pair[1]) {
                return Err(ScheduleError::IssueConflict {
                    cycle: self.cycle(pair[0]),
                    a: pair[0],
                    b: pair[1],
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule[len={}]", self.length())?;
        let order = self.order();
        let mut next: Cycle = 0;
        for id in order {
            let c = self.cycle(id);
            while next < c {
                write!(f, " _")?;
                next += 1;
            }
            write!(f, " {id}@{c}")?;
            next = c + 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;

    fn chain_lat(lats: &[u16]) -> Ddg {
        let mut b = DdgBuilder::new();
        let ids: Vec<InstrId> = (0..=lats.len())
            .map(|i| b.instr(format!("i{i}"), [], []))
            .collect();
        for (i, &l) in lats.iter().enumerate() {
            b.edge(ids[i], ids[i + 1], l).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn from_order_inserts_necessary_stalls() {
        let g = chain_lat(&[3]);
        let s = Schedule::from_order(&g, &[InstrId(0), InstrId(1)]);
        assert_eq!(s.cycle(InstrId(0)), 0);
        assert_eq!(s.cycle(InstrId(1)), 3);
        assert_eq!(s.length(), 4);
        assert_eq!(s.stalls(), 2);
        s.validate(&g).unwrap();
    }

    #[test]
    fn from_order_packs_latency_free_chain() {
        let g = chain_lat(&[1, 1, 1]);
        let order: Vec<InstrId> = (0..4).map(InstrId).collect();
        let s = Schedule::from_order(&g, &order);
        assert_eq!(s.length(), 4);
        assert_eq!(s.stalls(), 0);
    }

    #[test]
    fn validate_rejects_latency_violation() {
        let g = chain_lat(&[5]);
        let s = Schedule::from_cycles(vec![0, 2]);
        match s.validate(&g) {
            Err(ScheduleError::LatencyViolation {
                required: 5,
                actual: 2,
                ..
            }) => {}
            other => panic!("expected latency violation, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_issue_conflict() {
        let mut b = DdgBuilder::new();
        b.instr("a", [], []);
        b.instr("b", [], []);
        let g = b.build().unwrap();
        let s = Schedule::from_cycles(vec![1, 1]);
        assert!(matches!(
            s.validate(&g),
            Err(ScheduleError::IssueConflict { cycle: 1, .. })
        ));
    }

    #[test]
    fn validate_rejects_def_use_inversion_without_edge() {
        use crate::instr::Reg;
        // `b` reads v0, defined by `a`, but no edge records the dependence.
        let mut b = DdgBuilder::new();
        b.instr("a", [Reg::vgpr(0)], []);
        b.instr("b", [], [Reg::vgpr(0)]);
        let g = b.build().unwrap();
        let s = Schedule::from_cycles(vec![1, 0]);
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::DependenceViolation {
                def: InstrId(0),
                user: InstrId(1),
                reg: Reg::vgpr(0),
            })
        );
        // The correct ordering passes.
        Schedule::from_cycles(vec![0, 1]).validate(&g).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let g = chain_lat(&[1]);
        let s = Schedule::from_cycles(vec![0]);
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::WrongLength {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn order_sorts_by_cycle() {
        let s = Schedule::from_cycles(vec![5, 0, 3]);
        assert_eq!(s.order(), vec![InstrId(1), InstrId(2), InstrId(0)]);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::from_cycles(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.length(), 0);
        assert_eq!(s.stalls(), 0);
    }

    #[test]
    fn display_shows_stall_slots() {
        let g = chain_lat(&[2]);
        let s = Schedule::from_order(&g, &[InstrId(0), InstrId(1)]);
        let txt = s.to_string();
        assert!(txt.contains("i0@0"));
        assert!(txt.contains("_"), "stall cycle rendered: {txt}");
        assert!(txt.contains("i1@2"));
    }

    #[test]
    #[should_panic(expected = "violates precedence")]
    fn from_order_panics_on_precedence_violation() {
        let g = chain_lat(&[1]);
        let _ = Schedule::from_order(&g, &[InstrId(1), InstrId(0)]);
    }
}
