//! Instruction, register, and data-dependence-graph (DDG) IR for
//! register-pressure-aware instruction scheduling.
//!
//! This crate provides the input representation consumed by every scheduler
//! in the workspace: a [`Ddg`] holds the instructions of a scheduling region
//! together with latency-labelled dependence edges, exactly as described in
//! Section II-A of *Instruction Scheduling for the GPU on the GPU*
//! (Shobaki et al., CGO 2024). On top of the raw graph it offers the derived
//! analyses the paper relies on:
//!
//! * topological order and acyclicity validation,
//! * the transitive closure of the dependence relation ([`TransitiveClosure`]),
//!   used to compute the tight **ready-list upper bound** of Section V-A,
//! * latency-weighted critical-path distances and the schedule-length lower
//!   bound used to gate ACO invocations,
//! * register-pressure lower bounds from live-in/live-out sets.
//!
//! # Example
//!
//! ```
//! use sched_ir::{DdgBuilder, Reg, RegClass};
//!
//! let mut b = DdgBuilder::new();
//! let load = b.instr("load", [Reg::vgpr(0)], []);
//! let add = b.instr("add", [Reg::vgpr(1)], [Reg::vgpr(0)]);
//! b.edge(load, add, 4).unwrap();
//! let ddg = b.build().unwrap();
//! assert_eq!(ddg.len(), 2);
//! assert_eq!(ddg.schedule_length_lb(), 5); // load@0, 3 stalls, add@4
//! ```

pub mod bitmatrix;
pub mod bounds;
pub mod builder;
pub mod ddg;
pub mod dot;
pub mod figure1;
pub mod fingerprint;
pub mod instr;
pub mod schedule;
pub mod textir;

pub use bitmatrix::BitMatrix;
pub use bounds::effective_latency;
pub use builder::{DdgBuilder, DdgError};
pub use ddg::{Ddg, TransitiveClosure};
pub use fingerprint::{ddg_content_fingerprint, ddg_structure_fingerprint, Fnv64};
pub use instr::{InstrId, Instruction, Reg, RegClass, REG_CLASS_COUNT};
pub use schedule::{Cycle, Schedule, ScheduleError};
