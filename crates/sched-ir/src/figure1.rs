//! The running example DDG of the paper (Figure 1).
//!
//! Seven instructions `A..G` over virtual registers `r1..r7`:
//!
//! ```text
//!   A defs r1          --4--> E (uses r1,r2, defs r5) --2--> G
//!   B defs r2          --3--> E
//!   C defs r3          --3--> F (uses r3,r4, defs r6) --1--> G (uses r5,r6, defs r7)
//!   D defs r4          --4--> F
//! ```
//!
//! The latencies are chosen so the narrative of Section IV-C is reproduced
//! exactly:
//!
//! * `A` is independent of `B`, `C`, `D` and `F`, so the transitive-closure
//!   ready-list upper bound is **5** (versus the loose bound of 7).
//! * A pass-1 order starting `A, B, C, D` has PRP 4; an order placing `F`
//!   third (`C, D, F, ...`) closes `r3`/`r4` early and achieves PRP 3.
//! * Under the PRP ≤ 3 constraint, the best pass-2 schedule is
//!   `A@1, B@2, D@3, stall, E@5, C@6, stall, stall, F@9, G@10` (1-indexed) —
//!   10 cycles with one *optional* stall (cycle 4) and necessary stalls
//!   before `F` (the `C -> F` latency of 3).

use crate::builder::DdgBuilder;
use crate::ddg::Ddg;
use crate::instr::{InstrId, Reg};

/// Instruction ids of the Figure-1 DDG, in the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure1Ids {
    /// `A defs r1`.
    pub a: InstrId,
    /// `B defs r2`.
    pub b: InstrId,
    /// `C defs r3`.
    pub c: InstrId,
    /// `D defs r4`.
    pub d: InstrId,
    /// `E uses r1,r2 defs r5`.
    pub e: InstrId,
    /// `F uses r3,r4 defs r6`.
    pub f: InstrId,
    /// `G uses r5,r6 defs r7`.
    pub g: InstrId,
}

/// Builds the Figure-1 DDG together with its named instruction ids.
pub fn ddg_with_ids() -> (Ddg, Figure1Ids) {
    let mut bld = DdgBuilder::new();
    let a = bld.instr("A", [Reg::vgpr(1)], []);
    let b = bld.instr("B", [Reg::vgpr(2)], []);
    let c = bld.instr("C", [Reg::vgpr(3)], []);
    let d = bld.instr("D", [Reg::vgpr(4)], []);
    let e = bld.instr("E", [Reg::vgpr(5)], [Reg::vgpr(1), Reg::vgpr(2)]);
    let f = bld.instr("F", [Reg::vgpr(6)], [Reg::vgpr(3), Reg::vgpr(4)]);
    let g = bld.instr("G", [Reg::vgpr(7)], [Reg::vgpr(5), Reg::vgpr(6)]);
    bld.edge(a, e, 4).expect("valid edge");
    bld.edge(b, e, 3).expect("valid edge");
    bld.edge(c, f, 3).expect("valid edge");
    bld.edge(d, f, 4).expect("valid edge");
    bld.edge(e, g, 2).expect("valid edge");
    bld.edge(f, g, 1).expect("valid edge");
    let ddg = bld.build().expect("figure-1 DDG is acyclic");
    (
        ddg,
        Figure1Ids {
            a,
            b,
            c,
            d,
            e,
            f,
            g,
        },
    )
}

/// Builds the Figure-1 DDG.
///
/// ```
/// let ddg = sched_ir::figure1::ddg();
/// assert_eq!(ddg.len(), 7);
/// assert_eq!(ddg.transitive_closure().ready_list_ub(), 5);
/// ```
pub fn ddg() -> Ddg {
    ddg_with_ids().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn ready_list_ub_is_five_as_in_the_paper() {
        let (ddg, ids) = ddg_with_ids();
        let tc = ddg.transitive_closure();
        // "Instruction A is independent of Instructions B, C, D and F."
        for other in [ids.b, ids.c, ids.d, ids.f] {
            assert!(tc.independent(ids.a, other));
        }
        assert!(!tc.independent(ids.a, ids.e));
        assert!(!tc.independent(ids.a, ids.g));
        assert_eq!(tc.independent_count(ids.a), 4);
        assert_eq!(tc.ready_list_ub(), 5);
    }

    #[test]
    fn pass2_best_schedule_is_ten_cycles() {
        let (ddg, ids) = ddg_with_ids();
        // A@0 B@1 D@2 _ E@4 C@5 _ _ F@8 G@9  (0-indexed version of the
        // paper's 1-indexed cycles 1..10)
        let mut cycles = vec![0u32; 7];
        cycles[ids.a.index()] = 0;
        cycles[ids.b.index()] = 1;
        cycles[ids.d.index()] = 2;
        cycles[ids.e.index()] = 4;
        cycles[ids.c.index()] = 5;
        cycles[ids.f.index()] = 8;
        cycles[ids.g.index()] = 9;
        // (E@4: A@0+4 and B@1+3 both land at 4; F@8: C@5+3; G@9: F@8+1.)
        let s = Schedule::from_cycles(cycles);
        s.validate(&ddg).expect("paper schedule is feasible");
        assert_eq!(s.length(), 10);
        assert_eq!(s.stalls(), 3);
    }

    #[test]
    fn unconstrained_lb_is_seven() {
        let ddg = ddg();
        assert_eq!(ddg.schedule_length_lb(), 7);
    }

    #[test]
    fn ant1_pass2_schedule_is_twelve_cycles() {
        // The paper's Ant-1 pass-2 schedule uses 12 cycles with 5 stalls.
        // One such schedule: A@0 B@1 C@2 D@3 E@5 F@6? C@2+3=5 -> F at >=5;
        // we reproduce a valid 12-cycle variant and check it is longer.
        let (ddg, ids) = ddg_with_ids();
        let mut cycles = vec![0u32; 7];
        cycles[ids.c.index()] = 0;
        cycles[ids.d.index()] = 1;
        cycles[ids.a.index()] = 2;
        cycles[ids.f.index()] = 5;
        cycles[ids.b.index()] = 6;
        cycles[ids.e.index()] = 9;
        cycles[ids.g.index()] = 11;
        let s = Schedule::from_cycles(cycles);
        s.validate(&ddg).expect("feasible");
        assert_eq!(s.length(), 12);
        assert_eq!(s.stalls(), 5);
    }
}
