//! Instructions and virtual registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of register classes modelled ([`RegClass::Vgpr`] and
/// [`RegClass::Sgpr`]). Arrays indexed by class use this length.
pub const REG_CLASS_COUNT: usize = 2;

/// A register class on an AMD-style GPU target.
///
/// Vector registers (VGPRs) are per-lane and are the occupancy-limiting
/// resource on the paper's Radeon VII target; scalar registers (SGPRs) are
/// shared per wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Vector general-purpose register (per thread).
    Vgpr,
    /// Scalar general-purpose register (per wavefront).
    Sgpr,
}

impl RegClass {
    /// All register classes, in index order.
    pub const ALL: [RegClass; REG_CLASS_COUNT] = [RegClass::Vgpr, RegClass::Sgpr];

    /// Dense index of this class, for `[T; REG_CLASS_COUNT]` tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Vgpr => 0,
            RegClass::Sgpr => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Vgpr => write!(f, "VGPR"),
            RegClass::Sgpr => write!(f, "SGPR"),
        }
    }
}

/// A virtual register: a class plus an id unique within the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg {
    /// Register class.
    pub class: RegClass,
    /// Id unique within the scheduling region (per class ids may overlap
    /// across classes).
    pub id: u32,
}

impl Reg {
    /// A vector register with the given id.
    ///
    /// ```
    /// use sched_ir::{Reg, RegClass};
    /// assert_eq!(Reg::vgpr(3).class, RegClass::Vgpr);
    /// ```
    #[inline]
    pub fn vgpr(id: u32) -> Reg {
        Reg {
            class: RegClass::Vgpr,
            id,
        }
    }

    /// A scalar register with the given id.
    #[inline]
    pub fn sgpr(id: u32) -> Reg {
        Reg {
            class: RegClass::Sgpr,
            id,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Vgpr => write!(f, "v{}", self.id),
            RegClass::Sgpr => write!(f, "s{}", self.id),
        }
    }
}

/// Index of an instruction within its [`crate::Ddg`].
///
/// `InstrId`s are dense: a region with `n` instructions uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstrId(pub u32);

impl InstrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for InstrId {
    fn from(v: u32) -> InstrId {
        InstrId(v)
    }
}

/// An instruction with its *Def* and *Use* register sets.
///
/// Latencies live on DDG edges, not on the instruction, matching the paper's
/// problem definition where an edge label is the latency that must elapse
/// between the producer and the consumer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    name: String,
    defs: Vec<Reg>,
    uses: Vec<Reg>,
}

impl Instruction {
    /// Creates an instruction from its name and Def/Use sets.
    pub fn new(
        name: impl Into<String>,
        defs: impl IntoIterator<Item = Reg>,
        uses: impl IntoIterator<Item = Reg>,
    ) -> Instruction {
        Instruction {
            name: name.into(),
            defs: defs.into_iter().collect(),
            uses: uses.into_iter().collect(),
        }
    }

    /// Mnemonic used for display and debugging.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers defined (written) by this instruction.
    pub fn defs(&self) -> &[Reg] {
        &self.defs
    }

    /// Registers used (read) by this instruction.
    pub fn uses(&self) -> &[Reg] {
        &self.uses
    }

    /// Number of registers of `class` defined by this instruction.
    pub fn defs_of(&self, class: RegClass) -> usize {
        self.defs.iter().filter(|r| r.class == class).count()
    }

    /// Number of registers of `class` used by this instruction.
    pub fn uses_of(&self, class: RegClass) -> usize {
        self.uses.iter().filter(|r| r.class == class).count()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.defs.is_empty() {
            write!(f, " defs[")?;
            for (i, r) in self.defs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, "]")?;
        }
        if !self.uses.is_empty() {
            write!(f, " uses[")?;
            for (i, r) in self.uses.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constructors_set_class() {
        assert_eq!(
            Reg::vgpr(7),
            Reg {
                class: RegClass::Vgpr,
                id: 7
            }
        );
        assert_eq!(
            Reg::sgpr(7),
            Reg {
                class: RegClass::Sgpr,
                id: 7
            }
        );
    }

    #[test]
    fn reg_display_uses_amd_syntax() {
        assert_eq!(Reg::vgpr(3).to_string(), "v3");
        assert_eq!(Reg::sgpr(12).to_string(), "s12");
    }

    #[test]
    fn class_indexes_are_dense_and_distinct() {
        let mut seen = [false; REG_CLASS_COUNT];
        for c in RegClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn instruction_counts_defs_and_uses_per_class() {
        let i = Instruction::new(
            "v_add",
            [Reg::vgpr(0), Reg::sgpr(1)],
            [Reg::vgpr(2), Reg::vgpr(3), Reg::sgpr(4)],
        );
        assert_eq!(i.defs_of(RegClass::Vgpr), 1);
        assert_eq!(i.defs_of(RegClass::Sgpr), 1);
        assert_eq!(i.uses_of(RegClass::Vgpr), 2);
        assert_eq!(i.uses_of(RegClass::Sgpr), 1);
    }

    #[test]
    fn instruction_display_mentions_operands() {
        let i = Instruction::new("mul", [Reg::vgpr(1)], [Reg::vgpr(0)]);
        let s = i.to_string();
        assert!(s.contains("mul"));
        assert!(s.contains("v1"));
        assert!(s.contains("v0"));
    }

    #[test]
    fn instr_id_roundtrips_index() {
        assert_eq!(InstrId(42).index(), 42);
        assert_eq!(InstrId::from(9u32), InstrId(9));
        assert_eq!(InstrId(3).to_string(), "i3");
    }
}
