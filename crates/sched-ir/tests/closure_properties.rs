//! Property tests: the bitset transitive closure agrees with a reference
//! DFS, and derived bounds are internally consistent.

use proptest::prelude::*;
use sched_ir::{Ddg, DdgBuilder, InstrId, Schedule};

/// Random DAG with edges from lower to higher indices.
fn arb_ddg(max_n: usize) -> impl Strategy<Value = Ddg> {
    (2..max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(any::<u64>(), n),
            proptest::collection::vec(0u16..16, n),
        )
            .prop_map(|(n, bits, lats)| {
                let mut b = DdgBuilder::new();
                let ids: Vec<InstrId> = (0..n).map(|i| b.instr(format!("i{i}"), [], [])).collect();
                for i in 1..n {
                    for j in 0..i.min(48) {
                        if (bits[i] >> j) & 1 == 1 {
                            b.edge(ids[j], ids[i], lats[i]).unwrap();
                        }
                    }
                }
                b.build().unwrap()
            })
    })
}

/// Reference reachability by DFS.
fn dfs_reachable(ddg: &Ddg, from: InstrId) -> Vec<bool> {
    let mut seen = vec![false; ddg.len()];
    let mut stack = vec![from];
    while let Some(x) = stack.pop() {
        for &(s, _) in ddg.succs(x) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_matches_dfs(ddg in arb_ddg(36)) {
        let tc = ddg.transitive_closure();
        for a in ddg.ids() {
            let seen = dfs_reachable(&ddg, a);
            for b in ddg.ids() {
                prop_assert_eq!(
                    tc.depends(a, b),
                    seen[b.index()],
                    "closure({}, {}) disagrees with DFS", a, b
                );
            }
        }
    }

    #[test]
    fn independence_is_symmetric_and_irreflexive(ddg in arb_ddg(28)) {
        let tc = ddg.transitive_closure();
        for a in ddg.ids() {
            prop_assert!(!tc.independent(a, a));
            for b in ddg.ids() {
                prop_assert_eq!(tc.independent(a, b), tc.independent(b, a));
            }
        }
    }

    #[test]
    fn ready_list_ub_is_at_most_n_and_at_least_antichain_width_of_roots(ddg in arb_ddg(30)) {
        let tc = ddg.transitive_closure();
        let ub = tc.ready_list_ub();
        prop_assert!(ub <= ddg.len());
        // All roots are pairwise independent... not necessarily (roots are
        // independent by definition: no path between them can exist? A root
        // has no preds, but root->root paths are impossible since both have
        // indegree 0 only for the *target*. Actually a root can reach
        // another root only if that root had a predecessor; it has none.
        let roots: Vec<_> = ddg.roots().collect();
        prop_assert!(ub >= roots.len(), "UB {} below root count {}", ub, roots.len());
    }

    #[test]
    fn independent_count_matches_single_bit_brute_force(ddg in arb_ddg(34)) {
        // Pins the precomputed word-level descendant/ancestor counting
        // against the old per-query formula: n - 1 (self) - descendants
        // - ancestors, each found by probing `depends` one pair at a time.
        let tc = ddg.transitive_closure();
        let n = ddg.len();
        for id in ddg.ids() {
            let desc = ddg.ids().filter(|&j| tc.depends(id, j)).count();
            let anc = ddg.ids().filter(|&j| tc.depends(j, id)).count();
            prop_assert_eq!(
                tc.independent_count(id),
                n - 1 - desc - anc,
                "independent_count({}) disagrees with brute force", id
            );
        }
    }

    #[test]
    fn topo_order_schedules_feasibly(ddg in arb_ddg(30)) {
        let s = Schedule::from_order(&ddg, ddg.topo_order());
        prop_assert!(s.validate(&ddg).is_ok());
        prop_assert!(s.length() >= ddg.len() as u32);
        prop_assert_eq!(s.stalls(), s.length() - ddg.len() as u32);
    }

    #[test]
    fn critical_path_is_max_earliest_start_plus_tail(ddg in arb_ddg(30)) {
        let est = ddg.earliest_starts();
        let cp = ddg.critical_path_length();
        // Any instruction's earliest start is strictly below the CP length.
        for id in ddg.ids() {
            prop_assert!(est[id.index()] < cp.max(1) + cp, "est exceeds CP bounds");
        }
        prop_assert!(ddg.schedule_length_lb() >= cp);
    }
}
