//! A dependency-free SIGTERM/SIGINT shutdown flag.
//!
//! The daemon's graceful drain needs exactly one bit from the OS: "a
//! termination signal arrived". Rather than pull in a signal crate, we
//! register a minimal handler through the C `signal()` entry point
//! (async-signal-safe here: the handler only stores to an atomic) that
//! flips a process-global flag. The accept and read loops poll the flag
//! between their short timeouts; nothing blocks indefinitely, so no
//! `EINTR` plumbing is needed (glibc's `signal()` installs BSD semantics
//! with `SA_RESTART` anyway, which is why the stdio transport drains on
//! EOF rather than relying on an interrupted read).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    // `handler` is a real function pointer, not the usize-encoded
    // SIG_IGN/SIG_DFL constants, so no numeric cast is involved.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

#[cfg(unix)]
extern "C" fn on_terminate(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handler. Idempotent; a no-op off Unix
/// (EOF-triggered drain still works everywhere).
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    unsafe {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
}

/// True once a termination signal arrived (or a test requested shutdown).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets or clears the flag directly — lets tests exercise the drain path
/// without delivering real signals.
pub fn request_shutdown(value: bool) {
    SHUTDOWN.store(value, Ordering::SeqCst);
}
