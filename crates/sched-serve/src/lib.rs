//! Scheduling-as-a-service: a long-running compile server over the
//! pipeline.
//!
//! The one-shot CLI pays the whole warm-up cost — process boot, cache
//! load, first-compilation misses — on every invocation. Real fleets are
//! duplicate-heavy (`BENCH_cache.json`: 62.7% of lookups repeat), so the
//! "millions of users" shape is a daemon that keeps **one warm
//! [`pipeline::ScheduleCache`] shared across all clients**: preloaded on
//! boot, consulted by every request, persisted atomically on shutdown and
//! on demand. This crate is that daemon, deliberately built as a
//! *transport layer, not a new semantics*:
//!
//! * [`proto`] — the line-delimited request/response framing spoken over
//!   stdio or a Unix socket. A `schedule` response body is **byte
//!   identical** to what `gpu-aco-cli schedule` prints for the same
//!   input, because both sides call [`render::schedule_report`]; a
//!   `suite` response pins the run with the same suite fingerprint the
//!   golden tests use.
//! * [`planner`] — admission control and backpressure: a bounded
//!   priority queue with atomic batch admission, a typed `overloaded`
//!   rejection when full, per-request deadlines with a typed `expired`
//!   response, and smallest-first service so small regions jump the
//!   queue (the same discipline `host_pool::plan_jobs` feeds it).
//! * [`server`] — the engine: worker threads draining the planner
//!   through [`pipeline::host_pool::run_job`] and the shared cache,
//!   per-connection request parsing, graceful drain on SIGTERM/EOF, and
//!   the `stats` surface exposing cache counters and the per-phase
//!   latencies [`pipeline::SuiteRun`] tracks.
//! * [`render`] — the one-shot CLI's report rendering, factored out so
//!   daemon and CLI cannot drift apart byte-wise.
//! * [`signal`] — a dependency-free SIGTERM/SIGINT flag for the drain.

pub mod planner;
pub mod proto;
pub mod render;
pub mod server;
pub mod signal;
pub mod stats;

pub use planner::{Overloaded, Planner};
pub use proto::{parse_request_line, read_response, render_response, Parsed, Response};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{handle_connection, serve_stdio, Engine, ServeConfig, Server};
pub use stats::ServeStats;
