//! Admission control and backpressure for the serve engine.
//!
//! The planner is a bounded priority queue between connection threads
//! (producers) and compile workers (consumers). Three properties matter:
//!
//! * **Bounded, with a typed rejection.** A full queue rejects the whole
//!   submission atomically with [`Overloaded`] — the daemon never queues
//!   unbounded work, and a client sees an explicit retryable condition
//!   instead of a stalled connection. A multi-item batch (the jobs of a
//!   `suite` request) is admitted all-or-nothing, so a rejected suite
//!   leaves no orphan jobs behind.
//! * **Smallest first.** Items carry a numeric priority (the serve engine
//!   uses region size, the same cost signal `host_pool::plan_jobs`
//!   orders by); lower values are served first, so small regions jump the
//!   queue instead of convoying behind a large suite. Ties are FIFO via a
//!   monotone sequence number, which keeps service order deterministic.
//! * **Drainable.** [`Planner::drain`] stops admission and lets workers
//!   exit once the queue is empty; [`Planner::wait_idle`] additionally
//!   waits for in-flight items, which is what the daemon's graceful
//!   SIGTERM/EOF shutdown needs before persisting the cache.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, PoisonError};

/// Typed admission-control rejection: the queue had too little room for
/// the submitted batch, and **nothing** from the batch was enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Items queued at rejection time.
    pub queued: usize,
    /// The queue's capacity.
    pub capacity: usize,
}

struct Item<T> {
    priority: u64,
    seq: u64,
    work: T,
}

// Order by (priority, seq) only; `work` does not participate.
impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Item<T>) -> bool {
        (self.priority, self.seq) == (other.priority, other.seq)
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Item<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Item<T>) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

struct State<T> {
    queue: BinaryHeap<Reverse<Item<T>>>,
    seq: u64,
    in_flight: usize,
    draining: bool,
}

/// A bounded smallest-first work queue with atomic batch admission.
pub struct Planner<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> Planner<T> {
    /// Creates a planner admitting at most `capacity` queued items
    /// (in-flight items do not count). Capacity 0 rejects everything —
    /// useful for exercising overload paths.
    pub fn new(capacity: usize) -> Planner<T> {
        Planner {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                seq: 0,
                in_flight: 0,
                draining: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submits a batch of `(priority, work)` items atomically: either the
    /// queue has room for all of them, or none is enqueued and
    /// [`Overloaded`] reports the observed occupancy. Lower priority
    /// values are served first; equal priorities are FIFO. A draining
    /// planner rejects everything as overloaded.
    pub fn submit(&self, batch: Vec<(u64, T)>) -> Result<(), Overloaded> {
        let mut st = self.lock();
        if st.draining || st.queue.len() + batch.len() > self.capacity {
            return Err(Overloaded {
                queued: st.queue.len(),
                capacity: self.capacity,
            });
        }
        for (priority, work) in batch {
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Reverse(Item {
                priority,
                seq,
                work,
            }));
        }
        drop(st);
        self.cond.notify_all();
        Ok(())
    }

    /// Blocks for the next item in (priority, seq) order, marking it
    /// in-flight; the worker must pair it with [`Planner::task_done`].
    /// Returns `None` once the planner is draining and empty — the
    /// worker-thread exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(Reverse(item)) = st.queue.pop() {
                st.in_flight += 1;
                return Some(item.work);
            }
            if st.draining {
                return None;
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks one popped item finished.
    pub fn task_done(&self) {
        let mut st = self.lock();
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        // Wakes `wait_idle` (and, while draining, idle workers in `pop`).
        self.cond.notify_all();
    }

    /// Stops admission; once the queue empties, `pop` returns `None` to
    /// every worker.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.cond.notify_all();
    }

    /// Blocks until the queue is empty and nothing is in flight. Callers
    /// that want this to terminate should `drain()` first (or stop
    /// submitting).
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Items currently queued (excludes in-flight).
    pub fn queued(&self) -> usize {
        self.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serves_smallest_priority_first_fifo_within_ties() {
        let p = Planner::new(16);
        p.submit(vec![(30, "big"), (5, "small-a")]).unwrap();
        p.submit(vec![(5, "small-b"), (1, "tiny")]).unwrap();
        p.drain();
        let mut order = Vec::new();
        while let Some(w) = p.pop() {
            order.push(w);
            p.task_done();
        }
        assert_eq!(order, ["tiny", "small-a", "small-b", "big"]);
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let p = Planner::new(3);
        p.submit(vec![(1, 'a'), (2, 'b')]).unwrap();
        // Two more items would overflow capacity 3: the whole batch must
        // bounce and leave the queue untouched.
        let err = p.submit(vec![(0, 'c'), (0, 'd')]).unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                queued: 2,
                capacity: 3
            }
        );
        assert_eq!(p.queued(), 2);
        // A single item still fits.
        p.submit(vec![(0, 'e')]).unwrap();
        assert_eq!(p.queued(), 3);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let p = Planner::new(0);
        let err = p.submit(vec![(1, ())]).unwrap_err();
        assert_eq!(
            err,
            Overloaded {
                queued: 0,
                capacity: 0
            }
        );
    }

    #[test]
    fn draining_rejects_new_work_and_releases_workers() {
        let p: Arc<Planner<u32>> = Arc::new(Planner::new(8));
        p.submit(vec![(1, 7)]).unwrap();
        p.drain();
        assert!(p.submit(vec![(1, 8)]).is_err());
        assert_eq!(p.pop(), Some(7));
        p.task_done();
        assert_eq!(p.pop(), None);

        // A worker blocked in pop() is woken by drain().
        let p2: Arc<Planner<u32>> = Arc::new(Planner::new(8));
        let worker = {
            let p2 = Arc::clone(&p2);
            std::thread::spawn(move || p2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        p2.drain();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn wait_idle_blocks_until_in_flight_work_finishes() {
        let p: Arc<Planner<u32>> = Arc::new(Planner::new(8));
        p.submit(vec![(1, 1), (2, 2)]).unwrap();
        let worker = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                while let Some(_w) = p.pop() {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    p.task_done();
                }
            })
        };
        p.drain();
        p.wait_idle();
        assert_eq!(p.queued(), 0);
        worker.join().unwrap();
    }

    #[test]
    fn concurrent_submitters_and_workers_conserve_items() {
        let p: Arc<Planner<u64>> = Arc::new(Planner::new(1024));
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        p.submit(vec![(i % 7, t * 100 + i)]).unwrap();
                    }
                })
            })
            .collect();
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while let Some(_w) = p.pop() {
                        n += 1;
                        p.task_done();
                    }
                    n
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        p.drain();
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 200);
    }
}
