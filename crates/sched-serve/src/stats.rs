//! The daemon's observability counters, served by the `stats` request.
//!
//! Everything is a monotone `AtomicU64` bumped with relaxed ordering —
//! the counters are diagnostics, not synchronization — and rendered into
//! the `stats` payload together with the shared cache's own
//! hit/miss/insert/bypass counters and the planner's live queue depth.
//! Suite requests additionally account wall-clock per phase using the
//! same plan/jobs/merge(+overlap) split [`pipeline::SuiteWallclock`]
//! reports for one-shot suite runs; `suite_overlap_us` is the slice of
//! merge time the streaming consumer hid under still-running jobs.

use aco_tune::TunerStats;
use pipeline::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-lifetime serve counters. All fields monotone.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests read off connections (including ones later rejected).
    pub received: AtomicU64,
    /// Requests answered with `ok`.
    pub served: AtomicU64,
    /// Requests answered with `err`.
    pub errors: AtomicU64,
    /// Requests rejected with `overloaded` by admission control.
    pub overloaded: AtomicU64,
    /// Requests that out-waited their deadline in the queue.
    pub expired: AtomicU64,
    /// Explicit `flush` persists performed.
    pub flushes: AtomicU64,
    /// Region compilations executed by workers.
    pub regions: AtomicU64,
    /// Suite requests completed.
    pub suites: AtomicU64,
    /// Total queue wait across popped work items, microseconds.
    pub queue_wait_us: AtomicU64,
    /// Total in-worker service time across work items, microseconds.
    pub service_us: AtomicU64,
    /// Suite phase: planning (generate + plan_jobs), microseconds.
    pub suite_plan_us: AtomicU64,
    /// Suite phase: summed per-job compile time, microseconds.
    pub suite_jobs_us: AtomicU64,
    /// Suite phase: canonical merge, microseconds.
    pub suite_merge_us: AtomicU64,
    /// Portion of `suite_merge_us` that ran while suite jobs were still
    /// in flight — merge latency hidden by the streaming consumer.
    pub suite_overlap_us: AtomicU64,
}

impl ServeStats {
    /// Adds `n` to a counter.
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Renders the `stats` response payload. `tuner` is `Some` when the
    /// daemon runs with self-tuning enabled.
    pub fn report(&self, cache: &CacheStats, tuner: Option<&TunerStats>, queued: usize) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let avg = |total: u64, n: u64| total.checked_div(n).unwrap_or(0);
        let work_items = get(&self.regions) + get(&self.suites);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "requests: {} received, {} served, {} errors, {} overloaded, {} expired, {} flushes",
            get(&self.received),
            get(&self.served),
            get(&self.errors),
            get(&self.overloaded),
            get(&self.expired),
            get(&self.flushes),
        );
        let _ = writeln!(
            out,
            "cache: {} hits, {} misses, {} inserts, {} bypasses, {} evictions",
            cache.hits, cache.misses, cache.inserts, cache.bypasses, cache.evictions
        );
        if let Some(t) = tuner {
            let _ = writeln!(
                out,
                "tuner: {} choices ({} explored, {} committed), {} warm_hits, \
                 {} warm_misses, {} observations, {} warm_records",
                t.choices,
                t.explored,
                t.committed,
                t.warm_hits,
                t.warm_misses,
                t.observations,
                t.warm_records,
            );
        }
        let _ = writeln!(
            out,
            "queue: {queued} queued, {} regions compiled, {} suites",
            get(&self.regions),
            get(&self.suites),
        );
        let _ = writeln!(
            out,
            "latency_us: queue_wait {} (avg {}), service {} (avg {})",
            get(&self.queue_wait_us),
            avg(get(&self.queue_wait_us), work_items),
            get(&self.service_us),
            avg(get(&self.service_us), work_items),
        );
        let _ = writeln!(
            out,
            "suite_phases_us: plan {}, jobs {}, merge {} (overlapped {})",
            get(&self.suite_plan_us),
            get(&self.suite_jobs_us),
            get(&self.suite_merge_us),
            get(&self.suite_overlap_us),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_sections_with_averages() {
        let s = ServeStats::default();
        ServeStats::bump(&s.received, 5);
        ServeStats::bump(&s.served, 4);
        ServeStats::bump(&s.overloaded, 1);
        ServeStats::bump(&s.regions, 4);
        ServeStats::bump(&s.queue_wait_us, 400);
        ServeStats::bump(&s.service_us, 4000);
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            inserts: 1,
            bypasses: 0,
            evictions: 2,
        };
        let r = s.report(&cache, None, 2);
        assert!(r.contains("requests: 5 received, 4 served, 0 errors, 1 overloaded"));
        assert!(r.contains("cache: 3 hits, 1 misses, 1 inserts, 0 bypasses, 2 evictions"));
        assert!(r.contains("queue: 2 queued, 4 regions compiled, 0 suites"));
        assert!(r.contains("queue_wait 400 (avg 100), service 4000 (avg 1000)"));
        assert!(r.contains("suite_phases_us: plan 0, jobs 0, merge 0 (overlapped 0)"));
        assert!(!r.contains("tuner:"), "no tuner line when tuning is off");
    }

    #[test]
    fn zero_work_items_avoid_division() {
        let s = ServeStats::default();
        let r = s.report(&CacheStats::default(), None, 0);
        assert!(r.contains("queue_wait 0 (avg 0), service 0 (avg 0)"));
    }

    #[test]
    fn tuner_counters_render_when_enabled() {
        let s = ServeStats::default();
        let t = TunerStats {
            choices: 9,
            explored: 6,
            committed: 3,
            warm_hits: 2,
            warm_misses: 7,
            observations: 9,
            warm_records: 4,
        };
        let r = s.report(&CacheStats::default(), Some(&t), 0);
        assert!(r.contains(
            "tuner: 9 choices (6 explored, 3 committed), 2 warm_hits, \
             7 warm_misses, 9 observations, 4 warm_records"
        ));
    }
}
