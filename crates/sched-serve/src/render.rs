//! Report rendering shared by the daemon and the one-shot CLI.
//!
//! The acceptance bar for the serve transport is *byte identity*: a
//! `schedule` response body must equal what `gpu-aco-cli schedule
//! <region> --cache/--no-cache` prints for the same input. Rather than
//! test two renderers against each other forever, there is exactly one —
//! this module — and both the CLI's cached-schedule path and the daemon's
//! workers call it. Drift is structurally impossible.

use pipeline::{FinalChoice, RegionCompilation, SchedulerKind, SuiteRun};
use sched_ir::{Ddg, Schedule};
use std::fmt::Write as _;

/// Renders the one-shot CLI's pipeline report for a compiled region: the
/// summary line plus the schedule line, newline-terminated. Fails (with
/// the CLI's exact error text) when the kept schedule does not validate
/// against the region.
pub fn schedule_report(
    ddg: &Ddg,
    occ: &machine_model::OccupancyModel,
    kind: SchedulerKind,
    comp: &RegionCompilation,
) -> Result<String, String> {
    let (sched, prp) = match comp.choice {
        FinalChoice::Aco => {
            let r = comp.aco.as_ref().expect("choice Aco implies an ACO result");
            (&r.schedule, r.prp)
        }
        FinalChoice::Heuristic => (&comp.heuristic.schedule, comp.heuristic.prp),
    };
    sched
        .validate(ddg)
        .map_err(|e| format!("internal error: invalid schedule: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeline {kind:?}: {} instructions in {} cycles ({} stalls), VGPR PRP {}, \
         SGPR PRP {}, occupancy {} (kept {:?})",
        ddg.len(),
        sched.length(),
        sched.stalls(),
        prp[0],
        prp[1],
        occ.occupancy(prp),
        comp.choice,
    );
    out.push_str(&schedule_line(ddg, sched));
    Ok(out)
}

/// Renders the CLI's `schedule:` line: instruction names in issue order
/// with `_` marking stall slots, newline-terminated.
pub fn schedule_line(ddg: &Ddg, schedule: &Schedule) -> String {
    let mut out = String::from("schedule:");
    let mut next = 0;
    for id in schedule.order() {
        let c = schedule.cycle(id);
        while next < c {
            out.push_str(" _");
            next += 1;
        }
        let _ = write!(out, " {}", ddg.instr(id).name());
        next = c + 1;
    }
    out.push('\n');
    out
}

/// Renders a suite run's summary payload: size, aggregate schedule
/// quality, ACO pass counts, modeled compile time, and the bitwise suite
/// fingerprint (`sched_verify::suite_fingerprint`) that pins the whole
/// run — the same quantity the golden tests compare against.
pub fn suite_report(run: &SuiteRun) -> String {
    let kernels = run.kernel_occupancy.len();
    let total_length: u64 = run.regions.iter().map(|r| u64::from(r.length)).sum();
    let occupancy_sum: u64 = run.regions.iter().map(|r| u64::from(r.occupancy)).sum();
    let pass1 = run.regions.iter().filter(|r| r.pass1_processed).count();
    let pass2 = run.regions.iter().filter(|r| r.pass2_processed).count();
    let kept = run.regions.iter().filter(|r| r.kept_aco).count();
    let reverted = run.regions.iter().filter(|r| r.reverted).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "suite {:?}: {kernels} kernels, {} regions",
        run.scheduler,
        run.regions.len(),
    );
    let _ = writeln!(
        out,
        "total length {total_length} cycles, occupancy sum {occupancy_sum}, \
         kept-aco {kept}, reverted {reverted}, pass1 {pass1}, pass2 {pass2}"
    );
    let _ = writeln!(out, "compile_time_s {:.6}", run.compile_time_s);
    let _ = writeln!(
        out,
        "fingerprint {:#018x}",
        sched_verify::suite_fingerprint(run)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_model::OccupancyModel;
    use pipeline::{compile_region, PipelineConfig};
    use sched_ir::textir;

    const REGION: &str = "\
instr i0 defs v0
instr i1 defs v1 uses v0
instr i2 defs s0 uses v0
instr i3 uses v1,s0
edge 0 1 1
edge 0 2 1
edge 1 3 1
edge 2 3 1
";

    #[test]
    fn report_matches_cli_format() {
        let ddg = textir::parse(REGION).unwrap();
        let occ = OccupancyModel::vega_like();
        let cfg = PipelineConfig::paper(SchedulerKind::BaseAmd, 0);
        let comp = compile_region(&ddg, &occ, &cfg);
        let report = schedule_report(&ddg, &occ, SchedulerKind::BaseAmd, &comp).unwrap();
        let mut lines = report.lines();
        let head = lines.next().unwrap();
        assert!(
            head.starts_with("pipeline BaseAmd: 4 instructions in "),
            "unexpected header: {head}"
        );
        assert!(head.contains("(kept Heuristic)"), "header: {head}");
        let sched = lines.next().unwrap();
        assert!(sched.starts_with("schedule: "), "schedule line: {sched}");
        // All four instruction names appear in the schedule line.
        for name in ["i0", "i1", "i2", "i3"] {
            assert!(sched.split_whitespace().any(|t| t == name), "{sched}");
        }
        assert!(report.ends_with('\n'));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn schedule_line_marks_stall_slots() {
        // i1 depends on i0 with latency 3: cycles 1 and 2 are stalls.
        let ddg = textir::parse("instr i0 defs v0\ninstr i1 uses v0\nedge 0 1 3\n").unwrap();
        let occ = OccupancyModel::unit();
        let cfg = PipelineConfig::paper(SchedulerKind::CriticalPath, 0);
        let comp = compile_region(&ddg, &occ, &cfg);
        let report = schedule_report(&ddg, &occ, SchedulerKind::CriticalPath, &comp).unwrap();
        let sched = report.lines().nth(1).unwrap();
        assert_eq!(sched, "schedule: i0 _ _ i1");
    }
}
