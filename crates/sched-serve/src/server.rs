//! The serve engine: workers, connections, transports, shutdown.
//!
//! One [`Engine`] per daemon holds the three shared pieces — the warm
//! [`ScheduleCache`], the [`Planner`] admission queue, and the
//! [`ServeStats`] counters. Connection threads parse requests and submit
//! work; a fixed pool of compile workers drains the planner in
//! smallest-first order through the same pipeline entry points the
//! one-shot CLI uses ([`ScheduleCache::compile_solo`],
//! [`pipeline::host_pool::run_job`]). Suite requests additionally get a
//! dedicated merger thread that streams the canonical merge behind job
//! execution via the per-job [`SlotTable`] (see [`SuiteState`]).
//! Responses travel back through a per-connection [`ResponseWriter`] so
//! completions can interleave across a connection's outstanding requests.
//!
//! Shutdown is a *drain*: on SIGTERM/SIGINT (socket transport) or EOF
//! (stdio transport) the daemon stops admitting, lets every queued and
//! in-flight request finish and respond, then persists the shared cache
//! atomically ([`ScheduleCache::save_to`] writes a temp sibling and
//! renames) before exiting. A `kill -9` mid-save therefore never leaves a
//! half-written cache at the configured path.

use crate::planner::Planner;
use crate::proto::{self, Parsed, Response, ScheduleOpts, SuiteOpts};
use crate::render;
use crate::signal;
use crate::stats::ServeStats;
use aco_tune::TuneStore;
use machine_model::OccupancyModel;
use pipeline::host_pool::{plan_jobs, run_job, RegionJob, RegionOutcome, SlotTable};
use pipeline::{
    merge_job_results, observe_outcome, tunable, tuned_solo_inputs, PipelineConfig, ScheduleCache,
    SchedulerKind, SuiteMerger,
};
use sched_ir::{textir, Ddg};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the daemon is configured at boot.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Compile worker threads.
    pub workers: usize,
    /// Planner queue capacity (queued items; in-flight excluded).
    pub queue_capacity: usize,
    /// Cache persistence path: preloaded on boot when it exists, written
    /// on shutdown and on `flush`. `None` disables persistence (the warm
    /// in-memory cache still serves all clients).
    pub cache_path: Option<PathBuf>,
    /// Enable the self-tuning store (in-memory) even without a
    /// persistence path. Off by default: untuned requests reproduce the
    /// golden-fingerprint pipeline bit for bit.
    pub tune: bool,
    /// Tuning-store persistence path (`schedtune v1`): implies tuning;
    /// preloaded on boot when it exists, written on shutdown and on
    /// `flush` alongside the cache.
    pub tune_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_capacity: 256,
            cache_path: None,
            tune: false,
            tune_path: None,
        }
    }
}

/// A per-connection response channel. Responses are rendered first and
/// written under one lock as a single `write_all` + flush, so concurrent
/// worker completions never interleave bytes. Write errors are swallowed:
/// a vanished client must not take a worker down.
pub struct ResponseWriter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl ResponseWriter {
    fn new(out: Box<dyn Write + Send>) -> ResponseWriter {
        ResponseWriter {
            out: Mutex::new(out),
        }
    }

    fn send(&self, id: &str, resp: &Response) {
        let rendered = proto::render_response(id, resp);
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.write_all(rendered.as_bytes());
        let _ = out.flush();
    }
}

/// Everything a completion needs to answer its request.
struct RequestCtx {
    id: String,
    out: Arc<ResponseWriter>,
    arrived: Instant,
    deadline: Option<Instant>,
    deadline_ms: u64,
}

impl RequestCtx {
    /// True (and responds `expired`) when the request out-waited its
    /// deadline before service began.
    fn expired_at(&self, now: Instant, stats: &ServeStats) -> bool {
        match self.deadline {
            Some(d) if now >= d => {
                let waited = now.duration_since(self.arrived).as_millis() as u64;
                self.out.send(
                    &self.id,
                    &Response::Expired {
                        waited_ms: waited,
                        deadline_ms: self.deadline_ms,
                    },
                );
                ServeStats::bump(&stats.expired, 1);
                true
            }
            _ => false,
        }
    }
}

/// One `schedule` request, ready to compile.
struct RegionWork {
    ddg: Ddg,
    occ: OccupancyModel,
    cfg: PipelineConfig,
    kind: SchedulerKind,
    ctx: RequestCtx,
}

/// Shared state of one `suite` request, split into per-job work items.
/// Workers publish finished job outcomes into the per-job [`SlotTable`];
/// a dedicated merger thread (spawned at admission) consumes slots in
/// canonical job order through [`SuiteMerger`], so the merge streams
/// behind execution instead of waiting for the last finisher — and the
/// response stays byte-independent of service order by construction.
struct SuiteState {
    suite: workloads::Suite,
    occ: OccupancyModel,
    cfg: PipelineConfig,
    jobs: Vec<RegionJob>,
    /// One slot per canonical job; `cancel()`ed on expiry so the merger
    /// thread unblocks and exits without responding.
    slots: SlotTable<Vec<RegionOutcome>>,
    /// Jobs not yet published — sampled by the merger to classify merge
    /// time as overlapped (hidden under running jobs) or tail.
    remaining: AtomicUsize,
    expired: AtomicBool,
    /// Snapshot of the engine's tuning store taken at submission, so every
    /// job of this suite draws arm choices and warm hints from one frozen
    /// state no matter how requests interleave. Observations go to the
    /// engine's *shared* store during the canonical merge.
    tune: Option<TuneStore>,
    ctx: RequestCtx,
}

enum Work {
    Region(Box<RegionWork>),
    SuiteJob {
        state: Arc<SuiteState>,
        index: usize,
    },
}

/// The daemon's shared core: one warm cache, one admission queue, one set
/// of counters.
pub struct Engine {
    /// The cache every request consults; preloaded on boot, persisted on
    /// shutdown/flush.
    pub cache: ScheduleCache,
    /// The shared self-tuning store, `Some` when the daemon runs with
    /// tuning enabled. All requests read from and learn into the same
    /// store, so every client profits from every other client's regions.
    pub tune: Option<TuneStore>,
    planner: Planner<Work>,
    stats: ServeStats,
    cache_path: Option<PathBuf>,
    tune_path: Option<PathBuf>,
    /// One merger thread per admitted suite request (finished handles are
    /// reaped at the next admission, all joined on shutdown so every
    /// response flushes before the process exits).
    mergers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Renders the `stats` payload.
    fn stats_report(&self) -> String {
        let tuner = self.tune.as_ref().map(TuneStore::stats);
        self.stats
            .report(&self.cache.stats(), tuner.as_ref(), self.planner.queued())
    }

    /// Persists every configured store (atomic temp + rename each):
    /// the cache to `cache_path`, the tuning store to `tune_path`.
    fn flush(&self) -> Result<String, String> {
        let mut flushed = Vec::new();
        if let Some(path) = &self.cache_path {
            self.cache
                .save_to(path)
                .map_err(|e| format!("writing cache {}: {e}", path.display()))?;
            flushed.push(path.display().to_string());
        }
        if let (Some(store), Some(path)) = (&self.tune, &self.tune_path) {
            store
                .save_to(path)
                .map_err(|e| format!("writing tuning store {}: {e}", path.display()))?;
            flushed.push(path.display().to_string());
        }
        if flushed.is_empty() {
            return Err("no cache file configured (start with --cache FILE)".into());
        }
        Ok(flushed.join(", "))
    }
}

/// A running daemon: the engine plus its worker pool.
pub struct Server {
    engine: Arc<Engine>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boots the engine: loads the cache from `cache_path` when the file
    /// exists (a corrupt or truncated file is a boot error, not a silent
    /// empty cache) and starts the worker pool.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let cache = match &config.cache_path {
            Some(p) if p.exists() => ScheduleCache::load_from(p)?,
            _ => ScheduleCache::new(),
        };
        // A tuning path implies tuning; a corrupt or tampered store file
        // is a boot error, same contract as the cache.
        let tune = if config.tune || config.tune_path.is_some() {
            Some(match &config.tune_path {
                Some(p) if p.exists() => TuneStore::load_from(p)?,
                _ => TuneStore::new(),
            })
        } else {
            None
        };
        let engine = Arc::new(Engine {
            cache,
            tune,
            planner: Planner::new(config.queue_capacity),
            stats: ServeStats::default(),
            cache_path: config.cache_path,
            tune_path: config.tune_path,
            mergers: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || worker_loop(&engine))
            })
            .collect();
        Ok(Server { engine, workers })
    }

    /// The shared core, for connection handlers.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful drain: stop admission, finish and answer everything
    /// queued or in flight, join the workers and suite merger threads
    /// (so every streaming merge responds), persist the cache.
    pub fn shutdown(self) -> io::Result<()> {
        self.engine.planner.drain();
        for w in self.workers {
            let _ = w.join();
        }
        join_mergers(&self.engine);
        if self.engine.cache_path.is_some() || self.engine.tune_path.is_some() {
            self.engine
                .flush()
                .map_err(|e| io::Error::other(format!("persisting stores on shutdown: {e}")))?;
        }
        Ok(())
    }

    /// Blocks until nothing is queued or in flight and every suite
    /// merger thread has responded (test aid).
    pub fn wait_idle(&self) {
        self.engine.planner.wait_idle();
        join_mergers(&self.engine);
    }
}

/// Takes and joins every outstanding suite merger thread. Once the
/// planner is idle all slots are published (or cancelled), so each join
/// returns as soon as that merger's tail work finishes.
fn join_mergers(engine: &Engine) {
    let handles: Vec<_> = {
        let mut mergers = engine
            .mergers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        mergers.drain(..).collect()
    };
    for h in handles {
        let _ = h.join();
    }
}

fn worker_loop(engine: &Engine) {
    while let Some(work) = engine.planner.pop() {
        let started = Instant::now();
        match work {
            Work::Region(w) => run_region(engine, *w, started),
            Work::SuiteJob { state, index } => run_suite_job(engine, &state, index, started),
        }
        engine.planner.task_done();
    }
}

fn run_region(engine: &Engine, w: RegionWork, started: Instant) {
    let waited_us = started.duration_since(w.ctx.arrived).as_micros() as u64;
    if w.ctx.expired_at(started, &engine.stats) {
        return;
    }
    // With tuning on, a `schedule` request is a solo region: choose an
    // arm + warm hint from the shared store and feed the outcome straight
    // back (requests are served whole by one worker, so the inline
    // observation here is the single-threaded canonical point).
    let comp = match engine.tune.as_ref().filter(|_| tunable(w.cfg.scheduler)) {
        Some(store) => {
            let (tuned_cfg, warm, tag) = tuned_solo_inputs(&w.ddg, 0, &w.cfg, store);
            let comp = engine
                .cache
                .compile_solo_with(&w.ddg, &w.occ, &tuned_cfg, warm.as_ref());
            observe_outcome(store, &tag, &comp);
            comp
        }
        None => engine.cache.compile_solo(&w.ddg, &w.occ, &w.cfg),
    };
    let resp = match render::schedule_report(&w.ddg, &w.occ, w.kind, &comp) {
        Ok(payload) => {
            ServeStats::bump(&engine.stats.served, 1);
            Response::Ok { payload }
        }
        Err(message) => {
            ServeStats::bump(&engine.stats.errors, 1);
            Response::Err { message }
        }
    };
    w.ctx.out.send(&w.ctx.id, &resp);
    ServeStats::bump(&engine.stats.regions, 1);
    ServeStats::bump(&engine.stats.queue_wait_us, waited_us);
    ServeStats::bump(
        &engine.stats.service_us,
        started.elapsed().as_micros() as u64,
    );
}

fn run_suite_job(engine: &Engine, state: &SuiteState, index: usize, started: Instant) {
    let waited_us = started.duration_since(state.ctx.arrived).as_micros() as u64;
    ServeStats::bump(&engine.stats.queue_wait_us, waited_us);
    // First worker past the deadline answers `expired` for the whole
    // request; the swap guarantees exactly one response. Remaining jobs
    // still drain through here (cheaply) to keep the accounting simple.
    if !state.expired.load(Ordering::SeqCst) {
        if let Some(d) = state.ctx.deadline {
            if started >= d && !state.expired.swap(true, Ordering::SeqCst) {
                let waited = started.duration_since(state.ctx.arrived).as_millis() as u64;
                state.ctx.out.send(
                    &state.ctx.id,
                    &Response::Expired {
                        waited_ms: waited,
                        deadline_ms: state.ctx.deadline_ms,
                    },
                );
                ServeStats::bump(&engine.stats.expired, 1);
                // Unblock the merger thread; it exits without responding.
                state.slots.cancel();
            }
        }
    }
    if !state.expired.load(Ordering::SeqCst) {
        let outcomes = run_job(
            &state.jobs[index],
            &state.suite,
            &state.occ,
            &state.cfg,
            Some(&engine.cache),
            state.tune.as_ref(),
        );
        // `remaining` counts unpublished jobs, so decrement *before*
        // publishing: the merger never sees a published slot while the
        // counter still includes it, keeping the overlap classification
        // conservative.
        state.remaining.fetch_sub(1, Ordering::SeqCst);
        state.slots.publish(index, outcomes);
    } else {
        state.remaining.fetch_sub(1, Ordering::SeqCst);
    }
    ServeStats::bump(
        &engine.stats.suite_jobs_us,
        started.elapsed().as_micros() as u64,
    );
    ServeStats::bump(
        &engine.stats.service_us,
        started.elapsed().as_micros() as u64,
    );
}

/// The streaming suite merge, one dedicated thread per admitted request:
/// consumes the slot table in canonical job order the moment each slot
/// lands, classifying merge time as overlapped while jobs are still in
/// flight. Exits silently (no response) when the request expired — the
/// expiring worker already answered and cancelled the table.
fn suite_merger_thread(engine: &Engine, state: &SuiteState) {
    let mut merger = SuiteMerger::new(
        &state.suite,
        &state.occ,
        &state.cfg,
        &state.jobs,
        Some(&engine.cache),
        engine.tune.as_ref(),
        |_, _, _, _, _| {},
    );
    let mut merge_us = 0u64;
    let mut overlap_us = 0u64;
    for index in 0..state.jobs.len() {
        let Some(outcomes) = state.slots.wait_take(index) else {
            return; // expired: cancelled mid-stream, response already sent
        };
        let in_flight = state.remaining.load(Ordering::SeqCst);
        let t = Instant::now();
        merger.consume(index, outcomes);
        let d = t.elapsed().as_micros() as u64;
        merge_us += d;
        if in_flight > 0 {
            overlap_us += d;
        }
    }
    let t = Instant::now();
    let run = merger.finish();
    merge_us += t.elapsed().as_micros() as u64;
    ServeStats::bump(&engine.stats.suite_merge_us, merge_us);
    ServeStats::bump(&engine.stats.suite_overlap_us, overlap_us);
    ServeStats::bump(&engine.stats.suites, 1);
    ServeStats::bump(&engine.stats.served, 1);
    state.ctx.out.send(
        &state.ctx.id,
        &Response::Ok {
            payload: render::suite_report(&run),
        },
    );
}

/// Reads one line, surviving the socket transport's short read timeouts:
/// a timed-out `read_line` keeps whatever partial line it already
/// appended to `buf`, so retrying continues the same line. Returns
/// `Ok(false)` on EOF or requested shutdown.
fn read_line_patient(reader: &mut impl BufRead, buf: &mut String) -> io::Result<bool> {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return Ok(false),
            Ok(_) if buf.ends_with('\n') => return Ok(true),
            // A mid-line timeout can return Ok(n) without a newline on
            // some platforms; treat it like the error case and retry.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
        if signal::shutdown_requested() {
            return Ok(false);
        }
    }
}

/// Serves one connection until EOF, shutdown, or a fatal transport error.
/// `stats`/`flush` are answered inline; `schedule`/`suite` go through the
/// planner and are answered by workers, possibly after this function
/// returns (the shared [`ResponseWriter`] outlives the read loop).
pub fn handle_connection(
    engine: &Arc<Engine>,
    mut reader: impl BufRead,
    writer: Box<dyn Write + Send>,
) {
    let out = Arc::new(ResponseWriter::new(writer));
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_patient(&mut reader, &mut line) {
            Ok(true) => {}
            Ok(false) | Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        ServeStats::bump(&engine.stats.received, 1);
        let (id, parsed) = match proto::parse_request_line(&line) {
            Ok(p) => p,
            Err(e) => {
                ServeStats::bump(&engine.stats.errors, 1);
                out.send(
                    e.id.as_deref().unwrap_or("-"),
                    &Response::Err { message: e.msg },
                );
                continue;
            }
        };
        match parsed {
            Parsed::Stats => {
                ServeStats::bump(&engine.stats.served, 1);
                out.send(
                    &id,
                    &Response::Ok {
                        payload: engine.stats_report(),
                    },
                );
            }
            Parsed::Flush => match engine.flush() {
                Ok(flushed) => {
                    ServeStats::bump(&engine.stats.flushes, 1);
                    ServeStats::bump(&engine.stats.served, 1);
                    out.send(
                        &id,
                        &Response::Ok {
                            payload: format!("flushed {flushed}\n"),
                        },
                    );
                }
                Err(message) => {
                    ServeStats::bump(&engine.stats.errors, 1);
                    out.send(&id, &Response::Err { message });
                }
            },
            Parsed::Schedule {
                opts,
                payload_lines,
            } => {
                let payload = match read_payload(&mut reader, payload_lines) {
                    Ok(p) => p,
                    Err(_) => {
                        // Truncated payload: the stream is desynchronized
                        // beyond recovery; answer and drop the connection.
                        ServeStats::bump(&engine.stats.errors, 1);
                        out.send(
                            &id,
                            &Response::Err {
                                message: "truncated ddg payload".into(),
                            },
                        );
                        break;
                    }
                };
                submit_schedule(engine, &out, id, opts, &payload);
            }
            Parsed::Suite(opts) => submit_suite(engine, &out, id, opts),
        }
    }
}

fn read_payload(reader: &mut impl BufRead, lines: usize) -> io::Result<String> {
    let mut payload = String::new();
    for _ in 0..lines {
        if !read_line_patient(reader, &mut payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated payload",
            ));
        }
    }
    Ok(payload)
}

fn request_ctx(id: String, out: &Arc<ResponseWriter>, deadline_ms: Option<u64>) -> RequestCtx {
    let arrived = Instant::now();
    RequestCtx {
        id,
        out: Arc::clone(out),
        arrived,
        deadline: deadline_ms.map(|ms| arrived + Duration::from_millis(ms)),
        deadline_ms: deadline_ms.unwrap_or(0),
    }
}

fn submit_schedule(
    engine: &Arc<Engine>,
    out: &Arc<ResponseWriter>,
    id: String,
    opts: ScheduleOpts,
    payload: &str,
) {
    let ddg = match textir::parse(payload) {
        Ok(d) => d,
        Err(e) => {
            ServeStats::bump(&engine.stats.errors, 1);
            out.send(
                &id,
                &Response::Err {
                    message: format!("parsing region: {e}"),
                },
            );
            return;
        }
    };
    let occ = if opts.unit_aprp {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let mut cfg = PipelineConfig::paper(opts.scheduler, opts.seed);
    cfg.aco.blocks = opts.blocks;
    let priority = ddg.len() as u64;
    let work = Work::Region(Box::new(RegionWork {
        ddg,
        occ,
        cfg,
        kind: opts.scheduler,
        ctx: request_ctx(id.clone(), out, opts.deadline_ms),
    }));
    if let Err(over) = engine.planner.submit(vec![(priority, work)]) {
        ServeStats::bump(&engine.stats.overloaded, 1);
        out.send(
            &id,
            &Response::Overloaded {
                queued: over.queued,
                capacity: over.capacity,
            },
        );
    }
}

fn submit_suite(engine: &Arc<Engine>, out: &Arc<ResponseWriter>, id: String, opts: SuiteOpts) {
    let t_plan = Instant::now();
    let suite = workloads::Suite::generate(&workloads::SuiteConfig::scaled(opts.seed, opts.scale));
    // The pipeline seed stays 0 — the golden-fingerprint configuration;
    // the request's `seed` parameterizes workload generation, so
    // `suite seed=5` reproduces the pinned SUITE_GOLDEN fingerprints.
    let mut cfg = PipelineConfig::paper(opts.scheduler, 0);
    cfg.aco.blocks = opts.blocks;
    cfg.aco.pass2_gate_cycles = opts.gate;
    let occ = if opts.unit_aprp {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let jobs = plan_jobs(&suite, &cfg);
    ServeStats::bump(
        &engine.stats.suite_plan_us,
        t_plan.elapsed().as_micros() as u64,
    );
    let ctx = request_ctx(id.clone(), out, opts.deadline_ms);
    if jobs.is_empty() {
        // Degenerate scale: nothing to queue; merge the empty job list
        // inline for a well-formed (if trivial) report.
        let run = merge_job_results(
            &suite,
            &occ,
            &cfg,
            &jobs,
            Vec::new(),
            Some(&engine.cache),
            engine.tune.as_ref(),
            |_, _, _, _, _| {},
        );
        ServeStats::bump(&engine.stats.suites, 1);
        ServeStats::bump(&engine.stats.served, 1);
        ctx.out.send(
            &ctx.id,
            &Response::Ok {
                payload: render::suite_report(&run),
            },
        );
        return;
    }
    let priorities: Vec<u64> = jobs
        .iter()
        .map(|job| match job {
            RegionJob::Solo { kernel, region } => {
                suite.kernels[*kernel].regions[*region].len() as u64
            }
            RegionJob::Group { kernel, members } => members
                .iter()
                .map(|&ri| suite.kernels[*kernel].regions[ri].len() as u64)
                .sum(),
        })
        .collect();
    let n_jobs = jobs.len();
    let state = Arc::new(SuiteState {
        suite,
        occ,
        cfg,
        jobs,
        slots: SlotTable::new(n_jobs),
        remaining: AtomicUsize::new(n_jobs),
        expired: AtomicBool::new(false),
        tune: engine.tune.clone(),
        ctx,
    });
    let batch: Vec<(u64, Work)> = priorities
        .into_iter()
        .enumerate()
        .map(|(index, p)| {
            (
                p,
                Work::SuiteJob {
                    state: Arc::clone(&state),
                    index,
                },
            )
        })
        .collect();
    if let Err(over) = engine.planner.submit(batch) {
        ServeStats::bump(&engine.stats.overloaded, 1);
        state.ctx.out.send(
            &id,
            &Response::Overloaded {
                queued: over.queued,
                capacity: over.capacity,
            },
        );
        return;
    }
    // Admitted: start this request's streaming merge consumer. Reap
    // handles of already-finished mergers so a long-lived daemon's list
    // stays bounded by its in-flight suite count.
    let merger = {
        let engine = Arc::clone(engine);
        let state = Arc::clone(&state);
        std::thread::spawn(move || suite_merger_thread(&engine, &state))
    };
    let mut mergers = engine
        .mergers
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    mergers.retain(|h| !h.is_finished());
    mergers.push(merger);
}

/// Serves the stdio transport: requests on stdin, responses on stdout.
/// EOF triggers the graceful drain (persisting the cache); the exit path
/// every pipe-driven client exercises.
pub fn serve_stdio(config: ServeConfig) -> io::Result<()> {
    let server = Server::start(config)?;
    let stdin = io::stdin();
    let engine = Arc::clone(server.engine());
    handle_connection(&engine, stdin.lock(), Box::new(io::stdout()));
    server.shutdown()
}

/// Serves the Unix-socket transport at `socket_path` until SIGTERM/SIGINT,
/// then drains gracefully and persists the cache. Accepts any number of
/// concurrent client connections, each on its own thread.
#[cfg(unix)]
pub fn serve_unix(socket_path: &Path, config: ServeConfig) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    signal::install_shutdown_handler();
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;
    let server = Server::start(config)?;
    let mut connections = Vec::new();
    while !signal::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Blocking I/O with a short read timeout: the read loop
                // stays responsive to the shutdown flag without busy
                // polling.
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(100)))?;
                let engine = Arc::clone(server.engine());
                let writer = stream.try_clone()?;
                connections.push(std::thread::spawn(move || {
                    handle_connection(&engine, BufReader::new(stream), Box::new(writer));
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = std::fs::remove_file(socket_path);
                return Err(e);
            }
        }
    }
    // Drain: connection threads notice the flag within one read timeout;
    // queued work keeps its Arc'd writers, so late responses still reach
    // clients that stay connected.
    for c in connections {
        let _ = c.join();
    }
    let result = server.shutdown();
    let _ = std::fs::remove_file(socket_path);
    result
}
