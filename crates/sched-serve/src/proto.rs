//! The line-delimited serve protocol.
//!
//! Requests and responses are newline-framed UTF-8, one header line plus
//! an optional counted payload, so the protocol runs unchanged over stdio
//! and Unix sockets and stays greppable in captures:
//!
//! ```text
//! req <id> schedule [scheduler=amd|cp|seq|par] [seed=N] [blocks=N]
//!                   [unit-aprp] [deadline-ms=N] ddg <nlines>
//! <nlines of text-IR>
//! req <id> suite [scheduler=amd|cp|seq|par|batched] [seed=N] [scale=F]
//!                [blocks=N] [gate=N] [unit-aprp] [deadline-ms=N]
//! req <id> stats
//! req <id> flush
//! ```
//!
//! `<id>` is an arbitrary whitespace-free client token echoed on the
//! response, so responses can interleave across outstanding requests of
//! one connection in completion order. Responses:
//!
//! ```text
//! resp <id> ok <nlines>
//! <nlines of payload>
//! resp <id> err <one-line message>
//! resp <id> overloaded <queued> <capacity>
//! resp <id> expired <waited-ms> <deadline-ms>
//! ```
//!
//! `overloaded` is the typed admission-control rejection (the bounded
//! queue was full; the request was **not** enqueued); `expired` means the
//! request was admitted but its `deadline-ms` elapsed before a worker
//! started it. Option defaults mirror the one-shot CLI (`scheduler=par
//! seed=0 blocks=32`), so a bare `schedule` request returns byte-for-byte
//! what `gpu-aco-cli schedule <region>` prints. A `suite` request's
//! defaults (`scale=0.008 blocks=4 gate=1`) mirror the golden-fingerprint
//! suite configuration, so `suite seed=5` must report the pinned
//! `SUITE_GOLDEN` fingerprint of `sched-verify`.

use pipeline::SchedulerKind;
use std::io::{self, BufRead};

/// Hard cap on a `schedule` request's text-IR payload, lines. Bounds the
/// memory one request can pin while queued.
pub const MAX_PAYLOAD_LINES: usize = 100_000;

/// Hard cap on a `suite` request's workload scale (the full paper suite is
/// `1.0`; the wall-clock bench runs `0.02`). Bounds the work one request
/// can enqueue.
pub const MAX_SUITE_SCALE: f64 = 0.1;

/// Options of a `schedule` request; defaults mirror the one-shot CLI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOpts {
    /// Scheduler kind (cache-persistable kinds only: amd, cp, seq, par).
    pub scheduler: SchedulerKind,
    /// ACO seed.
    pub seed: u64,
    /// Colony blocks.
    pub blocks: u32,
    /// Use the unit occupancy model instead of the Vega-like one.
    pub unit_aprp: bool,
    /// Queue-wait deadline, milliseconds from arrival.
    pub deadline_ms: Option<u64>,
}

impl Default for ScheduleOpts {
    fn default() -> ScheduleOpts {
        ScheduleOpts {
            scheduler: SchedulerKind::ParallelAco,
            seed: 0,
            blocks: 32,
            unit_aprp: false,
            deadline_ms: None,
        }
    }
}

/// Options of a `suite` request; defaults mirror the golden-fingerprint
/// suite configuration (`SuiteConfig::scaled(seed, 0.008)`, 4 blocks,
/// pass-2 gate 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteOpts {
    /// Scheduler kind (any, including batched).
    pub scheduler: SchedulerKind,
    /// Workload-generator seed.
    pub seed: u64,
    /// Workload scale in `(0, MAX_SUITE_SCALE]`.
    pub scale: f64,
    /// Colony blocks.
    pub blocks: u32,
    /// Pass-2 gate threshold, cycles.
    pub gate: u32,
    /// Use the unit occupancy model instead of the Vega-like one.
    pub unit_aprp: bool,
    /// Queue-wait deadline, milliseconds from arrival.
    pub deadline_ms: Option<u64>,
}

impl Default for SuiteOpts {
    fn default() -> SuiteOpts {
        SuiteOpts {
            scheduler: SchedulerKind::ParallelAco,
            seed: 0,
            scale: 0.008,
            blocks: 4,
            gate: 1,
            unit_aprp: false,
            deadline_ms: None,
        }
    }
}

/// A parsed request header (the payload, if any, follows on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// `schedule`: `payload_lines` lines of text-IR follow the header.
    Schedule {
        /// Request options.
        opts: ScheduleOpts,
        /// Number of text-IR payload lines that follow.
        payload_lines: usize,
    },
    /// `suite`: compile a generated workload suite.
    Suite(SuiteOpts),
    /// `stats`: report counters and latencies.
    Stats,
    /// `flush`: persist the shared cache now.
    Flush,
}

/// A request line that could not be parsed; `id` is recovered when the
/// line got far enough to carry one, so the error response can still be
/// correlated.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseErr {
    /// The request id, when recoverable.
    pub id: Option<String>,
    /// What was wrong.
    pub msg: String,
}

fn perr(id: Option<&str>, msg: impl Into<String>) -> ParseErr {
    ParseErr {
        id: id.map(str::to_string),
        msg: msg.into(),
    }
}

fn scheduler_kind(name: &str, allow_batched: bool) -> Result<SchedulerKind, String> {
    match name {
        "amd" => Ok(SchedulerKind::BaseAmd),
        "cp" => Ok(SchedulerKind::CriticalPath),
        "seq" => Ok(SchedulerKind::SequentialAco),
        "par" => Ok(SchedulerKind::ParallelAco),
        "batched" if allow_batched => Ok(SchedulerKind::BatchedParallelAco),
        other => Err(format!("unknown scheduler `{other}`")),
    }
}

/// Parses one request header line.
pub fn parse_request_line(line: &str) -> Result<(String, Parsed), ParseErr> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.first() != Some(&"req") {
        return Err(perr(None, "expected `req <id> <command> ...`"));
    }
    let id = *toks
        .get(1)
        .ok_or_else(|| perr(None, "missing request id"))?;
    let cmd = *toks
        .get(2)
        .ok_or_else(|| perr(Some(id), "missing command"))?;
    let opts = &toks[3..];
    let parsed = match cmd {
        "stats" => {
            if !opts.is_empty() {
                return Err(perr(Some(id), "stats takes no options"));
            }
            Parsed::Stats
        }
        "flush" => {
            if !opts.is_empty() {
                return Err(perr(Some(id), "flush takes no options"));
            }
            Parsed::Flush
        }
        "schedule" => parse_schedule(id, opts)?,
        "suite" => Parsed::Suite(parse_suite(id, opts)?),
        other => return Err(perr(Some(id), format!("unknown command `{other}`"))),
    };
    Ok((id.to_string(), parsed))
}

fn parse_schedule(id: &str, opts: &[&str]) -> Result<Parsed, ParseErr> {
    // The trailing `ddg <nlines>` marker is mandatory: it frames the
    // payload that follows.
    let (marker, rest) = match opts {
        [rest @ .., m, n] if *m == "ddg" => (*n, rest),
        _ => {
            return Err(perr(
                Some(id),
                "schedule must end with `ddg <payload lines>`",
            ))
        }
    };
    let payload_lines: usize = marker
        .parse()
        .map_err(|_| perr(Some(id), "bad ddg payload line count"))?;
    if payload_lines == 0 || payload_lines > MAX_PAYLOAD_LINES {
        return Err(perr(
            Some(id),
            format!("ddg payload must be 1..={MAX_PAYLOAD_LINES} lines"),
        ));
    }
    let mut o = ScheduleOpts::default();
    for tok in rest {
        match tok.split_once('=') {
            Some(("scheduler", v)) => {
                o.scheduler = scheduler_kind(v, false).map_err(|e| perr(Some(id), e))?;
            }
            Some(("seed", v)) => {
                o.seed = v.parse().map_err(|_| perr(Some(id), "bad seed"))?;
            }
            Some(("blocks", v)) => {
                o.blocks = parse_blocks(v).map_err(|e| perr(Some(id), e))?;
            }
            Some(("deadline-ms", v)) => {
                o.deadline_ms = Some(v.parse().map_err(|_| perr(Some(id), "bad deadline-ms"))?);
            }
            None if *tok == "unit-aprp" => o.unit_aprp = true,
            _ => return Err(perr(Some(id), format!("unknown schedule option `{tok}`"))),
        }
    }
    Ok(Parsed::Schedule {
        opts: o,
        payload_lines,
    })
}

fn parse_suite(id: &str, opts: &[&str]) -> Result<SuiteOpts, ParseErr> {
    let mut o = SuiteOpts::default();
    for tok in opts {
        match tok.split_once('=') {
            Some(("scheduler", v)) => {
                o.scheduler = scheduler_kind(v, true).map_err(|e| perr(Some(id), e))?;
            }
            Some(("seed", v)) => {
                o.seed = v.parse().map_err(|_| perr(Some(id), "bad seed"))?;
            }
            Some(("scale", v)) => {
                o.scale = v.parse().map_err(|_| perr(Some(id), "bad scale"))?;
                if !(o.scale > 0.0 && o.scale <= MAX_SUITE_SCALE) {
                    return Err(perr(
                        Some(id),
                        format!("scale must be in (0, {MAX_SUITE_SCALE}]"),
                    ));
                }
            }
            Some(("blocks", v)) => {
                o.blocks = parse_blocks(v).map_err(|e| perr(Some(id), e))?;
            }
            Some(("gate", v)) => {
                o.gate = v.parse().map_err(|_| perr(Some(id), "bad gate"))?;
            }
            Some(("deadline-ms", v)) => {
                o.deadline_ms = Some(v.parse().map_err(|_| perr(Some(id), "bad deadline-ms"))?);
            }
            None if *tok == "unit-aprp" => o.unit_aprp = true,
            _ => return Err(perr(Some(id), format!("unknown suite option `{tok}`"))),
        }
    }
    Ok(o)
}

fn parse_blocks(v: &str) -> Result<u32, String> {
    let blocks: u32 = v.parse().map_err(|_| "bad blocks".to_string())?;
    if blocks == 0 {
        return Err("blocks must be positive".into());
    }
    Ok(blocks)
}

/// A response to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; `payload` is newline-terminated text.
    Ok {
        /// The response body (for `schedule`: byte-identical to the
        /// one-shot CLI's stdout for the same input).
        payload: String,
    },
    /// The request failed (parse error, invalid region, internal error).
    Err {
        /// One-line description.
        message: String,
    },
    /// Typed admission-control rejection: the bounded queue was full and
    /// the request was not enqueued. Retry later.
    Overloaded {
        /// Items queued at rejection time.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The request waited in the queue past its `deadline-ms`.
    Expired {
        /// How long the request actually waited, milliseconds.
        waited_ms: u64,
        /// The deadline it carried, milliseconds.
        deadline_ms: u64,
    },
}

/// Renders a response for the wire. `Ok` payloads are counted and framed;
/// error messages are flattened to one line.
pub fn render_response(id: &str, resp: &Response) -> String {
    match resp {
        Response::Ok { payload } => {
            debug_assert!(payload.is_empty() || payload.ends_with('\n'));
            format!("resp {id} ok {}\n{payload}", payload.lines().count())
        }
        Response::Err { message } => {
            format!("resp {id} err {}\n", message.replace('\n', "; "))
        }
        Response::Overloaded { queued, capacity } => {
            format!("resp {id} overloaded {queued} {capacity}\n")
        }
        Response::Expired {
            waited_ms,
            deadline_ms,
        } => format!("resp {id} expired {waited_ms} {deadline_ms}\n"),
    }
}

/// Reads one response (header plus counted payload) from `reader` — the
/// client side of the protocol. Returns the echoed request id and the
/// parsed response; `Ok(None)` on a clean end of stream.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Option<(String, Response)>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("serve: {msg}"));
    if toks.first() != Some(&"resp") || toks.len() < 3 {
        return Err(bad(&format!("malformed response line `{}`", line.trim())));
    }
    let id = toks[1].to_string();
    let resp = match toks[2] {
        "ok" => {
            let n: usize = toks
                .get(3)
                .ok_or_else(|| bad("ok response missing line count"))?
                .parse()
                .map_err(|_| bad("bad ok line count"))?;
            let mut payload = String::new();
            for _ in 0..n {
                let mut l = String::new();
                if reader.read_line(&mut l)? == 0 {
                    return Err(bad("truncated ok payload"));
                }
                payload.push_str(&l);
            }
            Response::Ok { payload }
        }
        "err" => Response::Err {
            message: toks[3..].join(" "),
        },
        "overloaded" => Response::Overloaded {
            queued: parse_field(&toks, 3).ok_or_else(|| bad("bad overloaded response"))?,
            capacity: parse_field(&toks, 4).ok_or_else(|| bad("bad overloaded response"))?,
        },
        "expired" => Response::Expired {
            waited_ms: parse_field(&toks, 3).ok_or_else(|| bad("bad expired response"))?,
            deadline_ms: parse_field(&toks, 4).ok_or_else(|| bad("bad expired response"))?,
        },
        other => return Err(bad(&format!("unknown response kind `{other}`"))),
    };
    Ok(Some((id, resp)))
}

fn parse_field<T: std::str::FromStr>(toks: &[&str], i: usize) -> Option<T> {
    toks.get(i).and_then(|t| t.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_requests_parse_with_defaults_and_options() {
        let (id, p) = parse_request_line("req r1 schedule ddg 12").unwrap();
        assert_eq!(id, "r1");
        assert_eq!(
            p,
            Parsed::Schedule {
                opts: ScheduleOpts::default(),
                payload_lines: 12
            }
        );
        let (_, p) = parse_request_line(
            "req 7 schedule scheduler=amd seed=3 blocks=8 unit-aprp deadline-ms=250 ddg 4",
        )
        .unwrap();
        let Parsed::Schedule {
            opts,
            payload_lines,
        } = p
        else {
            panic!("not a schedule: {p:?}")
        };
        assert_eq!(payload_lines, 4);
        assert_eq!(opts.scheduler, SchedulerKind::BaseAmd);
        assert_eq!((opts.seed, opts.blocks), (3, 8));
        assert!(opts.unit_aprp);
        assert_eq!(opts.deadline_ms, Some(250));
    }

    #[test]
    fn suite_stats_flush_parse() {
        let (_, p) =
            parse_request_line("req a suite seed=5 scale=0.008 scheduler=batched gate=1").unwrap();
        let Parsed::Suite(o) = p else { panic!() };
        assert_eq!(o.scheduler, SchedulerKind::BatchedParallelAco);
        assert_eq!(o.seed, 5);
        assert_eq!(parse_request_line("req b stats").unwrap().1, Parsed::Stats);
        assert_eq!(parse_request_line("req c flush").unwrap().1, Parsed::Flush);
    }

    #[test]
    fn malformed_requests_are_rejected_with_recovered_ids() {
        // No id recoverable.
        assert_eq!(parse_request_line("nonsense").unwrap_err().id, None);
        // Id recoverable once present.
        let e = parse_request_line("req x bogus-cmd").unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x"));
        // schedule needs the ddg payload marker.
        assert!(parse_request_line("req x schedule").is_err());
        assert!(parse_request_line("req x schedule ddg 0").is_err());
        assert!(parse_request_line("req x schedule ddg many").is_err());
        // batched is suite-only (a solo region has no batch group).
        assert!(parse_request_line("req x schedule scheduler=batched ddg 3").is_err());
        // Bounded scale.
        assert!(parse_request_line("req x suite scale=0.5").is_err());
        assert!(parse_request_line("req x suite scale=0").is_err());
        assert!(parse_request_line("req x suite blocks=0").is_err());
        assert!(parse_request_line("req x stats extra").is_err());
    }

    #[test]
    fn responses_roundtrip_through_render_and_read() {
        let cases = [
            (
                "r1",
                Response::Ok {
                    payload: "line one\nline two\n".into(),
                },
            ),
            (
                "r2",
                Response::Err {
                    message: "parse failed: bad edge".into(),
                },
            ),
            (
                "r3",
                Response::Overloaded {
                    queued: 9,
                    capacity: 8,
                },
            ),
            (
                "r4",
                Response::Expired {
                    waited_ms: 120,
                    deadline_ms: 100,
                },
            ),
        ];
        let mut wire = String::new();
        for (id, r) in &cases {
            wire.push_str(&render_response(id, r));
        }
        let mut reader = io::BufReader::new(wire.as_bytes());
        for (id, r) in &cases {
            let (got_id, got) = read_response(&mut reader).unwrap().unwrap();
            assert_eq!(&got_id, id);
            assert_eq!(&got, r);
        }
        assert!(read_response(&mut reader).unwrap().is_none());
    }

    #[test]
    fn multiline_error_messages_are_flattened() {
        let r = Response::Err {
            message: "two\nlines".into(),
        };
        let wire = render_response("x", &r);
        assert_eq!(wire, "resp x err two; lines\n");
    }
}
