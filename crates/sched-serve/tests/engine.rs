//! In-process engine tests: requests through [`handle_connection`] against
//! a live worker pool, checked for byte identity with direct pipeline
//! calls, typed overload/expiry behavior, and correct persistence.

use machine_model::OccupancyModel;
use pipeline::{compile_suite, PipelineConfig, ScheduleCache, SchedulerKind};
use sched_serve::proto::{read_response, Response};
use sched_serve::{handle_connection, render, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::sync::{Arc, Mutex};

/// A `Box<dyn Write + Send>` view over a shared byte buffer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const REGION: &str = "\
instr load0 defs v0 uses s0
instr load1 defs v1 uses s0
instr mul defs v2 uses v0,v1
instr add defs v3 uses v2,v0
instr store uses v3
edge 0 2 4
edge 1 2 4
edge 2 3 2
edge 3 4 2
";

/// Runs a scripted connection against a fresh server and returns every
/// response in arrival order.
fn run_session(config: ServeConfig, script: &str) -> Vec<(String, Response)> {
    let server = Server::start(config).unwrap();
    let buf = SharedBuf::default();
    handle_connection(server.engine(), script.as_bytes(), Box::new(buf.clone()));
    server.wait_idle();
    let bytes = buf.0.lock().unwrap().clone();
    server.shutdown().unwrap();
    let mut reader = BufReader::new(&bytes[..]);
    let mut responses = Vec::new();
    while let Some(r) = read_response(&mut reader).unwrap() {
        responses.push(r);
    }
    responses
}

fn schedule_script(id: &str, opts: &str) -> String {
    let sep = if opts.is_empty() { "" } else { " " };
    format!(
        "req {id} schedule{sep}{opts} ddg {}\n{REGION}",
        REGION.lines().count()
    )
}

#[test]
fn schedule_response_is_byte_identical_to_direct_pipeline() {
    let responses = run_session(ServeConfig::default(), &schedule_script("r1", ""));
    assert_eq!(responses.len(), 1);
    let (id, resp) = &responses[0];
    assert_eq!(id, "r1");
    let Response::Ok { payload } = resp else {
        panic!("expected ok, got {resp:?}");
    };
    // The same input through the pipeline directly (cache off — certified
    // hits make cache on/off byte-identical).
    let ddg = sched_ir::textir::parse(REGION).unwrap();
    let occ = OccupancyModel::vega_like();
    let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
    cfg.aco.blocks = 32;
    let comp = pipeline::compile_region(&ddg, &occ, &cfg);
    let want = render::schedule_report(&ddg, &occ, SchedulerKind::ParallelAco, &comp).unwrap();
    assert_eq!(payload, &want);
}

#[test]
fn concurrent_requests_on_one_connection_all_answer() {
    // Four outstanding requests with distinct options; every response
    // must arrive, tagged with its id, and match a direct compile.
    let mut script = String::new();
    let cases = [
        ("a", "scheduler=amd"),
        ("b", "scheduler=cp"),
        ("c", "scheduler=seq seed=3"),
        ("d", "seed=1 blocks=8"),
    ];
    for (id, opts) in &cases {
        script.push_str(&schedule_script(id, opts));
    }
    let responses = run_session(ServeConfig::default(), &script);
    assert_eq!(responses.len(), cases.len());
    let ddg = sched_ir::textir::parse(REGION).unwrap();
    let occ = OccupancyModel::vega_like();
    for (id, resp) in &responses {
        let (kind, seed, blocks) = match id.as_str() {
            "a" => (SchedulerKind::BaseAmd, 0, 32),
            "b" => (SchedulerKind::CriticalPath, 0, 32),
            "c" => (SchedulerKind::SequentialAco, 3, 32),
            "d" => (SchedulerKind::ParallelAco, 1, 8),
            other => panic!("unexpected id {other}"),
        };
        let mut cfg = PipelineConfig::paper(kind, seed);
        cfg.aco.blocks = blocks;
        let comp = pipeline::compile_region(&ddg, &occ, &cfg);
        let want = render::schedule_report(&ddg, &occ, kind, &comp).unwrap();
        let Response::Ok { payload } = resp else {
            panic!("{id}: expected ok, got {resp:?}");
        };
        assert_eq!(payload, &want, "response {id} drifted");
    }
}

#[test]
fn zero_capacity_returns_typed_overload() {
    let config = ServeConfig {
        queue_capacity: 0,
        ..ServeConfig::default()
    };
    let responses = run_session(config, &schedule_script("r1", ""));
    assert_eq!(responses.len(), 1);
    assert_eq!(
        responses[0].1,
        Response::Overloaded {
            queued: 0,
            capacity: 0
        }
    );
}

#[test]
fn zero_deadline_returns_typed_expiry() {
    let responses = run_session(
        ServeConfig::default(),
        &schedule_script("r1", "deadline-ms=0"),
    );
    assert_eq!(responses.len(), 1);
    let Response::Expired { deadline_ms, .. } = responses[0].1 else {
        panic!("expected expired, got {:?}", responses[0].1);
    };
    assert_eq!(deadline_ms, 0);
}

#[test]
fn malformed_and_invalid_requests_answer_err_and_keep_serving() {
    let mut script = String::from("req x bogus\n");
    // Unparsable region payload.
    script.push_str("req y schedule ddg 1\nnot an instr line\n");
    // A valid request afterwards still works: errors do not wedge the
    // connection.
    script.push_str(&schedule_script("z", "scheduler=amd"));
    let responses = run_session(ServeConfig::default(), &script);
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].0, "x");
    assert!(matches!(responses[0].1, Response::Err { .. }));
    assert_eq!(responses[1].0, "y");
    assert!(matches!(responses[1].1, Response::Err { .. }));
    assert_eq!(responses[2].0, "z");
    assert!(matches!(responses[2].1, Response::Ok { .. }));
}

#[test]
fn suite_response_reports_the_golden_fingerprint() {
    // `suite seed=5` under the default options is exactly the golden
    // suite configuration: scaled(5, 0.008), pipeline seed 0, 4 blocks,
    // pass-2 gate 1. The served fingerprint must equal a direct
    // `compile_suite` run's.
    let responses = run_session(ServeConfig::default(), "req s suite seed=5\n");
    assert_eq!(responses.len(), 1);
    let Response::Ok { payload } = &responses[0].1 else {
        panic!("expected ok, got {:?}", responses[0].1);
    };
    let suite = workloads::Suite::generate(&workloads::SuiteConfig::scaled(5, 0.008));
    let occ = OccupancyModel::vega_like();
    let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
    cfg.aco.blocks = 4;
    cfg.aco.pass2_gate_cycles = 1;
    let run = compile_suite(&suite, &occ, &cfg);
    let want = format!(
        "fingerprint {:#018x}",
        sched_verify::suite_fingerprint(&run)
    );
    assert!(
        payload.lines().any(|l| l == want),
        "payload {payload:?} lacks {want:?}"
    );
    // And the full report matches the shared renderer against the direct
    // run (modeled compile time and all).
    assert_eq!(payload, &render::suite_report(&run));
}

#[test]
fn stats_and_flush_roundtrip_and_cache_persists() {
    let dir = std::env::temp_dir().join(format!("sched-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("cache.txt");
    let _ = std::fs::remove_file(&cache_path);

    let config = ServeConfig {
        cache_path: Some(cache_path.clone()),
        ..ServeConfig::default()
    };
    // Two identical schedules (second should hit the warm cache), then
    // stats, then flush.
    let mut script = String::new();
    script.push_str(&schedule_script("r1", ""));
    script.push_str(&schedule_script("r2", ""));
    script.push_str("req s1 stats\nreq f1 flush\n");
    let server = Server::start(config.clone()).unwrap();
    let buf = SharedBuf::default();
    handle_connection(server.engine(), script.as_bytes(), Box::new(buf.clone()));
    server.wait_idle();
    // Read the stats answered inline mid-session.
    let bytes = buf.0.lock().unwrap().clone();
    let mut reader = BufReader::new(&bytes[..]);
    let mut by_id = std::collections::HashMap::new();
    while let Some((id, r)) = read_response(&mut reader).unwrap() {
        by_id.insert(id, r);
    }
    let Some(Response::Ok { payload }) = by_id.get("s1") else {
        panic!("stats missing: {by_id:?}");
    };
    // The stats request is answered inline, after itself was counted but
    // before the flush arrived: 3 requests seen at that instant.
    assert!(payload.contains("requests: 3 received"), "{payload}");
    assert!(payload.contains("hits"), "{payload}");
    let Some(Response::Ok { payload }) = by_id.get("f1") else {
        panic!("flush missing: {by_id:?}");
    };
    assert!(payload.contains("flushed"), "{payload}");
    assert!(cache_path.exists(), "flush must write the cache file");
    server.shutdown().unwrap();

    // The persisted cache reloads cleanly and serves the same bytes.
    let reloaded = ScheduleCache::load_from(&cache_path).unwrap();
    let ddg = sched_ir::textir::parse(REGION).unwrap();
    let occ = OccupancyModel::vega_like();
    let mut cfg = PipelineConfig::paper(SchedulerKind::ParallelAco, 0);
    cfg.aco.blocks = 32;
    let comp = reloaded.compile_solo(&ddg, &occ, &cfg);
    let stats = reloaded.stats();
    assert_eq!(stats.hits, 1, "persisted entry must hit on reload");
    let direct = pipeline::compile_region(&ddg, &occ, &cfg);
    assert_eq!(
        render::schedule_report(&ddg, &occ, SchedulerKind::ParallelAco, &comp).unwrap(),
        render::schedule_report(&ddg, &occ, SchedulerKind::ParallelAco, &direct).unwrap(),
    );
    let _ = std::fs::remove_file(&cache_path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn tuned_suite_is_deterministic_across_worker_counts() {
    // A fresh tuned daemon snapshots its (empty) tuning store at suite
    // submission, so arm choices are frozen: the same request must answer
    // byte-identically no matter how many workers race over the jobs.
    let script = "req s suite seed=5 scale=0.004\n";
    let base = run_session(
        ServeConfig {
            workers: 1,
            tune: true,
            ..ServeConfig::default()
        },
        script,
    );
    assert_eq!(base.len(), 1);
    let Response::Ok { payload: want } = &base[0].1 else {
        panic!("expected ok, got {:?}", base[0].1);
    };
    for workers in [2, 8] {
        let got = run_session(
            ServeConfig {
                workers,
                tune: true,
                ..ServeConfig::default()
            },
            script,
        );
        let Response::Ok { payload } = &got[0].1 else {
            panic!("expected ok, got {:?}", got[0].1);
        };
        assert_eq!(payload, want, "tuned suite drifted at {workers} workers");
    }
}

#[test]
fn tuned_daemon_reports_tuner_stats_and_persists_the_store() {
    let dir = std::env::temp_dir().join(format!("sched-serve-tune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tune_path = dir.join("tune.txt");
    let _ = std::fs::remove_file(&tune_path);

    let config = ServeConfig {
        workers: 1,
        tune_path: Some(tune_path.clone()),
        ..ServeConfig::default()
    };
    let mut script = String::new();
    script.push_str(&schedule_script("r1", ""));
    script.push_str(&schedule_script("r2", ""));
    let server = Server::start(config).unwrap();
    let buf = SharedBuf::default();
    handle_connection(server.engine(), script.as_bytes(), Box::new(buf.clone()));
    server.wait_idle();
    // Stats on a second connection, after both compiles finished (the
    // inline stats answer would otherwise race the queued work).
    handle_connection(server.engine(), "req s1 stats\n".as_bytes(), {
        Box::new(buf.clone())
    });
    let bytes = buf.0.lock().unwrap().clone();
    server.shutdown().unwrap();
    let mut reader = BufReader::new(&bytes[..]);
    let mut by_id = std::collections::HashMap::new();
    while let Some((id, r)) = read_response(&mut reader).unwrap() {
        by_id.insert(id, r);
    }
    for id in ["r1", "r2"] {
        assert!(
            matches!(by_id.get(id), Some(Response::Ok { .. })),
            "{id}: {by_id:?}"
        );
    }
    let Some(Response::Ok { payload }) = by_id.get("s1") else {
        panic!("stats missing: {by_id:?}");
    };
    assert!(payload.contains("tuner: 2 choices"), "{payload}");
    assert!(payload.contains("2 observations"), "{payload}");

    // Shutdown persisted the learned store (tune_path alone, no cache
    // path); it reloads cleanly and a daemon booted from it starts with
    // the learned observations in place of a cold store.
    assert!(tune_path.exists(), "shutdown must write the tuning store");
    let reloaded = aco_tune::TuneStore::load_from(&tune_path).unwrap();
    assert_eq!(reloaded.stats().choices, 0, "counters reset on load");
    let responses = run_session(
        ServeConfig {
            workers: 1,
            tune_path: Some(tune_path.clone()),
            ..ServeConfig::default()
        },
        &schedule_script("r3", ""),
    );
    assert!(matches!(responses[0].1, Response::Ok { .. }));
    let _ = std::fs::remove_file(&tune_path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn flush_without_cache_path_is_a_typed_error() {
    let responses = run_session(ServeConfig::default(), "req f flush\n");
    assert_eq!(responses.len(), 1);
    let Response::Err { message } = &responses[0].1 else {
        panic!("expected err, got {:?}", responses[0].1);
    };
    assert!(message.contains("no cache file configured"), "{message}");
}
