//! Property tests: every generated region is a well-formed scheduling
//! problem (acyclic SSA with consistent def-use edges).

use proptest::prelude::*;
use reg_pressure::{prp_of_order, RegUniverse};
use sched_ir::Ddg;

fn check_region(ddg: &Ddg) -> Result<(), TestCaseError> {
    prop_assert!(ddg.len() >= 2);
    // Topological order exists (build() validated acyclicity); every edge
    // respects it.
    let mut pos = vec![0usize; ddg.len()];
    for (i, id) in ddg.topo_order().iter().enumerate() {
        pos[id.index()] = i;
    }
    for id in ddg.ids() {
        for &(s, _) in ddg.succs(id) {
            prop_assert!(pos[id.index()] < pos[s.index()]);
        }
    }
    // SSA def-use sanity: pressure tracking over a topological order never
    // trips the dead-register debug assertion and drains to live-outs.
    let universe = RegUniverse::new(ddg);
    let _ = universe;
    let prp = prp_of_order(ddg, ddg.topo_order());
    prop_assert!(prp[0] > 0 || prp[1] > 0, "regions use registers");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sized_regions_are_well_formed(target in 4usize..260, seed in any::<u64>()) {
        check_region(&workloads::patterns::sized(target, seed))?;
    }

    #[test]
    fn named_generators_are_well_formed(seed in any::<u64>(), lanes in 2usize..24) {
        check_region(&workloads::patterns::reduction(lanes, seed))?;
        check_region(&workloads::patterns::scan(lanes, seed))?;
        check_region(&workloads::patterns::transform_chain(lanes, 3, seed))?;
        check_region(&workloads::patterns::vector_transform(lanes, 2, 4, seed))?;
        check_region(&workloads::patterns::stencil(lanes, 2, seed))?;
        check_region(&workloads::patterns::gather_chain(lanes, 3, seed))?;
        check_region(&workloads::patterns::random_layered(lanes, 4, seed))?;
    }

    #[test]
    fn sized_is_deterministic(target in 4usize..200, seed in any::<u64>()) {
        let a = workloads::patterns::sized(target, seed);
        let b = workloads::patterns::sized(target, seed);
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.edge_count(), b.edge_count());
    }
}
