//! DDG generators for kernel-shaped scheduling regions.
//!
//! Each generator produces an SSA-form [`Ddg`] with def→use edges labelled
//! with [`machine_model`] latencies. All generators are deterministic in
//! their seed.

use machine_model::{op_latency, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sched_ir::{Ddg, DdgBuilder, InstrId, Reg};

/// Tracks SSA register allocation and the value-producing instruction of
/// each register while a pattern is being built.
struct GenCtx {
    b: DdgBuilder,
    next_vgpr: u32,
    next_sgpr: u32,
}

/// A value: the register holding it and the instruction that produced it
/// (None for live-in values).
#[derive(Clone, Copy)]
struct Val {
    reg: Reg,
    producer: Option<InstrId>,
    kind: OpKind,
}

impl GenCtx {
    fn new() -> GenCtx {
        GenCtx {
            b: DdgBuilder::new(),
            next_vgpr: 0,
            next_sgpr: 0,
        }
    }

    fn fresh_vgpr(&mut self) -> Reg {
        let r = Reg::vgpr(self.next_vgpr);
        self.next_vgpr += 1;
        r
    }

    fn fresh_sgpr(&mut self) -> Reg {
        let r = Reg::sgpr(self.next_sgpr);
        self.next_sgpr += 1;
        r
    }

    /// A live-in scalar value (e.g. a kernel argument / base pointer).
    fn live_in_sgpr(&mut self) -> Val {
        let reg = self.fresh_sgpr();
        Val {
            reg,
            producer: None,
            kind: OpKind::SaluAlu,
        }
    }

    /// Emits an instruction producing one fresh VGPR from `inputs`, adding
    /// def→use edges with the producer's latency.
    fn emit(&mut self, kind: OpKind, inputs: &[Val]) -> Val {
        let reg = self.fresh_vgpr();
        let id = self.b.instr(
            format!("{}_{}", kind.mnemonic(), self.b.len()),
            [reg],
            inputs.iter().map(|v| v.reg),
        );
        self.link(id, inputs);
        Val {
            reg,
            producer: Some(id),
            kind,
        }
    }

    /// Emits an instruction producing `ndefs` fresh VGPRs (a vector value,
    /// e.g. a `dwordx4` load) from `inputs`.
    fn emit_multi(&mut self, kind: OpKind, inputs: &[Val], ndefs: usize) -> Vec<Val> {
        let regs: Vec<Reg> = (0..ndefs).map(|_| self.fresh_vgpr()).collect();
        let id = self.b.instr(
            format!("{}_{}", kind.mnemonic(), self.b.len()),
            regs.iter().copied(),
            inputs.iter().map(|v| v.reg),
        );
        self.link(id, inputs);
        regs.into_iter()
            .map(|reg| Val {
                reg,
                producer: Some(id),
                kind,
            })
            .collect()
    }

    /// Emits a value-consuming instruction with no def (a store).
    fn emit_sink(&mut self, kind: OpKind, inputs: &[Val]) -> InstrId {
        let id = self.b.instr(
            format!("{}_{}", kind.mnemonic(), self.b.len()),
            [],
            inputs.iter().map(|v| v.reg),
        );
        self.link(id, inputs);
        id
    }

    fn link(&mut self, id: InstrId, inputs: &[Val]) {
        for v in inputs {
            if let Some(p) = v.producer {
                self.b
                    .edge(p, id, op_latency(v.kind))
                    .expect("generator edges are valid");
            }
        }
    }

    fn finish(self) -> Ddg {
        self.b
            .build()
            .expect("generated DDGs are acyclic by construction")
    }
}

/// A binary-tree reduction over `lanes` loaded elements
/// (`lanes` loads + `lanes - 1` adds + 1 store); the canonical rocPRIM
/// `block_reduce` shape: maximal ILP at the leaves, a latency-bound root.
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn reduction(lanes: usize, seed: u64) -> Ddg {
    assert!(lanes > 0, "reduction needs at least one lane");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let mut level: Vec<Val> = (0..lanes)
        .map(|_| g.emit(OpKind::VMemLoad, &[base]))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                // Occasionally a fused op with longer latency.
                let kind = if rng.gen_bool(0.1) {
                    OpKind::VTrans
                } else {
                    OpKind::ValuAlu
                };
                next.push(g.emit(kind, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let root = level[0];
    g.emit_sink(OpKind::VMemStore, &[root, base]);
    g.finish()
}

/// A Kogge–Stone inclusive scan over `lanes` elements (`lanes` loads,
/// `lanes·⌈log2 lanes⌉` adds in dependent rounds, `lanes` stores) — the
/// rocPRIM `block_scan` shape: wide rounds with tight cross-round deps.
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn scan(lanes: usize, seed: u64) -> Ddg {
    assert!(lanes > 0, "scan needs at least one lane");
    let _ = seed;
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let mut vals: Vec<Val> = (0..lanes)
        .map(|_| g.emit(OpKind::VMemLoad, &[base]))
        .collect();
    let mut d = 1;
    while d < lanes {
        let prev = vals.clone();
        for i in d..lanes {
            vals[i] = g.emit(OpKind::ValuAlu, &[prev[i], prev[i - d]]);
        }
        d *= 2;
    }
    for v in &vals {
        g.emit_sink(OpKind::VMemStore, &[*v, base]);
    }
    g.finish()
}

/// `streams` independent load→ALU-chain→store pipelines of depth
/// `chain_len`; the rocPRIM `transform`/`for_each` shape. ILP comes from
/// interleaving streams; pressure from how many streams are in flight.
///
/// # Panics
///
/// Panics if `streams == 0`.
pub fn transform_chain(streams: usize, chain_len: usize, seed: u64) -> Ddg {
    assert!(streams > 0, "transform needs at least one stream");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    for _ in 0..streams {
        let mut v = g.emit(OpKind::VMemLoad, &[base]);
        for _ in 0..chain_len {
            let kind = if rng.gen_bool(0.15) {
                OpKind::VTrans
            } else {
                OpKind::ValuAlu
            };
            v = g.emit(kind, &[v]);
        }
        g.emit_sink(OpKind::VMemStore, &[v, base]);
    }
    g.finish()
}

/// `width` parallel pointer-chase chains of `depth` *dependent* loads each
/// (each load's address comes from the previous load), combined by a
/// reduction tree — the rocPRIM gather / binary-search shape. Dependent
/// long-latency loads make these regions stall-heavy: their heuristic
/// schedules sit far above the length lower bound, which is exactly the
/// population the paper's pass 2 processes.
///
/// # Panics
///
/// Panics if `width == 0` or `depth == 0`.
pub fn gather_chain(width: usize, depth: usize, seed: u64) -> Ddg {
    assert!(
        width > 0 && depth > 0,
        "gather needs at least one chain and one hop"
    );
    let _ = seed;
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let mut heads = Vec::with_capacity(width);
    for _ in 0..width {
        let mut v = g.emit(OpKind::VMemLoad, &[base]);
        for _ in 1..depth {
            v = g.emit(OpKind::VMemLoad, &[v]);
        }
        heads.push(v);
    }
    while heads.len() > 1 {
        let mut next = Vec::with_capacity(heads.len().div_ceil(2));
        for pair in heads.chunks(2) {
            if pair.len() == 2 {
                next.push(g.emit(OpKind::ValuAlu, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        heads = next;
    }
    g.emit_sink(OpKind::VMemStore, &[heads[0], base]);
    g.finish()
}

/// `streams` independent pipelines over `width`-register vector values
/// (dwordx`width` loads, per-lane ALU chains, vector stores) — the rocPRIM
/// `items_per_thread`-unrolled shape. Register pressure is roughly
/// `streams × width`, so even *small* regions can exceed the top occupancy
/// band and give ACO's RP pass something to do.
///
/// # Panics
///
/// Panics if `streams`, `chain_len` or `width` is 0.
pub fn vector_transform(streams: usize, chain_len: usize, width: usize, seed: u64) -> Ddg {
    assert!(streams > 0 && chain_len > 0 && width > 0);
    let _ = seed;
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    for _ in 0..streams {
        let mut vals = g.emit_multi(OpKind::VMemLoad, &[base], width);
        for _ in 0..chain_len {
            let inputs = vals.clone();
            vals = g.emit_multi(OpKind::ValuAlu, &inputs, width);
        }
        let mut store_inputs = vals;
        store_inputs.push(base);
        g.emit_sink(OpKind::VMemStore, &store_inputs);
    }
    g.finish()
}

/// A 1-D stencil producing `outputs` points from a window of `2·radius + 1`
/// neighbours; loads are shared between adjacent outputs (high reuse, LUC
/// matters).
///
/// # Panics
///
/// Panics if `outputs == 0`.
pub fn stencil(outputs: usize, radius: usize, seed: u64) -> Ddg {
    assert!(outputs > 0, "stencil needs at least one output");
    let _ = seed;
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let width = 2 * radius + 1;
    let loads: Vec<Val> = (0..outputs + width - 1)
        .map(|_| g.emit(OpKind::VMemLoad, &[base]))
        .collect();
    for o in 0..outputs {
        let mut acc = loads[o];
        for w in 1..width {
            acc = g.emit(OpKind::ValuAlu, &[acc, loads[o + w]]);
        }
        g.emit_sink(OpKind::VMemStore, &[acc, base]);
    }
    g.finish()
}

/// A bitonic sorting network over `lanes` wires (compare-exchange pairs emit
/// a min and a max instruction); the rocPRIM `block_sort` shape.
///
/// # Panics
///
/// Panics if `lanes` is not a power of two or is zero.
pub fn sort_network(lanes: usize, seed: u64) -> Ddg {
    assert!(
        lanes > 0 && lanes.is_power_of_two(),
        "bitonic network needs a power of two"
    );
    let _ = seed;
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let mut wires: Vec<Val> = (0..lanes)
        .map(|_| g.emit(OpKind::VMemLoad, &[base]))
        .collect();
    let mut k = 2;
    while k <= lanes {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..lanes {
                let l = i ^ j;
                if l > i {
                    let (a, b) = (wires[i], wires[l]);
                    let lo = g.emit(OpKind::ValuAlu, &[a, b]); // min
                    let hi = g.emit(OpKind::ValuAlu, &[a, b]); // max
                    if (i & k) == 0 {
                        wires[i] = lo;
                        wires[l] = hi;
                    } else {
                        wires[i] = hi;
                        wires[l] = lo;
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    for w in &wires {
        g.emit_sink(OpKind::VMemStore, &[*w, base]);
    }
    g.finish()
}

/// A layered random DAG: `layers` layers of width up to `width`, each node
/// consuming 1–3 values from earlier layers (biased to the previous one).
/// Op kinds are mixed (mostly ALU, some loads and transcendentals).
///
/// # Panics
///
/// Panics if `layers == 0` or `width == 0`.
pub fn random_layered(layers: usize, width: usize, seed: u64) -> Ddg {
    assert!(layers > 0 && width > 0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDA6);
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let mut all: Vec<Val> = Vec::new();
    let mut prev_layer: Vec<Val> = Vec::new();
    for layer in 0..layers {
        let w = rng.gen_range(1..=width);
        let mut cur = Vec::with_capacity(w);
        for _ in 0..w {
            if layer == 0 || all.is_empty() || rng.gen_bool(0.15) {
                cur.push(g.emit(OpKind::VMemLoad, &[base]));
            } else {
                let k = rng.gen_range(1..=3usize);
                let mut inputs = Vec::with_capacity(k);
                for _ in 0..k {
                    let v = if !prev_layer.is_empty() && rng.gen_bool(0.7) {
                        prev_layer[rng.gen_range(0..prev_layer.len())]
                    } else {
                        all[rng.gen_range(0..all.len())]
                    };
                    inputs.push(v);
                }
                let kind = match rng.gen_range(0..10) {
                    0 => OpKind::VTrans,
                    1 => OpKind::Lds,
                    _ => OpKind::ValuAlu,
                };
                cur.push(g.emit(kind, &inputs));
            }
        }
        all.extend(cur.iter().copied());
        prev_layer = cur;
    }
    // Store the final layer so its values are consumed.
    for v in &prev_layer {
        g.emit_sink(OpKind::VMemStore, &[*v, base]);
    }
    g.finish()
}

/// The mixed-pattern region kinds [`sized`] chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatternKind {
    Reduction,
    Scan,
    Transform,
    VectorTransform,
    Stencil,
    Sort,
    Gather,
    Random,
}

/// Generates a mixed-pattern region of approximately `target` instructions
/// (within ±20%), choosing a pattern shape pseudo-randomly from the seed.
///
/// This is the workhorse used by the suite generator: the paper's region
/// sizes vary from a couple of instructions to thousands, and ACO's
/// behaviour depends mostly on the size and latency structure, not on which
/// library kernel the region came from.
///
/// # Panics
///
/// Panics if `target < 2`.
pub fn sized(target: usize, seed: u64) -> Ddg {
    assert!(target >= 2, "regions need at least two instructions");
    let mut rng = SmallRng::seed_from_u64(seed);
    let kind = match rng.gen_range(0..100) {
        0..=14 => PatternKind::Transform,
        15..=26 => PatternKind::VectorTransform,
        27..=40 => PatternKind::Reduction,
        41..=48 => PatternKind::Scan,
        49..=59 => PatternKind::Stencil,
        60..=66 => PatternKind::Sort,
        67..=81 => PatternKind::Gather,
        _ => PatternKind::Random,
    };
    let sub = rng.gen::<u64>();
    match kind {
        // reduction: n = 2*lanes exactly.
        PatternKind::Reduction if target >= 4 => reduction(target / 2, sub),
        // scan: n = lanes + Σ_d (lanes - d) + lanes; search the smallest
        // lane count whose exact cost reaches the target.
        PatternKind::Scan if target >= 8 => {
            let mut lanes = 2usize;
            while scan_cost(lanes) < target {
                lanes += 1;
            }
            scan(lanes, sub)
        }
        // transform: n = streams * (chain + 2) exactly; round streams.
        PatternKind::Transform if target >= 6 => {
            let chain = rng.gen_range(1..=6usize);
            let per = chain + 2;
            let streams = ((target + per / 2) / per).max(1);
            transform_chain(streams, chain, sub)
        }
        // stencil: n = (outputs + width - 1) + outputs*(width - 1) + outputs.
        PatternKind::Stencil if target >= 8 => {
            let radius_max = match target {
                0..=15 => 1,
                16..=23 => 2,
                _ => 3,
            };
            let radius = rng.gen_range(1..=radius_max);
            let width = 2 * radius + 1;
            let per = width + 1;
            let outputs = ((target.saturating_sub(width - 1) + per / 2) / per).max(1);
            stencil(outputs, radius, sub)
        }
        // sort: lane counts are powers of two, so the exact cost is coarse;
        // take the closest and fall back to a random DAG when the gap
        // exceeds ±20%.
        PatternKind::Sort if target >= 12 => {
            let mut best = (2usize, sort_cost(2));
            let mut lanes = 4usize;
            while sort_cost(lanes / 2) < target * 2 {
                if sort_cost(lanes).abs_diff(target) < best.1.abs_diff(target) {
                    best = (lanes, sort_cost(lanes));
                }
                lanes *= 2;
            }
            if best.1.abs_diff(target) * 5 <= target {
                sort_network(best.0, sub)
            } else {
                random_budget(target, &mut rng)
            }
        }
        // vector transform: n = streams * (chain + 2).
        PatternKind::VectorTransform if target >= 8 => {
            let chain = rng.gen_range(1..=4usize);
            let width = rng.gen_range(2..=4usize);
            let per = chain + 2;
            let streams = ((target + per / 2) / per).max(2);
            vector_transform(streams, chain, width, sub)
        }
        // gather: n = width*depth + (width-1) + 1 = width*(depth+1).
        PatternKind::Gather if target >= 6 => {
            let depth = rng.gen_range(2..=6usize);
            let width = target.div_ceil(depth + 1).max(1);
            gather_chain(width, depth, sub)
        }
        _ => random_budget(target, &mut rng),
    }
}

/// Exact instruction count of [`scan`] with the given lane count.
fn scan_cost(lanes: usize) -> usize {
    let mut adds = 0;
    let mut d = 1;
    while d < lanes {
        adds += lanes - d;
        d *= 2;
    }
    2 * lanes + adds
}

/// Exact instruction count of [`sort_network`] with the given lane count.
fn sort_cost(lanes: usize) -> usize {
    let stages: usize = (1..=lanes.ilog2() as usize).sum();
    2 * lanes + lanes * stages
}

/// A layered random DAG with an exact instruction budget: emits layers
/// until `target` instructions (including the trailing stores) are placed.
fn random_budget(target: usize, rng: &mut SmallRng) -> Ddg {
    let mut g = GenCtx::new();
    let base = g.live_in_sgpr();
    let width = rng.gen_range(2..=8usize).min(target);
    // Fix the store count up front so the total is exactly `target`.
    let stores = (target / 10).clamp(1, 8);
    let interior = target - stores;
    let mut all: Vec<Val> = Vec::new();
    let mut prev_layer: Vec<Val> = Vec::new();
    while g.b.len() < interior {
        let room = interior - g.b.len();
        let w = rng.gen_range(1..=width).min(room);
        let mut cur = Vec::with_capacity(w);
        for _ in 0..w {
            if all.is_empty() || rng.gen_bool(0.15) {
                cur.push(g.emit(OpKind::VMemLoad, &[base]));
            } else {
                let k = rng.gen_range(1..=3usize);
                let mut inputs = Vec::with_capacity(k);
                for _ in 0..k {
                    let v = if !prev_layer.is_empty() && rng.gen_bool(0.7) {
                        prev_layer[rng.gen_range(0..prev_layer.len())]
                    } else {
                        all[rng.gen_range(0..all.len())]
                    };
                    inputs.push(v);
                }
                let kind = match rng.gen_range(0..10) {
                    0 => OpKind::VTrans,
                    1 => OpKind::Lds,
                    _ => OpKind::ValuAlu,
                };
                cur.push(g.emit(kind, &inputs));
            }
        }
        all.extend(cur.iter().copied());
        prev_layer = cur;
    }
    // Store the most recently produced values (likely unconsumed).
    for i in 0..stores {
        let v = all[all.len() - 1 - (i % all.len())];
        g.emit_sink(OpKind::VMemStore, &[v, base]);
    }
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_counts() {
        let g = reduction(16, 1);
        // 16 loads + 15 combines + 1 store
        assert_eq!(g.len(), 32);
        assert_eq!(g.leaves().count(), 1);
    }

    #[test]
    fn reduction_single_lane() {
        let g = reduction(1, 1);
        assert_eq!(g.len(), 2); // load + store
    }

    #[test]
    fn scan_counts() {
        let g = scan(8, 1);
        // 8 loads + (7+6+4) adds + 8 stores
        assert_eq!(g.len(), 8 + 17 + 8);
    }

    #[test]
    fn transform_chain_counts() {
        let g = transform_chain(4, 3, 1);
        assert_eq!(g.len(), 4 * (1 + 3 + 1));
        // Streams are independent: 4 roots.
        assert_eq!(g.roots().count(), 4);
    }

    #[test]
    fn stencil_shares_loads() {
        let g = stencil(4, 1, 1);
        // 6 loads + 4*2 adds + 4 stores
        assert_eq!(g.len(), 6 + 8 + 4);
    }

    #[test]
    fn sort_network_is_power_of_two_only() {
        let g = sort_network(4, 1);
        assert!(g.len() > 8);
        assert!(std::panic::catch_unwind(|| sort_network(3, 1)).is_err());
    }

    #[test]
    fn random_layered_is_deterministic() {
        let a = random_layered(10, 4, 99);
        let b = random_layered(10, 4, 99);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn all_patterns_validate_and_have_latencies() {
        let ddgs = [
            reduction(8, 2),
            scan(8, 2),
            transform_chain(3, 4, 2),
            stencil(5, 2, 2),
            sort_network(8, 2),
            random_layered(12, 5, 2),
        ];
        for g in &ddgs {
            assert!(g.len() >= 2);
            // Memory edges must carry long latencies somewhere.
            let max_lat = g
                .ids()
                .flat_map(|i| g.succs(i).iter().map(|&(_, l)| l))
                .max()
                .unwrap_or(0);
            assert!(
                max_lat >= op_latency(OpKind::VMemLoad),
                "latency structure missing"
            );
        }
    }

    #[test]
    fn sized_hits_target_within_20_percent() {
        for (target, seed) in [(20usize, 0u64), (50, 1), (100, 2), (200, 3), (400, 4)] {
            for s in 0..8u64 {
                let g = sized(target, seed * 100 + s);
                let lo = target * 8 / 10;
                let hi = target * 12 / 10 + 4;
                assert!(
                    g.len() >= lo.min(2) && g.len() <= hi,
                    "target {target} seed {s}: got {}",
                    g.len()
                );
            }
        }
    }

    #[test]
    fn vector_transform_has_wide_pressure() {
        let g = vector_transform(8, 3, 4, 1);
        assert_eq!(g.len(), 8 * 5);
        // Wide values: one load defines 4 registers.
        let max_defs = g.ids().map(|i| g.instr(i).defs().len()).max().unwrap();
        assert_eq!(max_defs, 4);
    }

    #[test]
    fn gather_chain_counts_and_shape() {
        let g = gather_chain(4, 3, 1);
        // 12 loads + 3 combines + 1 store
        assert_eq!(g.len(), 16);
        // Dependent loads: critical path far above the ALU-only depth.
        assert!(g.critical_path_length() >= 3 * op_latency(OpKind::VMemLoad) as u32);
        assert_eq!(g.roots().count(), 4);
    }

    #[test]
    fn sized_handles_tiny_regions() {
        for t in 2..=8usize {
            for s in 0..4u64 {
                let g = sized(t, s);
                assert!(
                    g.len() >= 2,
                    "target {t} seed {s} produced {} instrs",
                    g.len()
                );
            }
        }
    }
}
