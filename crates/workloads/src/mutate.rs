//! Defect injectors for analyzer mutation testing.
//!
//! Each injector takes a clean generated region and plants exactly one
//! defect of a known class, returning the mutated region plus enough
//! information for a test to assert the analyzer's finding points at the
//! planted defect — the mutation-testing counterpart of `sched-analyze`'s
//! S-code passes (redundant edge → S001, cycle → S002, orphan → S003,
//! corrupted latency → S004).
//!
//! Injectors are deterministic: the `seed` selects among the eligible
//! injection sites so property tests can sweep many placements. They
//! return `None` when the region has no eligible site (e.g. no transitive
//! pair to span with a redundant edge).

use machine_model::{op_latency, OpKind};
use sched_ir::textir;
use sched_ir::{Ddg, DdgBuilder, InstrId};

/// Rebuilds a region's instructions and edges into a fresh builder,
/// optionally overriding one edge's latency.
fn rebuild(ddg: &Ddg, override_edge: Option<(InstrId, InstrId, u16)>) -> DdgBuilder {
    let mut b = DdgBuilder::new();
    for id in ddg.ids() {
        let i = ddg.instr(id);
        b.instr(i.name(), i.defs().iter().copied(), i.uses().iter().copied());
    }
    for id in ddg.ids() {
        for &(succ, lat) in ddg.succs(id) {
            let lat = match override_edge {
                Some((f, t, l)) if f == id && t == succ => l,
                _ => lat,
            };
            b.edge(id, succ, lat).expect("edges of a valid Ddg rebuild");
        }
    }
    b
}

/// Plants one transitively redundant edge: a latency-1 edge `a -> b` where
/// a path of two or more edges already runs `a -> ... -> b` (so its
/// effective latency is at least 2, which always covers the planted
/// edge's effective latency of 1 — the edge is redundant by construction).
///
/// Returns the mutated region and the planted edge, or `None` when the
/// region has no uncovered transitive pair.
pub fn with_redundant_edge(ddg: &Ddg, seed: u64) -> Option<(Ddg, (InstrId, InstrId))> {
    let tc = ddg.transitive_closure();
    let mut sites = Vec::new();
    for a in ddg.ids() {
        for &(m, _) in ddg.succs(a) {
            for b in tc.descendants(m) {
                // a -> m -> ... -> b is a multi-edge path; eligible when no
                // direct edge a -> b exists yet.
                if ddg.succs(a).iter().all(|&(s, _)| s != b) {
                    sites.push((a, b));
                }
            }
        }
    }
    sites.sort();
    sites.dedup();
    if sites.is_empty() {
        return None;
    }
    let (a, b) = sites[(seed as usize) % sites.len()];
    let mut builder = rebuild(ddg, None);
    builder.edge(a, b, 1).expect("a -> b follows the closure");
    Some((builder.build().expect("still acyclic"), (a, b)))
}

/// Appends one orphan node: no dependences, no defs, no uses. Generators
/// never emit one (every instruction carries registers), so any orphan in
/// a generated region is an injected defect.
///
/// Returns the mutated region and the orphan's id.
pub fn with_orphan_node(ddg: &Ddg) -> (Ddg, InstrId) {
    let mut builder = rebuild(ddg, None);
    let orphan = builder.instr("orphan", [], []);
    (
        builder.build().expect("adding a node keeps acyclicity"),
        orphan,
    )
}

/// Maps a generated instruction name (`{mnemonic}_{index}`) back to its
/// [`OpKind`], mirroring how the generators assign edge latencies.
fn kind_of_name(name: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|k| {
        let m = k.mnemonic();
        name.strip_prefix(m)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
    })
}

/// Corrupts one edge's latency to `op_latency(kind) + 17`, violating the
/// generator invariant that every out-edge of a `{mnemonic}_{i}` producer
/// carries the producer's model latency.
///
/// Returns the mutated region and the corrupted edge, or `None` when no
/// edge has a model-named producer.
pub fn with_corrupt_latency(ddg: &Ddg, seed: u64) -> Option<(Ddg, (InstrId, InstrId))> {
    let mut sites = Vec::new();
    for a in ddg.ids() {
        if let Some(kind) = kind_of_name(ddg.instr(a).name()) {
            for &(b, _) in ddg.succs(a) {
                sites.push((a, b, op_latency(kind) + 17));
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (a, b, bad) = sites[(seed as usize) % sites.len()];
    let ddg = rebuild(ddg, Some((a, b, bad)))
        .build()
        .expect("latency change keeps the graph acyclic");
    Some((ddg, (a, b)))
}

/// Renders the region to text IR and appends the reverse of one edge,
/// creating a two-node dependence cycle. The result can only exist as
/// text (a validated [`Ddg`] cannot represent it) — parse it with
/// [`textir::parse_raw`].
///
/// Returns the cyclic text and the two nodes of the planted cycle, or
/// `None` for an edgeless region.
pub fn with_cycle_text(ddg: &Ddg, seed: u64) -> Option<(String, (InstrId, InstrId))> {
    let mut edges = Vec::new();
    for id in ddg.ids() {
        for &(succ, lat) in ddg.succs(id) {
            edges.push((id, succ, lat));
        }
    }
    if edges.is_empty() {
        return None;
    }
    let (a, b, lat) = edges[(seed as usize) % edges.len()];
    let mut text = textir::to_text(ddg);
    text.push_str(&format!("edge {} {} {}\n", b.0, a.0, lat));
    Some((text, (a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn redundant_edge_injection_spans_a_transitive_pair() {
        let ddg = patterns::reduction(8, 3);
        let (mutated, (a, b)) = with_redundant_edge(&ddg, 5).expect("reductions have chains");
        assert_eq!(mutated.len(), ddg.len());
        assert_eq!(mutated.edge_count(), ddg.edge_count() + 1);
        assert!(mutated.succs(a).iter().any(|&(s, l)| s == b && l == 1));
        assert!(ddg.transitive_closure().depends(a, b));
    }

    #[test]
    fn orphan_injection_appends_a_disconnected_node() {
        let ddg = patterns::scan(8, 3);
        let (mutated, orphan) = with_orphan_node(&ddg);
        assert_eq!(mutated.len(), ddg.len() + 1);
        assert!(mutated.succs(orphan).is_empty());
        assert!(mutated.preds(orphan).is_empty());
        assert!(mutated.instr(orphan).defs().is_empty());
    }

    #[test]
    fn latency_corruption_breaks_the_model_invariant() {
        let ddg = patterns::sized(60, 11);
        let (mutated, (a, b)) = with_corrupt_latency(&ddg, 2).expect("generated names map");
        let kind = kind_of_name(mutated.instr(a).name()).unwrap();
        let lat = mutated
            .succs(a)
            .iter()
            .find(|&&(s, _)| s == b)
            .map(|&(_, l)| l)
            .unwrap();
        assert_eq!(lat, op_latency(kind) + 17);
    }

    #[test]
    fn cycle_text_reverses_an_existing_edge() {
        let ddg = patterns::transform_chain(2, 5, 9);
        let (text, (a, b)) = with_cycle_text(&ddg, 0).expect("chains have edges");
        let raw = textir::parse_raw(&text).expect("still syntactically valid");
        assert!(raw.edges.iter().any(|e| (e.from, e.to) == (b.0, a.0)));
        assert!(raw.build().is_err(), "the cycle must defeat strict parsing");
    }

    #[test]
    fn injectors_return_none_without_eligible_sites() {
        let mut b = DdgBuilder::new();
        b.instr("lone_a", [], []);
        b.instr("lone_b", [], []);
        let ddg = b.build().unwrap();
        assert!(with_redundant_edge(&ddg, 0).is_none());
        assert!(with_corrupt_latency(&ddg, 0).is_none());
        assert!(with_cycle_text(&ddg, 0).is_none());
    }
}
