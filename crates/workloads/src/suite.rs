//! rocPRIM-like benchmark-suite generation with Table-1-shaped statistics.

use crate::patterns;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sched_ir::Ddg;
use serde::{Deserialize, Serialize};

/// A GPU kernel: a set of scheduling regions plus the execution-model
/// parameters the pipeline needs to turn schedules into throughput.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name, e.g. `block_reduce_k17`.
    pub name: String,
    /// Scheduling regions of the kernel. Index 0 is the *hot* region: the
    /// innermost loop body dominating execution time.
    pub regions: Vec<Ddg>,
    /// Bytes moved per benchmark invocation (sets the throughput scale).
    pub bytes_per_launch: u64,
    /// Fraction of kernel run time bound by latency (vs bandwidth); higher
    /// values make occupancy and schedule length matter more.
    pub latency_bound: f64,
}

/// A benchmark: a named workload invoking one or more kernels.
///
/// Mirrors the paper's structure where "some kernels are invoked by
/// multiple benchmarks".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Benchmark name, e.g. `device_reduce_i32`.
    pub name: String,
    /// Indices into [`Suite::kernels`].
    pub kernels: Vec<usize>,
}

/// Configuration of suite generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// RNG seed; equal seeds give identical suites.
    pub seed: u64,
    /// Number of benchmarks (the paper's suite has 341).
    pub benchmarks: usize,
    /// Number of distinct kernels (the paper's suite has 269).
    pub kernels: usize,
    /// Mean number of scheduling regions per kernel (the paper's suite
    /// averages 181,883 / 269 ≈ 676).
    pub mean_regions_per_kernel: usize,
    /// Largest region size to generate (paper max: 2,223).
    pub max_region_size: usize,
    /// Fraction of regions instantiated from a shared template pool
    /// instead of generated fresh, in `[0, 1]`.
    ///
    /// Real suites are template-heavy: rocPRIM stamps out the same
    /// `block_reduce`/`block_scan` bodies across hundreds of type/size
    /// instantiations, so many scheduling regions are *content-identical*
    /// (same DDG up to instruction names). `0.0` (the default everywhere
    /// except [`SuiteConfig::duplicate_heavy`]) disables the post-pass
    /// entirely — generation is byte-identical to pre-knob suites.
    pub template_duplication: f64,
}

impl SuiteConfig {
    /// The paper-scale configuration (LARGE: ~180k regions; minutes to
    /// generate and schedule).
    pub fn paper_scale(seed: u64) -> SuiteConfig {
        SuiteConfig {
            seed,
            benchmarks: 341,
            kernels: 269,
            mean_regions_per_kernel: 676,
            max_region_size: 2223,
            template_duplication: 0.0,
        }
    }

    /// A scaled-down configuration preserving the shape: `scale` in
    /// `(0, 1]` multiplies benchmark/kernel/region counts (region *sizes*
    /// are preserved, except the tail is capped at `max_region_size`).
    pub fn scaled(seed: u64, scale: f64) -> SuiteConfig {
        let s = scale.clamp(0.002, 1.0);
        let full = SuiteConfig::paper_scale(seed);
        SuiteConfig {
            seed,
            benchmarks: ((full.benchmarks as f64 * s).round() as usize).max(1),
            kernels: ((full.kernels as f64 * s).round() as usize).max(1),
            // Regions-per-kernel scales gently (sqrt) so scaled suites keep
            // a paper-like regions:kernels ratio without quadratic blowup.
            mean_regions_per_kernel: ((full.mean_regions_per_kernel as f64 * s.sqrt()).round()
                as usize)
                .max(4),
            max_region_size: ((full.max_region_size as f64 * s.sqrt()).round() as usize).max(120),
            template_duplication: 0.0,
        }
    }

    /// A duplicate-heavy scaled suite: 60% of regions are template
    /// instantiations, the rocPRIM-like shape the schedule cache targets.
    pub fn duplicate_heavy(seed: u64, scale: f64) -> SuiteConfig {
        SuiteConfig::scaled(seed, scale).with_template_duplication(0.6)
    }

    /// The same configuration with the template-duplication fraction set.
    pub fn with_template_duplication(mut self, fraction: f64) -> SuiteConfig {
        self.template_duplication = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Default for SuiteConfig {
    /// A small smoke-test scale (fractions of a second to generate).
    fn default() -> SuiteConfig {
        SuiteConfig::scaled(0, 0.01)
    }
}

/// A generated benchmark suite.
#[derive(Debug, Clone)]
pub struct Suite {
    /// All kernels, indexed by [`Benchmark::kernels`].
    pub kernels: Vec<Kernel>,
    /// All benchmarks.
    pub benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// Generates a suite from the configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: &SuiteConfig) -> Suite {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut kernels: Vec<Kernel> = (0..config.kernels)
            .map(|k| gen_kernel(k, config, &mut rng))
            .collect();
        instantiate_templates(&mut kernels, config);
        let benchmarks = (0..config.benchmarks)
            .map(|i| {
                // Most benchmarks drive one kernel; some drive 2-3 (e.g.
                // sort = partition + merge). Kernel reuse across benchmarks
                // arises naturally from sampling.
                let n = match rng.gen_range(0..10) {
                    0..=6 => 1,
                    7..=8 => 2,
                    _ => 3,
                };
                let kernels_of_b: Vec<usize> =
                    (0..n).map(|_| rng.gen_range(0..kernels.len())).collect();
                Benchmark {
                    name: format!("bench_{i:03}"),
                    kernels: kernels_of_b,
                }
            })
            .collect();
        Suite {
            kernels,
            benchmarks,
        }
    }

    /// Total number of scheduling regions across all kernels.
    pub fn region_count(&self) -> usize {
        self.kernels.iter().map(|k| k.regions.len()).sum()
    }

    /// Iterates over `(kernel index, region index, region)` triples.
    pub fn regions(&self) -> impl Iterator<Item = (usize, usize, &Ddg)> {
        self.kernels
            .iter()
            .enumerate()
            .flat_map(|(k, kern)| kern.regions.iter().enumerate().map(move |(r, d)| (k, r, d)))
    }

    /// Content-duplication statistics of the suite's regions, computed
    /// from canonical DDG fingerprints with a full [`Ddg::content_eq`]
    /// confirmation inside each fingerprint bucket (a 64-bit collision
    /// would otherwise under-count distinct content).
    pub fn duplicate_stats(&self) -> DuplicateStats {
        let mut buckets: std::collections::HashMap<u64, Vec<&Ddg>> =
            std::collections::HashMap::new();
        let mut regions = 0usize;
        for (_, _, ddg) in self.regions() {
            regions += 1;
            buckets
                .entry(sched_ir::ddg_content_fingerprint(ddg))
                .or_default()
                .push(ddg);
        }
        let mut distinct = 0usize;
        for group in buckets.values() {
            // Within a bucket, count equivalence classes by full equality.
            let mut reps: Vec<&Ddg> = Vec::new();
            for ddg in group {
                if !reps.iter().any(|r| r.content_eq(ddg)) {
                    reps.push(ddg);
                }
            }
            distinct += reps.len();
        }
        DuplicateStats { regions, distinct }
    }
}

/// How much of a suite's region content is duplicated (see
/// [`Suite::duplicate_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateStats {
    /// Total scheduling regions.
    pub regions: usize,
    /// Regions with pairwise-distinct scheduling content.
    pub distinct: usize,
}

impl DuplicateStats {
    /// Fraction of regions that are content-duplicates of another region,
    /// in `[0, 1]`: `1 - distinct/regions`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            1.0 - self.distinct as f64 / self.regions as f64
        }
    }
}

/// Pool key of a region size: exact below 50 (tiny sizes repeat naturally,
/// so per-size pools stay dense), band-preserving buckets above — `[50,100)`
/// by tens, `[100,∞)` by fifties. Two sizes share a key only within one
/// Table-1 size band, so template replacement preserves the suite's band
/// distribution; without the buckets the continuous large-tail sizes would
/// never pool, leaving the very regions that dominate compile time with
/// no duplicates at all.
fn template_pool_key(size: usize) -> usize {
    match size {
        0..=49 => size,
        50..=99 => 50 + (size - 50) / 10 * 10,
        _ => 100 + (size - 100) / 50 * 50,
    }
}

/// The template-instantiation post-pass: with probability
/// `template_duplication`, a region is replaced by a clone of an earlier
/// similar-sized region (the "template"), mimicking a library suite
/// stamping the same block primitive across many kernels. Pools are keyed
/// by [`template_pool_key`], which never crosses a size band. Runs on its
/// own RNG stream (derived from the seed) *after* generation, so a
/// fraction of `0.0` leaves suites byte-identical to pre-knob generation.
fn instantiate_templates(kernels: &mut [Kernel], config: &SuiteConfig) {
    let p = config.template_duplication.clamp(0.0, 1.0);
    if p <= 0.0 {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut pools: std::collections::HashMap<usize, Vec<Ddg>> = std::collections::HashMap::new();
    for kernel in kernels.iter_mut() {
        for region in &mut kernel.regions {
            let pool = pools.entry(template_pool_key(region.len())).or_default();
            if !pool.is_empty() && rng.gen::<f64>() < p {
                *region = pool[rng.gen_range(0..pool.len())].clone();
            } else {
                pool.push(region.clone());
            }
        }
    }
}

/// Samples a region size from the Table-1-like distribution: the bulk of
/// regions are tiny (straight-line glue code), a minority reach the 50–99
/// band, and a thin tail is large (hot loop bodies).
fn sample_region_size(rng: &mut SmallRng, max: usize) -> usize {
    let r: f64 = rng.gen();
    let size = if r < 0.80 {
        // tiny: 2-19, geometric-ish
        2 + (rng.gen::<f64>().powi(2) * 18.0) as usize
    } else if r < 0.93 {
        // small: 20-49
        rng.gen_range(20..50)
    } else if r < 0.975 {
        // medium: 50-99
        rng.gen_range(50..100)
    } else {
        // large tail: 100..max, power-law
        let t: f64 = rng.gen::<f64>().powi(3);
        100 + (t * (max.saturating_sub(100)) as f64) as usize
    };
    size.min(max).max(2)
}

fn gen_kernel(index: usize, config: &SuiteConfig, rng: &mut SmallRng) -> Kernel {
    // Regions per kernel: exponential around the mean, at least 1.
    let mean = config.mean_regions_per_kernel as f64;
    let count = ((-rng.gen::<f64>().max(1e-9).ln()) * mean).round() as usize;
    let count = count.clamp(1, config.mean_regions_per_kernel * 8);
    let mut regions = Vec::with_capacity(count);
    // Region 0 is the hot region: biased large so schedulers matter.
    let hot_size = sample_region_size(rng, config.max_region_size)
        .max(rng.gen_range(30..(config.max_region_size / 2).max(31)));
    regions.push(patterns::sized(hot_size, rng.gen()));
    for _ in 1..count {
        let size = sample_region_size(rng, config.max_region_size);
        regions.push(patterns::sized(size, rng.gen()));
    }
    Kernel {
        name: format!("kernel_{index:03}"),
        regions,
        bytes_per_launch: rng.gen_range(1u64..=64) * (1 << 20),
        // Scheduling-sensitive rocPRIM kernels are memory-latency bound;
        // occupancy buys them real time (purely bandwidth- or VALU-bound
        // kernels are the ones the paper's 3% CoV rule filters out).
        latency_bound: rng.gen_range(0.55..0.92),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SuiteConfig::default();
        let a = Suite::generate(&cfg);
        let b = Suite::generate(&cfg);
        assert_eq!(a.region_count(), b.region_count());
        assert_eq!(a.benchmarks, b.benchmarks);
        for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(ka.name, kb.name);
            assert_eq!(ka.bytes_per_launch, kb.bytes_per_launch);
            assert_eq!(ka.regions.len(), kb.regions.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Suite::generate(&SuiteConfig::scaled(1, 0.01));
        let b = Suite::generate(&SuiteConfig::scaled(2, 0.01));
        assert_ne!(a.region_count(), b.region_count());
    }

    #[test]
    fn benchmarks_reference_valid_kernels() {
        let s = Suite::generate(&SuiteConfig::default());
        for b in &s.benchmarks {
            assert!(!b.kernels.is_empty());
            for &k in &b.kernels {
                assert!(k < s.kernels.len());
            }
        }
    }

    #[test]
    fn size_distribution_is_small_heavy_with_a_tail() {
        let s = Suite::generate(&SuiteConfig::scaled(7, 0.05));
        let sizes: Vec<usize> = s.regions().map(|(_, _, d)| d.len()).collect();
        assert!(
            sizes.len() > 200,
            "need a meaningful sample, got {}",
            sizes.len()
        );
        let tiny = sizes.iter().filter(|&&z| z < 50).count();
        let large = sizes.iter().filter(|&&z| z >= 100).count();
        assert!(
            tiny as f64 / sizes.len() as f64 > 0.75,
            "bulk must be small regions"
        );
        assert!(large > 0, "a large tail must exist");
    }

    #[test]
    fn hot_region_is_first_and_meaningfully_sized() {
        let s = Suite::generate(&SuiteConfig::default());
        for k in &s.kernels {
            assert!(!k.regions.is_empty());
            assert!(
                k.regions[0].len() >= 24,
                "hot region too small in {}",
                k.name
            );
        }
    }

    #[test]
    fn duplicate_heavy_suites_pin_a_high_dedup_ratio() {
        let stats = Suite::generate(&SuiteConfig::duplicate_heavy(5, 0.008)).duplicate_stats();
        assert!(
            stats.dedup_ratio() >= 0.30,
            "duplicate-heavy suite must be >=30% duplicates, got {:.3} ({} distinct / {})",
            stats.dedup_ratio(),
            stats.distinct,
            stats.regions
        );
        assert!(stats.distinct > 0 && stats.distinct < stats.regions);
    }

    #[test]
    fn template_instantiation_is_deterministic_and_off_by_default() {
        let cfg = SuiteConfig::duplicate_heavy(5, 0.008);
        let a = Suite::generate(&cfg);
        let b = Suite::generate(&cfg);
        for ((_, _, x), (_, _, y)) in a.regions().zip(b.regions()) {
            assert!(
                x.content_eq(y),
                "duplication post-pass must be deterministic"
            );
        }
        // The knob defaults to off, where suites keep the generator's
        // natural (near-total) content diversity; the post-pass only adds
        // duplicates, never fresh content.
        let off = Suite::generate(&SuiteConfig::scaled(5, 0.008)).duplicate_stats();
        let on = a.duplicate_stats();
        assert_eq!(off.regions, on.regions, "post-pass must not change counts");
        assert!(
            on.distinct < off.distinct,
            "duplication must reduce distinct content: {} vs {}",
            on.distinct,
            off.distinct
        );
        // Band distribution is preserved (pool buckets never cross a
        // Table-1 size band, though sizes inside a band may shift).
        let bands = |s: &Suite| {
            let mut c = [0usize; 3];
            for (_, _, d) in s.regions() {
                c[match d.len() {
                    0..=49 => 0,
                    50..=99 => 1,
                    _ => 2,
                }] += 1;
            }
            c
        };
        assert_eq!(
            bands(&a),
            bands(&Suite::generate(&SuiteConfig::scaled(5, 0.008)))
        );
    }

    #[test]
    fn config_scaling_clamps() {
        let tiny = SuiteConfig::scaled(0, 0.000001);
        assert!(tiny.benchmarks >= 1 && tiny.kernels >= 1);
        let full = SuiteConfig::scaled(0, 1.0);
        assert_eq!(full.benchmarks, 341);
        assert_eq!(full.kernels, 269);
        assert_eq!(full.max_region_size, 2223);
    }
}
