//! rocPRIM-shaped scheduling workloads.
//!
//! The paper evaluates on the rocPRIM benchmarks: 341 scheduling-sensitive
//! benchmarks invoking 269 GPU kernels, yielding 181,883 scheduling regions
//! (Table 1). Since ACO consumes only a region's DDG, this crate substitutes
//! the LLVM-extracted regions with *generated* DDGs whose shapes mirror the
//! kernels rocPRIM actually contains — reductions, scans, streaming
//! transforms, sorting networks, stencils — plus layered random DAGs for
//! variety, with a region-size distribution matched to Table 1.
//!
//! Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use workloads::patterns;
//!
//! let ddg = patterns::reduction(16, 42);
//! assert!(ddg.len() >= 16);
//! let ddg = patterns::sized(100, 7); // ~100-instruction mixed region
//! assert!(ddg.len() >= 80 && ddg.len() <= 120);
//! ```

pub mod mutate;
pub mod patterns;
pub mod suite;

pub use suite::{Benchmark, DuplicateStats, Kernel, Suite, SuiteConfig};
