//! Register-pressure-aware instruction scheduling with Ant Colony
//! Optimization — sequential and GPU-parallel.
//!
//! This crate is the core of the reproduction of *Instruction Scheduling
//! for the GPU on the GPU* (Shobaki et al., CGO 2024): a two-pass ACO
//! scheduler in which pass 1 minimizes the APRP register-pressure cost
//! (maximizing occupancy) and pass 2 minimizes schedule length under the
//! pass-1 cost as a hard constraint.
//!
//! Two drivers share the same ant logic ([`construct`]):
//!
//! * [`SequentialScheduler`] — the CPU algorithm of Shobaki et al. 2022,
//!   with a modeled CPU time ([`gpu_sim::CpuSpec`]).
//! * [`ParallelScheduler`] — the paper's contribution: the ACO kernel
//!   mapped onto wavefronts of a (simulated) GPU with the memory and
//!   divergence optimizations of Section V as individually togglable
//!   [`GpuTuning`] knobs.
//! * [`HostParallelScheduler`] — the same colony across host threads
//!   (crossbeam), a deterministic correctness cross-check of the
//!   independent-ants parallelization argument.
//!
//! # Quickstart
//!
//! ```
//! use aco::{AcoConfig, ParallelScheduler, SequentialScheduler};
//! use machine_model::OccupancyModel;
//! use sched_ir::figure1;
//!
//! let ddg = figure1::ddg();
//! let occ = OccupancyModel::unit();
//!
//! let seq = SequentialScheduler::new(AcoConfig::small(1)).schedule(&ddg, &occ);
//! let par = ParallelScheduler::new(AcoConfig::small(1)).schedule(&ddg, &occ);
//!
//! // Both find the paper's optimum for the Figure-1 region.
//! assert_eq!(seq.prp[0], 3);
//! assert_eq!(par.result.prp[0], 3);
//! ```

pub mod config;
pub mod construct;
pub mod host_parallel;
pub mod parallel;
pub mod pheromone;
pub mod result;
pub mod sequential;
pub mod warm;

pub use config::{AcoConfig, GpuTuning, Termination};
pub use construct::{AntContext, Pass1Ant, Pass1Result, Pass2Ant, Pass2Result, Pass2Step};
pub use host_parallel::HostParallelScheduler;
pub use parallel::{batch_block_split, BatchOutcome, GpuStats, ParallelOutcome, ParallelScheduler};
pub use pheromone::PheromoneTable;
pub use result::{AcoResult, PassStats};
pub use sequential::{pass2_target, SequentialScheduler};
pub use warm::{WarmStart, WARM_NO_IMPROVE_BUDGET};
