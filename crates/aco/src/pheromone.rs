//! The pheromone table.

use sched_ir::InstrId;

/// The `(n+1) × n` pheromone table of Section IV-A.
///
/// Entry `τ(i, j)` is the pheromone on the link "schedule `j` immediately
/// after `i`"; a virtual *start* row holds the pheromone for scheduling `j`
/// first. The table is shared by all ants within an iteration and updated
/// from the iteration winner between iterations.
#[derive(Debug, Clone)]
pub struct PheromoneTable {
    n: usize,
    initial: f64,
    tau: Vec<f64>,
}

impl PheromoneTable {
    /// Creates a table for `n` instructions with all entries at `initial`.
    pub fn new(n: usize, initial: f64) -> PheromoneTable {
        PheromoneTable {
            n,
            initial,
            tau: vec![initial; (n + 1) * n],
        }
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table covers zero instructions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resets every entry to the initial level (used between passes).
    pub fn reset(&mut self) {
        self.tau.fill(self.initial);
    }

    /// Creates a **warm-started** table: uniform at `initial` except the
    /// consecutive links of `order` (including the virtual start link),
    /// which are saturated at `tau_max`.
    ///
    /// This is the pheromone image a long converged run on `order` leaves
    /// behind: under exploitation the first iteration reproduces `order`
    /// exactly (see the `deposited_order_dominates_exploitation` test), so
    /// a search seeded this way starts from a known-good schedule instead
    /// of a cold uniform trail.
    pub fn warm_started(n: usize, initial: f64, order: &[InstrId], tau_max: f64) -> PheromoneTable {
        let mut t = PheromoneTable::new(n, initial);
        t.seed_order(order, tau_max);
        t
    }

    /// Resets the table, then saturates the consecutive links of `order` at
    /// `tau_max` (the between-pass form of [`PheromoneTable::warm_started`]).
    pub fn seed_order(&mut self, order: &[InstrId], tau_max: f64) {
        self.reset();
        // Depositing `tau_max` clamps every seeded link exactly at the
        // ceiling regardless of the initial level.
        self.deposit_order(order, tau_max, tau_max);
    }

    #[inline]
    fn row(&self, from: Option<InstrId>) -> usize {
        match from {
            Some(i) => i.index(),
            None => self.n, // virtual start row
        }
    }

    /// τ on the link `from -> to` (`from = None` is the virtual start).
    #[inline]
    pub fn get(&self, from: Option<InstrId>, to: InstrId) -> f64 {
        self.tau[self.row(from) * self.n + to.index()]
    }

    /// Multiplies every entry by `decay` (pheromone dissipation), clamping
    /// at `tau_min`.
    pub fn evaporate(&mut self, decay: f64, tau_min: f64) {
        for t in &mut self.tau {
            *t = (*t * decay).max(tau_min);
        }
    }

    /// Deposits `amount` on every consecutive link of the winner `order`
    /// (including the start link), clamping at `tau_max`.
    pub fn deposit_order(&mut self, order: &[InstrId], amount: f64, tau_max: f64) {
        let mut from: Option<InstrId> = None;
        for &to in order {
            let idx = self.row(from) * self.n + to.index();
            self.tau[idx] = (self.tau[idx] + amount).min(tau_max);
            from = Some(to);
        }
    }

    /// Number of entries (for cost accounting of the update kernels).
    pub fn entries(&self) -> usize {
        self.tau.len()
    }

    /// The initial pheromone level the table was created with.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// Debug hook: checks the table's numeric invariants.
    ///
    /// Every entry must be finite and lie within
    /// `[min(tau_min, initial), max(tau_max, initial)]` — evaporation clamps
    /// at `tau_min`, deposits clamp at `tau_max`, and untouched entries stay
    /// at the initial level. Returns the first violation as
    /// `(row, column, value)`, where row `n` is the virtual start row.
    ///
    /// # Errors
    ///
    /// Returns `Err((row, col, value))` for the first NaN/infinite or
    /// out-of-bounds entry.
    pub fn check_invariants(&self, tau_min: f64, tau_max: f64) -> Result<(), (usize, usize, f64)> {
        let lo = tau_min.min(self.initial);
        let hi = tau_max.max(self.initial);
        for (i, &t) in self.tau.iter().enumerate() {
            let (row, col) = (i / self.n.max(1), i % self.n.max(1));
            if !t.is_finite() || t < lo || t > hi {
                return Err((row, col, t));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_uniform() {
        let t = PheromoneTable::new(4, 1.5);
        for to in 0..4u32 {
            assert_eq!(t.get(None, InstrId(to)), 1.5);
            for from in 0..4u32 {
                assert_eq!(t.get(Some(InstrId(from)), InstrId(to)), 1.5);
            }
        }
        assert_eq!(t.entries(), 20);
    }

    #[test]
    fn deposit_reinforces_winner_links_only() {
        let mut t = PheromoneTable::new(3, 1.0);
        let order = [InstrId(2), InstrId(0), InstrId(1)];
        t.deposit_order(&order, 0.5, 10.0);
        assert_eq!(t.get(None, InstrId(2)), 1.5);
        assert_eq!(t.get(Some(InstrId(2)), InstrId(0)), 1.5);
        assert_eq!(t.get(Some(InstrId(0)), InstrId(1)), 1.5);
        // Untouched links unchanged.
        assert_eq!(t.get(None, InstrId(0)), 1.0);
        assert_eq!(t.get(Some(InstrId(1)), InstrId(2)), 1.0);
    }

    #[test]
    fn evaporation_decays_and_clamps() {
        let mut t = PheromoneTable::new(2, 1.0);
        t.evaporate(0.8, 0.5);
        assert_eq!(t.get(None, InstrId(0)), 0.8);
        t.evaporate(0.5, 0.5);
        assert_eq!(t.get(None, InstrId(0)), 0.5, "clamped at tau_min");
    }

    #[test]
    fn deposit_clamps_at_tau_max() {
        let mut t = PheromoneTable::new(2, 1.0);
        for _ in 0..100 {
            t.deposit_order(&[InstrId(0), InstrId(1)], 1.0, 3.0);
        }
        assert_eq!(t.get(None, InstrId(0)), 3.0);
    }

    #[test]
    fn invariant_hook_accepts_clamped_updates_and_rejects_corruption() {
        let mut t = PheromoneTable::new(3, 1.0);
        let order = [InstrId(0), InstrId(1), InstrId(2)];
        for _ in 0..50 {
            t.evaporate(0.7, 0.2);
            t.deposit_order(&order, 0.9, 4.0);
        }
        t.check_invariants(0.2, 4.0).unwrap();
        // Corrupt the deposited links past tau_max; the hook pinpoints the
        // first violating entry in scan order — the link 0 -> 1.
        t.deposit_order(&order, 100.0, 200.0);
        let err = t.check_invariants(0.2, 4.0).unwrap_err();
        assert_eq!((err.0, err.1), (0, 1));
        assert!(err.2 > 4.0);
    }

    #[test]
    fn warm_start_saturates_only_the_seeded_links() {
        let order = [InstrId(1), InstrId(2), InstrId(0)];
        let t = PheromoneTable::warm_started(3, 1.0, &order, 8.0);
        assert_eq!(t.get(None, InstrId(1)), 8.0);
        assert_eq!(t.get(Some(InstrId(1)), InstrId(2)), 8.0);
        assert_eq!(t.get(Some(InstrId(2)), InstrId(0)), 8.0);
        // Everything off the seeded path stays at the initial level.
        assert_eq!(t.get(None, InstrId(0)), 1.0);
        assert_eq!(t.get(Some(InstrId(0)), InstrId(1)), 1.0);
        assert_eq!(t.get(Some(InstrId(2)), InstrId(1)), 1.0);
        t.check_invariants(0.01, 8.0).unwrap();
        // seed_order on a dirty table matches the constructor bit for bit.
        let mut dirty = PheromoneTable::new(3, 1.0);
        dirty.deposit_order(&[InstrId(0), InstrId(1), InstrId(2)], 2.0, 8.0);
        dirty.evaporate(0.5, 0.01);
        dirty.seed_order(&order, 8.0);
        for to in 0..3u32 {
            assert_eq!(dirty.get(None, InstrId(to)), t.get(None, InstrId(to)));
            for from in 0..3u32 {
                assert_eq!(
                    dirty.get(Some(InstrId(from)), InstrId(to)),
                    t.get(Some(InstrId(from)), InstrId(to))
                );
            }
        }
    }

    #[test]
    fn reset_restores_initial() {
        let mut t = PheromoneTable::new(2, 2.0);
        t.deposit_order(&[InstrId(0), InstrId(1)], 1.0, 10.0);
        t.evaporate(0.5, 0.0);
        t.reset();
        assert_eq!(t.get(None, InstrId(0)), 2.0);
        assert_eq!(t.get(Some(InstrId(0)), InstrId(1)), 2.0);
    }
}

#[cfg(test)]
mod convergence_tests {
    use super::*;
    use crate::config::AcoConfig;
    use crate::construct::{AntContext, Pass1Ant};
    use list_sched::{Heuristic, RegionAnalysis};
    use machine_model::{OccupancyLut, OccupancyModel};
    use reg_pressure::RegUniverse;

    /// Repeatedly depositing the same winner makes exploit-only ants
    /// reproduce it exactly — the exploitation half of the search works.
    /// The region is heuristic-neutral (independent no-operand
    /// instructions), so selection is driven purely by pheromone.
    #[test]
    fn deposited_order_dominates_exploitation() {
        use sched_ir::{DdgBuilder, InstrId};
        let mut b = DdgBuilder::new();
        for i in 0..10 {
            b.instr(format!("nop{i}"), [], []);
        }
        let ddg = b.build().unwrap();
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let analysis = RegionAnalysis::new(&ddg);
        let universe = RegUniverse::new(&ddg);
        let cfg = AcoConfig::small(0);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let mut table = PheromoneTable::new(ddg.len(), cfg.initial_pheromone);
        // An arbitrary permutation, hammered into the table.
        let target: Vec<InstrId> = (0..10u32).map(|i| InstrId((i * 7) % 10)).collect();
        for _ in 0..40 {
            table.evaporate(cfg.decay, cfg.tau_min);
            table.deposit_order(&target, cfg.deposit, cfg.tau_max);
        }
        let mut ant = Pass1Ant::new(&ctx, Heuristic::CriticalPath, 7);
        while !ant.finished(&ctx) {
            ant.step(&ctx, &table, Some(false)); // pure exploitation
        }
        let r = ant.result(&ctx);
        assert_eq!(
            r.order, target,
            "exploitation must follow saturated pheromone"
        );
    }

    /// A warm-started table is already in the converged state the test
    /// above hammers into a cold one: the very first exploit-only ant
    /// reproduces the seeded order — the foundation of pheromone
    /// warm-starting from cached schedules.
    #[test]
    fn warm_started_table_reproduces_seed_in_one_construction() {
        use sched_ir::{DdgBuilder, InstrId};
        let mut b = DdgBuilder::new();
        for i in 0..10 {
            b.instr(format!("nop{i}"), [], []);
        }
        let ddg = b.build().unwrap();
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let analysis = RegionAnalysis::new(&ddg);
        let universe = RegUniverse::new(&ddg);
        let cfg = AcoConfig::small(0);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let target: Vec<InstrId> = (0..10u32).map(|i| InstrId((i * 3) % 10)).collect();
        let table =
            PheromoneTable::warm_started(ddg.len(), cfg.initial_pheromone, &target, cfg.tau_max);
        let mut ant = Pass1Ant::new(&ctx, Heuristic::CriticalPath, 11);
        while !ant.finished(&ctx) {
            ant.step(&ctx, &table, Some(false)); // pure exploitation
        }
        assert_eq!(ant.result(&ctx).order, target);
    }
}
