//! Pheromone warm-start hints.
//!
//! A [`WarmStart`] carries the converged instruction order of a previous
//! search over a *structurally similar* region (same template, different
//! instance — matched by `sched_ir::ddg_structure_fingerprint`). Both
//! schedulers accept one through their `schedule_with` entry points: the
//! pheromone table is seeded saturated along the hinted order instead of
//! uniform ([`crate::PheromoneTable::warm_started`]), so the first
//! exploitation-driven iteration reproduces the hint, and the
//! no-improvement budget is cut to [`WARM_NO_IMPROVE_BUDGET`] because a
//! stabilized warm trail converges immediately or not at all.
//!
//! A hint is *advice*, never a result: the search still constructs every
//! schedule from scratch against the actual region, so a stale or even
//! nonsensical hint can cost iterations but can never produce an invalid
//! schedule. The hard requirements are shape compatibility — the hint must
//! be a permutation of the region's instruction ids, validated structurally
//! by [`WarmStart::new`] — and dependence validity against the concrete
//! region, re-checked by [`WarmStart::applies_to`]. An applicable hint is
//! also injected into both passes as a *candidate incumbent* (its order is
//! evaluated against the region before any ant runs), which gives the warm
//! search a hard floor: its result is never lexicographically worse in
//! (pressure cost, length) than the hint itself.

use sched_ir::{Ddg, Fnv64, InstrId};

/// No-improvement budget of a warm-started pass: one non-improving
/// iteration ends the search. The seeded trail reproduces its hint in the
/// first iteration, so either the colony improves on the hint immediately
/// or the pass is done — burning the cold-start band budget on a converged
/// trail is exactly the waste warm-starting removes.
pub const WARM_NO_IMPROVE_BUDGET: u32 = 1;

/// A validated warm-start hint: a permutation of `0..n` instruction ids,
/// in the issue order a previous search converged to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStart {
    order: Vec<InstrId>,
}

impl WarmStart {
    /// Wraps an instruction order as a warm-start hint.
    ///
    /// Returns `None` unless `order` is a permutation of `0..order.len()`
    /// — anything else could index out of the pheromone table it seeds.
    pub fn new(order: Vec<InstrId>) -> Option<WarmStart> {
        let n = order.len();
        let mut seen = vec![false; n];
        for id in &order {
            let i = id.index();
            if i >= n || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(WarmStart { order })
    }

    /// The hinted issue order.
    pub fn order(&self) -> &[InstrId] {
        &self.order
    }

    /// Number of instructions the hint covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the hint covers zero instructions.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether this hint can seed a search over `ddg`: the instruction
    /// counts must match **and** the hinted order must respect every
    /// dependence edge of this concrete region.
    ///
    /// The dependence check matters because structure-fingerprint matches
    /// are hints, not proofs: a 64-bit collision could pair the hint with
    /// an unrelated region, and seeding from a dependence-violating order
    /// would make the hint-as-candidate quality floor unsound. A valid
    /// topological order of the *template* is a valid order of every
    /// instance sharing its edge shape, so genuine template matches always
    /// pass.
    pub fn applies_to(&self, ddg: &Ddg) -> bool {
        if self.order.len() != ddg.len() {
            return false;
        }
        let mut pos = vec![0usize; self.order.len()];
        for (p, id) in self.order.iter().enumerate() {
            pos[id.index()] = p;
        }
        ddg.topo_order().iter().all(|&id| {
            ddg.succs(id)
                .iter()
                .all(|&(s, _)| pos[s.index()] > pos[id.index()])
        })
    }

    /// Canonical FNV-1a fingerprint of the hint. A warm-started compilation
    /// is a different pure function of its inputs than a cold one, so any
    /// memoization key covering the compilation must fold this in.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.word(self.order.len() as u64);
        for id in &self.order {
            h.word(id.0 as u64);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<InstrId> {
        v.iter().map(|&i| InstrId(i)).collect()
    }

    #[test]
    fn accepts_permutations_and_rejects_everything_else() {
        assert!(WarmStart::new(ids(&[2, 0, 1])).is_some());
        assert!(WarmStart::new(Vec::new()).is_some());
        // Duplicate id.
        assert!(WarmStart::new(ids(&[0, 0, 1])).is_none());
        // Out-of-range id.
        assert!(WarmStart::new(ids(&[0, 3, 1])).is_none());
    }

    #[test]
    fn applies_only_to_matching_sizes() {
        let ddg3 = workloads::patterns::sized(3, 0);
        let w = WarmStart::new(ddg3.topo_order().to_vec()).unwrap();
        assert!(w.applies_to(&ddg3));
        let ddg40 = workloads::patterns::sized(40, 0);
        assert!(!w.applies_to(&ddg40));
    }

    #[test]
    fn dependence_violating_orders_do_not_apply() {
        // A pure chain: its reversed topological order violates every edge.
        let ddg = workloads::patterns::transform_chain(1, 5, 0);
        let mut rev = ddg.topo_order().to_vec();
        rev.reverse();
        let w = WarmStart::new(rev).unwrap();
        assert!(!w.applies_to(&ddg));
        let topo = WarmStart::new(ddg.topo_order().to_vec()).unwrap();
        assert!(topo.applies_to(&ddg));
    }

    #[test]
    fn fingerprint_separates_orders_and_sizes() {
        let a = WarmStart::new(ids(&[0, 1, 2])).unwrap();
        let b = WarmStart::new(ids(&[0, 2, 1])).unwrap();
        let c = WarmStart::new(ids(&[0, 1])).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }
}
