//! Ant schedule construction for both passes.
//!
//! Both the sequential scheduler and the (simulated) GPU kernel build
//! schedules with the same ant logic; they differ only in *who drives the
//! steps*: the sequential scheduler runs each ant to completion, the
//! parallel scheduler steps the 64 ants of a wavefront in lockstep and
//! charges the wavefront cost model for every round
//! (see [`crate::parallel`]).
//!
//! Pass 1 ([`Pass1Ant`]) ignores latencies and builds an instruction
//! *order* minimizing the APRP register-pressure cost. Pass 2
//! ([`Pass2Ant`]) builds a timed schedule with stalls, minimizing length
//! under the pass-1 pressure cost as a hard constraint; ants that violate
//! the constraint die (Section IV-C).

use crate::config::AcoConfig;
use crate::pheromone::PheromoneTable;
use list_sched::{Heuristic, HeuristicEval, RegionAnalysis};
use machine_model::OccupancyLut;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reg_pressure::{PressureTracker, RegUniverse};
use sched_ir::{Cycle, Ddg, InstrId, Schedule, REG_CLASS_COUNT};

/// Abstract operations charged per candidate considered in a selection
/// scan (pheromone read, η evaluation including the last-use scan over the
/// operand list, exponentiation, multiply, compare).
pub const OPS_PER_CANDIDATE: u64 = 8;
/// Abstract operations charged per successor edge when updating the ready
/// list after an issue.
pub const OPS_PER_SUCC: u64 = 2;
/// Fixed abstract operations per construction step (RNG, bookkeeping).
pub const OPS_PER_STEP: u64 = 2;

/// Shared, read-only inputs of every ant working on one region.
#[derive(Debug, Clone, Copy)]
pub struct AntContext<'a> {
    /// The region being scheduled.
    pub ddg: &'a Ddg,
    /// Precomputed analyses (CP distances, ready-list UB, ...).
    pub analysis: &'a RegionAnalysis,
    /// Interned registers.
    pub universe: &'a RegUniverse,
    /// Dense occupancy/APRP lookup tables for the machine's model.
    pub lut: &'a OccupancyLut,
    /// Algorithm parameters.
    pub cfg: &'a AcoConfig,
}

/// Statistics of one pass-1 construction step, consumed by the wavefront
/// cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pass1Step {
    /// Ready-list length scanned by the selection.
    pub scanned: u32,
    /// Successor-edge updates performed after the issue.
    pub succ_ops: u32,
    /// Whether this ant used biased exploration (vs argmax exploitation).
    pub explored: bool,
}

/// Outcome of one pass-2 construction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass2Step {
    /// An instruction was issued.
    Issued {
        /// Ready-list length scanned.
        scanned: u32,
        /// Successor-edge updates performed.
        succ_ops: u32,
        /// Whether biased exploration was used.
        explored: bool,
    },
    /// A stall was scheduled (necessary or optional).
    Stalled {
        /// Ready-list length scanned before deciding to stall.
        scanned: u32,
        /// True if the stall was optional (pressure-motivated), false if
        /// forced by latencies.
        optional: bool,
    },
    /// The ant exceeded the pressure constraint with no way out and was
    /// terminated.
    Died,
    /// The schedule is complete.
    Finished,
}

/// Result of a completed pass-1 construction.
#[derive(Debug, Clone)]
pub struct Pass1Result {
    /// The constructed instruction order.
    pub order: Vec<InstrId>,
    /// Peak pressure of the order.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Scalar APRP cost (lower is better).
    pub cost: u64,
}

/// Result of a completed pass-2 construction.
#[derive(Debug, Clone)]
pub struct Pass2Result {
    /// The timed schedule.
    pub schedule: Schedule,
    /// Issue order.
    pub order: Vec<InstrId>,
    /// Peak pressure.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Schedule length in cycles.
    pub length: Cycle,
}

/// Selects the next instruction with the Ant Colony System rule:
/// exploit (argmax of τ·η^β) or explore (roulette proportional to τ·η^β).
///
/// `weights` is a caller-owned scratch buffer (capacity ≥ the region size)
/// so the hot loop never allocates; each candidate is scored exactly once
/// into it, then the roulette or argmax scan reads the buffer.
#[allow(clippy::too_many_arguments)]
fn select(
    rng: &mut SmallRng,
    pheromone: &PheromoneTable,
    last: Option<InstrId>,
    candidates: &[InstrId],
    eval: &HeuristicEval<'_>,
    pressure: &PressureTracker<'_>,
    beta: f64,
    explore: bool,
    weights: &mut Vec<f64>,
) -> usize {
    debug_assert!(!candidates.is_empty());
    if candidates.len() == 1 {
        return 0;
    }
    let score = |id: InstrId| pheromone.get(last, id) * pow_beta(eval.eta(id, pressure), beta);
    weights.clear();
    weights.extend(candidates.iter().map(|&c| score(c)));
    if explore {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return rng.gen_range(0..candidates.len());
        }
        let mut draw = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            draw -= w;
            if draw <= 0.0 {
                return i;
            }
        }
        candidates.len() - 1
    } else {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &w) in weights.iter().enumerate() {
            if w > best_score {
                best_score = w;
                best = i;
            }
        }
        best
    }
}

/// η^β with fast paths for the common exponents.
#[inline]
fn pow_beta(eta: f64, beta: f64) -> f64 {
    if beta == 2.0 {
        eta * eta
    } else if beta == 1.0 {
        eta
    } else {
        eta.powf(beta)
    }
}

/// A pass-1 ant: builds a latency-free order minimizing APRP cost.
///
/// All working buffers (ready list, order, roulette weights) are reserved
/// at region capacity on construction, so a [`Pass1Ant::reset`] +
/// construction cycle performs **zero heap allocations** — ants are meant
/// to be reused across a whole pass.
#[derive(Debug, Clone)]
pub struct Pass1Ant<'a> {
    rng: SmallRng,
    heuristic: Heuristic,
    pressure: PressureTracker<'a>,
    pending: Vec<u32>,
    ready: Vec<InstrId>,
    order: Vec<InstrId>,
    last: Option<InstrId>,
    ops: u64,
    weights: Vec<f64>,
}

impl<'a> Pass1Ant<'a> {
    /// Creates an ant with its own RNG stream.
    pub fn new(ctx: &AntContext<'a>, heuristic: Heuristic, seed: u64) -> Pass1Ant<'a> {
        let mut ready = Vec::with_capacity(ctx.ddg.len());
        ready.extend(ctx.ddg.roots());
        Pass1Ant {
            rng: SmallRng::seed_from_u64(seed),
            heuristic,
            pressure: PressureTracker::new(ctx.universe),
            pending: ctx.ddg.pred_counts().to_vec(),
            ready,
            order: Vec::with_capacity(ctx.ddg.len()),
            last: None,
            ops: 0,
            weights: Vec::with_capacity(ctx.ddg.len()),
        }
    }

    /// Resets for a new construction (new iteration), reseeding the RNG.
    /// Op accounting is cumulative across resets; read it once per pass.
    pub fn reset(&mut self, ctx: &AntContext<'a>, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        self.pressure.reset();
        self.pending.copy_from_slice(ctx.ddg.pred_counts());
        self.ready.clear();
        self.ready.extend(ctx.ddg.roots());
        self.order.clear();
        self.last = None;
    }

    /// [`Pass1Ant::reset`] plus a new guiding heuristic, so one ant can be
    /// reused across wavefronts with rotating heuristics.
    pub fn reset_with(&mut self, ctx: &AntContext<'a>, heuristic: Heuristic, seed: u64) {
        self.heuristic = heuristic;
        self.reset(ctx, seed);
    }

    /// Whether the order is complete.
    pub fn finished(&self, ctx: &AntContext<'a>) -> bool {
        self.order.len() == ctx.ddg.len()
    }

    /// Performs one construction step. `explore` overrides the ant's own
    /// explore/exploit draw (used for wavefront-level randomization);
    /// `None` lets the ant draw per-thread.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called after the order is complete.
    pub fn step(
        &mut self,
        ctx: &AntContext<'a>,
        pheromone: &PheromoneTable,
        explore: Option<bool>,
    ) -> Pass1Step {
        debug_assert!(!self.finished(ctx));
        let explored = explore.unwrap_or_else(|| self.rng.gen::<f64>() > ctx.cfg.q0);
        let eval = HeuristicEval::new(self.heuristic, ctx.analysis, ctx.lut);
        let scanned = self.ready.len() as u32;
        let pos = select(
            &mut self.rng,
            pheromone,
            self.last,
            &self.ready,
            &eval,
            &self.pressure,
            ctx.cfg.beta,
            explored,
            &mut self.weights,
        );
        let id = self.ready.swap_remove(pos);
        self.pressure.issue(id);
        self.order.push(id);
        self.last = Some(id);
        let mut succ_ops = 0;
        for &(s, _) in ctx.ddg.succs(id) {
            succ_ops += 1;
            self.pending[s.index()] -= 1;
            if self.pending[s.index()] == 0 {
                self.ready.push(s);
            }
        }
        self.ops += OPS_PER_STEP + scanned as u64 * OPS_PER_CANDIDATE + succ_ops * OPS_PER_SUCC;
        Pass1Step {
            scanned,
            succ_ops: succ_ops as u32,
            explored,
        }
    }

    /// Runs the construction to completion (sequential driver).
    pub fn run(&mut self, ctx: &AntContext<'a>, pheromone: &PheromoneTable) -> Pass1Result {
        while !self.finished(ctx) {
            self.step(ctx, pheromone, None);
        }
        self.result(ctx)
    }

    /// The completed result.
    ///
    /// Clones the order; in a reduction, compare [`Pass1Ant::cost`] first
    /// and materialize only the winner.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the order is not complete.
    pub fn result(&self, ctx: &AntContext<'a>) -> Pass1Result {
        debug_assert!(self.finished(ctx));
        let prp = self.pressure.peak();
        Pass1Result {
            order: self.order.clone(),
            prp,
            cost: ctx.lut.rp_cost(prp),
        }
    }

    /// APRP cost of the completed order, without materializing anything.
    pub fn cost(&self, ctx: &AntContext<'a>) -> u64 {
        debug_assert!(self.finished(ctx));
        ctx.lut.rp_cost(self.pressure.peak())
    }

    /// The constructed order so far (complete once [`Pass1Ant::finished`]).
    pub fn order(&self) -> &[InstrId] {
        &self.order
    }

    /// Peak pressure of the order so far.
    pub fn prp(&self) -> [u32; REG_CLASS_COUNT] {
        self.pressure.peak()
    }

    /// Abstract operations executed so far (CPU cost accounting).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current ready-list length (wavefront cost accounting).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

/// Lifecycle of a pass-2 ant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Dead,
    Finished,
}

/// A pass-2 ant: builds a timed schedule with stalls under a hard pressure
/// constraint.
///
/// Like [`Pass1Ant`], every working buffer is reserved at region capacity
/// on construction so a reset + construction cycle allocates nothing;
/// [`Pass2Ant::result`] is the only allocating call and is meant to run
/// only for iteration winners.
#[derive(Debug, Clone)]
pub struct Pass2Ant<'a> {
    rng: SmallRng,
    heuristic: Heuristic,
    allow_optional_stalls: bool,
    target_cost: u64,
    pressure: PressureTracker<'a>,
    pending: Vec<u32>,
    /// `(instruction, cycle its operands become available)`.
    ready: Vec<(InstrId, Cycle)>,
    cycles: Vec<Cycle>,
    order: Vec<InstrId>,
    now: Cycle,
    last: Option<InstrId>,
    optional_stalls: u32,
    stall_budget_override: Option<u32>,
    phase: Phase,
    ops: u64,
    issuable_buf: Vec<InstrId>,
    /// Ready-list index of each entry in `issuable_buf`, filled during the
    /// partition scan so the winner's removal is O(1) instead of a linear
    /// re-search of the ready list.
    issuable_pos: Vec<u32>,
    weights: Vec<f64>,
}

impl<'a> Pass2Ant<'a> {
    /// Creates a pass-2 ant targeting `target_cost` (the best pass-1 APRP
    /// cost, treated as a constraint).
    pub fn new(
        ctx: &AntContext<'a>,
        heuristic: Heuristic,
        seed: u64,
        target_cost: u64,
        allow_optional_stalls: bool,
    ) -> Pass2Ant<'a> {
        let mut ready = Vec::with_capacity(ctx.ddg.len());
        ready.extend(ctx.ddg.roots().map(|i| (i, 0)));
        Pass2Ant {
            rng: SmallRng::seed_from_u64(seed),
            heuristic,
            allow_optional_stalls,
            target_cost,
            pressure: PressureTracker::new(ctx.universe),
            pending: ctx.ddg.pred_counts().to_vec(),
            ready,
            cycles: vec![0; ctx.ddg.len()],
            order: Vec::with_capacity(ctx.ddg.len()),
            now: 0,
            last: None,
            optional_stalls: 0,
            stall_budget_override: None,
            phase: Phase::Running,
            ops: 0,
            issuable_buf: Vec::with_capacity(ctx.ddg.len()),
            issuable_pos: Vec::with_capacity(ctx.ddg.len()),
            weights: Vec::with_capacity(ctx.ddg.len()),
        }
    }

    /// Overrides the optional-stall budget (the host-side greedy input
    /// constructions stall freely; wavefront ants use the configured
    /// fraction of the region size). Survives [`Pass2Ant::reset`].
    pub fn set_stall_budget(&mut self, budget: u32) {
        self.stall_budget_override = Some(budget);
    }

    /// Resets for a new construction, reseeding the RNG. The target cost,
    /// stall-budget override, and op accounting are kept; ops accumulate
    /// across resets, so read them once per pass.
    pub fn reset(&mut self, ctx: &AntContext<'a>, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        self.pressure.reset();
        self.pending.copy_from_slice(ctx.ddg.pred_counts());
        self.ready.clear();
        self.ready.extend(ctx.ddg.roots().map(|i| (i, 0)));
        self.cycles.fill(0);
        self.order.clear();
        self.now = 0;
        self.last = None;
        self.optional_stalls = 0;
        self.phase = Phase::Running;
    }

    /// [`Pass2Ant::reset`] plus a new guiding heuristic and stall
    /// permission, so one ant can be reused across a colony where both
    /// rotate (per ant on the host, per wavefront on the GPU).
    pub fn reset_with(
        &mut self,
        ctx: &AntContext<'a>,
        heuristic: Heuristic,
        seed: u64,
        allow_optional_stalls: bool,
    ) {
        self.heuristic = heuristic;
        self.allow_optional_stalls = allow_optional_stalls;
        self.reset(ctx, seed);
    }

    /// Whether the ant is still constructing.
    pub fn running(&self) -> bool {
        self.phase == Phase::Running
    }

    /// Whether the ant completed a feasible schedule.
    pub fn finished(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Kills the ant (early wavefront termination).
    pub fn kill(&mut self) {
        if self.phase == Phase::Running {
            self.phase = Phase::Dead;
        }
    }

    /// Maximum optional stalls this ant may insert.
    fn stall_budget(&self, ctx: &AntContext<'a>) -> u32 {
        self.stall_budget_override
            .unwrap_or((ctx.ddg.len() as f64 * ctx.cfg.optional_stall_budget).ceil() as u32)
    }

    /// Performs one construction step (issue one instruction, schedule one
    /// stall, die, or finish).
    pub fn step(
        &mut self,
        ctx: &AntContext<'a>,
        pheromone: &PheromoneTable,
        explore: Option<bool>,
    ) -> Pass2Step {
        match self.phase {
            Phase::Dead => return Pass2Step::Died,
            Phase::Finished => return Pass2Step::Finished,
            Phase::Running => {}
        }
        if self.order.len() == ctx.ddg.len() {
            self.phase = Phase::Finished;
            return Pass2Step::Finished;
        }

        let scanned = self.ready.len() as u32;
        self.ops += OPS_PER_STEP + scanned as u64 * OPS_PER_CANDIDATE;

        // Partition the ready list by issuability and constraint,
        // remembering each issuable entry's ready-list index.
        self.issuable_buf.clear();
        self.issuable_pos.clear();
        let mut next_arrival: Option<Cycle> = None;
        let mut has_violating = false;
        for (i, &(id, rc)) in self.ready.iter().enumerate() {
            if rc <= self.now {
                if ctx.lut.rp_cost(self.pressure.peak_after(id)) <= self.target_cost {
                    self.issuable_buf.push(id);
                    self.issuable_pos.push(i as u32);
                } else {
                    has_violating = true;
                }
            } else {
                next_arrival = Some(next_arrival.map_or(rc, |a: Cycle| a.min(rc)));
            }
        }

        if self.issuable_buf.is_empty() {
            if !has_violating {
                // Nothing is ready at this cycle at all: a *necessary*
                // stall, forced by latencies — every ant may take it.
                let rc = next_arrival.expect("ready list cannot be empty mid-construction");
                self.now = rc;
                return Pass2Step::Stalled {
                    scanned,
                    optional: false,
                };
            }
            // Ready instructions exist but all of them would break the
            // pressure constraint. Waiting for a semi-ready instruction is
            // an *optional* stall (the paper's Figure-1 cycle-4 case);
            // ants that may not take it are forced into the violation and
            // terminate.
            if self.allow_optional_stalls && self.optional_stalls < self.stall_budget(ctx) {
                if let Some(rc) = next_arrival {
                    self.optional_stalls += 1;
                    self.now = rc;
                    return Pass2Step::Stalled {
                        scanned,
                        optional: true,
                    };
                }
            }
            self.phase = Phase::Dead;
            return Pass2Step::Died;
        }

        // Optional-stall heuristic (Section IV-C): when a semi-ready
        // instruction would relieve pressure more than any issuable one,
        // consider waiting for it — with a probability that shrinks as the
        // stall budget is consumed.
        if let Some(arrival) = next_arrival {
            if self.allow_optional_stalls
                && has_violating
                && self.optional_stalls < self.stall_budget(ctx)
            {
                let semi_would_help = self
                    .ready
                    .iter()
                    .filter(|&&(_, rc)| rc > self.now)
                    .any(|&(id, _)| net_total(&self.pressure, id) < 0);
                let issuable_min = self
                    .issuable_buf
                    .iter()
                    .map(|&id| net_total(&self.pressure, id))
                    .min()
                    .unwrap_or(0);
                if semi_would_help && issuable_min >= 0 {
                    let budget = self.stall_budget(ctx).max(1);
                    let p = 0.75 * (1.0 - self.optional_stalls as f64 / budget as f64);
                    if self.rng.gen::<f64>() < p {
                        self.optional_stalls += 1;
                        self.now = arrival;
                        return Pass2Step::Stalled {
                            scanned,
                            optional: true,
                        };
                    }
                }
            }
        }

        // Issue via the ACO selection rule.
        let explored = explore.unwrap_or_else(|| self.rng.gen::<f64>() > ctx.cfg.q0);
        let eval = HeuristicEval::new(self.heuristic, ctx.analysis, ctx.lut);
        let pos = select(
            &mut self.rng,
            pheromone,
            self.last,
            &self.issuable_buf,
            &eval,
            &self.pressure,
            ctx.cfg.beta,
            explored,
            &mut self.weights,
        );
        let id = self.issuable_buf[pos];
        let ready_pos = self.issuable_pos[pos] as usize;
        debug_assert_eq!(self.ready[ready_pos].0, id);
        self.ready.swap_remove(ready_pos);
        self.cycles[id.index()] = self.now;
        self.pressure.issue(id);
        self.order.push(id);
        self.last = Some(id);
        let mut succ_ops = 0u32;
        for &(s, _) in ctx.ddg.succs(id) {
            succ_ops += 1;
            self.pending[s.index()] -= 1;
            if self.pending[s.index()] == 0 {
                let rc = ctx
                    .ddg
                    .preds(s)
                    .iter()
                    .map(|&(p, lat)| self.cycles[p.index()] + lat as Cycle)
                    .max()
                    .unwrap_or(0);
                self.ready.push((s, rc));
            }
        }
        self.ops += succ_ops as u64 * OPS_PER_SUCC;
        self.now += 1;
        if self.order.len() == ctx.ddg.len() {
            self.phase = Phase::Finished;
        }
        Pass2Step::Issued {
            scanned,
            succ_ops,
            explored,
        }
    }

    /// Runs the construction until it finishes or dies (sequential driver).
    /// Returns `None` for a dead ant.
    pub fn run(&mut self, ctx: &AntContext<'a>, pheromone: &PheromoneTable) -> Option<Pass2Result> {
        loop {
            match self.step(ctx, pheromone, None) {
                Pass2Step::Died => return None,
                Pass2Step::Finished => return Some(self.result()),
                Pass2Step::Issued { .. } | Pass2Step::Stalled { .. } => {}
            }
        }
    }

    /// The completed result.
    ///
    /// Clones the cycles and order; in a reduction, compare
    /// [`Pass2Ant::length`] first and materialize only the winner.
    ///
    /// # Panics
    ///
    /// Panics if the ant has not finished.
    pub fn result(&self) -> Pass2Result {
        assert!(self.finished(), "result of an unfinished pass-2 ant");
        let schedule = Schedule::from_cycles(self.cycles.clone());
        Pass2Result {
            length: schedule.length(),
            order: self.order.clone(),
            prp: self.pressure.peak(),
            schedule,
        }
    }

    /// Length of the completed schedule, without materializing it. Equal
    /// to what [`Pass2Ant::result`]'s schedule would report.
    ///
    /// # Panics
    ///
    /// Panics if the ant has not finished.
    pub fn length(&self) -> Cycle {
        assert!(self.finished(), "length of an unfinished pass-2 ant");
        self.cycles.iter().max().map_or(0, |&m| m + 1)
    }

    /// The issue order so far (complete once [`Pass2Ant::finished`]).
    pub fn order(&self) -> &[InstrId] {
        &self.order
    }

    /// Per-instruction issue cycles (dense, indexed by instruction).
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// Peak pressure of the construction so far.
    pub fn prp(&self) -> [u32; REG_CLASS_COUNT] {
        self.pressure.peak()
    }

    /// Abstract operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current ready-list length.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

/// Total (all-class) net pressure change of issuing `id` now.
fn net_total(pressure: &PressureTracker<'_>, id: InstrId) -> i32 {
    pressure.net_change(id).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use list_sched::RegionAnalysis;
    use machine_model::OccupancyModel;
    use sched_ir::figure1;

    fn setup(ddg: &Ddg) -> (RegionAnalysis, RegUniverse, OccupancyLut, AcoConfig) {
        (
            RegionAnalysis::new(ddg),
            RegUniverse::new(ddg),
            OccupancyLut::new(&OccupancyModel::vega_like()),
            AcoConfig::small(7),
        )
    }

    #[test]
    fn pass1_ant_builds_valid_orders() {
        let ddg = figure1::ddg();
        let (analysis, universe, lut, cfg) = setup(&ddg);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        for seed in 0..20 {
            let mut ant = Pass1Ant::new(&ctx, Heuristic::LastUseCount, seed);
            let r = ant.run(&ctx, &pher);
            assert_eq!(r.order.len(), 7);
            // Precedence check.
            let mut pos = [0usize; 7];
            for (i, id) in r.order.iter().enumerate() {
                pos[id.index()] = i;
            }
            for id in ddg.ids() {
                for &(s, _) in ddg.succs(id) {
                    assert!(pos[id.index()] < pos[s.index()]);
                }
            }
            assert!(r.prp[0] >= 3, "figure-1 PRP is at least 3");
            assert!(ant.ops() > 0);
        }
    }

    #[test]
    fn pass1_reset_reproduces_same_seed() {
        let ddg = figure1::ddg();
        let (analysis, universe, lut, cfg) = setup(&ddg);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        let mut ant = Pass1Ant::new(&ctx, Heuristic::CriticalPath, 5);
        let first = ant.run(&ctx, &pher);
        ant.reset(&ctx, 5);
        let second = ant.run(&ctx, &pher);
        assert_eq!(first.order, second.order);
        assert_eq!(first.cost, second.cost);
    }

    #[test]
    fn pass2_ant_respects_latencies_and_constraint() {
        let (ddg, _) = figure1::ddg_with_ids();
        let (analysis, universe, _, cfg) = setup(&ddg);
        // The identity-APRP model makes PRP 3 a binding constraint, as in
        // the paper's walkthrough.
        let occ = OccupancyLut::new(&OccupancyModel::unit());
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        // Target: PRP 3 (the paper's pass-1 best).
        let target = occ.rp_cost([3, 0]);
        let mut finished = 0;
        for seed in 0..40 {
            let mut ant = Pass2Ant::new(&ctx, Heuristic::LastUseCount, seed, target, true);
            if let Some(r) = ant.run(&ctx, &pher) {
                finished += 1;
                r.schedule.validate(&ddg).expect("latency-feasible");
                assert!(occ.rp_cost(r.prp) <= target, "constraint respected");
                assert!(r.length >= 10, "10 cycles is optimal under PRP 3");
            }
        }
        assert!(finished > 0, "some ants must finish");
    }

    #[test]
    fn pass2_ant_with_loose_target_always_finishes() {
        let ddg = figure1::ddg();
        let (analysis, universe, lut, cfg) = setup(&ddg);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        for seed in 0..10 {
            let mut ant = Pass2Ant::new(&ctx, Heuristic::CriticalPath, seed, u64::MAX, false);
            let r = ant.run(&ctx, &pher).expect("unconstrained ant cannot die");
            r.schedule.validate(&ddg).unwrap();
        }
    }

    #[test]
    fn pass2_ant_dies_on_impossible_target() {
        let ddg = figure1::ddg();
        let (analysis, universe, _, cfg) = setup(&ddg);
        let occ = OccupancyLut::new(&OccupancyModel::unit());
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        // PRP 1 is impossible (E needs two operands live).
        let target = occ.rp_cost([1, 0]);
        let mut ant = Pass2Ant::new(&ctx, Heuristic::LastUseCount, 3, target, true);
        assert!(ant.run(&ctx, &pher).is_none());
        assert!(!ant.running());
        assert!(!ant.finished());
    }

    #[test]
    fn pass2_kill_stops_a_running_ant() {
        let ddg = figure1::ddg();
        let (analysis, universe, lut, cfg) = setup(&ddg);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        let mut ant = Pass2Ant::new(&ctx, Heuristic::CriticalPath, 0, u64::MAX, false);
        ant.step(&ctx, &pher, None);
        ant.kill();
        assert_eq!(ant.step(&ctx, &pher, None), Pass2Step::Died);
    }

    #[test]
    fn explore_override_is_respected_deterministically() {
        let ddg = figure1::ddg();
        let (analysis, universe, lut, cfg) = setup(&ddg);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &cfg,
        };
        let pher = PheromoneTable::new(ddg.len(), 1.0);
        let mut ant = Pass1Ant::new(&ctx, Heuristic::CriticalPath, 0);
        let s = ant.step(&ctx, &pher, Some(false));
        assert!(!s.explored);
        let s = ant.step(&ctx, &pher, Some(true));
        assert!(s.explored);
    }
}
